//! Chaos suite: drives the full server ↔ client loop under every
//! injected fault class and asserts three things each time —
//!
//! 1. the *documented* diagnostic code reaches the client,
//! 2. the server stays serviceable afterwards (a healthy request
//!    succeeds), and
//! 3. shutdown still drains cleanly (every test ends in
//!    [`ServerHandle::shutdown`], which joins every thread; a hang here
//!    fails the suite by timeout).
//!
//! Faults are injected deterministically through the wire `fault` member
//! (honored only because the servers here start with
//! [`ServerConfig::chaos`]) and the seeded generators in
//! [`lintra::diag::fault`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use lintra::diag::fault;
use lintra::ErrorClass;
use lintra_bench::json::Json;
use lintra_bench::wire::{WireOp, WireRequest, WireResponse};
use lintra_serve::{start, Client, RetryPolicy, ServerConfig, ServerHandle};

/// Server tuning for fast, deterministic chaos runs.
fn chaos_config() -> ServerConfig {
    ServerConfig {
        jobs: Some(2),
        max_inflight: 8,
        default_deadline: Duration::from_secs(5),
        stall_budget: Duration::from_millis(80),
        chaos: true,
        chaos_point_delay: Duration::from_millis(25),
        breaker: lintra_serve::BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(150),
        },
        ..ServerConfig::default()
    }
}

/// A client with fast backoff so retries don't slow the suite down.
fn fast_client(server: &ServerHandle) -> Client {
    Client::with_policy(
        server.addr().to_string(),
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
    )
}

#[allow(clippy::expect_used)] // test helper; a transport failure should abort the test
fn ping(client: &Client, id: &str) -> WireResponse {
    client
        .request(&WireRequest::new(id, WireOp::Ping))
        .expect("ping transport")
}

fn healthy_optimize(id: &str) -> WireRequest {
    WireRequest::new(
        id,
        WireOp::Optimize {
            design: "chemical".to_string(),
            strategy: "single".to_string(),
            v0: 3.3,
            processors: None,
        },
    )
}

/// Asserts the server still answers a liveness probe *and* real work.
#[allow(clippy::expect_used)] // test helper; a transport failure should abort the test
fn assert_serviceable(client: &Client, tag: &str) {
    let resp = ping(client, &format!("live-{tag}"));
    assert!(
        resp.outcome.is_ok(),
        "{tag}: ping must succeed after the fault"
    );
    let resp = client
        .request(&healthy_optimize(&format!("work-{tag}")))
        .expect("transport");
    let result = resp
        .outcome
        .unwrap_or_else(|f| panic!("{tag}: healthy work failed: {f}"));
    assert!(
        result.get("power_reduction").is_some(),
        "{tag}: result payload intact"
    );
}

#[test]
fn malformed_requests_get_val_malformed_and_the_connection_survives() {
    let server = start(chaos_config()).expect("server starts");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    for (k, bad) in fault::malformed_request_lines(11).into_iter().enumerate() {
        stream.write_all(bad.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("server answers each bad line");
        let resp = WireResponse::parse(&line).expect("response parses");
        let failure = resp.outcome.expect_err("malformed must fail");
        assert_eq!(failure.code, "VAL-MALFORMED-REQUEST", "line {k}: {bad:?}");
        assert_eq!(failure.class, ErrorClass::Validation);
        assert_eq!(failure.exit_code(), 2);
    }

    // The same connection still serves valid requests afterwards.
    stream
        .write_all(
            WireRequest::new("after", WireOp::Ping)
                .render_line()
                .as_bytes(),
        )
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let resp = WireResponse::parse(&line).expect("parse");
    assert_eq!(resp.id, "after");
    assert!(resp.outcome.is_ok());

    drop(stream);
    assert_serviceable(&fast_client(&server), "malformed");
    server.shutdown();
}

#[test]
fn a_client_dying_mid_write_leaves_the_server_serviceable() {
    let server = start(chaos_config()).expect("server starts");
    for seed in [3, 17, 99] {
        let full = WireRequest::new("gone", WireOp::Ping).render_line();
        let cut = fault::truncated_request(&full, seed);
        let stream = TcpStream::connect(server.addr()).expect("connect");
        (&stream).write_all(cut.as_bytes()).expect("write partial");
        stream.shutdown(Shutdown::Write).expect("half-close");
        // Server must treat half a request + EOF as a dead client, not a
        // crash; it closes without an answer.
        let mut rest = Vec::new();
        let mut s = stream;
        s.read_to_end(&mut rest).expect("read");
        assert!(
            rest.is_empty(),
            "no response to half a request, got {rest:?}"
        );
    }
    assert_serviceable(&fast_client(&server), "truncated");
    server.shutdown();
}

#[test]
fn slow_loris_partial_frame_is_cut_off_with_res_deadline() {
    // A short default deadline keeps the test fast; the guard measures
    // from the first partial byte, so an idle connection is unaffected.
    let server = start(ServerConfig {
        default_deadline: Duration::from_millis(200),
        ..chaos_config()
    })
    .expect("server starts");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Drip half a request and then go silent — the classic slow loris.
    let full = WireRequest::new("loris", WireOp::Ping).render_line();
    let half = &full.as_bytes()[..full.len() / 2];
    stream.write_all(half).expect("write partial frame");

    // The server must answer RES-DEADLINE and close instead of letting
    // the unfinished frame pin the handler thread forever.
    let started = Instant::now();
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server answers the stalled frame");
    let resp = WireResponse::parse(&line).expect("response parses");
    let failure = resp.outcome.expect_err("partial frame must be rejected");
    assert_eq!(failure.code, "RES-DEADLINE");
    assert_eq!(failure.class, ErrorClass::Resource);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "guard took {:?}; the deadline is 200 ms",
        started.elapsed()
    );

    // ... and the connection is actually closed, not half-open.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "connection stayed open: {rest:?}");

    // The guard only trims the abusive connection; the server is fine.
    assert_serviceable(&fast_client(&server), "loris");
    server.shutdown();
}

#[test]
fn a_newline_free_megabyte_flood_is_rejected_with_val_frame_too_large() {
    let server = start(chaos_config()).expect("server starts");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A sender that never produces a newline: the frame-size guard must
    // cut it off just past MAX_FRAME_BYTES instead of buffering forever
    // (the slow-loris guard would only fire after the full deadline).
    let junk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent <= lintra_serve::MAX_FRAME_BYTES + junk.len() {
        if stream.write_all(&junk).is_err() {
            break; // server already slammed the door mid-flood
        }
        sent += junk.len();
    }

    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server answers the oversized frame");
    let resp = WireResponse::parse(&line).expect("response parses");
    let failure = resp.outcome.expect_err("oversized frame must be rejected");
    assert_eq!(failure.code, "VAL-FRAME-TOO-LARGE");
    assert_eq!(failure.class, ErrorClass::Validation);
    assert_eq!(failure.exit_code(), 2);

    // ... and the connection is closed, not left half-open. Flood bytes
    // still in flight when the server slams the door surface as a
    // reset, which is just as closed as a clean EOF.
    let mut rest = Vec::new();
    match reader.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "connection stayed open: {rest:?}"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }

    // The guard trims only the abusive connection; the server is fine.
    assert_serviceable(&fast_client(&server), "frame-too-large");
    server.shutdown();
}

#[test]
fn injected_slow_worker_is_flagged_as_res_worker_stall() {
    let server = start(chaos_config()).expect("server starts");
    let client = fast_client(&server);

    let mut req = healthy_optimize("stall");
    req.fault = Some("slow-worker".to_string());
    let resp = client.request(&req).expect("transport");
    let failure = resp.outcome.expect_err("stalled point must be flagged");
    assert_eq!(failure.code, "RES-WORKER-STALL");
    assert_eq!(failure.class, ErrorClass::Resource);
    assert_eq!(failure.exit_code(), 4);

    assert_serviceable(&client, "stall");
    server.shutdown();
}

#[test]
fn deadline_expiring_mid_sweep_returns_res_deadline_within_twice_the_deadline() {
    let server = start(chaos_config()).expect("server starts");
    let client = fast_client(&server);

    // ~200 points × 25 ms against a 300 ms budget: the token retires
    // mid-sweep; remaining points are skipped between points, so the
    // response lands within one point's latency of the deadline — well
    // inside the documented 2× bound.
    let deadline_ms = 300;
    let req = WireRequest {
        deadline_ms: Some(deadline_ms),
        fault: Some("slow-sweep".to_string()),
        ..WireRequest::new(
            "deadline",
            WireOp::Sweep {
                design: "chemical".to_string(),
                max_i: 200,
            },
        )
    };
    let started = Instant::now();
    let resp = client.request(&req).expect("transport");
    let elapsed = started.elapsed();
    let failure = resp.outcome.expect_err("deadline must expire");
    assert_eq!(failure.code, "RES-DEADLINE");
    assert_eq!(failure.class, ErrorClass::Resource);
    assert!(
        elapsed < Duration::from_millis(deadline_ms * 2),
        "must answer within 2x the deadline, took {elapsed:?}"
    );

    assert_serviceable(&client, "deadline");
    server.shutdown();
}

#[test]
fn an_already_expired_deadline_never_hangs() {
    let server = start(chaos_config()).expect("server starts");
    let client = fast_client(&server);
    let req = WireRequest {
        deadline_ms: Some(1),
        fault: Some("slow-sweep".to_string()),
        ..WireRequest::new(
            "tiny",
            WireOp::Sweep {
                design: "iir5".to_string(),
                max_i: 64,
            },
        )
    };
    let started = Instant::now();
    let resp = client.request(&req).expect("transport");
    let failure = resp.outcome.expect_err("1 ms budget must expire");
    assert_eq!(failure.code, "RES-DEADLINE");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "no hang on expired budgets"
    );
    server.shutdown();
}

#[test]
fn consecutive_worker_panics_open_the_breaker_then_a_probe_recovers_it() {
    let server = start(chaos_config()).expect("server starts");
    let client = fast_client(&server);

    // Three consecutive injected panics: each is isolated per point and
    // reported, while the breaker counts the streak.
    for k in 0..3 {
        let mut req = healthy_optimize(&format!("panic-{k}"));
        req.fault = Some("worker-panic".to_string());
        let resp = client.request(&req).expect("transport");
        let failure = resp.outcome.expect_err("injected panic must fail");
        assert_eq!(failure.code, "RES-WORKER-PANIC", "panic {k}");
        assert_eq!(failure.exit_code(), 4);
    }

    // The breaker is now open: even a healthy request is rejected fast.
    let resp = client
        .request(&healthy_optimize("rejected"))
        .expect("transport");
    let failure = resp.outcome.expect_err("open breaker rejects");
    assert_eq!(failure.code, "RES-CIRCUIT-OPEN");
    assert_eq!(failure.class, ErrorClass::Resource);

    // Liveness probes bypass the breaker.
    assert!(
        ping(&client, "bypass").outcome.is_ok(),
        "ping must bypass the breaker"
    );

    // After the cooldown, the next request is the half-open probe; it
    // succeeds and closes the breaker for everyone.
    std::thread::sleep(Duration::from_millis(200));
    let resp = client
        .request(&healthy_optimize("probe"))
        .expect("transport");
    assert!(
        resp.outcome.is_ok(),
        "probe closes the breaker: {:?}",
        resp.outcome
    );
    assert_serviceable(&client, "breaker");
    server.shutdown();
}

#[test]
fn overload_is_shed_with_res_overload_not_queued() {
    let mut config = chaos_config();
    config.max_inflight = 1;
    config.jobs = Some(1);
    let server = start(config).expect("server starts");
    let addr = server.addr().to_string();

    // One slow filler occupies the only admission slot...
    let filler = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let client = Client::new(addr);
            let req = WireRequest {
                fault: Some("slow-sweep".to_string()),
                ..WireRequest::new(
                    "filler",
                    WireOp::Sweep {
                        design: "chemical".to_string(),
                        max_i: 30,
                    },
                )
            };
            client.request(&req).expect("transport")
        }
    });
    std::thread::sleep(Duration::from_millis(150)); // filler is admitted and sweeping

    // ... so an impatient client (retries disabled) is shed immediately.
    let impatient = Client::with_policy(
        addr.clone(),
        RetryPolicy {
            max_attempts: 1,
            retry_overload: false,
            ..RetryPolicy::default()
        },
    );
    let resp = impatient
        .request(&healthy_optimize("shed"))
        .expect("transport");
    let failure = resp.outcome.expect_err("must be shed");
    assert_eq!(failure.code, "RES-OVERLOAD");
    assert_eq!(failure.class, ErrorClass::Resource);

    // A patient client with backoff+jitter rides out the overload window.
    let patient = Client::with_policy(
        addr,
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(60),
            max_backoff: Duration::from_millis(400),
            retry_overload: true,
            ..RetryPolicy::default()
        },
    );
    let resp = patient
        .request(&healthy_optimize("patient"))
        .expect("transport");
    assert!(
        resp.outcome.is_ok(),
        "retry-with-backoff must eventually land: {:?}",
        resp.outcome
    );

    assert!(filler.join().expect("filler thread").outcome.is_ok());
    let stats = server.shutdown();
    assert!(stats.shed >= 1, "the shed counter must record the overload");
}

#[test]
fn conn_drop_injection_closes_without_response_and_server_survives() {
    let server = start(chaos_config()).expect("server starts");

    let mut req = WireRequest::new("dropme", WireOp::Ping);
    req.fault = Some("conn-drop".to_string());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(req.render_line().as_bytes())
        .expect("write");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read");
    assert!(
        buf.is_empty(),
        "conn-drop must close without a response, got {buf:?}"
    );

    assert_serviceable(&fast_client(&server), "conn-drop");
    server.shutdown();
}

#[test]
fn client_retry_with_backoff_recovers_from_a_dropped_connection() {
    // A hand-rolled flaky server: drops the first connection mid-request,
    // answers the second — the client's retry loop must bridge the gap.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        // Connection 1: read a little, then slam the door.
        let (mut c1, _) = listener.accept().expect("accept 1");
        let mut scratch = [0u8; 8];
        let _ = c1.read(&mut scratch);
        drop(c1);
        // Connection 2: answer properly.
        let (c2, _) = listener.accept().expect("accept 2");
        let mut reader = BufReader::new(c2.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read request");
        let req = WireRequest::parse(&line).expect("valid request");
        let resp = WireResponse::ok(req.id, Json::obj([("pong", Json::Bool(true))]));
        let mut c2 = c2;
        c2.write_all(resp.render_line().as_bytes())
            .expect("write response");
    });

    let client = Client::with_policy(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            ..RetryPolicy::default()
        },
    );
    let resp = client
        .request(&WireRequest::new("retry", WireOp::Ping))
        .expect("retry bridges");
    assert!(resp.outcome.is_ok());
    fake.join().expect("fake server");
}

#[test]
fn shutdown_drains_inflight_requests_and_rejects_new_work() {
    let server = start(chaos_config()).expect("server starts");
    let addr = server.addr().to_string();

    // A slow in-flight request that must be allowed to finish.
    let inflight = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let client = Client::new(addr);
            let req = WireRequest {
                fault: Some("slow-sweep".to_string()),
                ..WireRequest::new(
                    "inflight",
                    WireOp::Sweep {
                        design: "chemical".to_string(),
                        max_i: 20,
                    },
                )
            };
            client.request(&req).expect("transport")
        }
    });
    std::thread::sleep(Duration::from_millis(120)); // definitely executing

    let started = Instant::now();
    let stats = server.shutdown(); // blocks until the drain completes
    let drained_in = started.elapsed();

    // The in-flight sweep completed with a real result, not an error.
    let resp = inflight.join().expect("in-flight thread");
    let result = resp
        .outcome
        .expect("in-flight request must complete during drain");
    assert_eq!(
        result.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
        Some(21),
        "full sweep delivered"
    );
    assert!(stats.requests_ok >= 1);
    assert!(
        drained_in < Duration::from_secs(5),
        "drain is bounded, took {drained_in:?}"
    );

    // After the drain, the server is gone: new work cannot land.
    let late = Client::with_policy(
        addr,
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
    );
    match late.request(&WireRequest::new("late", WireOp::Ping)) {
        Err(_) => {} // connection refused — listener closed
        Ok(resp) => {
            let failure = resp.outcome.expect_err("a drained server takes no work");
            assert_eq!(failure.code, "RES-SHUTDOWN");
        }
    }
}

#[test]
fn every_documented_serve_code_appears_in_the_diag_registry() {
    // The codes this suite asserts over the wire must all be documented
    // pipeline codes — chaos coverage and the registry cannot drift.
    let registry = lintra::diag::documented_codes();
    for code in [
        "VAL-MALFORMED-REQUEST",
        "VAL-CONFIG",
        "RES-OVERLOAD",
        "RES-DEADLINE",
        "RES-WORKER-STALL",
        "RES-WORKER-PANIC",
        "RES-CIRCUIT-OPEN",
        "RES-SHUTDOWN",
        "RES-CANCELLED",
    ] {
        assert!(
            registry.iter().any(|(c, _)| *c == code),
            "{code} is asserted by chaos tests but missing from documented_codes()"
        );
    }
}

//! End-to-end integration tests: the full optimization flows on the real
//! benchmark suite, checking the paper's qualitative results hold.

use lintra::opt::multi::ProcessorSelection;
use lintra::opt::{asic, multi, single, TechConfig};
use lintra::suite::{by_name, suite};

#[test]
fn table2_shape_single_processor() {
    // Qualitative content of Table 2: every design is at least as good as
    // doing nothing, dense designs match the dense analysis, `dist` gets
    // nothing, and the suite average is a meaningful reduction.
    let tech = TechConfig::dac96(3.3);
    let mut reductions = Vec::new();
    for d in suite() {
        let r = single::optimize(&d.system, &tech).unwrap();
        assert!(
            r.real.power_reduction() >= 1.0 - 1e-9,
            "{} regressed",
            d.name
        );
        assert!(
            r.real.speedup <= r.dense.speedup + 1e-9 || !d.dense,
            "{}: sparse system cannot beat its own dense bound this way",
            d.name
        );
        if d.dense {
            assert_eq!(r.real.unfolding, r.dense.unfolding, "{}", d.name);
        }
        reductions.push(r.real.power_reduction());
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(avg > 1.5, "Table 2 average reduction {avg}");
    // dist: exactly no reduction.
    let dist = single::optimize(&by_name("dist").unwrap().system, &tech).unwrap();
    assert!((dist.real.power_reduction() - 1.0).abs() < 1e-9);
}

#[test]
fn table2_is_better_at_5v_than_3v() {
    // The paper: average x2 at 3.3 V, x3 at 5.0 V (bigger headroom above
    // the voltage floor).
    let suite_avg = |v: f64| {
        let tech = TechConfig::dac96(v);
        let r: Vec<f64> = suite()
            .iter()
            .map(|d| {
                single::optimize(&d.system, &tech)
                    .unwrap()
                    .real
                    .power_reduction()
            })
            .collect();
        r.iter().sum::<f64>() / r.len() as f64
    };
    assert!(suite_avg(5.0) > suite_avg(3.3));
}

#[test]
fn table3_shape_multiprocessor_beats_single() {
    // Table 3 vs Table 2: with N = R processors the reductions are larger
    // (on every design that unfolds at all), and the suite average is well
    // above the single-processor average.
    let tech = TechConfig::dac96(3.3);
    let mut single_avg = 0.0;
    let mut multi_avg = 0.0;
    for d in suite() {
        let s = single::optimize(&d.system, &tech)
            .unwrap()
            .real
            .power_reduction();
        let m = multi::optimize(&d.system, &tech, ProcessorSelection::StatesCount)
            .unwrap()
            .power_reduction();
        single_avg += s;
        multi_avg += m;
    }
    single_avg /= suite().len() as f64;
    multi_avg /= suite().len() as f64;
    assert!(
        multi_avg > single_avg,
        "multiprocessor average {multi_avg} should beat single {single_avg}"
    );
}

#[test]
fn table4_shape_asic_improvements() {
    // Table 4: improvement factors per design, large average and median,
    // conservatively clamped at the 1.1 V floor.
    let tech = TechConfig::dac96(5.0);
    let cfg = asic::AsicConfig::default();
    let mut factors: Vec<f64> = suite()
        .iter()
        .map(|d| {
            let r = asic::optimize(&d.system, &tech, &cfg).unwrap();
            assert!(r.voltage >= 1.1 - 1e-9, "{} below floor", d.name);
            r.improvement()
        })
        .collect();
    factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let avg = factors.iter().sum::<f64>() / factors.len() as f64;
    let median = factors[factors.len() / 2];
    assert!(avg > 10.0, "average {avg}");
    assert!(median > 10.0, "median {median}");
    // ASIC beats both processor-based strategies by a wide margin.
    let single_best = suite()
        .iter()
        .map(|d| {
            single::optimize(&d.system, &tech)
                .unwrap()
                .real
                .power_reduction()
        })
        .fold(0.0, f64::max);
    assert!(avg > single_best);
}

#[test]
fn all_strategies_agree_on_problem_dimensions() {
    for d in suite() {
        let tech = TechConfig::dac96(3.3);
        let s = single::optimize(&d.system, &tech).unwrap();
        assert_eq!(s.dims, d.dims(), "{}", d.name);
        let m = multi::optimize(&d.system, &tech, ProcessorSelection::StatesCount).unwrap();
        assert_eq!(m.processors, d.dims().2, "{}", d.name);
    }
}

//! Shutdown-during-recovery gate (own test binary: the shutdown flag is
//! sticky process-wide state, so this test cannot share a process with
//! any other).
//!
//! A server restarted under a large replay backlog must honor
//! SIGTERM/SIGINT *during* the replay: the loop aborts at the next
//! record boundary and the process exits cleanly instead of grinding
//! through the whole backlog first.

#![allow(clippy::expect_used)] // tests: a failed precondition should abort loudly

use std::time::Duration;

use lintra_bench::wire::{WireOp, WireRequest};
use lintra_serve::{signal, start, Journal, RecordKind, ServerConfig};

#[test]
fn shutdown_requested_during_recovery_aborts_the_replay_at_a_record_boundary() {
    let dir = std::env::temp_dir().join(format!("lintra-sigreplay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A journal full of orphaned admits — the worst-case replay backlog.
    {
        let (mut journal, _) = Journal::open_dir(&dir).expect("open journal");
        for i in 0..16 {
            let rid = format!("backlog-{i}");
            let line = WireRequest::new(
                format!("corr-{i}"),
                WireOp::Sweep {
                    design: "chemical".to_string(),
                    max_i: 40,
                },
            )
            .with_request_id(&rid)
            .render_line();
            journal
                .append(RecordKind::Admit, &rid, line.trim_end())
                .expect("append admit");
        }
    }

    // The operator's SIGTERM lands before (or during) the replay; the
    // flag is sticky, so raising it up front is the deterministic
    // equivalent of a signal arriving mid-loop.
    signal::request_shutdown();

    let started = std::time::Instant::now();
    let server = start(ServerConfig {
        jobs: Some(2),
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("startup still succeeds");
    let rec = server.recovery().expect("durable server").clone();
    assert_eq!(
        rec.replayed, 0,
        "the replay aborted at the first record boundary: {rec:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "an aborted replay must not grind through the backlog"
    );
    // The admits stay orphaned (not settled, not lost): a later restart
    // without the signal replays them. Shutdown drains immediately.
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

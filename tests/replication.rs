//! Replication integration tests: WAL shipping, deterministic chaos
//! (link drop, lagging follower, stale epoch), arbitration, promotion,
//! and the failover-aware client — the in-process half of the failover
//! gate (`scripts/failover.sh` drives the same contract through real
//! `kill -9`ed processes).
//!
//! The contract under test (ISSUE 6):
//!
//! * a follower's journal converges to a **byte-identical** copy of the
//!   primary's, CRC-verified and fsync'd before each ack;
//! * lower epochs are always refused (`RES-STALE-EPOCH`) and a deposed
//!   primary fences itself — no split brain;
//! * promotion replays unsettled records before taking writes, so a
//!   retried `request_id` settled before the failover is answered
//!   byte-identically with zero recompute;
//! * the client walks its endpoint list past dead and non-primary
//!   replicas without burning backoff sleeps on redirects.

#![allow(clippy::expect_used)] // tests: a failed precondition should abort loudly

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lintra_bench::wire::{WireOp, WireRequest, WireResponse};
use lintra_serve::journal::{payload_bytes, JOURNAL_FILE};
use lintra_serve::replicate::store_epoch;
use lintra_serve::{
    load_epoch_state, query_status, start, Client, RecordKind, ReplChaos, ReplMsg, ServerConfig,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lintra-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Replication-friendly durable config: fast heartbeats and a short
/// failover grace so tests settle quickly, but all timing-dependent
/// assertions still go through [`wait_until`], never bare sleeps.
fn repl_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        jobs: Some(2),
        journal_dir: Some(dir.to_path_buf()),
        default_deadline: Duration::from_secs(10),
        heartbeat: Duration::from_millis(50),
        failover_grace: Duration::from_millis(400),
        ..ServerConfig::default()
    }
}

fn follower_config(dir: &Path, primary: &str) -> ServerConfig {
    ServerConfig {
        replica_of: Some(primary.to_string()),
        ..repl_config(dir)
    }
}

fn wait_until(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if ready() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

/// Sends one raw line and returns the raw response line (no trailing
/// newline) — raw so byte-identity can be asserted.
fn raw_request(addr: &str, line: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(line.as_bytes()).expect("write");
    if !line.ends_with('\n') {
        s.write_all(b"\n").expect("write newline");
    }
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => panic!("read: {e}"),
        }
    }
    String::from_utf8(buf).expect("utf8 response")
}

fn keyed_sweep(id: &str, rid: &str, max_i: u32) -> String {
    WireRequest::new(
        id,
        WireOp::Sweep {
            design: "chemical".to_string(),
            max_i,
        },
    )
    .with_request_id(rid)
    .render_line()
}

fn journal_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join(JOURNAL_FILE)).expect("journal exists")
}

/// An address nothing listens on (bound once, then released).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

#[test]
fn follower_converges_to_a_byte_identical_journal_and_redirects_compute() {
    let (pdir, fdir) = (temp_dir("basic-p"), temp_dir("basic-f"));
    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");
    let faddr = follower.addr().to_string();

    let resp = raw_request(&paddr, &keyed_sweep("corr-1", "repl-basic-1", 8));
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());

    let want = primary.role_info().expect("replicated").seq;
    assert!(want >= 2, "admit + done journaled");
    wait_until("follower catch-up", || {
        query_status(&faddr, Duration::from_millis(250)).is_some_and(|st| st.seq >= want)
    });
    assert_eq!(
        journal_bytes(&fdir),
        journal_bytes(&pdir),
        "acked follower journal is byte-identical"
    );

    // The follower answers status and pings but redirects compute.
    let st = query_status(&faddr, Duration::from_millis(250)).expect("status");
    assert_eq!(st.role, "follower");
    assert_eq!(st.answered, 1, "settled key visible on the replica: {st:?}");
    assert_eq!(st.primary.as_deref(), Some(paddr.as_str()));
    let ping = raw_request(&faddr, "{\"id\":\"p\",\"op\":\"ping\"}");
    assert!(WireResponse::parse(&ping)
        .expect("parseable")
        .outcome
        .is_ok());
    let compute = raw_request(&faddr, &keyed_sweep("corr-2", "repl-basic-2", 4));
    let failure = WireResponse::parse(&compute)
        .expect("parseable")
        .outcome
        .expect_err("replicas reject compute");
    assert_eq!(failure.code, "RES-NOT-PRIMARY");
    assert!(
        failure.message.contains(&paddr),
        "redirect names the primary: {}",
        failure.message
    );

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn dropped_link_resyncs_from_the_acked_prefix() {
    let (pdir, fdir) = (temp_dir("drop-p"), temp_dir("drop-f"));
    // Fault::ReplLinkDrop, deterministically: the primary tears one
    // follower connection down after two records.
    let primary = start(ServerConfig {
        repl_chaos: Some(ReplChaos {
            drop_link_after: Some(2),
            lag: None,
        }),
        ..repl_config(&pdir)
    })
    .expect("primary");
    let paddr = primary.addr().to_string();
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");
    let faddr = follower.addr().to_string();

    for (rid, max_i) in [("drop-key-1", 6), ("drop-key-2", 7)] {
        let resp = raw_request(&paddr, &keyed_sweep(rid, rid, max_i));
        assert!(WireResponse::parse(&resp)
            .expect("parseable")
            .outcome
            .is_ok());
    }
    let want = primary.role_info().expect("replicated").seq;
    assert_eq!(want, 4, "two sweeps, four records");
    wait_until("resync past the injected drop", || {
        query_status(&faddr, Duration::from_millis(250)).is_some_and(|st| st.seq >= want)
    });
    assert_eq!(
        journal_bytes(&fdir),
        journal_bytes(&pdir),
        "no record lost or duplicated across the drop"
    );

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn lagging_follower_never_slows_the_primary_and_catches_up() {
    let (pdir, fdir) = (temp_dir("lag-p"), temp_dir("lag-f"));
    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    // Fault::LaggingFollower: the follower stalls half a second before
    // acking record 2 (the first sweep's completion). The failover grace
    // sits above the worst-case stall — the operator contract — so the
    // lag must not read as primary death.
    let follower = start(ServerConfig {
        repl_chaos: Some(ReplChaos {
            drop_link_after: None,
            lag: Some((2, Duration::from_millis(500))),
        }),
        failover_grace: Duration::from_secs(2),
        ..follower_config(&fdir, &paddr)
    })
    .expect("follower");
    let faddr = follower.addr().to_string();

    let first = raw_request(&paddr, &keyed_sweep("lag-key-1", "lag-key-1", 6));
    assert!(WireResponse::parse(&first)
        .expect("parseable")
        .outcome
        .is_ok());
    // While the follower sits in its injected stall, the primary keeps
    // serving at full speed — replication is not in the write path.
    let t0 = Instant::now();
    let second = raw_request(&paddr, &keyed_sweep("lag-key-2", "lag-key-2", 6));
    assert!(WireResponse::parse(&second)
        .expect("parseable")
        .outcome
        .is_ok());
    assert!(
        t0.elapsed() < Duration::from_millis(450),
        "a lagging follower must not backpressure the primary"
    );

    let want = primary.role_info().expect("replicated").seq;
    wait_until("lagging follower catch-up", || {
        query_status(&faddr, Duration::from_millis(250)).is_some_and(|st| st.seq >= want)
    });
    assert_eq!(
        journal_bytes(&fdir),
        journal_bytes(&pdir),
        "the stall cleared into a byte-identical journal"
    );

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn stale_epoch_primary_fences_itself_and_the_follower_promotes() {
    let (pdir, fdir) = (temp_dir("stale-p"), temp_dir("stale-f"));
    // Fault::StaleEpochPrimary: the follower has already lived through
    // epoch 2 (persisted), so the epoch-1 primary it dials is stale.
    std::fs::create_dir_all(&fdir).expect("mkdir");
    store_epoch(&fdir.join("epoch"), 2).expect("seed epoch");

    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    assert_eq!(primary.role_info().expect("replicated").epoch, 1);
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");

    // The follower's hello carries epoch 2: the primary fences itself on
    // sight and every subsequent request — pings included — is refused.
    wait_until("primary fenced", || {
        primary.role_info().expect("replicated").role == "fenced"
    });
    let ping = raw_request(&paddr, "{\"id\":\"p\",\"op\":\"ping\"}");
    let failure = WireResponse::parse(&ping)
        .expect("parseable")
        .outcome
        .expect_err("fenced servers refuse everything");
    assert_eq!(failure.code, "RES-STALE-EPOCH");
    assert_eq!(failure.exit_code(), 4, "resource-class exit");

    // Having proven its primary stale, the follower arbitrates (no
    // peers → promotes) with an epoch above everything it observed.
    wait_until("follower promoted", || {
        follower
            .role_info()
            .is_some_and(|ri| ri.role == "primary" && ri.epoch >= 3)
    });

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn promotion_serves_retries_from_the_replicated_journal_with_zero_recompute() {
    let (pdir, fdir) = (temp_dir("promote-p"), temp_dir("promote-f"));
    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");
    let faddr = follower.addr().to_string();

    let req = keyed_sweep("corr-p", "promoted-key", 10);
    let first = raw_request(&paddr, &req);
    assert!(WireResponse::parse(&first)
        .expect("parseable")
        .outcome
        .is_ok());
    let want = primary.role_info().expect("replicated").seq;
    wait_until("settled key replicated", || {
        query_status(&faddr, Duration::from_millis(250)).is_some_and(|st| st.seq >= want)
    });

    // The primary goes away; the follower promotes with a higher epoch.
    primary.shutdown();
    wait_until("follower promoted", || {
        follower
            .role_info()
            .is_some_and(|ri| ri.role == "primary" && ri.epoch >= 2)
    });

    // Wait for the cache warmer to go quiet, then prove the retry does
    // not move the caches at all: it is answered from the journal.
    let mut before = follower.cache_stats();
    wait_until("cache warmer quiesced", || {
        std::thread::sleep(Duration::from_millis(60));
        let now = follower.cache_stats();
        let quiet = now == before;
        before = now;
        quiet
    });
    let retry = raw_request(&faddr, &req);
    assert_eq!(
        retry, first,
        "the promoted follower answers the retried key byte-identically"
    );
    assert_eq!(
        follower.cache_stats(),
        before,
        "dedup-served retry recomputes nothing"
    );
    let stats = follower.shutdown();
    assert_eq!(stats.deduped, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn promotion_replays_records_the_old_primary_admitted_but_never_settled() {
    let dir = temp_dir("promote-replay");
    let req = keyed_sweep("corr-u", "unsettled-key", 5);
    {
        // The replicated journal holds an admit with no completion: the
        // primary died mid-request after the admit was shipped and acked.
        let (mut journal, _) = lintra_serve::Journal::open_dir(&dir).expect("open journal");
        journal
            .append(RecordKind::Admit, "unsettled-key", req.trim_end())
            .expect("append admit");
    }

    // A follower of a dead primary: grace expires, it promotes, and the
    // orphaned admit replays *before* it takes client traffic.
    let follower = start(follower_config(&dir, &dead_addr())).expect("follower");
    let faddr = follower.addr().to_string();
    wait_until("promotion with replay", || {
        follower
            .role_info()
            .is_some_and(|ri| ri.role == "primary" && ri.promoted_replayed == 1)
    });
    assert_eq!(follower.stats().replayed, 1);

    // The replay settled the key: the retry dedups.
    let resp = raw_request(&faddr, &req);
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());
    let stats = follower.shutdown();
    assert_eq!(stats.deduped, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_promotion_resolves_to_exactly_one_primary() {
    let (adir, bdir) = (temp_dir("race-a"), temp_dir("race-b"));
    let dead = dead_addr();
    // Two followers of the same dead primary, each naming the other as a
    // peer (addresses reserved up front so both configs can be
    // complete). Both grace timers expire around the same time; the
    // tiebreak (acked seq, then lexicographic address) must leave
    // exactly one primary and the other following it.
    let (a_addr, b_addr) = (dead_addr(), dead_addr());
    let a = start(ServerConfig {
        addr: a_addr.clone(),
        peers: vec![b_addr.clone()],
        ..follower_config(&adir, &dead)
    })
    .expect("follower a");
    let b = start(ServerConfig {
        addr: b_addr.clone(),
        peers: vec![a_addr.clone()],
        ..follower_config(&bdir, &dead)
    })
    .expect("follower b");
    let a_addr = a.addr().to_string();
    let b_addr = b.addr().to_string();

    wait_until("exactly one primary", || {
        let ra = a.role_info().expect("replicated");
        let rb = b.role_info().expect("replicated");
        let primaries = [&ra, &rb].iter().filter(|ri| ri.role == "primary").count();
        let followers: Vec<_> = [&ra, &rb]
            .iter()
            .filter(|ri| ri.role == "follower")
            .map(|ri| ri.primary.clone())
            .collect();
        let winner = if ra.role == "primary" {
            a_addr.as_str()
        } else {
            b_addr.as_str()
        };
        primaries == 1 && followers.len() == 1 && followers[0].as_deref() == Some(winner)
    });
    let winner_epoch = [a.role_info(), b.role_info()]
        .into_iter()
        .flatten()
        .find(|ri| ri.role == "primary")
        .map(|ri| ri.epoch)
        .expect("one primary");
    assert!(winner_epoch >= 2, "promotion bumped the epoch");

    b.shutdown();
    a.shutdown();
    let _ = std::fs::remove_dir_all(&adir);
    let _ = std::fs::remove_dir_all(&bdir);
}

#[test]
fn divergent_follower_is_refused_at_hello_and_never_promotes() {
    let (pdir, fdir) = (temp_dir("diverge-p"), temp_dir("diverge-f"));
    // The primary settles one keyed sweep: two journal records.
    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    let resp = raw_request(&paddr, &keyed_sweep("corr-d", "diverge-key", 6));
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());

    // The follower's journal holds a record the primary never wrote —
    // the shape of a deposed primary with an unreplicated acked suffix
    // rejoined with --replica-of. Resyncing from `have + 1` would
    // silently keep the divergent record forever.
    {
        let (mut journal, _) = lintra_serve::Journal::open_dir(&fdir).expect("open journal");
        journal
            .append(
                RecordKind::Admit,
                "ghost-key",
                "{\"id\":\"g\",\"op\":\"ping\"}",
            )
            .expect("append divergent record");
    }
    let follower = start(ServerConfig {
        failover_grace: Duration::from_millis(300),
        ..follower_config(&fdir, &paddr)
    })
    .expect("follower");

    // The hello's prefix checksum betrays the divergence: the primary
    // refuses with IO-REPL-CORRUPT and the follower parks itself.
    wait_until("divergence detected", || {
        follower.role_info().is_some_and(|ri| ri.diverged)
    });
    // Well past the failover grace, the diverged follower has neither
    // promoted nor resynced: its journal still holds exactly the one
    // divergent record, and the role is still follower.
    std::thread::sleep(Duration::from_millis(900));
    let ri = follower.role_info().expect("replicated");
    assert_eq!(ri.role, "follower", "a diverged journal never promotes");
    assert!(ri.diverged);
    assert_eq!(ri.seq, 1, "no records were shipped to a diverged journal");

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn fencing_is_durable_across_a_restart() {
    let (pdir, fdir) = (temp_dir("refence-p"), temp_dir("refence-f"));
    // A follower that already lived through epoch 2 fences the epoch-1
    // primary on first contact (same setup as the stale-epoch test).
    std::fs::create_dir_all(&fdir).expect("mkdir");
    store_epoch(&fdir.join("epoch"), 2).expect("seed epoch");
    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");
    wait_until("primary fenced", || {
        primary.role_info().expect("replicated").role == "fenced"
    });
    follower.shutdown();
    primary.shutdown();

    // The fence survived: the epoch file records the superseding epoch
    // plus the marker, and a plain restart comes back *fenced* — not
    // primary — so it cannot accept (and later lose) writes.
    let state = load_epoch_state(&pdir.join("epoch")).expect("epoch file readable");
    assert!(state.fenced, "the fence was persisted: {state:?}");
    // The follower fences the primary on first contact (epoch 2) and
    // again after promoting (epoch 3); either way the file carries the
    // highest superseding epoch seen, never the server's own stale 1.
    assert!(state.epoch >= 2, "the superseding epoch was persisted");
    let revived = start(repl_config(&pdir)).expect("revived");
    let ri = revived.role_info().expect("replicated");
    assert_eq!(ri.role, "fenced", "a fenced server restarts fenced");
    let ping = raw_request(
        &revived.addr().to_string(),
        "{\"id\":\"p\",\"op\":\"ping\"}",
    );
    let failure = WireResponse::parse(&ping)
        .expect("parseable")
        .outcome
        .expect_err("still fenced");
    assert_eq!(failure.code, "RES-STALE-EPOCH");
    revived.shutdown();

    // An explicit --replica-of rejoin clears the marker: the operator
    // chose a primary to resync from.
    let surrogate = start(follower_config(&pdir, &dead_addr())).expect("rejoin");
    let state = load_epoch_state(&pdir.join("epoch")).expect("epoch file readable");
    assert!(!state.fenced, "an explicit rejoin clears the fence marker");
    surrogate.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn corrupt_epoch_file_fails_startup_instead_of_resetting() {
    let dir = temp_dir("epoch-garbage");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("epoch"), "not-an-epoch").expect("write");
    let err = start(repl_config(&dir)).expect_err("corrupt epoch file must not start");
    assert_eq!(err.class(), lintra::ErrorClass::Io, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn self_alias_in_the_peer_list_never_blocks_promotion() {
    let dir = temp_dir("self-alias");
    // The operator lists this very server under `0.0.0.0:<port>` — an
    // alias that sorts lexicographically below the bound
    // `127.0.0.1:<port>`, so an address-string tiebreak would defer to
    // it every round and never promote. The status nonce sees through
    // the alias.
    let own = dead_addr();
    let port = own.rsplit(':').next().expect("port");
    let follower = start(ServerConfig {
        addr: own.clone(),
        peers: vec![format!("0.0.0.0:{port}")],
        ..follower_config(&dir, &dead_addr())
    })
    .expect("follower");
    wait_until("promotion past the self-alias", || {
        follower.role_info().is_some_and(|ri| ri.role == "primary")
    });
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn equal_epoch_primaries_resolve_to_exactly_one() {
    let (adir, bdir) = (temp_dir("duel-a"), temp_dir("duel-b"));
    // Promotion epochs are collision-free, so an equal-epoch duel can
    // only be seeded by operator error: both servers hand-seeded into
    // epoch 5 and started as primaries of the same cluster. The guard
    // loops must resolve it deterministically — the lexicographically
    // larger address fences itself.
    for dir in [&adir, &bdir] {
        std::fs::create_dir_all(dir).expect("mkdir");
        store_epoch(&dir.join("epoch"), 5).expect("seed epoch");
    }
    let (a_addr, b_addr) = (dead_addr(), dead_addr());
    let a = start(ServerConfig {
        addr: a_addr.clone(),
        peers: vec![b_addr.clone()],
        ..repl_config(&adir)
    })
    .expect("primary a");
    let b = start(ServerConfig {
        addr: b_addr.clone(),
        peers: vec![a_addr.clone()],
        ..repl_config(&bdir)
    })
    .expect("primary b");
    let loser_first = a.addr().to_string() > b.addr().to_string();
    let (winner, loser) = if loser_first { (&b, &a) } else { (&a, &b) };
    wait_until("the larger address fences itself", || {
        loser.role_info().is_some_and(|ri| ri.role == "fenced")
    });
    assert_eq!(
        winner.role_info().expect("replicated").role,
        "primary",
        "exactly one primary survives the duel"
    );
    b.shutdown();
    a.shutdown();
    let _ = std::fs::remove_dir_all(&adir);
    let _ = std::fs::remove_dir_all(&bdir);
}

#[test]
fn client_walks_the_endpoint_list_past_replicas_and_dead_servers() {
    let (pdir, fdir) = (temp_dir("walk-p"), temp_dir("walk-f"));
    let primary = start(repl_config(&pdir)).expect("primary");
    let paddr = primary.addr().to_string();
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");
    let faddr = follower.addr().to_string();

    // Dead server first, then the follower (which redirects), then the
    // primary: one request walks all three without exhausting retries.
    let client = Client::new(format!("{}, {faddr}, {paddr}", dead_addr()));
    assert_eq!(client.endpoints.len(), 3);
    let resp = client
        .request(&WireRequest::new(
            "walk",
            WireOp::Sweep {
                design: "chemical".to_string(),
                max_i: 4,
            },
        ))
        .expect("the walk reaches the primary");
    assert!(resp.outcome.is_ok(), "{resp:?}");

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// Asymmetric partition from the client's point of view: its first
/// endpoint is a fenced ex-primary (reachable, but only redirects), its
/// second is unreachable, and only the third serves. The walk must
/// converge inside a *single* attempt — redirects and refused connects
/// never burn the retry/backoff budget.
#[test]
fn client_walks_past_a_fenced_ex_primary_within_one_attempt() {
    let (fenced_dir, pdir) = (temp_dir("part-fenced"), temp_dir("part-p"));
    // Seed a durable fence marker so the server starts *fenced*, exactly
    // as a deposed primary restarts after losing an epoch race.
    std::fs::create_dir_all(&fenced_dir).expect("mkdir");
    lintra_serve::store_epoch_state(
        &fenced_dir.join("epoch"),
        lintra_serve::EpochState {
            epoch: 3,
            fenced: true,
        },
    )
    .expect("seed fence");
    let fenced = start(repl_config(&fenced_dir)).expect("fenced server");
    assert_eq!(
        fenced.role_info().expect("replicated").role,
        "fenced",
        "precondition: the first endpoint refuses writes"
    );
    let primary = start(repl_config(&pdir)).expect("primary");

    // max_attempts = 1: success proves the whole walk — redirect,
    // refused connect, answer — fit in one attempt with zero backoff.
    let client = Client::with_policy(
        format!("{}, {}, {}", fenced.addr(), dead_addr(), primary.addr()),
        lintra_serve::RetryPolicy {
            max_attempts: 1,
            ..lintra_serve::RetryPolicy::default()
        },
    );
    let resp = client
        .request(&WireRequest::new("part-walk", WireOp::Ping).with_request_id("part-walk"))
        .expect("the walk converges in one attempt");
    assert!(resp.outcome.is_ok(), "{resp:?}");

    primary.shutdown();
    fenced.shutdown();
    let _ = std::fs::remove_dir_all(&fenced_dir);
    let _ = std::fs::remove_dir_all(&pdir);
}

/// Full partition: every endpoint is unreachable. The client must fail
/// fast with the deadline-classified error once the request's response
/// budget is spent, instead of grinding through the whole exponential
/// backoff schedule.
#[test]
fn fully_partitioned_client_fails_fast_with_deadline_exhausted() {
    let client = Client::with_policy(
        format!("{}, {}", dead_addr(), dead_addr()),
        lintra_serve::RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(2),
            ..lintra_serve::RetryPolicy::default()
        },
    );
    let mut req = WireRequest::new("part-dead", WireOp::Ping).with_request_id("part-dead");
    req.deadline_ms = Some(50); // response budget: 2*50 + 500 = 600 ms

    let started = Instant::now();
    let err = client.request(&req).expect_err("every endpoint is dead");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, lintra_serve::ClientError::DeadlineExhausted { .. }),
        "expected the fast RES-DEADLINE failure, got {err:?}"
    );
    assert_eq!(err.exit_code(), lintra::ErrorClass::Resource.exit_code());
    // The full 10-attempt schedule would sleep for many seconds; the
    // budget cap must stop it well short of that.
    assert!(
        elapsed < Duration::from_secs(3),
        "client ground through the backoff schedule: {elapsed:?}"
    );
}

#[test]
fn corrupt_stream_records_are_refused_never_appended() {
    // This test acts as the *primary*: it accepts the follower's dials
    // and feeds it records by hand, one of them with a poisoned CRC.
    let fdir = temp_dir("corrupt-stream");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake primary");
    let paddr = listener.local_addr().expect("addr").to_string();
    let follower = start(follower_config(&fdir, &paddr)).expect("follower");

    let good_line = "{\"id\":\"x\",\"op\":\"ping\"}";
    let good_crc =
        lintra::engine::snapshot::crc32(&payload_bytes(RecordKind::Admit, "crc-key", good_line));
    let rec = |crc: u32| ReplMsg::Rec {
        epoch: 1,
        seq: 1,
        crc,
        kind: RecordKind::Admit,
        rid: "crc-key".to_string(),
        line: good_line.to_string(),
    };

    let read_reply = |stream: &mut TcpStream| -> Option<ReplMsg> {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) => return None,
                Ok(_) if byte[0] == b'\n' => break,
                Ok(_) => buf.push(byte[0]),
                Err(e) => panic!("read: {e}"),
            }
        }
        ReplMsg::parse(String::from_utf8_lossy(&buf).trim_end())
    };

    // First dial: hello, then a record whose CRC does not match.
    let (mut conn, _) = listener.accept().expect("follower dials");
    assert!(matches!(
        read_reply(&mut conn),
        Some(ReplMsg::Hello { have: 0, .. })
    ));
    conn.write_all(rec(good_crc ^ 0xFFFF).render_line().as_bytes())
        .expect("send poisoned record");
    match read_reply(&mut conn).expect("refusal comes back") {
        ReplMsg::Err { code, .. } => assert_eq!(code, "IO-REPL-CORRUPT"),
        other => panic!("expected IO-REPL-CORRUPT, got {other:?}"),
    }
    drop(conn);

    // The poisoned record was never appended: the reconnect still says
    // `have: 0`, and this time the valid CRC is acked and made durable.
    let (mut conn, _) = listener.accept().expect("follower redials");
    assert!(matches!(
        read_reply(&mut conn),
        Some(ReplMsg::Hello { have: 0, .. })
    ));
    conn.write_all(rec(good_crc).render_line().as_bytes())
        .expect("send valid record");
    assert!(matches!(
        read_reply(&mut conn),
        Some(ReplMsg::Ack { seq: 1 })
    ));
    let ri = follower.role_info().expect("replicated");
    assert_eq!(ri.seq, 1, "exactly the verified record is durable");

    drop(conn);
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&fdir);
}

//! Differential harness: the equality-saturation strategy against the
//! fixed §5 transformation script, on the full Table 2–4 design suite.
//!
//! Three contracts are frozen here:
//!
//! 1. **Never worse** — for every suite design, the energy of the
//!    extracted realization under the unified cost model is at most the
//!    fixed script's energy, at the script's own operating point.
//! 2. **Reachability** — the §5 script's shift-add realization is
//!    *derivable*: loading only the pre-MCM Horner graph and saturating
//!    with the ASIC rule tier grows an e-graph in which the script's own
//!    output graph lands in the very same root e-classes (checked by
//!    adding the script graph *without* any explicit union).
//! 3. **Cost-model parity** — the [`CostModel`] trait reproduces the
//!    pre-refactor formulas (operation census, weighted cycles, critical
//!    path, energy-per-sample) exactly, so `tests/paper_claims.rs`
//!    freezes the same numbers through either interface.

use lintra::dfg::{build, CostModel, CriticalPathCost, CycleCost, OpCountCost, OpTiming};
use lintra::egraph::{EGraph, RuleSet, SaturationBudget};
use lintra::opt::{asic, saturate, TechConfig};
use lintra::suite::suite;
use lintra::transform::horner::HornerForm;
use lintra::transform::mcm_pass::{expand_multiplications, McmPassConfig};

/// 1. Never worse: the search's winner costs no more than the fixed
///    script for every design, while inheriting the script's operating
///    point (same unfolding depth, same voltage, same initial baseline).
#[test]
fn extracted_cost_never_exceeds_the_fixed_script() {
    let tech = TechConfig::dac96(3.3);
    let asic_cfg = asic::AsicConfig::default();
    let sat_cfg = saturate::SaturateConfig::default();
    for d in suite() {
        let script = asic::optimize(&d.system, &tech, &asic_cfg).unwrap();
        let searched = saturate::optimize(&d.system, &tech, &sat_cfg).unwrap();
        assert_eq!(searched.unfolding, script.unfolding, "{}", d.name);
        assert_eq!(searched.voltage, script.voltage, "{}", d.name);
        assert_eq!(searched.initial, script.initial, "{}", d.name);
        assert_eq!(searched.script, script.optimized, "{}", d.name);
        assert!(
            searched.optimized.total_j() <= script.optimized.total_j() * (1.0 + 1e-12),
            "{}: extracted {} J beats... loses to script {} J",
            d.name,
            searched.optimized.total_j(),
            script.optimized.total_j()
        );
        assert!(
            searched.vs_script() >= 1.0 - 1e-12,
            "{}: vs_script {}",
            d.name,
            searched.vs_script()
        );
    }
}

/// 2. Reachability: saturate the pre-MCM Horner graph alone, then add
///    the script's own shift-add graph with **no** union — hashconsing,
///    congruence, and the rule library must place the script's outputs in
///    the same e-classes the rules already grew. The bridge is
///    `collect-linear`: the first saturation decomposes every multiplier
///    (`csd-decompose`, `mcm-share`) and collapses the grown chains onto
///    exact-dyadic `MulConst(q·2⁻ʷ, base)` hubs; the injected script
///    chains compute the very same multiples of the very same base
///    classes, so the post-add sweep collapses them onto the *same* hubs —
///    whatever grouping or association the script's shared networks chose —
///    and congruence closes everything above the multipliers.
#[test]
fn script_realization_is_reachable_in_the_saturated_egraph() {
    let tech = TechConfig::dac96(3.3);
    let cfg = asic::AsicConfig::default();
    for d in suite() {
        let script = asic::optimize(&d.system, &tech, &cfg).unwrap();
        let horner = HornerForm::new(&d.system, script.unfolding)
            .unwrap()
            .to_dfg()
            .unwrap();
        let (shifted, _) = expand_multiplications(
            &horner,
            McmPassConfig {
                frac_bits: cfg.frac_bits,
                recoding: cfg.recoding,
            },
        )
        .unwrap();

        let (mut eg, roots) = EGraph::from_dfg(&horner).unwrap();
        let rules = RuleSet::asic(cfg.frac_bits, cfg.recoding);
        let budget = SaturationBudget {
            max_enodes: 400_000,
            max_iterations: 1,
        };
        eg.saturate(&rules, &budget);
        let script_roots = eg.add_dfg(&shifted).unwrap();
        // No union: one more sweep collapses the injected chains onto
        // the hubs the first saturation grew.
        eg.saturate(&rules, &budget);

        for ((key, a), (key2, b)) in roots.outputs.iter().zip(&script_roots.outputs) {
            assert_eq!(key, key2, "{}: output order differs", d.name);
            assert_eq!(
                eg.find(*a),
                eg.find(*b),
                "{}: script output {key:?} is not reachable from the Horner graph",
                d.name
            );
        }
        for ((idx, a), (idx2, b)) in roots.states.iter().zip(&script_roots.states) {
            assert_eq!(idx, idx2, "{}: state order differs", d.name);
            assert_eq!(
                eg.find(*a),
                eg.find(*b),
                "{}: script state {idx} is not reachable from the Horner graph",
                d.name
            );
        }
    }
}

/// 3a. Cost-model parity: census-style models reproduce the raw-count
/// formulas exactly (not approximately — these are the numbers
/// `tests/paper_claims.rs` freezes).
#[test]
fn cost_models_reproduce_the_legacy_census_formulas() {
    for d in suite() {
        let g = build::from_state_space(&d.system).unwrap();
        let c = g.op_counts();

        // Operation count: one per add/sub/mul/shift, summed muls-first.
        let legacy_ops = (c.muls + c.adds + c.shifts) as f64;
        assert_eq!(OpCountCost.graph_cost(&g), legacy_ops, "{}", d.name);

        // Weighted cycles: shifts are free (hardwired), Horner's
        // mul/add weighting otherwise.
        let cyc = CycleCost {
            w_mul: 2.0,
            w_add: 1.0,
        };
        let legacy_cycles = 2.0 * c.muls as f64 + c.adds as f64;
        assert_eq!(cyc.graph_cost(&g), legacy_cycles, "{}", d.name);

        // Critical path: the model must delegate to the graph's own
        // longest-path computation bit-for-bit.
        let timing = OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        let cp = CriticalPathCost { timing };
        assert_eq!(cp.graph_cost(&g), g.critical_path(&timing), "{}", d.name);
    }
}

/// 3b. Cost-model parity: the energy model behind the trait is the same
/// `energy_per_sample` the pre-refactor optimizers called — the full
/// breakdown (not just the total) must be bit-identical at several
/// voltages.
#[test]
fn energy_cost_model_matches_legacy_energy_per_sample() {
    let tech = TechConfig::dac96(5.0);
    for d in suite() {
        let g = build::from_state_space(&d.system).unwrap();
        let c = g.op_counts();
        let (p, q, r) = d.dims();
        let regs = (r + p + q) as u64;
        for v in [1.1, 2.5, 3.3, 5.0] {
            let model = tech.energy_cost(v);
            let counts = lintra::dfg::OpCounts { delays: regs, ..c };
            let via_trait = model.breakdown(&counts);
            let legacy =
                tech.energy
                    .energy_per_sample(counts.adds, counts.muls, counts.shifts, regs, v);
            assert_eq!(via_trait, legacy, "{} at {v} V", d.name);
            assert_eq!(model.census_cost(&counts), legacy.total_j());
        }
    }
}

/// The winning realization's energy is reproducible from the public
/// pieces: re-running the strategy is deterministic, and the reported
/// improvement factors are self-consistent.
#[test]
fn strategy_results_are_deterministic_and_self_consistent() {
    let tech = TechConfig::dac96(3.3);
    let cfg = saturate::SaturateConfig::default();
    for name in ["dist", "iir5", "chemical"] {
        let d = lintra::suite::by_name(name).unwrap();
        let a = saturate::optimize(&d.system, &tech, &cfg).unwrap();
        let b = saturate::optimize(&d.system, &tech, &cfg).unwrap();
        assert_eq!(a, b, "{name}: strategy must be deterministic");
        let imp = a.initial.total_j() / a.optimized.total_j();
        assert!((a.improvement() - imp).abs() < 1e-12);
        let vs = a.script.total_j() / a.optimized.total_j();
        assert!((a.vs_script() - vs).abs() < 1e-12);
    }
}

//! Semantic-equivalence integration tests: every transformation in the
//! repertoire must preserve the input/output behaviour of every suite
//! design.

use lintra::dfg::build;
use lintra::linsys::unfold;
use lintra::suite::{stimulus, suite};
use lintra::transform::cse;
use lintra::transform::horner::HornerForm;
use lintra::transform::mcm_pass::{expand_multiplications, McmPassConfig};
use std::collections::HashMap;

/// Simulates a per-batch dataflow graph over a sample stream.
fn run_graph(
    g: &lintra::dfg::Dfg,
    batch: usize,
    _p: usize,
    q: usize,
    r: usize,
    inputs: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let mut state = vec![0.0; r];
    let mut out = Vec::new();
    for chunk in inputs.chunks(batch) {
        let mut m = HashMap::new();
        for (s, x) in chunk.iter().enumerate() {
            for (c, &v) in x.iter().enumerate() {
                m.insert((s, c), v);
            }
        }
        let (outs, next) = g.simulate(&state, &m).unwrap();
        for s in 0..batch {
            out.push((0..q).map(|c| outs[&(s, c)]).collect());
        }
        state = (0..r).map(|i| next[&i]).collect();
    }
    out
}

fn max_err(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(u, v)| (u - v).abs()))
        .fold(0.0, f64::max)
}

#[test]
fn unfolding_preserves_every_design() {
    for d in suite() {
        let (p, _, _) = d.dims();
        let input = stimulus(p, 60, 7);
        let want = d.system.simulate(&input).unwrap();
        for i in [1u32, 2, 4] {
            let u = unfold(&d.system, i).unwrap();
            let n = u.batch();
            let take = input.len() / n * n;
            let got = u.simulate_samples(&input[..take]).unwrap();
            let err = max_err(&want[..take], &got);
            assert!(err < 1e-8, "{} i={i}: err {err}", d.name);
        }
    }
}

#[test]
fn maximally_fast_graphs_preserve_every_design() {
    for d in suite() {
        let (p, q, r) = d.dims();
        let input = stimulus(p, 30, 11);
        let want = d.system.simulate(&input).unwrap();
        let g = build::from_state_space(&d.system).unwrap();
        let got = run_graph(&g, 1, p, q, r, &input);
        let err = max_err(&want, &got);
        assert!(err < 1e-9, "{}: err {err}", d.name);
    }
}

#[test]
fn horner_graphs_preserve_every_design() {
    for d in suite() {
        let (p, q, r) = d.dims();
        let i = 3u32;
        let h = HornerForm::new(&d.system, i).unwrap();
        let g = h.to_dfg().unwrap();
        let n = h.batch;
        let input = stimulus(p, 10 * n, 13);
        let want = d.system.simulate(&input).unwrap();
        let got = run_graph(&g, n, p, q, r, &input);
        let err = max_err(&want, &got);
        assert!(err < 1e-8, "{}: err {err}", d.name);
    }
}

#[test]
fn mcm_rewrite_stays_within_quantization_error() {
    for d in suite() {
        let (p, q, r) = d.dims();
        let g = build::from_state_space(&d.system).unwrap();
        let (rewritten, report) = expand_multiplications(
            &g,
            McmPassConfig {
                frac_bits: 20,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rewritten.op_counts().muls, 0, "{}", d.name);
        assert!(report.muls_removed > 0, "{}", d.name);
        let input = stimulus(p, 40, 17);
        let want = run_graph(&g, 1, p, q, r, &input);
        let got = run_graph(&rewritten, 1, p, q, r, &input);
        // 20 fractional bits; the recursion amplifies coefficient error by
        // roughly the filter's Q, so the bound is loose for the high-Q
        // band-pass designs.
        let err = max_err(&want, &got);
        assert!(err < 5e-3, "{}: err {err}", d.name);
    }
}

#[test]
fn cse_preserves_semantics_on_every_design() {
    for d in suite() {
        let (p, q, r) = d.dims();
        let g = build::from_unfolded(&unfold(&d.system, 2).unwrap()).unwrap();
        let (reduced, _) = cse::eliminate(&g).unwrap();
        assert!(reduced.len() <= g.len());
        let input = stimulus(p, 12, 19);
        let want = run_graph(&g, 3, p, q, r, &input);
        let got = run_graph(&reduced, 3, p, q, r, &input);
        let err = max_err(&want, &got);
        assert!(err < 1e-12, "{}: err {err}", d.name);
    }
}

#[test]
fn transform_composition_unfold_horner_mcm() {
    // The full §5 pipeline at once, checked against plain simulation.
    for d in suite() {
        let (p, q, r) = d.dims();
        let h = HornerForm::new(&d.system, 4).unwrap();
        let g = h.to_dfg().unwrap();
        let (rewritten, _) = expand_multiplications(
            &g,
            McmPassConfig {
                frac_bits: 22,
                ..Default::default()
            },
        )
        .unwrap();
        let n = h.batch;
        let input = stimulus(p, 8 * n, 23);
        let want = d.system.simulate(&input).unwrap();
        let got = run_graph(&rewritten, n, p, q, r, &input);
        let err = max_err(&want, &got);
        assert!(err < 5e-3, "{}: err {err}", d.name);
    }
}

//! Property-based tests (proptest) on the core invariants.

use lintra::linsys::count::{
    dense_adds, dense_iopt, dense_muls, dense_op_count, op_count, TrivialityRule,
};
use lintra::linsys::unfold;
use lintra::mcm::{naive_cost, synthesize, Recoding};
use lintra::power::VoltageModel;
use lintra::suite::{random_stable, stimulus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MCM always computes the right constants and never beats the naive
    /// decomposition in the wrong direction.
    #[test]
    fn mcm_correct_and_no_worse_than_naive(
        constants in proptest::collection::vec(-4096i64..4096, 1..12),
        csd in any::<bool>(),
    ) {
        let recoding = if csd { Recoding::Csd } else { Recoding::Binary };
        let sol = synthesize(&constants, recoding);
        prop_assert!(sol.verify().is_ok(), "plan wrong for {constants:?}:\n{sol}");
        prop_assert!(sol.adds() <= naive_cost(&constants, recoding).adds);
    }

    /// Unfolded batch simulation is sample-exact with the original system.
    #[test]
    fn unfolding_equivalence(
        seed in 0u64..1000,
        p in 1usize..3,
        q in 1usize..3,
        r in 1usize..6,
        i in 0u32..6,
        sparsity in 0.0f64..0.8,
    ) {
        let sys = random_stable(p, q, r, sparsity, seed);
        let u = unfold(&sys, i);
        let n = u.batch();
        let input = stimulus(p, 6 * n, seed ^ 0xabcd);
        let want = sys.simulate(&input).unwrap();
        let got = u.simulate_samples(&input).unwrap();
        for (a, b) in want.iter().zip(&got) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-7, "{x} vs {y}");
            }
        }
    }

    /// The empirical count of a structurally dense random system matches
    /// the closed forms at every unfolding.
    #[test]
    fn dense_closed_forms(
        seed in 0u64..500,
        p in 1usize..3,
        q in 1usize..3,
        r in 1usize..5,
        i in 0u64..5,
    ) {
        let sys = random_stable(p, q, r, 0.0, seed);
        let u = unfold(&sys, i as u32);
        let c = op_count(&u.system, TrivialityRule::ZeroOne);
        prop_assert_eq!(c.muls, dense_muls(p as u64, q as u64, r as u64, i));
        prop_assert_eq!(c.adds, dense_adds(p as u64, q as u64, r as u64, i));
    }

    /// The closed-form i_opt is a true minimum of the per-sample count.
    #[test]
    fn iopt_is_global_minimum(
        p in 1u64..4,
        q in 1u64..4,
        r in 1u64..16,
    ) {
        let iopt = dense_iopt(p, q, r, 1.0, 1.0);
        let per = |i: u64| dense_op_count(p, q, r, i).cycles(1.0, 1.0) / (i + 1) as f64;
        let best = per(iopt);
        for i in 0..(3 * iopt + 8) {
            prop_assert!(best <= per(i) + 1e-9, "i={i} beats iopt={iopt}");
        }
    }

    /// Voltage inversion: scale_for_slowdown returns a voltage that
    /// realizes the requested slowdown (or clamps at the floor), and the
    /// power reduction formula is consistent.
    #[test]
    fn voltage_scaling_consistent(
        v0 in 1.5f64..5.0,
        slowdown in 1.0f64..50.0,
    ) {
        let m = VoltageModel::dac96();
        let s = m.scale_for_slowdown(v0, slowdown);
        prop_assert!(s.voltage >= m.v_min() - 1e-12);
        prop_assert!(s.voltage <= v0 + 1e-12);
        if !s.clamped() {
            let achieved = m.slowdown_between(v0, s.voltage);
            prop_assert!((achieved - slowdown).abs() / slowdown < 1e-6);
        }
        let expect = (v0 / s.voltage).powi(2) * slowdown;
        prop_assert!((s.power_reduction() - expect).abs() < 1e-9 * expect);
    }

    /// Simulation linearity: the response to a scaled input is the scaled
    /// response (defining property of a linear system).
    #[test]
    fn simulation_is_linear(
        seed in 0u64..300,
        alpha in -3.0f64..3.0,
    ) {
        let sys = random_stable(2, 2, 4, 0.3, seed);
        let x = stimulus(2, 24, seed ^ 0x55);
        let scaled: Vec<Vec<f64>> = x.iter().map(|v| v.iter().map(|&e| alpha * e).collect()).collect();
        let y = sys.simulate(&x).unwrap();
        let ys = sys.simulate(&scaled).unwrap();
        for (a, b) in y.iter().zip(&ys) {
            for (u, v) in a.iter().zip(b) {
                prop_assert!((alpha * u - v).abs() < 1e-8);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gramians of random stable systems satisfy their Lyapunov equations
    /// and are symmetric.
    #[test]
    fn gramians_satisfy_lyapunov(
        seed in 0u64..200,
        r in 1usize..5,
        sparsity in 0.0f64..0.6,
    ) {
        use lintra::linsys::gramian::{controllability_gramian, solve_discrete_lyapunov};
        let sys = random_stable(1, 1, r, sparsity, seed);
        let wc = controllability_gramian(&sys).unwrap();
        let rhs = &(&(sys.a() * &wc) * &sys.a().transpose()) + &(sys.b() * &sys.b().transpose());
        prop_assert!(wc.approx_eq(&rhs, 1e-8 * (1.0 + wc.max_abs())));
        prop_assert!(wc.approx_eq(&wc.transpose(), 1e-9));
        // Sanity on the solver's shape validation.
        let bad = solve_discrete_lyapunov(sys.a(), &lintra::matrix::Matrix::zeros(r + 1, r + 1));
        prop_assert!(bad.is_err());
    }

    /// Exact QR eigenvalues agree with the norm-based spectral-radius
    /// estimate on random stable systems.
    #[test]
    fn eigen_radius_matches_estimate(
        seed in 0u64..200,
        r in 1usize..6,
    ) {
        use lintra::matrix::{spectral_radius_exact, spectral_radius_estimate};
        let sys = random_stable(1, 1, r, 0.2, seed);
        let exact = spectral_radius_exact(sys.a());
        let est = spectral_radius_estimate(sys.a(), 16).value;
        prop_assert!(exact < 1.0, "stable by construction");
        prop_assert!((exact - est).abs() <= 0.05 * exact.max(0.05), "{exact} vs {est}");
    }

    /// Pipelining never changes simulated values and never lengthens the
    /// feedback path.
    #[test]
    fn pipelining_preserves_values(
        seed in 0u64..100,
        r in 1usize..4,
        levels in 1u32..5,
    ) {
        use lintra::dfg::{build, OpTiming};
        use lintra::transform::pipeline::insert_registers;
        let sys = random_stable(1, 1, r, 0.3, seed);
        let g = build::from_state_space(&sys);
        let t = OpTiming { t_mul: 2.0, t_add: 1.0, t_shift: 0.0 };
        let (h, _) = insert_registers(&g, levels as f64, &t);
        prop_assert!(h.feedback_critical_path(&t) <= g.feedback_critical_path(&t) + 1e-9);
        let mut inputs = std::collections::HashMap::new();
        inputs.insert((0usize, 0usize), 0.7);
        let state = vec![0.3; r];
        let (o1, s1) = g.simulate(&state, &inputs);
        let (o2, s2) = h.simulate(&state, &inputs);
        prop_assert!((o1[&(0, 0)] - o2[&(0, 0)]).abs() < 1e-12);
        for i in 0..r {
            prop_assert!((s1[&i] - s2[&i]).abs() < 1e-12);
        }
    }

    /// The single-constant CSD cost is never better than the exhaustive
    /// adder-graph oracle and never worse than binary recoding.
    #[test]
    fn scm_cost_ordering(c in 1i64..400) {
        use lintra::mcm::csd::single_constant_cost;
        use lintra::mcm::optimal::ScmOracle;
        use std::sync::OnceLock;
        static ORACLE: OnceLock<ScmOracle> = OnceLock::new();
        let oracle = ORACLE.get_or_init(|| ScmOracle::new(3));
        let csd = single_constant_cost(c, Recoding::Csd).adds as u32;
        let bin = single_constant_cost(c, Recoding::Binary).adds as u32;
        prop_assert!(csd <= bin);
        if let Some(opt) = oracle.min_adds(c) {
            prop_assert!(csd >= opt, "CSD {csd} beats the oracle {opt} for {c}");
        }
    }
}

//! Property-style tests on the core invariants, driven by the in-tree
//! deterministic [`SplitMix64`] generator (no external proptest
//! dependency): each test sweeps a seeded family of random cases.

use lintra::linsys::count::{
    dense_adds, dense_iopt, dense_muls, dense_op_count, op_count, TrivialityRule,
};
use lintra::linsys::{unfold, LinsysError};
use lintra::mcm::{naive_cost, synthesize, Recoding};
use lintra::power::{VoltageError, VoltageModel};
use lintra::prelude::SplitMix64;
use lintra::suite::{random_stable, stimulus};

/// MCM always computes the right constants and never beats the naive
/// decomposition in the wrong direction.
#[test]
fn mcm_correct_and_no_worse_than_naive() {
    let mut rng = SplitMix64::new(0x6d636d);
    for _ in 0..64 {
        let n = rng.next_below(11) as usize + 1;
        let constants: Vec<i64> = (0..n).map(|_| rng.range_i64(-4096, 4096)).collect();
        let recoding = if rng.next_bool() {
            Recoding::Csd
        } else {
            Recoding::Binary
        };
        let sol = synthesize(&constants, recoding);
        assert!(sol.verify().is_ok(), "plan wrong for {constants:?}:\n{sol}");
        assert!(sol.adds() <= naive_cost(&constants, recoding).adds);
    }
}

/// Unfolded batch simulation is sample-exact with the original system.
#[test]
fn unfolding_equivalence() {
    let mut rng = SplitMix64::new(0x756e66);
    for _ in 0..64 {
        let seed = rng.next_below(1000);
        let p = rng.next_below(2) as usize + 1;
        let q = rng.next_below(2) as usize + 1;
        let r = rng.next_below(5) as usize + 1;
        let i = rng.next_below(6) as u32;
        let sparsity = rng.range_f64(0.0, 0.8);
        let sys = random_stable(p, q, r, sparsity, seed);
        let u = unfold(&sys, i).unwrap();
        let n = u.batch();
        let input = stimulus(p, 6 * n, seed ^ 0xabcd);
        let want = sys.simulate(&input).unwrap();
        let got = u.simulate_samples(&input).unwrap();
        for (a, b) in want.iter().zip(&got) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-7, "{x} vs {y}");
            }
        }
    }
}

/// Guardrail: unfolding a system with spectral radius ≥ 1 is a typed
/// numerical error, never a silent divergence.
#[test]
fn unfolding_unstable_system_is_typed_error() {
    let mut rng = SplitMix64::new(0x726873);
    for _ in 0..32 {
        let r = rng.next_below(5) as usize + 1;
        let seed = rng.next_u64();
        let (a, b, c, d) = lintra::diag::fault::unstable_system(1, 1, r, seed);
        let sys = lintra::linsys::StateSpace::new(a, b, c, d).unwrap();
        assert!(
            sys.spectral_radius() >= 1.0,
            "fault construction must be unstable"
        );
        let i = rng.next_below(5) as u32 + 1;
        match unfold(&sys, i) {
            Err(LinsysError::UnstableSystem { spectral_radius }) => {
                assert!(spectral_radius >= 1.0);
            }
            other => panic!("expected UnstableSystem, got {other:?}"),
        }
    }
}

/// Guardrail: fixed-point overflow in the bit-true simulator is reported
/// with the offending node id, not a wrapped or poisoned value.
#[test]
fn fixed_overflow_reports_offending_node() {
    use lintra::fixed::{simulate_fixed, Fixed, FixedSimError};
    use lintra::matrix::Matrix;
    // ρ(A) = 2: the state doubles every sample until the i64 raw value
    // overflows, whatever the seed-chosen starting magnitude.
    let sys = lintra::linsys::StateSpace::new(
        Matrix::from_rows(&[&[2.0]]),
        Matrix::from_rows(&[&[1.0]]),
        Matrix::from_rows(&[&[1.0]]),
        Matrix::from_rows(&[&[0.0]]),
    )
    .unwrap();
    let g = lintra::dfg::build::from_state_space(&sys).unwrap();
    let frac = 20u32;
    let mut rng = SplitMix64::new(0x6f7666);
    for _ in 0..16 {
        let mut state = vec![Fixed::from_raw(rng.range_i64(1, 1 << 40), frac)];
        let inputs =
            std::collections::HashMap::from([((0usize, 0usize), Fixed::from_f64(1.0, frac))]);
        let mut saw_overflow = false;
        for _ in 0..80 {
            match simulate_fixed(&g, &state, &inputs, frac) {
                Ok((_, next)) => state = vec![next[&0]],
                Err(FixedSimError::Overflow { node }) => {
                    assert!(node < g.len(), "node id {node} out of range");
                    saw_overflow = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(saw_overflow, "doubling state never overflowed");
    }
}

/// Guardrail: asking the voltage inversion for a speedup (slowdown < 1)
/// or feeding it non-finite values is a typed error, and a non-finite
/// target is a convergence failure rather than a hang or a NaN voltage.
#[test]
fn infeasible_voltage_inversion_is_typed_error() {
    let m = VoltageModel::dac96();
    let mut rng = SplitMix64::new(0x766c74);
    for _ in 0..32 {
        let v0 = rng.range_f64(1.5, 5.0);
        let speedup = rng.range_f64(0.01, 0.999);
        match m.voltage_for_slowdown(v0, speedup) {
            Err(VoltageError::InfeasibleSlowdown { slowdown }) => {
                assert!((slowdown - speedup).abs() < 1e-12);
            }
            other => panic!("expected InfeasibleSlowdown, got {other:?}"),
        }
    }
    assert!(matches!(
        m.voltage_for_slowdown(3.3, f64::NAN),
        Err(VoltageError::InfeasibleSlowdown { .. })
    ));
    // A slowdown so large the delay target overflows: convergence error.
    assert!(matches!(
        m.voltage_for_slowdown(3.3, 1e308),
        Err(VoltageError::NonConvergence { .. })
    ));
}

/// The empirical count of a structurally dense random system matches
/// the closed forms at every unfolding.
#[test]
fn dense_closed_forms() {
    let mut rng = SplitMix64::new(0x646e73);
    for _ in 0..64 {
        let seed = rng.next_below(500);
        let p = rng.next_below(2) as usize + 1;
        let q = rng.next_below(2) as usize + 1;
        let r = rng.next_below(4) as usize + 1;
        let i = rng.next_below(5);
        let sys = random_stable(p, q, r, 0.0, seed);
        let u = unfold(&sys, i as u32).unwrap();
        let c = op_count(&u.system, TrivialityRule::ZeroOne);
        assert_eq!(c.muls, dense_muls(p as u64, q as u64, r as u64, i));
        assert_eq!(c.adds, dense_adds(p as u64, q as u64, r as u64, i));
    }
}

/// The closed-form i_opt is a true minimum of the per-sample count.
#[test]
fn iopt_is_global_minimum() {
    for p in 1u64..4 {
        for q in 1u64..4 {
            for r in 1u64..16 {
                let iopt = dense_iopt(p, q, r, 1.0, 1.0);
                let per = |i: u64| dense_op_count(p, q, r, i).cycles(1.0, 1.0) / (i + 1) as f64;
                let best = per(iopt);
                for i in 0..(3 * iopt + 8) {
                    assert!(best <= per(i) + 1e-9, "i={i} beats iopt={iopt}");
                }
            }
        }
    }
}

/// Voltage inversion: scale_for_slowdown returns a voltage that
/// realizes the requested slowdown (or clamps at the floor), and the
/// power reduction formula is consistent.
#[test]
fn voltage_scaling_consistent() {
    let m = VoltageModel::dac96();
    let mut rng = SplitMix64::new(0x766f6c);
    for _ in 0..64 {
        let v0 = rng.range_f64(1.5, 5.0);
        let slowdown = rng.range_f64(1.0, 50.0);
        let s = m.scale_for_slowdown(v0, slowdown).unwrap();
        assert!(s.voltage >= m.v_min() - 1e-12);
        assert!(s.voltage <= v0 + 1e-12);
        if !s.clamped() {
            let achieved = m.slowdown_between(v0, s.voltage);
            assert!((achieved - slowdown).abs() / slowdown < 1e-6);
        }
        let expect = (v0 / s.voltage).powi(2) * slowdown;
        assert!((s.power_reduction() - expect).abs() < 1e-9 * expect);
    }
}

/// Simulation linearity: the response to a scaled input is the scaled
/// response (defining property of a linear system).
#[test]
fn simulation_is_linear() {
    let mut rng = SplitMix64::new(0x6c696e);
    for _ in 0..64 {
        let seed = rng.next_below(300);
        let alpha = rng.range_f64(-3.0, 3.0);
        let sys = random_stable(2, 2, 4, 0.3, seed);
        let x = stimulus(2, 24, seed ^ 0x55);
        let scaled: Vec<Vec<f64>> = x
            .iter()
            .map(|v| v.iter().map(|&e| alpha * e).collect())
            .collect();
        let y = sys.simulate(&x).unwrap();
        let ys = sys.simulate(&scaled).unwrap();
        for (a, b) in y.iter().zip(&ys) {
            for (u, v) in a.iter().zip(b) {
                assert!((alpha * u - v).abs() < 1e-8);
            }
        }
    }
}

/// Gramians of random stable systems satisfy their Lyapunov equations
/// and are symmetric.
#[test]
fn gramians_satisfy_lyapunov() {
    use lintra::linsys::gramian::{controllability_gramian, solve_discrete_lyapunov};
    let mut rng = SplitMix64::new(0x677261);
    for _ in 0..32 {
        let seed = rng.next_below(200);
        let r = rng.next_below(4) as usize + 1;
        let sparsity = rng.range_f64(0.0, 0.6);
        let sys = random_stable(1, 1, r, sparsity, seed);
        let wc = controllability_gramian(&sys).unwrap();
        let rhs = &(&(sys.a() * &wc) * &sys.a().transpose()) + &(sys.b() * &sys.b().transpose());
        assert!(wc.approx_eq(&rhs, 1e-8 * (1.0 + wc.max_abs())));
        assert!(wc.approx_eq(&wc.transpose(), 1e-9));
        // Sanity on the solver's shape validation.
        let bad = solve_discrete_lyapunov(sys.a(), &lintra::matrix::Matrix::zeros(r + 1, r + 1));
        assert!(bad.is_err());
    }
}

/// Exact QR eigenvalues agree with the norm-based spectral-radius
/// estimate on random stable systems.
#[test]
fn eigen_radius_matches_estimate() {
    use lintra::matrix::{spectral_radius_estimate, spectral_radius_exact};
    let mut rng = SplitMix64::new(0x656967);
    for _ in 0..32 {
        let seed = rng.next_below(200);
        let r = rng.next_below(5) as usize + 1;
        let sys = random_stable(1, 1, r, 0.2, seed);
        let exact = spectral_radius_exact(sys.a());
        let est = spectral_radius_estimate(sys.a(), 16).value;
        assert!(exact < 1.0, "stable by construction");
        assert!(
            (exact - est).abs() <= 0.05 * exact.max(0.05),
            "{exact} vs {est}"
        );
    }
}

/// Pipelining never changes simulated values and never lengthens the
/// feedback path.
#[test]
fn pipelining_preserves_values() {
    use lintra::dfg::{build, OpTiming};
    use lintra::transform::pipeline::insert_registers;
    let mut rng = SplitMix64::new(0x706970);
    for _ in 0..32 {
        let seed = rng.next_below(100);
        let r = rng.next_below(3) as usize + 1;
        let levels = rng.next_below(4) as u32 + 1;
        let sys = random_stable(1, 1, r, 0.3, seed);
        let g = build::from_state_space(&sys).unwrap();
        let t = OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        let (h, _) = insert_registers(&g, levels as f64, &t).unwrap();
        assert!(h.feedback_critical_path(&t) <= g.feedback_critical_path(&t) + 1e-9);
        let mut inputs = std::collections::HashMap::new();
        inputs.insert((0usize, 0usize), 0.7);
        let state = vec![0.3; r];
        let (o1, s1) = g.simulate(&state, &inputs).unwrap();
        let (o2, s2) = h.simulate(&state, &inputs).unwrap();
        assert!((o1[&(0, 0)] - o2[&(0, 0)]).abs() < 1e-12);
        for i in 0..r {
            assert!((s1[&i] - s2[&i]).abs() < 1e-12);
        }
    }
}

/// The single-constant CSD cost is never better than the exhaustive
/// adder-graph oracle and never worse than binary recoding.
#[test]
fn scm_cost_ordering() {
    use lintra::mcm::csd::single_constant_cost;
    use lintra::mcm::optimal::ScmOracle;
    let oracle = ScmOracle::new(3);
    for c in 1i64..400 {
        let csd = single_constant_cost(c, Recoding::Csd).adds as u32;
        let bin = single_constant_cost(c, Recoding::Binary).adds as u32;
        assert!(csd <= bin);
        if let Some(opt) = oracle.min_adds(c) {
            assert!(csd >= opt, "CSD {csd} beats the oracle {opt} for {c}");
        }
    }
}

/// Incremental unfolding through the engine's [`SweepCache`] is
/// *bit-identical* (not just tolerance-equal — `UnfoldedSystem`'s
/// `PartialEq` compares `f64` entries exactly) to from-scratch
/// `unfold(sys, i)` at every step of the trajectory `i = 0..12`, for a
/// seeded family of random stable systems.
#[test]
fn sweep_cache_incremental_unfold_matches_scratch() {
    use lintra::engine::SweepCache;
    let mut rng = SplitMix64::new(0x63616368);
    for _ in 0..24 {
        let seed = rng.next_below(1000);
        let p = rng.next_below(2) as usize + 1;
        let q = rng.next_below(2) as usize + 1;
        let r = rng.next_below(5) as usize + 1;
        let sparsity = rng.range_f64(0.0, 0.8);
        let sys = random_stable(p, q, r, sparsity, seed);
        let mut cache = SweepCache::new(&sys);
        for i in 0..12u32 {
            let scratch = unfold(&sys, i).unwrap();
            let cached = cache.unfolded(i).unwrap();
            assert_eq!(
                cached, scratch,
                "cache diverged from scratch unfolding at i={i} (P={p} Q={q} R={r} seed={seed})"
            );
        }
        // Stepping down after stepping up must replay from the cache and
        // still be bit-identical.
        let replay = cache.unfolded(5).unwrap();
        assert_eq!(replay, unfold(&sys, 5).unwrap());
        assert!(
            cache.stats().hits > 0,
            "trajectory reuse must register as cache hits"
        );
    }
}

//! One test per *textual claim* of the paper, cross-referenced by section.
//!
//! These are deliberately literal: each test quotes the claim it checks, so
//! a reader can audit the reproduction against the paper line by line.

use lintra::dfg::{build, OpTiming};
use lintra::linsys::count::{
    dense_adds, dense_iopt, dense_muls, dense_op_count, dense_ops_per_sample,
    feedback_critical_path,
};
use lintra::linsys::unfold;
use lintra::opt::multi::measured_speedup;
use lintra::opt::{single, TechConfig};
use lintra::power::{relative_power, IdleStrategy, VoltageModel};
use lintra::suite::{by_name, dense_synthetic};

/// §1: "#(*, 0) = (R+P)(R+Q), #(+, 0) = (R+P−1)(R+Q)" — the base-case
/// dense operation counts.
#[test]
fn claim_s1_base_case_counts() {
    for (p, q, r) in [(1u64, 1u64, 5u64), (2, 2, 5), (3, 1, 8)] {
        assert_eq!(dense_muls(p, q, r, 0), (r + p) * (r + q));
        assert_eq!(dense_adds(p, q, r, 0), (r + p - 1) * (r + q));
    }
}

/// §1: "feedback critical path = m + log₂(1 + R)" and §2: "the feedback
/// critical path remains the same while more samples are processed".
#[test]
fn claim_s1_s2_critical_path_constant_under_unfolding() {
    let (t_mul, t_add) = (2.0, 1.0);
    let timing = OpTiming {
        t_mul,
        t_add,
        t_shift: 0.0,
    };
    let sys = dense_synthetic(1, 1, 5);
    let expect = feedback_critical_path(5, t_mul, t_add);
    assert_eq!(expect, t_mul + 3.0 * t_add); // ceil(log2(6)) = 3
    for i in [0u32, 1, 3, 6, 9] {
        let g = build::from_unfolded(&unfold(&sys, i).unwrap()).unwrap();
        assert_eq!(
            g.feedback_critical_path(&timing),
            expect,
            "critical path changed at unfolding {i}"
        );
    }
}

/// §2 (EQ 4): "the increase in multiplications per sample due to i times
/// unfolding ... < 0 for i < [threshold]" — unfolding initially reduces
/// the per-sample multiplication count, with the delta from the closed
/// form.
#[test]
fn claim_s2_eq4_mul_delta() {
    let (p, q, r) = (1u64, 1u64, 6u64);
    for i in 1..40u64 {
        let delta = dense_ops_per_sample(p, q, r, i).muls - dense_ops_per_sample(p, q, r, 0).muls;
        // Closed form of the delta: -R^2 i/(i+1) + PQ i/2.
        let expect =
            -((r * r) as f64) * i as f64 / (i + 1) as f64 + (p * q) as f64 * i as f64 / 2.0;
        assert!((delta - expect).abs() < 1e-9, "i={i}: {delta} vs {expect}");
        // Negative below the threshold i < 2R^2/PQ - 2 (strictly inside).
        if (i as f64) < 2.0 * (r * r) as f64 / (p * q) as f64 - 2.0 {
            assert!(delta < 0.0, "delta not negative at i={i}");
        }
    }
}

/// §2: "as one unfolds, the number of operations per sample at first
/// decreases to reach a minimum and then begins to rise".
#[test]
fn claim_s2_dip_then_rise() {
    for (p, q, r) in [(1u64, 1u64, 5u64), (1, 1, 12), (2, 2, 6)] {
        let iopt = dense_iopt(p, q, r, 1.0, 1.0);
        let f = |i| dense_ops_per_sample(p, q, r, i).total();
        assert!(f(iopt) < f(0), "({p},{q},{r}): no dip");
        assert!(f(4 * iopt + 6) > f(iopt), "({p},{q},{r}): no rise");
    }
}

/// §3: "the optimum value of unfolding i_opt is one of the following two
/// values ... whichever leads to a smaller value" — floor/ceil of the
/// continuous optimum, ties toward less coefficient memory.
#[test]
fn claim_s3_iopt_is_floor_or_ceil() {
    for (p, q, r) in [(1u64, 1u64, 4u64), (1, 1, 9), (2, 1, 7), (2, 2, 5)] {
        let cont = (2.0 * r as f64 * (r as f64 - 0.5) / (p * q) as f64).sqrt() - 1.0;
        let iopt = dense_iopt(p, q, r, 1.0, 1.0);
        let lo = cont.floor().max(0.0) as u64;
        let hi = cont.ceil().max(0.0) as u64;
        assert!(
            iopt == lo || iopt == hi,
            "({p},{q},{r}): iopt {iopt} not in {{{lo},{hi}}}"
        );
    }
}

/// §3's worked example: "i_opt = 6 which leads to S_max ≈ 1.97" for the
/// hypothetical dense P = 1, Q = 1, R = 5 computation.
#[test]
fn claim_s3_worked_example() {
    let i = dense_iopt(1, 1, 5, 1.0, 1.0);
    assert_eq!(i, 6);
    let s = dense_op_count(1, 1, 5, 0).total() as f64
        / (dense_op_count(1, 1, 5, 6).total() as f64 / 7.0);
    assert!((s - 1.974).abs() < 0.005, "S_max = {s}");
}

/// §3: "even if voltage reduction is not an option ... the increased
/// throughput can be traded off against reduced clock frequency for a
/// linear reduction" — e.g. a ×1.6 op reduction is a ×1.6 (37.5%) power
/// reduction at fixed voltage.
#[test]
fn claim_s3_frequency_only_is_linear() {
    let rel = relative_power(1.6, IdleStrategy::SlowClock);
    assert!((rel - 1.0 / 1.6).abs() < 1e-12);
    let sys = dense_synthetic(1, 1, 5);
    let r = single::optimize(&sys, &TechConfig::dac96(3.3)).unwrap();
    assert!(
        (r.dense.power_reduction_frequency_only() - r.dense.speedup).abs() < 1e-12,
        "frequency-only reduction must equal the speedup"
    );
    assert!(r.dense.power_reduction() > r.dense.power_reduction_frequency_only());
}

/// §4: "the speed-up due to multiple processors is linear for N ≤ R" —
/// verified by actually scheduling, not by the paper's algebra.
#[test]
fn claim_s4_linear_speedup_up_to_r() {
    let r = 5usize;
    let sys = dense_synthetic(1, 1, r);
    let tech = TechConfig::dac96(3.3);
    let i = dense_iopt(1, 1, r as u64, 1.0, 1.0);
    let s1 = measured_speedup(&sys, i, 1, &tech).unwrap();
    for n in 2..=r {
        let sn = measured_speedup(&sys, i, n, &tech).unwrap();
        assert!(
            sn >= 0.9 * n as f64 * s1,
            "S({n}) = {sn} not near-linear (S(1) = {s1})"
        );
    }
}

/// §4: "one can always add up to R processors and get a reduction in
/// power" — power at N = R beats N = 1 on the dense example.
#[test]
fn claim_s4_r_processors_always_help() {
    use lintra::opt::multi::{optimize, ProcessorSelection};
    let sys = dense_synthetic(1, 1, 5);
    let tech = TechConfig::dac96(3.3);
    let single = single::optimize(&sys, &tech)
        .unwrap()
        .real
        .power_reduction();
    let multi = optimize(&sys, &tech, ProcessorSelection::StatesCount)
        .unwrap()
        .power_reduction();
    assert!(multi > single, "multi {multi} vs single {single}");
}

/// §5: the worked MCM example — "the direct computation ... requires nine
/// shifts and nine additions" and the shared plan needs at most six of
/// each (ours finds five).
#[test]
fn claim_s5_mcm_example() {
    use lintra::mcm::{naive_cost, synthesize, Recoding};
    let naive = naive_cost(&[185, 235], Recoding::Binary);
    assert_eq!((naive.adds, naive.shifts), (9, 9));
    let sol = synthesize(&[185, 235], Recoding::Binary);
    sol.verify().unwrap();
    assert!(sol.cost().adds <= 6 && sol.cost().shifts <= 6);
}

/// §5: "for each new unfolding, only three matrix multiplications (by B,
/// A, and C) are required and one matrix addition" — Horner's op count
/// grows by a constant per unfolding step.
#[test]
fn claim_s5_horner_linear_growth() {
    use lintra::transform::horner::HornerForm;
    let d = by_name("iir6").unwrap();
    let ops = |i: u32| {
        HornerForm::new(&d.system, i)
            .unwrap()
            .to_dfg()
            .unwrap()
            .op_counts()
    };
    let d1 = ops(5).muls as i64 - ops(4).muls as i64;
    let d2 = ops(9).muls as i64 - ops(8).muls as i64;
    assert_eq!(
        d1, d2,
        "per-unfolding multiplication increment must be constant"
    );
    let a1 = ops(5).adds as i64 - ops(4).adds as i64;
    let a2 = ops(9).adds as i64 - ops(8).adds as i64;
    assert_eq!(a1, a2, "per-unfolding addition increment must be constant");
}

/// §5/Table 4: "conservatively assuming that voltage can not be lowered
/// below [the floor]" — the ASIC flow never reports a voltage below
/// V_min, and the floor voltage is where Fig. 1's curve blows up.
#[test]
fn claim_s5_voltage_floor() {
    use lintra::opt::asic::{optimize, AsicConfig};
    let m = VoltageModel::dac96();
    assert!(
        m.normalized_delay(m.v_min()) > 10.0,
        "floor sits in the steep region"
    );
    let d = by_name("chemical").unwrap();
    let r = optimize(&d.system, &TechConfig::dac96(3.3), &AsicConfig::default()).unwrap();
    assert!(r.voltage >= m.v_min() - 1e-12);
}

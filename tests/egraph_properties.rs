//! Property harness for the equality-saturation engine, driven by the
//! in-tree deterministic [`SplitMix64`] generator.
//!
//! The central claim: saturating with the **exact** rule tier and
//! extracting *any* representative — under any cost model, or sampled by
//! seed — yields a graph that simulates **bit-identically** (`f64`, with
//! `±0.0` canonicalized) to the original. The harness sweeps well over
//! 100 random dataflow graphs per invocation: seeded random stable
//! filters (state-space and unfolded batch forms) plus hand-rolled mixed
//! graphs exercising `Shift`/`Neg`/`Delay`/`Const` shapes the filter
//! builder never emits. A second family of tests drives every rewrite
//! rule in isolation on a minimal graph.

use std::collections::HashMap;

use lintra::dfg::{build, CycleCost, Dfg, NodeId, NodeKind, OpCountCost};
use lintra::egraph::{EGraph, Rule, RuleSet, SaturationBudget};
use lintra::linsys::unfold;
use lintra::mcm::Recoding;
use lintra::prelude::SplitMix64;
use lintra::suite::random_stable;

/// Canonical bit pattern: folds `-0.0` onto `+0.0` (the one IEEE value
/// pair that is `==` but not bit-equal; `x + 0.0` normalizes it).
fn bits(v: f64) -> u64 {
    (v + 0.0).to_bits()
}

/// Simulates both graphs on the same stimulus and asserts the full
/// interface (every output key and every next-state) agrees bit-for-bit.
fn assert_bit_identical(
    ctx: &str,
    original: &Dfg,
    candidate: &Dfg,
    state: &[f64],
    inputs: &HashMap<(usize, usize), f64>,
) {
    candidate
        .validate()
        .unwrap_or_else(|e| panic!("{ctx}: extracted graph invalid: {e}"));
    let (o1, s1) = original.simulate(state, inputs).unwrap();
    let (o2, s2) = candidate.simulate(state, inputs).unwrap();
    assert_eq!(o1.len(), o2.len(), "{ctx}: output arity changed");
    assert_eq!(s1.len(), s2.len(), "{ctx}: state arity changed");
    for (k, v) in &o1 {
        let w = o2
            .get(k)
            .unwrap_or_else(|| panic!("{ctx}: output {k:?} missing"));
        assert_eq!(
            bits(*v),
            bits(*w),
            "{ctx}: output {k:?} drifted: {v:e} vs {w:e}"
        );
    }
    for (k, v) in &s1 {
        let w = s2
            .get(k)
            .unwrap_or_else(|| panic!("{ctx}: state {k} missing"));
        assert_eq!(
            bits(*v),
            bits(*w),
            "{ctx}: state {k} drifted: {v:e} vs {w:e}"
        );
    }
}

/// Like [`assert_bit_identical`] but with a relative tolerance, for rule
/// tiers that legitimately reassociate or quantize.
fn assert_close(
    ctx: &str,
    original: &Dfg,
    candidate: &Dfg,
    state: &[f64],
    inputs: &HashMap<(usize, usize), f64>,
    tol: f64,
) {
    candidate
        .validate()
        .unwrap_or_else(|e| panic!("{ctx}: extracted graph invalid: {e}"));
    let (o1, s1) = original.simulate(state, inputs).unwrap();
    let (o2, s2) = candidate.simulate(state, inputs).unwrap();
    for (k, v) in &o1 {
        let w = o2[k];
        assert!(
            (v - w).abs() <= tol * (1.0 + v.abs()),
            "{ctx}: output {k:?} drifted: {v} vs {w}"
        );
    }
    for (k, v) in &s1 {
        let w = s2[k];
        assert!(
            (v - w).abs() <= tol * (1.0 + v.abs()),
            "{ctx}: state {k} drifted: {v} vs {w}"
        );
    }
}

/// A full stimulus for a graph: one value per `(sample, channel)` input
/// key the graph mentions, plus a dense state vector.
fn stimulus_for(g: &Dfg, rng: &mut SplitMix64) -> (Vec<f64>, HashMap<(usize, usize), f64>) {
    let mut inputs = HashMap::new();
    let mut max_state = 0usize;
    for (_, n) in g.iter() {
        match n.kind {
            NodeKind::Input { sample, channel } => {
                inputs
                    .entry((sample, channel))
                    .or_insert_with(|| rng.range_f64(-2.0, 2.0));
            }
            NodeKind::StateIn { index } => max_state = max_state.max(index + 1),
            _ => {}
        }
    }
    let state = (0..max_state).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    (state, inputs)
}

/// Saturates `g` with the exact tier and asserts bit-identity of every
/// extraction flavour the crate offers (two cost models plus three
/// seeded samples of alternative representatives).
fn check_exact_roundtrip(ctx: &str, g: &Dfg, rng: &mut SplitMix64) {
    let rules = RuleSet::exact();
    assert!(rules.bit_exact(), "exact tier must be bit-exact");
    let (mut eg, roots) = EGraph::from_dfg(g).unwrap();
    let stats = eg.saturate(&rules, &SaturationBudget::default());
    assert!(
        stats.saturated(),
        "{ctx}: exact tier should saturate small graphs, got {stats}"
    );

    let (state, inputs) = stimulus_for(g, rng);
    let best = eg.extract(&roots, &OpCountCost).unwrap();
    assert_bit_identical(&format!("{ctx} (op-count)"), g, &best.dfg, &state, &inputs);
    // Op-count can never increase: the original is one representative.
    let original_ops = {
        let c = g.op_counts();
        (c.adds + c.muls + c.shifts) as f64
    };
    assert!(
        best.cost <= original_ops + 1e-9,
        "{ctx}: extraction cost {} beats original {original_ops}?",
        best.cost
    );

    let cycles = eg
        .extract(
            &roots,
            &CycleCost {
                w_mul: 2.0,
                w_add: 1.0,
            },
        )
        .unwrap();
    assert_bit_identical(&format!("{ctx} (cycles)"), g, &cycles.dfg, &state, &inputs);

    for seed in [1u64, 0xbeef, 0x5eed] {
        let sampled = eg.extract_seeded(&roots, seed).unwrap();
        assert_bit_identical(
            &format!("{ctx} (seeded {seed:#x})"),
            g,
            &sampled.dfg,
            &state,
            &inputs,
        );
    }
}

/// 64 random stable filters, each loaded both as the plain state-space
/// graph and (for a third of them) as an unfolded multi-sample batch
/// graph — together with the mixed-graph sweep below this puts the
/// per-invocation case count well past 100.
#[test]
fn exact_saturation_is_bit_identical_on_random_filters() {
    let mut rng = SplitMix64::new(0x4547_5052);
    for case in 0..64 {
        let seed = rng.next_below(10_000);
        let p = rng.next_below(2) as usize + 1;
        let q = rng.next_below(2) as usize + 1;
        let r = rng.next_below(4) as usize + 1;
        let sparsity = rng.range_f64(0.0, 0.7);
        let sys = random_stable(p, q, r, sparsity, seed);

        let g = build::from_state_space(&sys).unwrap();
        check_exact_roundtrip(&format!("filter #{case} (P={p} Q={q} R={r})"), &g, &mut rng);

        if case % 3 == 0 {
            let i = rng.next_below(3) as u32 + 1;
            let u = build::from_unfolded(&unfold(&sys, i).unwrap()).unwrap();
            check_exact_roundtrip(&format!("unfolded #{case} (i={i})"), &u, &mut rng);
        }
    }
}

/// A random DAG over the full node language: inputs, states, constants,
/// adds/subs, multipliers (unit, power-of-two and arbitrary), shifts,
/// negations and registers, closed with unique outputs and one
/// `StateOut` per state variable.
fn random_mixed_graph(rng: &mut SplitMix64) -> Dfg {
    let p = rng.next_below(2) as usize + 1;
    let r = rng.next_below(2) as usize + 1;
    let q = rng.next_below(2) as usize + 1;
    let mut g = Dfg::new();
    let mut pool: Vec<NodeId> = Vec::new();
    for channel in 0..p {
        pool.push(
            g.push(NodeKind::Input { sample: 0, channel }, vec![])
                .unwrap(),
        );
    }
    for index in 0..r {
        pool.push(g.push(NodeKind::StateIn { index }, vec![]).unwrap());
    }
    pool.push(
        g.push(NodeKind::Const(rng.range_f64(-2.0, 2.0)), vec![])
            .unwrap(),
    );
    if rng.next_bool() {
        pool.push(g.push(NodeKind::Const(0.0), vec![]).unwrap());
    }

    let ops = rng.next_below(9) as usize + 4;
    for _ in 0..ops {
        let a = pool[rng.next_below(pool.len() as u64) as usize];
        let b = pool[rng.next_below(pool.len() as u64) as usize];
        let node = match rng.next_below(6) {
            0 => g.push(NodeKind::Add, vec![a, b]),
            1 => g.push(NodeKind::Sub, vec![a, b]),
            2 => {
                let c = match rng.next_below(5) {
                    0 => 1.0,
                    1 => -1.0,
                    2 => 4.0,
                    3 => -0.5,
                    _ => rng.range_f64(-3.0, 3.0),
                };
                g.push(NodeKind::MulConst(c), vec![a])
            }
            3 => g.push(NodeKind::Shift(rng.range_i64(-2, 3) as i32), vec![a]),
            4 => g.push(NodeKind::Neg, vec![a]),
            _ => g.push(NodeKind::Delay, vec![a]),
        };
        pool.push(node.unwrap());
    }

    for channel in 0..q {
        let src = pool[pool.len() - 1 - rng.next_below((pool.len() / 2) as u64 + 1) as usize];
        g.push(NodeKind::Output { sample: 0, channel }, vec![src])
            .unwrap();
    }
    for index in 0..r {
        let src = pool[rng.next_below(pool.len() as u64) as usize];
        g.push(NodeKind::StateOut { index }, vec![src]).unwrap();
    }
    g
}

/// 48 hand-rolled mixed graphs — shapes (`Shift`, `Neg`, `Delay`,
/// explicit constants, shared fan-out) the filter builder never emits.
#[test]
fn exact_saturation_is_bit_identical_on_random_mixed_graphs() {
    let mut rng = SplitMix64::new(0x6d69_7865);
    for case in 0..48 {
        let g = random_mixed_graph(&mut rng);
        check_exact_roundtrip(&format!("mixed #{case}"), &g, &mut rng);
    }
}

/// Budgets bound the *search*, never the *correctness*: whatever budget
/// the saturation loop is given — including ones too small for a single
/// sweep — extraction must still succeed and still be bit-identical.
#[test]
fn any_budget_still_extracts_a_bit_identical_graph() {
    let mut rng = SplitMix64::new(0x6275_6467);
    for case in 0..24 {
        let g = random_mixed_graph(&mut rng);
        let (mut eg, roots) = EGraph::from_dfg(&g).unwrap();
        let budget = SaturationBudget {
            max_enodes: rng.next_below(200) as usize + 1,
            max_iterations: rng.next_below(4) as usize,
        };
        let stats = eg.saturate(&RuleSet::exact(), &budget);
        assert!(stats.enodes <= budget.max_enodes.max(eg.len()));
        let (state, inputs) = stimulus_for(&g, &mut rng);
        let best = eg.extract(&roots, &OpCountCost).unwrap();
        assert_bit_identical(
            &format!("budget #{case} ({budget:?}, {stats})"),
            &g,
            &best.dfg,
            &state,
            &inputs,
        );
    }
}

/// Builds the minimal graph targeting one rule, returning the graph.
/// Channels: x=(0,0), y=(0,1), z=(0,2).
fn minimal_graph_for(rule: &Rule) -> Dfg {
    let mut g = Dfg::new();
    let x = g
        .push(
            NodeKind::Input {
                sample: 0,
                channel: 0,
            },
            vec![],
        )
        .unwrap();
    let sink = match rule {
        Rule::AddCommute => {
            let y = input(&mut g, 1);
            g.push(NodeKind::Add, vec![x, y]).unwrap()
        }
        Rule::SubToAddNeg => {
            let y = input(&mut g, 1);
            g.push(NodeKind::Sub, vec![x, y]).unwrap()
        }
        Rule::NegNeg => {
            let n1 = g.push(NodeKind::Neg, vec![x]).unwrap();
            g.push(NodeKind::Neg, vec![n1]).unwrap()
        }
        Rule::MulOne => g.push(NodeKind::MulConst(1.0), vec![x]).unwrap(),
        Rule::MulPow2 => g.push(NodeKind::MulConst(4.0), vec![x]).unwrap(),
        Rule::ShiftFuse => {
            let s1 = g.push(NodeKind::Shift(1), vec![x]).unwrap();
            g.push(NodeKind::Shift(2), vec![s1]).unwrap()
        }
        Rule::AddZero => {
            let zero = g.push(NodeKind::Const(0.0), vec![]).unwrap();
            g.push(NodeKind::Add, vec![x, zero]).unwrap()
        }
        Rule::AddAssoc => {
            let y = input(&mut g, 1);
            let z = input(&mut g, 2);
            let xy = g.push(NodeKind::Add, vec![x, y]).unwrap();
            g.push(NodeKind::Add, vec![xy, z]).unwrap()
        }
        Rule::MulDistribute => {
            let y = input(&mut g, 1);
            let xy = g.push(NodeKind::Add, vec![x, y]).unwrap();
            g.push(NodeKind::MulConst(3.0), vec![xy]).unwrap()
        }
        Rule::MulFuse => {
            let m1 = g.push(NodeKind::MulConst(5.0), vec![x]).unwrap();
            g.push(NodeKind::MulConst(3.0), vec![m1]).unwrap()
        }
        // 0.75 = 2⁻¹ + 2⁻² recodes in CSD to 2⁰ − 2⁻², one subtraction.
        Rule::CsdDecompose { .. } => g.push(NodeKind::MulConst(0.75), vec![x]).unwrap(),
        Rule::CollectLinear => {
            // 5x as a shift-add chain; collection grows the 5·x hub.
            let s2 = g.push(NodeKind::Shift(2), vec![x]).unwrap();
            g.push(NodeKind::Add, vec![s2, x]).unwrap()
        }
        // Two multipliers off one base: sharing synthesizes one plan.
        Rule::McmShare { .. } => {
            let m1 = g.push(NodeKind::MulConst(0.75), vec![x]).unwrap();
            let m2 = g.push(NodeKind::MulConst(1.5), vec![x]).unwrap();
            g.push(NodeKind::Add, vec![m1, m2]).unwrap()
        }
    };
    g.push(
        NodeKind::Output {
            sample: 0,
            channel: 0,
        },
        vec![sink],
    )
    .unwrap();
    g
}

fn input(g: &mut Dfg, channel: usize) -> NodeId {
    g.push(NodeKind::Input { sample: 0, channel }, vec![])
        .unwrap()
}

/// Every rule, alone on its minimal graph: saturation terminates, the
/// rewrite preserves semantics (bit-identically for the exact tier,
/// within quantization tolerance otherwise), and the rules that exist to
/// *cheapen* the graph demonstrably do so under the matching cost model.
#[test]
fn each_rule_is_semantics_preserving_in_isolation() {
    let all_rules = [
        Rule::AddCommute,
        Rule::SubToAddNeg,
        Rule::NegNeg,
        Rule::MulOne,
        Rule::MulPow2,
        Rule::ShiftFuse,
        Rule::AddZero,
        Rule::AddAssoc,
        Rule::MulDistribute,
        Rule::MulFuse,
        Rule::CsdDecompose {
            frac_bits: 16,
            recoding: Recoding::Csd,
        },
        Rule::CollectLinear,
        Rule::McmShare {
            frac_bits: 16,
            recoding: Recoding::Csd,
        },
    ];
    let mut rng = SplitMix64::new(0x7275_6c65);
    for rule in all_rules {
        let g = minimal_graph_for(&rule);
        let (mut eg, roots) = EGraph::from_dfg(&g).unwrap();
        let stats = eg.saturate(&RuleSet::single(rule), &SaturationBudget::default());
        assert!(
            stats.saturated(),
            "{}: single rule must fixpoint, got {stats}",
            rule.name()
        );

        for trial in 0..8 {
            let (state, inputs) = stimulus_for(&g, &mut rng);
            let best = eg.extract(&roots, &OpCountCost).unwrap();
            let ctx = format!("rule {} trial {trial}", rule.name());
            if rule.bit_exact() {
                assert_bit_identical(&ctx, &g, &best.dfg, &state, &inputs);
            } else {
                // 16 fractional bits: quantization error ≤ 2⁻¹⁷ per
                // constant; reassociation stays within a few ulps.
                assert_close(&ctx, &g, &best.dfg, &state, &inputs, 1e-4);
            }
        }

        // The simplifying rules must actually pay off under a model that
        // can see the difference.
        match rule {
            Rule::NegNeg => {
                // Negations are free in every census model, so the win is
                // structural: the double negation must extract away.
                let best = eg.extract(&roots, &OpCountCost).unwrap();
                assert_eq!(
                    best.dfg.op_counts().negs,
                    0,
                    "neg-neg: both negations should cancel"
                );
            }
            Rule::MulOne | Rule::AddZero | Rule::ShiftFuse | Rule::CollectLinear => {
                let best = eg.extract(&roots, &OpCountCost).unwrap();
                let before = {
                    let c = g.op_counts();
                    (c.adds + c.muls + c.shifts) as f64
                };
                assert!(
                    best.cost < before,
                    "{}: expected a cheaper representative ({} vs {before})",
                    rule.name(),
                    best.cost
                );
            }
            Rule::MulPow2 | Rule::CsdDecompose { .. } | Rule::McmShare { .. } => {
                // Shift-add forms are free/cheap under the cycle model.
                let cycles = CycleCost {
                    w_mul: 2.0,
                    w_add: 1.0,
                };
                let best = eg.extract(&roots, &cycles).unwrap();
                let mul_cost = 2.0 * g.op_counts().muls as f64;
                assert!(
                    best.cost < mul_cost,
                    "{}: shift-add form should beat the multiplier ({} vs {mul_cost})",
                    rule.name(),
                    best.cost
                );
            }
            _ => {}
        }
    }
}

/// Drives the incremental engine ([`EGraph::saturate`]: kind-indexed
/// candidates, dirty-class worklist, backoff scheduler) and the
/// full-rescan reference engine ([`EGraph::saturate_reference`]) over the
/// same graph and asserts their *outcomes* are identical: same stats
/// (timings excluded), and bit-identical extractions under every flavour
/// the crate offers.
fn assert_engines_agree(ctx: &str, g: &Dfg, rules: &RuleSet, budget: &SaturationBudget) {
    let (mut fast, roots_f) = EGraph::from_dfg(g).unwrap();
    let (mut slow, roots_s) = EGraph::from_dfg(g).unwrap();
    let sf = fast.saturate(rules, budget);
    let ss = slow.saturate_reference(rules, budget);
    assert_eq!(sf, ss, "{ctx}: stats diverge: {sf} vs {ss}");
    let xf = fast.extract(&roots_f, &OpCountCost).unwrap();
    let xs = slow.extract(&roots_s, &OpCountCost).unwrap();
    assert_eq!(xf, xs, "{ctx}: op-count extraction diverges");
    let cycles = CycleCost {
        w_mul: 2.0,
        w_add: 1.0,
    };
    let xf = fast.extract(&roots_f, &cycles).unwrap();
    let xs = slow.extract(&roots_s, &cycles).unwrap();
    assert_eq!(xf, xs, "{ctx}: cycle-cost extraction diverges");
    for seed in [7u64, 0xfeed] {
        let xf = fast.extract_seeded(&roots_f, seed).unwrap();
        let xs = slow.extract_seeded(&roots_s, seed).unwrap();
        assert_eq!(xf, xs, "{ctx}: seeded ({seed:#x}) extraction diverges");
    }
}

/// The indexed match engine is a pure optimization: on every rule graph
/// this harness exercises — each rule in isolation on its minimal graph,
/// the full exact tier, the asic tier with its whole-graph sweeps, and
/// budget-clipped runs — it must reach bit-identical extractions to the
/// rescan-everything reference loop.
#[test]
fn indexed_engine_matches_reference_engine_on_every_rule_graph() {
    let all_rules = [
        Rule::AddCommute,
        Rule::SubToAddNeg,
        Rule::NegNeg,
        Rule::MulOne,
        Rule::MulPow2,
        Rule::ShiftFuse,
        Rule::AddZero,
        Rule::AddAssoc,
        Rule::MulDistribute,
        Rule::MulFuse,
        Rule::CsdDecompose {
            frac_bits: 16,
            recoding: Recoding::Csd,
        },
        Rule::CollectLinear,
        Rule::McmShare {
            frac_bits: 16,
            recoding: Recoding::Csd,
        },
    ];
    let budget = SaturationBudget::default();
    for rule in all_rules {
        let g = minimal_graph_for(&rule);
        assert_engines_agree(
            &format!("single rule {}", rule.name()),
            &g,
            &RuleSet::single(rule),
            &budget,
        );
        // The same minimal graphs under the full tiers, so cross-rule
        // interaction (and the asic tier's whole-graph sweeps) is covered.
        assert_engines_agree(
            &format!("exact tier on {} graph", rule.name()),
            &g,
            &RuleSet::exact(),
            &budget,
        );
        assert_engines_agree(
            &format!("asic tier on {} graph", rule.name()),
            &g,
            &RuleSet::asic(16, Recoding::Csd),
            &budget,
        );
    }

    let mut rng = SplitMix64::new(0x6469_6666);
    for case in 0..24 {
        let g = random_mixed_graph(&mut rng);
        assert_engines_agree(&format!("mixed #{case}"), &g, &RuleSet::exact(), &budget);
        // Budget-clipped runs must stop at the same point too: the
        // engines' insertion sequences are identical, so a mid-sweep
        // node-budget cut lands on the same e-graph.
        let clipped = SaturationBudget {
            max_enodes: rng.next_below(120) as usize + 8,
            max_iterations: rng.next_below(4) as usize + 1,
        };
        assert_engines_agree(
            &format!("mixed #{case} clipped {clipped:?}"),
            &g,
            &RuleSet::extended(),
            &clipped,
        );
    }
    for case in 0..8 {
        let seed = rng.next_below(10_000);
        let sys = random_stable(1, 1, 2, 0.3, seed);
        let g = build::from_state_space(&sys).unwrap();
        assert_engines_agree(&format!("filter #{case}"), &g, &RuleSet::exact(), &budget);
        let u = build::from_unfolded(&unfold(&sys, 2).unwrap()).unwrap();
        assert_engines_agree(
            &format!("unfolded filter #{case}"),
            &u,
            &RuleSet::asic(12, Recoding::Csd),
            &SaturationBudget {
                max_enodes: 20_000,
                max_iterations: 3,
            },
        );
    }
}

/// Saturation statistics are deterministic: the same graph and rule set
/// always reports the same iteration/e-node/class counts, and the same
/// seed always extracts the same representative.
#[test]
fn saturation_and_extraction_are_deterministic() {
    let mut rng_a = SplitMix64::new(0x6465_7431);
    let mut rng_b = SplitMix64::new(0x6465_7431);
    for _ in 0..8 {
        let ga = random_mixed_graph(&mut rng_a);
        let gb = random_mixed_graph(&mut rng_b);
        assert_eq!(format!("{ga:?}"), format!("{gb:?}"), "generator drift");

        let (mut ea, ra) = EGraph::from_dfg(&ga).unwrap();
        let (mut eb, rb) = EGraph::from_dfg(&gb).unwrap();
        let sa = ea.saturate(&RuleSet::exact(), &SaturationBudget::default());
        let sb = eb.saturate(&RuleSet::exact(), &SaturationBudget::default());
        assert_eq!(sa, sb);
        let xa = ea.extract_seeded(&ra, 0xabcd).unwrap();
        let xb = eb.extract_seeded(&rb, 0xabcd).unwrap();
        assert_eq!(xa, xb, "same seed must extract the same representative");
    }
}

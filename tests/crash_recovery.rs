//! Durability integration tests: journal replay, idempotent retries,
//! torn-tail recovery, and corruption quarantine — the in-process half
//! of the crash-recovery gate (`scripts/crash.sh` drives the same
//! contract through real `kill -9`ed processes).
//!
//! The contract under test (ISSUE 5):
//!
//! * a keyed request is journaled (fsync) before execution, so a server
//!   that dies mid-request replays it on restart;
//! * a retry of a settled key is answered from the journal —
//!   bit-identical bytes, zero sweep recompute;
//! * a torn journal tail (the normal `kill -9` artifact) is truncated
//!   and service continues; a corrupt record quarantines the whole
//!   file; a corrupt snapshot is quarantined too — the server always
//!   starts, never panics.

#![allow(clippy::expect_used)] // tests: a failed precondition should abort loudly

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use lintra_bench::json::Json;
use lintra_bench::wire::{WireOp, WireRequest, WireResponse};
use lintra_serve::journal::{Journal, RecordKind, JOURNAL_FILE, SNAPSHOT_DIR};
use lintra_serve::{start, ServerConfig, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lintra-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        jobs: Some(2),
        journal_dir: Some(dir.to_path_buf()),
        default_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

/// Sends one raw line and returns the raw response line (no trailing
/// newline) — raw so byte-identity can be asserted.
fn raw_request(server: &ServerHandle, line: &str) -> String {
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(line.as_bytes()).expect("write");
    if !line.ends_with('\n') {
        s.write_all(b"\n").expect("write newline");
    }
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => panic!("read: {e}"),
        }
    }
    String::from_utf8(buf).expect("utf8 response")
}

fn keyed_sweep(id: &str, rid: &str, max_i: u32) -> String {
    WireRequest::new(
        id,
        WireOp::Sweep {
            design: "chemical".to_string(),
            max_i,
        },
    )
    .with_request_id(rid)
    .render_line()
}

#[test]
fn retried_key_is_answered_bit_identically_with_zero_recompute_across_restart() {
    let dir = temp_dir("dedup");
    let req = keyed_sweep("corr-1", "sweep-job-1", 12);

    // First life: execute the keyed sweep for real.
    let server = start(durable_config(&dir)).expect("first start");
    let first = raw_request(&server, &req);
    let parsed = WireResponse::parse(&first).expect("parseable");
    assert!(parsed.outcome.is_ok(), "sweep succeeds: {first}");
    let warm = server.cache_stats();
    assert!(warm.misses > 0, "first execution computed the chain");
    server.shutdown();

    // Second life: the key is settled in the journal; a retry with the
    // same correlation id must be answered with the journaled bytes —
    // and the caches must not move (zero recompute).
    let server = start(durable_config(&dir)).expect("second start");
    let rec = server.recovery().expect("durable server").clone();
    assert_eq!(rec.answered, 1, "one settled key loaded: {rec:?}");
    assert_eq!(rec.replayed, 0, "nothing was unfinished: {rec:?}");
    assert!(
        rec.snapshots_loaded >= 1,
        "sweep cache snapshot reloaded: {rec:?}"
    );

    let before = server.cache_stats();
    let second = raw_request(&server, &req);
    assert_eq!(second, first, "journaled answer is bit-identical");
    let after = server.cache_stats();
    assert_eq!(after, before, "dedup-served retry touches no cache");
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 1, "served from the journal: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admitted_but_unfinished_requests_replay_on_restart_and_then_dedup() {
    let dir = temp_dir("replay");
    // Simulate a server that died after the admit fsync but before
    // completing: journal the admit by hand, with no completion record.
    let req_line = keyed_sweep("corr-r", "replay-job-1", 8);
    {
        let (mut journal, _) = Journal::open_dir(&dir).expect("open journal");
        journal
            .append(RecordKind::Admit, "replay-job-1", req_line.trim_end())
            .expect("append admit");
    }

    let server = start(durable_config(&dir)).expect("start");
    let rec = server.recovery().expect("durable server").clone();
    assert_eq!(
        rec.replayed, 1,
        "the orphaned admit was re-executed: {rec:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.replayed, 1, "{stats:?}");

    // The replay settled the key: a retry dedups instead of recomputing.
    let before = server.cache_stats();
    let resp = raw_request(&server, &req_line);
    let parsed = WireResponse::parse(&resp).expect("parseable");
    assert!(parsed.outcome.is_ok(), "replayed result served: {resp}");
    assert_eq!(
        server.cache_stats(),
        before,
        "retry after replay recomputes nothing"
    );
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_truncated_and_the_settled_prefix_survives() {
    let dir = temp_dir("torn");
    let req = keyed_sweep("corr-t", "torn-job-1", 6);
    {
        let server = start(durable_config(&dir)).expect("first start");
        let resp = raw_request(&server, &req);
        assert!(WireResponse::parse(&resp)
            .expect("parseable")
            .outcome
            .is_ok());
        server.shutdown();
    }
    // Tear the tail: a partial record after the settled ones, exactly
    // what `kill -9` between write and fsync leaves behind.
    let path = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&path).expect("read journal");
    bytes.extend_from_slice(&[0x55, 0x00, 0x00, 0x00, 0xAA]); // half a header
    std::fs::write(&path, &bytes).expect("tear");

    let server = start(durable_config(&dir)).expect("restart");
    let rec = server.recovery().expect("durable server").clone();
    assert!(rec.torn_tail, "tear detected: {rec:?}");
    assert!(
        rec.journal_quarantined.is_none(),
        "a tear is not corruption: {rec:?}"
    );
    assert_eq!(rec.answered, 1, "settled prefix survived: {rec:?}");

    // And the truncation healed the file: a retry still dedups.
    let resp = raw_request(&server, &req);
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_is_quarantined_and_the_server_still_starts() {
    let dir = temp_dir("corrupt-journal");
    let req = keyed_sweep("corr-c", "corrupt-job-1", 6);
    {
        let server = start(durable_config(&dir)).expect("first start");
        raw_request(&server, &req);
        server.shutdown();
    }
    // Flip one bit inside a fully-present record's payload.
    let path = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&path).expect("read journal");
    let target = bytes.len() - 4;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).expect("corrupt");

    let server = start(durable_config(&dir)).expect("restart despite corruption");
    let rec = server.recovery().expect("durable server").clone();
    let quarantined = rec
        .journal_quarantined
        .clone()
        .expect("journal quarantined");
    assert!(quarantined.exists(), "quarantine file kept for forensics");
    assert_eq!(
        rec.answered, 0,
        "a quarantined journal contributes nothing: {rec:?}"
    );

    // Fresh journal: the same key executes fresh (no dedup), succeeds.
    let resp = raw_request(&server, &req);
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 0, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_quarantined_and_sweeps_still_serve() {
    let dir = temp_dir("corrupt-snap");
    {
        let server = start(durable_config(&dir)).expect("first start");
        raw_request(&server, &keyed_sweep("corr-s", "snap-job-1", 10));
        server.shutdown();
    }
    let snap = dir.join(SNAPSHOT_DIR).join("chemical.snap");
    assert!(snap.exists(), "sweep checkpointed a snapshot");
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("corrupt snapshot");

    let server = start(durable_config(&dir)).expect("restart despite corruption");
    let rec = server.recovery().expect("durable server").clone();
    assert_eq!(rec.snapshots_quarantined, 1, "{rec:?}");
    assert_eq!(rec.snapshots_loaded, 0, "{rec:?}");
    assert!(!snap.exists(), "corrupt snapshot moved aside");

    // A fresh (unkeyed) sweep recomputes from scratch and succeeds.
    let resp = raw_request(
        &server,
        &WireRequest::new(
            "fresh",
            WireOp::Sweep {
                design: "chemical".to_string(),
                max_i: 10,
            },
        )
        .render_line(),
    );
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deterministic_failures_are_journaled_and_dedup_served() {
    let dir = temp_dir("fail-dedup");
    let req = WireRequest::new(
        "corr-f",
        WireOp::Optimize {
            design: "nonesuch".to_string(),
            strategy: "single".to_string(),
            v0: 3.3,
            processors: None,
        },
    )
    .with_request_id("bad-design-1")
    .render_line();

    let server = start(durable_config(&dir)).expect("start");
    let first = raw_request(&server, &req);
    let failure = WireResponse::parse(&first)
        .expect("parseable")
        .outcome
        .expect_err("unknown design fails deterministically");
    assert_eq!(failure.code, "VAL-CONFIG");
    // The retry is answered from the journal, not revalidated.
    let second = raw_request(&server, &req);
    assert_eq!(
        second, first,
        "deterministic failure dedups bit-identically"
    );
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_duplicate_keys_are_rejected_while_the_first_executes() {
    let dir = temp_dir("dup-inflight");
    let config = ServerConfig {
        chaos: true,
        chaos_point_delay: Duration::from_millis(25),
        ..durable_config(&dir)
    };
    let server = start(config).expect("start");
    let addr = server.addr();

    // A slow keyed sweep occupies the key...
    let slow = std::thread::spawn({
        let mut req = WireRequest::new(
            "corr-slow",
            WireOp::Sweep {
                design: "chemical".to_string(),
                max_i: 60,
            },
        )
        .with_request_id("contended-key");
        req.fault = Some("slow-sweep".to_string());
        let line = req.render_line();
        move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(line.as_bytes()).expect("write");
            let mut buf = Vec::new();
            let mut byte = [0u8; 1];
            loop {
                match s.read(&mut byte) {
                    Ok(0) => break,
                    Ok(_) if byte[0] == b'\n' => break,
                    Ok(_) => buf.push(byte[0]),
                    Err(e) => panic!("read: {e}"),
                }
            }
            String::from_utf8(buf).expect("utf8")
        }
    });
    std::thread::sleep(Duration::from_millis(150)); // definitely executing

    // ... so the same key from a second client is rejected, not queued.
    let resp = raw_request(&server, &keyed_sweep("corr-dup", "contended-key", 60));
    let failure = WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .expect_err("duplicate in-flight key rejected");
    assert_eq!(failure.code, "RES-DUPLICATE-REQUEST");

    // The first attempt completes untouched; afterwards the key dedups.
    let first = slow.join().expect("slow thread");
    assert!(
        WireResponse::parse(&first)
            .expect("parseable")
            .outcome
            .is_ok(),
        "{first}"
    );
    let retry = raw_request(&server, &keyed_sweep("corr-slow", "contended-key", 60));
    assert_eq!(retry, first, "settled key now dedups bit-identically");
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_version_negotiation_is_explicit_never_garbage() {
    let server = start(ServerConfig {
        jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("stateless server");

    // A v1 frame (no `wire`, no `request_id`) works unchanged.
    let resp = raw_request(&server, "{\"id\":\"v1\",\"op\":\"ping\"}");
    let parsed = WireResponse::parse(&resp).expect("parseable");
    assert_eq!(
        parsed.outcome.expect("pong").get("pong"),
        Some(&Json::Bool(true))
    );

    // An explicit v2 frame works too.
    let resp = raw_request(
        &server,
        "{\"wire\":\"lintra-wire/v2\",\"id\":\"v2\",\"op\":\"ping\",\"request_id\":\"k1\"}",
    );
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());

    // An unknown version is rejected with VAL-CONFIG and the right
    // correlation id — not VAL-MALFORMED-REQUEST, not a hang.
    let resp = raw_request(
        &server,
        "{\"wire\":\"lintra-wire/v9\",\"id\":\"future\",\"op\":\"ping\"}",
    );
    let parsed = WireResponse::parse(&resp).expect("parseable");
    assert_eq!(parsed.id, "future");
    let failure = parsed.outcome.expect_err("unknown version rejected");
    assert_eq!(failure.code, "VAL-CONFIG");
    assert!(
        failure.message.contains("lintra-wire/v9"),
        "{}",
        failure.message
    );
    server.shutdown();
}

#[test]
fn keyed_requests_against_a_stateless_server_execute_without_dedup() {
    let server = start(ServerConfig {
        jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("stateless server");
    let req = keyed_sweep("corr-nd", "no-journal-key", 4);
    let first = raw_request(&server, &req);
    assert!(WireResponse::parse(&first)
        .expect("parseable")
        .outcome
        .is_ok());
    let second = raw_request(&server, &req);
    // Bit-identical because sweeps are deterministic — but *recomputed*,
    // not journal-served: the dedup counter stays zero.
    assert_eq!(second, first);
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 0, "{stats:?}");
    assert_eq!(stats.requests_ok, 2, "{stats:?}");
}

#[test]
fn aborted_attempts_settle_the_admit_but_retries_recompute() {
    let dir = temp_dir("abort-retry");
    let req_line = keyed_sweep("corr-a", "aborted-key", 5);
    {
        // Hand-journal an attempt that ended in a resource abort (say,
        // the process was drained mid-request on its previous life).
        let (mut journal, _) = Journal::open_dir(&dir).expect("open journal");
        journal
            .append(RecordKind::Admit, "aborted-key", req_line.trim_end())
            .expect("append admit");
        let aborted = WireResponse::err(
            "corr-a",
            lintra_bench::wire::WireFailure {
                class: lintra::ErrorClass::Resource,
                code: "RES-SHUTDOWN".to_string(),
                message: "server drained mid-request".to_string(),
            },
        );
        journal
            .append(
                RecordKind::Abort,
                "aborted-key",
                aborted.render_line().trim_end(),
            )
            .expect("append abort");
    }

    let server = start(durable_config(&dir)).expect("start");
    let rec = server.recovery().expect("durable server").clone();
    assert_eq!(rec.replayed, 0, "an abort settles the admit: {rec:?}");

    // The retry executes for real and succeeds this time.
    let resp = raw_request(&server, &req_line);
    assert!(WireResponse::parse(&resp)
        .expect("parseable")
        .outcome
        .is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 0, "aborts are not dedup-served: {stats:?}");
    assert_eq!(stats.requests_ok, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Deterministic-simulation tests for the replicated cluster
//! (`lintra-sim`): bit-reproducibility, the fixed-seed swarm smoke, a
//! checked-in regression seed that catches a deliberately re-introduced
//! fencing bug, and the *real* `lintra-serve::Client` driven under
//! virtual time with zero real sleeping.

use std::sync::Arc;
use std::time::Duration;

use lintra::ErrorClass;
use lintra_bench::wire::{WireFailure, WireOp, WireRequest, WireResponse};
use lintra_serve::{Client, ClientError, Clock, RetryPolicy};
use lintra_sim::{
    run_seed_range, run_shard_sim, run_sim, Reply, RouterSimBug, Scripted, ScriptedNet,
    ShardScenario, ShardSimConfig, SimBug, SimClock, SimConfig,
};

/// The checked-in regression seed: with `SimBug::CollidingPromotionEpoch`
/// this exact run splits the brain; with the real promotion arithmetic it
/// passes. Bump only alongside a config change that re-verifies both.
const REGRESSION_SEED: u64 = 11;

/// The scripted regression scenario: the primary dies while its two
/// followers are partitioned from each other, so both arbitrate alone
/// and promote blind.
fn split_brain_config(bug: SimBug) -> SimConfig {
    SimConfig {
        auto_faults: false,
        scripted: vec![(400, Scripted::CutBoth(1, 2)), (500, Scripted::Crash(0))],
        bug,
        ..SimConfig::default()
    }
}

#[test]
fn same_seed_and_config_reproduce_bit_identical_reports() {
    let config = SimConfig {
        crash_faults: 3,
        partition_faults: 3,
        ..SimConfig::default()
    };
    let first = run_sim(1234, &config);
    let second = run_sim(1234, &config);
    // The whole report — event counts, counters, violations, and the
    // full trace — must be byte-identical across invocations.
    assert_eq!(first, second);
    assert!(first.events > 0);
}

#[test]
fn different_seeds_explore_different_schedules() {
    let config = SimConfig::default();
    let a = run_sim(1, &config);
    let b = run_sim(2, &config);
    assert_ne!(
        (a.events, a.trace.clone()),
        (b.events, b.trace.clone()),
        "two seeds produced the same run; the fault schedule is not seeded"
    );
}

#[test]
fn swarm_smoke_fifty_seeds_hold_all_invariants() {
    let config = SimConfig::default();
    let reports = run_seed_range(1, 50, &config);
    for report in &reports {
        assert!(
            report.passed(),
            "seed {} violated invariants:\n{}",
            report.seed,
            report.repro()
        );
        assert_eq!(report.final_primaries, 1, "seed {}", report.seed);
    }
    // The swarm must actually exercise the interesting machinery, not
    // coast through quiet schedules.
    assert!(
        reports.iter().any(|r| r.promotions > 0),
        "no seed produced a failover"
    );
    assert!(
        reports.iter().any(|r| r.deduped > 0),
        "no seed served a settled retry from the journal"
    );
    assert!(reports.iter().all(|r| r.settled > 0));
}

#[test]
fn regression_seed_catches_colliding_promotion_epochs() {
    let buggy = run_sim(
        REGRESSION_SEED,
        &split_brain_config(SimBug::CollidingPromotionEpoch),
    );
    assert!(
        !buggy.passed(),
        "the injected promotion-epoch collision went undetected"
    );
    assert!(
        buggy.violations.iter().any(|v| v.contains("invariant 1")),
        "expected a split-brain (invariant 1) violation, got:\n{}",
        buggy.repro()
    );
    // The same run under the real collision-free epoch arithmetic is
    // clean: the violation comes from the injected bug, not the model.
    let clean = run_sim(REGRESSION_SEED, &split_brain_config(SimBug::None));
    assert!(clean.passed(), "{}", clean.repro());
}

#[test]
fn failover_serves_settled_retries_with_zero_recompute() {
    let config = SimConfig {
        auto_faults: false,
        scripted: vec![(1000, Scripted::Crash(0)), (4000, Scripted::Restart(0))],
        ..SimConfig::default()
    };
    let report = run_sim(5, &config);
    assert!(report.passed(), "{}", report.repro());
    assert!(
        report.promotions >= 1,
        "the crash never triggered a failover"
    );
    assert!(
        report.deduped >= 1,
        "no settled retry was served from the journal"
    );
    assert!(
        report.fences >= 1,
        "the restarted ex-primary was never fenced"
    );
}

// --- the sharded router simulation -----------------------------------------

/// The checked-in router regression seed: with
/// `RouterSimBug::UnboundedRetries` this exact blackout run blows the
/// retry-volume bound (invariant R2); with the real budget arithmetic
/// it passes. Bump only alongside a config change re-verifying both.
const ROUTER_REGRESSION_SEED: u64 = 7;

/// Scenario configs lengthen the workload so clients are still sending
/// when the outage lands at 1/8 of the run (the default 4-key queues
/// drain before any fault fires).
fn shard_config(scenario: ShardScenario, bug: RouterSimBug) -> ShardSimConfig {
    ShardSimConfig {
        requests_per_client: 16,
        scenario,
        bug,
        ..ShardSimConfig::default()
    }
}

#[test]
fn shard_swarm_holds_router_invariants_across_both_outage_shapes() {
    for seed in 1..=12u64 {
        for scenario in [
            ShardScenario::PrimaryCrash { group: 0 },
            ShardScenario::Blackout { group: 1 },
        ] {
            let config = shard_config(scenario, RouterSimBug::None);
            let report = run_shard_sim(seed, &config);
            assert!(
                report.passed(),
                "seed {seed} / {scenario:?} violated invariants:\n{}",
                report.repro()
            );
            assert!(report.settled > 0, "seed {seed} settled nothing");
        }
    }
}

#[test]
fn a_blacked_out_shard_degrades_its_keys_while_the_others_keep_serving() {
    let config = shard_config(ShardScenario::Blackout { group: 1 }, RouterSimBug::None);
    let report = run_shard_sim(ROUTER_REGRESSION_SEED, &config);
    assert!(report.passed(), "{}", report.repro());
    // The dead shard's keys were refused with RES-SHARD-DOWN during the
    // outage (graceful degradation, not silence)...
    assert!(
        report.shard_down > 0,
        "the blackout never surfaced RES-SHARD-DOWN:\n{}",
        report.repro()
    );
    // ...yet every key — the dead shard's included — settled by the end
    // of the run, and retry volume stayed under the budget bound (R2 is
    // machine-checked after every event inside the run).
    assert_eq!(
        report.settled,
        report.answered.min(report.settled),
        "sanity"
    );
}

#[test]
fn a_crashed_primary_fails_over_behind_the_router() {
    let config = shard_config(ShardScenario::PrimaryCrash { group: 0 }, RouterSimBug::None);
    let report = run_shard_sim(ROUTER_REGRESSION_SEED, &config);
    assert!(report.passed(), "{}", report.repro());
    assert!(
        report.promotions >= 1,
        "the crash never triggered a failover:\n{}",
        report.repro()
    );
    assert!(
        report.fences >= 1,
        "the restarted ex-primary was never fenced:\n{}",
        report.repro()
    );
}

#[test]
fn router_regression_seed_catches_unbounded_retries() {
    let buggy_config = shard_config(
        ShardScenario::Blackout { group: 1 },
        RouterSimBug::UnboundedRetries,
    );
    let buggy = run_shard_sim(ROUTER_REGRESSION_SEED, &buggy_config);
    assert!(
        !buggy.passed(),
        "the injected retry storm went undetected:\n{}",
        buggy.repro()
    );
    assert!(
        buggy.violations.iter().any(|v| v.contains("invariant R2")),
        "expected a retry-budget (R2) violation, got:\n{}",
        buggy.repro()
    );
    // The same run under the real budget arithmetic is clean: the
    // violation comes from the injected bug, not the model.
    let clean_config = shard_config(ShardScenario::Blackout { group: 1 }, RouterSimBug::None);
    let clean = run_shard_sim(ROUTER_REGRESSION_SEED, &clean_config);
    assert!(clean.passed(), "{}", clean.repro());
}

// --- the real Client under virtual time -----------------------------------

fn keyed_ping(id: &str) -> WireRequest {
    WireRequest::new(id, WireOp::Ping).with_request_id(id)
}

/// Asymmetric-partition endpoint walk: the client can reach the fenced
/// ex-primary (which redirects) but its preferred endpoint is dead; the
/// promoted primary sits last in the list. The walk must converge in
/// one attempt without burning any backoff sleep.
#[test]
fn client_walks_past_fenced_ex_primary_without_burning_backoff() {
    let clock = SimClock::new();
    let net = ScriptedNet::new(Arc::clone(&clock));
    net.serve("fenced:1", |line| {
        let id = WireRequest::parse(line).map(|r| r.id).unwrap_or_default();
        let resp = WireResponse::err(
            id,
            WireFailure {
                class: ErrorClass::Resource,
                code: "RES-STALE-EPOCH".to_string(),
                message: "this server was deposed at epoch 3".to_string(),
            },
        );
        Reply::LineAfter(
            resp.render_line().trim_end().to_string(),
            Duration::from_millis(2),
        )
    });
    net.serve("primary:1", |line| {
        let id = WireRequest::parse(line).map(|r| r.id).unwrap_or_default();
        let resp = WireResponse::ok(id, lintra_bench::json::Json::obj([]));
        Reply::LineAfter(
            resp.render_line().trim_end().to_string(),
            Duration::from_millis(2),
        )
    });
    // "dead:1" is never registered: connects to it are refused.
    let mut client = Client::new("fenced:1,dead:1,primary:1");
    client.transport = Arc::new(net);
    client.clock = Arc::clone(&clock) as Arc<dyn Clock>;

    let resp = client
        .request(&keyed_ping("walk-1"))
        .expect("the walk converges");
    assert!(resp.outcome.is_ok(), "{resp:?}");
    // The whole walk — redirect, refused connect, answer — happened
    // inside the first attempt: no backoff sleep was burned (default
    // base backoff is 50 ms; the walk spent only per-hop latency).
    assert!(
        clock.now() < Duration::from_millis(50),
        "walk burned backoff: {:?} of virtual time elapsed",
        clock.now()
    );
}

/// Fully partitioned: every endpoint refuses. The client must fail fast
/// with the deadline-classified error instead of sleeping past the
/// caller's budget — and the whole retry schedule runs in virtual time
/// (the test itself never sleeps).
#[test]
fn client_fails_fast_with_deadline_error_when_fully_partitioned() {
    let clock = SimClock::new();
    let net = ScriptedNet::new(Arc::clone(&clock));
    let mut client = Client::with_policy(
        "dead-a:1,dead-b:1",
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(200),
            ..RetryPolicy::default()
        },
    );
    client.transport = Arc::new(net);
    client.clock = Arc::clone(&clock) as Arc<dyn Clock>;

    let mut req = keyed_ping("partitioned-1");
    req.deadline_ms = Some(50); // response budget: 2*50 + 500 = 600 ms

    let err = client.request(&req).expect_err("every endpoint is dead");
    assert!(
        matches!(err, ClientError::DeadlineExhausted { .. }),
        "expected the fast RES-DEADLINE failure, got {err:?}"
    );
    assert_eq!(err.exit_code(), ErrorClass::Resource.exit_code());
    // Fail-fast means the client never slept past the response budget.
    assert!(
        clock.now() < Duration::from_millis(600),
        "client slept past its budget: {:?} virtual elapsed",
        clock.now()
    );
}

/// Deep swarm for manual/CI-extended runs: `cargo test -p lintra-sim
/// --test sim -- --ignored` sweeps 500 seeds (~seconds of wall clock,
/// ~an hour of virtual cluster time).
#[test]
#[ignore = "extended sweep; run explicitly via --ignored or scripts/sim_swarm.sh"]
fn deep_swarm_five_hundred_seeds() {
    let config = SimConfig::default();
    for report in run_seed_range(1, 500, &config) {
        assert!(
            report.passed(),
            "seed {} violated invariants:\n{}",
            report.seed,
            report.repro()
        );
    }
}

//! Differential test layer for the parallel sweep engine.
//!
//! Every suite design × strategy is run through both the sequential
//! optimizers and the engine-backed paths (incremental `SweepCache`,
//! `ThreadPool` fan-out), and the reports are required to be
//! **bit-identical** — `assert_eq!` on result structs whose `PartialEq`
//! compares every `f64` exactly, not within a tolerance. Diagnostics are
//! compared separately so a reordering introduced by the deterministic
//! merge would fail loudly even if the numbers agreed.

use lintra::engine::{SweepCache, ThreadPool};
use lintra::opt::multi::ProcessorSelection;
use lintra::opt::{asic, multi, single, TechConfig};
use lintra::suite::suite;
use lintra_bench::{
    table2_rows, table2_rows_par, table3_rows, table3_rows_par, table4_rows, table4_rows_par,
};

/// Worker counts exercised by every fan-out test: degenerate (1), the
/// acceptance configuration (4), and oversubscribed (8 workers, 8
/// designs).
const JOBS: [usize; 3] = [1, 4, 8];

#[test]
fn single_processor_cached_matches_sequential_for_every_design() {
    for v0 in [3.3, 5.0] {
        let tech = TechConfig::dac96(v0);
        for d in suite() {
            let seq = single::optimize(&d.system, &tech).unwrap();
            let mut cache = SweepCache::new(&d.system);
            let cached = single::optimize_cached(&d.system, &tech, &mut cache).unwrap();
            assert_eq!(
                seq.diagnostics, cached.diagnostics,
                "{}: diagnostics order",
                d.name
            );
            assert_eq!(seq, cached, "{} at {v0} V", d.name);
        }
    }
}

#[test]
fn multi_processor_pooled_matches_sequential_for_every_design() {
    let tech = TechConfig::dac96(3.3);
    for jobs in JOBS {
        let pool = ThreadPool::new(jobs);
        for d in suite() {
            let (_, _, r) = d.dims();
            for selection in [
                ProcessorSelection::StatesCount,
                ProcessorSelection::SearchBest { max: r + 2 },
            ] {
                let seq = multi::optimize(&d.system, &tech, selection).unwrap();
                let par = multi::optimize_with_pool(&d.system, &tech, selection, &pool).unwrap();
                assert_eq!(
                    seq.diagnostics, par.diagnostics,
                    "{} {selection:?} x{jobs}: diagnostics order",
                    d.name
                );
                assert_eq!(seq, par, "{} {selection:?} with {jobs} worker(s)", d.name);
            }
        }
    }
}

#[test]
fn asic_cached_matches_sequential_for_every_design() {
    let tech = TechConfig::dac96(3.3);
    let cfg = asic::AsicConfig::default();
    for d in suite() {
        let seq = asic::optimize(&d.system, &tech, &cfg).unwrap();
        let mut cache = SweepCache::new(&d.system);
        let cached = asic::optimize_cached(&d.system, &tech, &cfg, &mut cache).unwrap();
        assert_eq!(
            seq.diagnostics, cached.diagnostics,
            "{}: diagnostics order",
            d.name
        );
        assert_eq!(seq, cached, "{}", d.name);
    }
}

#[test]
fn table2_parallel_rows_are_bit_identical_at_every_worker_count() {
    let seq = table2_rows(3.3).unwrap();
    for jobs in JOBS {
        let par = table2_rows_par(3.3, &ThreadPool::new(jobs)).unwrap();
        assert_eq!(seq, par, "table2 with {jobs} worker(s)");
    }
}

#[test]
fn table3_parallel_rows_are_bit_identical_at_every_worker_count() {
    let seq = table3_rows(3.3).unwrap();
    for jobs in JOBS {
        let par = table3_rows_par(3.3, &ThreadPool::new(jobs)).unwrap();
        assert_eq!(seq, par, "table3 with {jobs} worker(s)");
    }
}

#[test]
fn table4_parallel_rows_are_bit_identical_at_every_worker_count() {
    let seq = table4_rows(3.3).unwrap();
    for jobs in JOBS {
        let par = table4_rows_par(3.3, &ThreadPool::new(jobs)).unwrap();
        assert_eq!(seq, par, "table4 with {jobs} worker(s)");
    }
}

/// Repeated parallel runs are deterministic among themselves (scheduling
/// noise cannot leak into the report), not just equal to the sequential
/// baseline once.
#[test]
fn parallel_runs_are_reproducible_across_invocations() {
    let pool = ThreadPool::new(4);
    let first = table3_rows_par(3.3, &pool).unwrap();
    for _ in 0..3 {
        assert_eq!(first, table3_rows_par(3.3, &pool).unwrap());
    }
}

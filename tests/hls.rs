//! Cross-crate HLS integration tests: pipelining, latency analysis, and
//! force-directed scheduling composed over the real benchmark suite.

use lintra::dfg::{build, OpTiming};
use lintra::linsys::unfold;
use lintra::sched::fds::{force_directed_schedule, FdsError};
use lintra::sched::latency::{batch_latency, BatchArrival};
use lintra::sched::{list_schedule, ProcessorModel};
use lintra::suite::{stimulus, suite};
use lintra::transform::horner::HornerForm;
use lintra::transform::mcm_pass::{expand_multiplications, McmPassConfig};
use lintra::transform::pipeline::insert_registers;
use std::collections::HashMap;

fn timing() -> OpTiming {
    OpTiming {
        t_mul: 2.0,
        t_add: 1.0,
        t_shift: 0.0,
    }
}

#[test]
fn pipelining_the_full_asic_graph_preserves_values_and_feedback() {
    for d in suite() {
        let (p, q, r) = d.dims();
        let h = HornerForm::new(&d.system, 3).unwrap();
        let g0 = h.to_dfg().unwrap();
        let (g1, _) = expand_multiplications(&g0, McmPassConfig::default()).unwrap();
        let t = timing();
        let fb_before = g1.feedback_critical_path(&t);
        let (g2, report) = insert_registers(&g1, 3.0, &t).unwrap();
        let fb_after = g2.feedback_critical_path(&t);
        assert!(
            fb_after <= fb_before + 1e-9,
            "{}: feedback path grew",
            d.name
        );
        // Every feed-forward path is cut to one level (+ one op); only the
        // feedback section — which registers must not touch — may remain
        // longer.
        assert!(
            g2.critical_path(&t) <= (3.0 + t.t_mul).max(fb_after),
            "{}: cp {} not cut to level (fb {fb_after})",
            d.name,
            g2.critical_path(&t)
        );
        let _ = report;

        // Semantics unchanged (registers are wires to the simulator).
        let input = stimulus(p, 4 * h.batch, 5);
        let run = |g: &lintra::dfg::Dfg| {
            let mut state = vec![0.0; r];
            let mut out = Vec::new();
            for chunk in input.chunks(h.batch) {
                let mut m = HashMap::new();
                for (s, xs) in chunk.iter().enumerate() {
                    for (c, &x) in xs.iter().enumerate() {
                        m.insert((s, c), x);
                    }
                }
                let (outs, next) = g.simulate(&state, &m).unwrap();
                for s in 0..h.batch {
                    for c in 0..q {
                        out.push(outs[&(s, c)]);
                    }
                }
                state = (0..r).map(|i| next[&i]).collect();
            }
            out
        };
        let a = run(&g1);
        let b = run(&g2);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{}", d.name);
        }
    }
}

#[test]
fn on_arrival_latency_beats_block_on_every_unfolded_design() {
    let t = timing();
    for d in suite() {
        let g = build::from_unfolded(&unfold(&d.system, 4).unwrap()).unwrap();
        let block = batch_latency(&g, &t, 20.0, BatchArrival::Block);
        let onarr = batch_latency(&g, &t, 20.0, BatchArrival::OnArrival);
        assert!(
            onarr.avg_latency < block.avg_latency,
            "{}: on-arrival {} !< block {}",
            d.name,
            onarr.avg_latency,
            block.avg_latency
        );
    }
}

#[test]
fn fds_matches_list_scheduler_feasibility() {
    // For each design: schedule with FDS at the latency the list scheduler
    // achieves with N processors; FDS must not need more total units than
    // N (it has typed units, so compare the sum).
    let model = ProcessorModel::unit();
    for d in suite().into_iter().filter(|d| d.dims().2 <= 6) {
        let g = build::from_state_space(&d.system).unwrap();
        for n in [2usize, 4] {
            let ls = list_schedule(&g, n, &model).unwrap();
            match force_directed_schedule(&g, &model, ls.length) {
                Ok(fds) => {
                    fds.validate(&g, &model)
                        .unwrap_or_else(|e| panic!("{}: {e}", d.name));
                    // Typed units can exceed N slightly (a multiplier and
                    // an ALU cannot share), but not wildly.
                    assert!(
                        fds.multipliers + fds.alus <= 2 * n + 2,
                        "{} N={n}: {} mult + {} alu",
                        d.name,
                        fds.multipliers,
                        fds.alus
                    );
                }
                Err(FdsError::Infeasible { .. }) => {
                    panic!("{} N={n}: list-feasible latency infeasible for FDS", d.name)
                }
            }
        }
    }
}

#[test]
fn fds_hardware_shrinks_with_latency_slack_on_suite() {
    let model = ProcessorModel::unit();
    for d in suite().into_iter().filter(|d| d.dims().2 <= 6) {
        let g = build::from_state_space(&d.system).unwrap();
        // Enough processors to be effectively unbounded.
        let cp = list_schedule(&g, g.len().max(1), &model).unwrap().length;
        let tight = force_directed_schedule(&g, &model, cp).expect("cp feasible");
        let loose = force_directed_schedule(&g, &model, 4 * cp).expect("slack feasible");
        assert!(
            loose.multipliers <= tight.multipliers && loose.alus <= tight.alus,
            "{}: hardware grew with slack",
            d.name
        );
    }
}

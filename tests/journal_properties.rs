//! Property sweep over the write-ahead journal's byte-level parser,
//! driven by the in-tree deterministic [`SplitMix64`] generator (no
//! external proptest dependency). The journal scanner faces arbitrary
//! bytes after a crash; the contract is *totality with classification*:
//!
//! * `scan` never panics, whatever the input;
//! * every outcome is one of Clean / TornTail / Corrupt — truncations
//!   read as torn tails (recoverable), in-place damage as corruption
//!   (quarantine), never the other way around;
//! * records before the first damaged byte always decode (the
//!   valid-prefix property replay correctness rests on).

use lintra::prelude::SplitMix64;
use lintra_serve::journal::{
    compact_records, encode_record, fold_records, scan, Journal, JournalRecord, RecordKind,
    ScanOutcome,
};

const KINDS: [RecordKind; 4] = [
    RecordKind::Admit,
    RecordKind::Done,
    RecordKind::Fail,
    RecordKind::Abort,
];

/// A random but well-formed journal: records, their byte offsets, and
/// the concatenated bytes.
#[allow(clippy::type_complexity)]
fn random_journal(
    rng: &mut SplitMix64,
) -> (Vec<(RecordKind, String, String)>, Vec<usize>, Vec<u8>) {
    let n = rng.next_below(6) as usize + 1;
    let mut specs = Vec::with_capacity(n);
    let mut offsets = vec![0usize];
    let mut bytes = Vec::new();
    for k in 0..n {
        let kind = KINDS[rng.next_below(4) as usize];
        let rid = format!("key-{}", rng.next_below(4));
        // Lines of varying length, including JSON-looking ones with
        // escapes, exercise the payload encoder round trip.
        let line = match rng.next_below(3) {
            0 => format!("{{\"id\":\"r{k}\",\"ok\":true}}"),
            1 => "x".repeat(rng.next_below(80) as usize + 1),
            _ => format!("resp \"quoted\" #{}", rng.next_below(1000)),
        };
        bytes.extend_from_slice(&encode_record(kind, &rid, &line));
        offsets.push(bytes.len());
        specs.push((kind, rid, line));
    }
    (specs, offsets, bytes)
}

#[test]
fn clean_journals_round_trip_exactly() {
    let mut rng = SplitMix64::new(0x6a6f7572);
    for _ in 0..128 {
        let (specs, _, bytes) = random_journal(&mut rng);
        let (records, outcome) = scan(&bytes);
        assert_eq!(outcome, ScanOutcome::Clean);
        assert_eq!(records.len(), specs.len());
        for (r, (kind, rid, line)) in records.iter().zip(&specs) {
            assert_eq!(r.kind, *kind);
            assert_eq!(&r.rid, rid);
            assert_eq!(&r.line, line);
        }
    }
}

#[test]
fn truncation_anywhere_is_a_torn_tail_with_the_prefix_intact() {
    let mut rng = SplitMix64::new(0x74727563);
    for _ in 0..64 {
        let (_, offsets, bytes) = random_journal(&mut rng);
        let cut = rng.next_below(bytes.len() as u64 + 1) as usize;
        let (records, outcome) = scan(&bytes[..cut]);
        let whole = offsets.iter().filter(|o| **o <= cut).count() - 1;
        assert_eq!(records.len(), whole, "cut {cut}: prefix must survive");
        if offsets.contains(&cut) {
            assert_eq!(outcome, ScanOutcome::Clean, "cut {cut} on a boundary");
        } else {
            let ScanOutcome::TornTail { valid_len } = outcome else {
                panic!("cut {cut}: truncation must be a torn tail, got {outcome:?}");
            };
            assert_eq!(valid_len, offsets[whole] as u64, "cut {cut}");
        }
    }
}

#[test]
fn single_bit_flips_never_panic_and_never_corrupt_the_prefix() {
    let mut rng = SplitMix64::new(0x62697466);
    for _ in 0..96 {
        let (_, offsets, bytes) = random_journal(&mut rng);
        let byte = rng.next_below(bytes.len() as u64) as usize;
        let bit = rng.next_below(8) as u8;
        let mut damaged = bytes.clone();
        damaged[byte] ^= 1 << bit;

        let (records, outcome) = scan(&damaged);
        // Records wholly before the damaged byte must decode untouched.
        let intact = offsets.iter().filter(|o| **o <= byte).count() - 1;
        assert!(
            records.len() >= intact,
            "byte {byte} bit {bit}: lost an intact prefix record ({} < {intact})",
            records.len()
        );
        // A flip inside record k's bytes can only be read as clean if it
        // struck a length prefix in a way that still frames validly AND
        // re-checksums — impossible for payload/CRC flips, so anything
        // "clean" must still have decoded every original boundary.
        match outcome {
            ScanOutcome::Clean => assert_eq!(records.len(), offsets.len() - 1),
            ScanOutcome::TornTail { valid_len } => {
                // Only a length-prefix flip can convert damage into a
                // tear (the declared length now runs past EOF) — the
                // tear must sit at a boundary at or before the flip...
                assert!(valid_len as usize <= offsets[offsets.len() - 1]);
                // ...and never discard records before the damage.
                assert!(records.len() >= intact);
            }
            ScanOutcome::Corrupt { offset, .. } => {
                assert!(
                    offset as usize <= byte,
                    "byte {byte}: corruption reported at {offset}, after the flip"
                );
            }
        }
    }
}

#[test]
fn interleaved_partial_records_and_garbage_are_always_classified() {
    let mut rng = SplitMix64::new(0x67617262);
    for _ in 0..96 {
        // Valid records with random garbage (or a partial record)
        // spliced at a random position — the shape a torn multi-writer
        // or recycled disk block would leave.
        let (_, offsets, bytes) = random_journal(&mut rng);
        let splice_at = offsets[rng.next_below(offsets.len() as u64) as usize];
        let mut mangled = bytes[..splice_at].to_vec();
        match rng.next_below(3) {
            0 => {
                // Raw garbage bytes.
                let len = rng.next_below(24) as usize + 1;
                for _ in 0..len {
                    mangled.push(rng.next_below(256) as u8);
                }
            }
            1 => {
                // A partial (torn) record: header + some payload bytes.
                let rec = encode_record(RecordKind::Admit, "torn", "partial-payload");
                let keep = rng.next_below(rec.len() as u64 - 1) as usize + 1;
                mangled.extend_from_slice(&rec[..keep]);
            }
            _ => {
                // A record whose CRC lies.
                let mut rec = encode_record(RecordKind::Done, "liar", "bad-crc");
                rec[4] ^= 0xFF;
                rec.extend_from_slice(&rec.clone()); // and a duplicate after it
                mangled.extend_from_slice(&rec);
            }
        }
        mangled.extend_from_slice(&bytes[splice_at..]);

        // Totality: classified, never a panic; prefix records intact.
        let (records, outcome) = scan(&mangled);
        let intact = offsets.iter().filter(|o| **o <= splice_at).count() - 1;
        assert!(
            records.len() >= intact,
            "splice at {splice_at}: prefix lost ({} < {intact})",
            records.len()
        );
        match outcome {
            ScanOutcome::Clean | ScanOutcome::TornTail { .. } | ScanOutcome::Corrupt { .. } => {}
        }
    }
}

#[test]
fn compaction_of_any_record_stream_is_fold_equivalent_and_idempotent() {
    let mut rng = SplitMix64::new(0x636f6d70);
    for _ in 0..128 {
        let n = rng.next_below(40) as usize;
        let records: Vec<JournalRecord> = (0..n)
            .map(|k| JournalRecord {
                kind: KINDS[rng.next_below(4) as usize],
                rid: format!("key-{}", rng.next_below(8)),
                line: format!("line-{k}"),
            })
            .collect();
        let compacted = compact_records(&records);
        // The one property rotation rests on: replaying the compacted
        // stream reaches the exact state the full stream reaches.
        assert_eq!(fold_records(&compacted), fold_records(&records));
        // Compaction is a fixed point: compacting twice changes nothing.
        assert_eq!(compact_records(&compacted), compacted);
        // And it never grows the stream.
        assert!(compacted.len() <= records.len());
    }
}

#[test]
#[allow(clippy::expect_used)]
fn rotating_journals_recover_the_same_state_as_unrotated_ones() {
    let mut rng = SplitMix64::new(0x726f7461);
    let base = std::env::temp_dir().join(format!("lintra-journal-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for case in 0..24 {
        let dir_plain = base.join(format!("plain-{case}"));
        let dir_rot = base.join(format!("rot-{case}"));
        // A tiny cap forces many rotations; reopening mid-stream at
        // random points exercises segment replay on every boundary.
        let cap = rng.next_below(384) + 64;
        let n = rng.next_below(30) as usize + 4;
        let mut plain = Journal::open_dir(&dir_plain).expect("open plain").0;
        let mut rot = Journal::open_dir_with(&dir_rot, Some(cap))
            .expect("open rotating")
            .0;
        for k in 0..n {
            let kind = KINDS[rng.next_below(4) as usize];
            let rid = format!("key-{}", rng.next_below(6));
            let line = format!("line-{case}-{k}");
            plain.append(kind, &rid, &line).expect("plain append");
            rot.append(kind, &rid, &line).expect("rotating append");
            if rng.next_below(5) == 0 {
                // Reopen the rotating journal mid-stream: recovery must
                // carry the state across segments + live log.
                rot = Journal::open_dir_with(&dir_rot, Some(cap))
                    .expect("reopen rotating")
                    .0;
            }
        }
        drop(plain);
        drop(rot);
        let (_, rec_plain) = Journal::open_dir(&dir_plain).expect("recover plain");
        let (_, rec_rot) = Journal::open_dir(&dir_rot).expect("recover rotated");
        assert_eq!(
            rec_rot.completed, rec_plain.completed,
            "case {case} (cap {cap}): settled state must survive rotation"
        );
        assert_eq!(
            rec_rot.incomplete, rec_plain.incomplete,
            "case {case} (cap {cap}): admission order must survive rotation"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn arbitrary_bytes_never_panic_the_scanner() {
    let mut rng = SplitMix64::new(0x616e79);
    for _ in 0..256 {
        let len = rng.next_below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        // The only contract on noise: total, classified, no panic.
        let (_, outcome) = scan(&bytes);
        match outcome {
            ScanOutcome::Clean | ScanOutcome::TornTail { .. } | ScanOutcome::Corrupt { .. } => {}
        }
    }
}

//! Real-TCP integration tests for the sharded router (`lintra route`):
//! live routing across two shard groups, the `{"router":"status"}`
//! aggregated cluster view, and graceful partial degradation — a dead
//! shard group refuses *its* keys with `RES-SHARD-DOWN` while the other
//! group keeps serving. (Timing-sensitive behavior — hedging, retry
//! budgets under blackout, failover convergence — lives in the
//! deterministic simulation: `tests/sim.rs` and `lintra sim --shards`.)

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use lintra::ErrorClass;
use lintra_bench::json::Json;
use lintra_bench::wire::{WireOp, WireRequest, WireResponse};
use lintra_serve::{
    start, start_router, BreakerConfig, Client, RouterConfig, ServerConfig, ServerHandle,
    ShardRing, MAX_FRAME_BYTES,
};

/// A lightweight standalone shard server (it answers replication status
/// probes as `stateless`, which the router treats as "serving").
#[allow(clippy::expect_used)] // test helper; a failure should abort the test
fn shard_server() -> ServerHandle {
    start(ServerConfig {
        jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("shard server starts")
}

/// Router tuning for fast tests: quick probes, a short connect budget
/// (the dead-endpoint walks must fail fast), and a two-failure breaker
/// so the prober opens a dead shard within a couple of rounds.
fn router_over(shards: Vec<Vec<String>>) -> RouterConfig {
    RouterConfig {
        shards,
        probe_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(250),
        request_timeout: Duration::from_secs(5),
        breaker: BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(400),
        },
        ..RouterConfig::default()
    }
}

/// One raw request/response exchange (no client retry machinery — the
/// router's own verdict must come back on the first attempt).
#[allow(clippy::expect_used)] // test helper; a failure should abort the test
fn raw_line(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to router");
    stream.write_all(line.as_bytes()).expect("write");
    if !line.ends_with('\n') {
        stream.write_all(b"\n").expect("write newline");
    }
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out).expect("router answers");
    out
}

#[allow(clippy::expect_used)] // test helper; a failure should abort the test
fn cluster_status(addr: &str) -> Json {
    let line = raw_line(addr, "{\"router\":\"status\"}");
    Json::parse(&line).expect("cluster status parses")
}

#[allow(clippy::expect_used)] // test helper; a failure should abort the test
fn shard_entries(status: &Json) -> Vec<Json> {
    status
        .get("shards")
        .and_then(Json::as_arr)
        .expect("status has a shards array")
        .to_vec()
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

/// Mines `count` keys that the ring places on `group` — the same
/// `ShardRing::new(2, 16)` arithmetic the router config above uses, so
/// the test knows *a priori* which shard must serve each key.
fn keys_for_group(ring: &ShardRing, group: usize, count: usize, tag: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut i = 0u64;
    while keys.len() < count {
        let key = format!("{tag}-{i}");
        if ring.shard_of(&key) == Some(group) {
            keys.push(key);
        }
        i += 1;
        assert!(i < 10_000, "ring never mapped {count} keys onto {group}");
    }
    keys
}

fn keyed_ping(key: &str) -> WireRequest {
    WireRequest::new(key, WireOp::Ping).with_request_id(key)
}

/// An endpoint that refuses every connect: bind, learn the port, drop
/// the listener.
#[allow(clippy::expect_used)] // test helper; a failure should abort the test
fn dead_endpoint() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

#[test]
fn keyed_requests_route_to_both_shard_groups_and_forward_verbatim() {
    let s0 = shard_server();
    let s1 = shard_server();
    let router = start_router(router_over(vec![
        vec![s0.addr().to_string()],
        vec![s1.addr().to_string()],
    ]))
    .expect("router starts");

    // Mine 4 keys per group with the same ring arithmetic the router
    // uses, then send them all through one client at the router.
    let ring = ShardRing::new(2, 16);
    let client = Client::new(router.addr().to_string());
    for group in 0..2 {
        for key in keys_for_group(&ring, group, 4, "route") {
            let resp = client.request(&keyed_ping(&key)).expect("transport");
            assert!(resp.outcome.is_ok(), "{key}: {resp:?}");
            // Verbatim passthrough: the shard's response id survives.
            assert_eq!(resp.id, key);
        }
    }

    let (requests, forwarded, _retries, shed, shard_down, _hedges, _wins) = router.stats();
    assert_eq!(requests, 8, "every request was counted");
    assert_eq!(forwarded, 8, "every request was forwarded to a shard");
    assert_eq!(shed, 0);
    assert_eq!(shard_down, 0);

    router.shutdown();
    // The split was real: each group executed its own 4 keys (pings
    // count into requests_ok; the router's status probes do not).
    let st0 = s0.shutdown();
    let st1 = s1.shutdown();
    assert!(st0.requests_ok >= 4, "group 0 served {}", st0.requests_ok);
    assert!(st1.requests_ok >= 4, "group 1 served {}", st1.requests_ok);
}

#[test]
fn cluster_status_aggregates_shard_health_budget_and_counters() {
    let s0 = shard_server();
    let s1 = shard_server();
    let router = start_router(router_over(vec![
        vec![s0.addr().to_string()],
        vec![s1.addr().to_string()],
    ]))
    .expect("router starts");
    let addr = router.addr().to_string();

    // The background prober marks both live groups healthy on its own —
    // no client traffic has been sent yet.
    wait_for(
        || {
            shard_entries(&cluster_status(&addr))
                .iter()
                .all(|s| s.get("probed_healthy").and_then(Json::as_bool) == Some(true))
        },
        "both shards probed healthy",
    );

    // One real request so the counters have something to show.
    let client = Client::new(addr.clone());
    let resp = client.request(&keyed_ping("status-1")).expect("transport");
    assert!(resp.outcome.is_ok());

    let status = cluster_status(&addr);
    assert_eq!(
        status.get("router").and_then(Json::as_str),
        Some("status-reply")
    );
    let shards = shard_entries(&status);
    assert_eq!(shards.len(), 2);
    for (g, shard) in shards.iter().enumerate() {
        assert_eq!(
            shard.get("shard").and_then(Json::as_num),
            Some(g as f64),
            "shards listed in order"
        );
        assert_eq!(
            shard.get("breaker").and_then(Json::as_str),
            Some("closed"),
            "a live shard's breaker stays closed"
        );
        let endpoints = shard
            .get("endpoints")
            .and_then(Json::as_arr)
            .expect("endpoints");
        let preferred = shard
            .get("preferred")
            .and_then(Json::as_str)
            .expect("preferred");
        assert!(
            endpoints.iter().any(|e| e.as_str() == Some(preferred)),
            "preferred endpoint comes from the shard's own list"
        );
    }
    // Budget balance and the monotone counters are all present.
    let budget = status
        .get("retry_budget_milli")
        .and_then(Json::as_num)
        .expect("budget balance");
    assert!(budget >= 0.0);
    for counter in [
        "requests",
        "forwarded",
        "retries",
        "shed_retry_budget",
        "shard_down",
        "hedges",
        "hedge_wins",
    ] {
        assert!(
            status.get(counter).and_then(Json::as_num).is_some(),
            "{counter} missing from cluster status"
        );
    }
    assert!(status.get("requests").and_then(Json::as_num) >= Some(1.0));

    router.shutdown();
    s0.shutdown();
    s1.shutdown();
}

#[test]
fn a_dead_shard_group_degrades_only_its_own_keys() {
    let live = shard_server();
    let router = start_router(router_over(vec![
        vec![live.addr().to_string()],
        vec![dead_endpoint()],
    ]))
    .expect("router starts");
    let addr = router.addr().to_string();
    let ring = ShardRing::new(2, 16);

    // The prober alone opens the dead group's breaker — zero client
    // traffic is sacrificed to discover the outage.
    wait_for(
        || {
            shard_entries(&cluster_status(&addr))
                .get(1)
                .and_then(|s| s.get("breaker").and_then(Json::as_str).map(str::to_string))
                .as_deref()
                == Some("open")
        },
        "the dead shard's breaker to open",
    );

    // Keys hashing to the dead group are refused with RES-SHARD-DOWN on
    // the first attempt (fail fast, not a connect-timeout crawl)...
    for key in keys_for_group(&ring, 1, 3, "dead") {
        let line = raw_line(&addr, &keyed_ping(&key).render_line());
        let resp = WireResponse::parse(&line).expect("response parses");
        let failure = resp.outcome.expect_err("dead shard must refuse its keys");
        assert_eq!(failure.code, "RES-SHARD-DOWN", "{key}");
        assert_eq!(failure.class, ErrorClass::Resource);
        assert_eq!(failure.exit_code(), 4);
        assert!(
            failure.message.contains("other shards keep serving"),
            "degradation message tells the operator the blast radius: {}",
            failure.message
        );
    }

    // ...while the live group's keys are completely unaffected.
    let client = Client::new(addr.clone());
    for key in keys_for_group(&ring, 0, 3, "live") {
        let resp = client.request(&keyed_ping(&key)).expect("transport");
        assert!(resp.outcome.is_ok(), "{key} must keep serving: {resp:?}");
    }

    let (_requests, forwarded, _retries, _shed, shard_down, _hedges, _wins) = router.stats();
    assert!(shard_down >= 3, "refusals counted: {shard_down}");
    assert!(forwarded >= 3, "live traffic forwarded: {forwarded}");

    router.shutdown();
    live.shutdown();
}

#[test]
fn garbage_gets_val_malformed_from_the_router_itself() {
    let live = shard_server();
    let router =
        start_router(router_over(vec![vec![live.addr().to_string()]])).expect("router starts");

    let line = raw_line(router.addr(), "this is not a wire request");
    let resp = WireResponse::parse(&line).expect("response parses");
    let failure = resp.outcome.expect_err("garbage must be rejected");
    assert_eq!(failure.code, "VAL-MALFORMED-REQUEST");
    assert_eq!(failure.class, ErrorClass::Validation);

    // The rejection is router-authored: no shard ever saw the line.
    router.shutdown();
    let stats = live.shutdown();
    assert_eq!(stats.requests_failed, 0, "the shard never saw the garbage");
}

#[test]
fn the_router_caps_newline_free_floods_with_val_frame_too_large() {
    let live = shard_server();
    let router =
        start_router(router_over(vec![vec![live.addr().to_string()]])).expect("router starts");

    let mut stream = TcpStream::connect(router.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let junk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent <= MAX_FRAME_BYTES + junk.len() {
        if stream.write_all(&junk).is_err() {
            break; // router already slammed the door mid-flood
        }
        sent += junk.len();
    }

    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("router answers the oversized frame");
    let resp = WireResponse::parse(&line).expect("response parses");
    let failure = resp.outcome.expect_err("oversized frame must be rejected");
    assert_eq!(failure.code, "VAL-FRAME-TOO-LARGE");
    assert_eq!(failure.class, ErrorClass::Validation);

    router.shutdown();
    live.shutdown();
}

//! Deterministic fault-injection harness: every fault class in
//! [`lintra::diag::fault`] is driven through all three optimizers and must
//! produce either a *typed, classified* error or a *graceful degradation*
//! with an explanatory diagnostic — never a panic, a NaN result, or a
//! silent wrong answer.

use lintra::diag::fault::{self, Fault};
use lintra::engine::{SweepCtl, ThreadPool};
use lintra::linsys::StateSpace;
use lintra::opt::multi::ProcessorSelection;
use lintra::opt::{asic, multi, saturate, single, DiagCode, OptError, TechConfig};
use lintra::{ErrorClass, LintraError};

/// A healthy small design for the faults that poison something other than
/// the system itself (resource starvation, sub-threshold supply).
fn healthy_system(seed: u64) -> StateSpace {
    lintra::suite::random_stable(1, 1, 4, 0.2, seed)
}

fn classify(e: OptError) -> LintraError {
    LintraError::from(e)
}

#[test]
fn every_fault_class_has_a_defined_outcome_in_every_optimizer() {
    let tech = TechConfig::dac96(3.3);
    let cfg = asic::AsicConfig::default();
    for fault in Fault::all() {
        for seed in [1u64, 17, 99] {
            match fault {
                Fault::UnstableSystem => {
                    let (a, b, c, d) = fault::unstable_system(1, 1, 4, seed);
                    let sys = StateSpace::new(a, b, c, d).expect("finite inputs");
                    for err in [
                        single::optimize(&sys, &tech).map(|_| ()).unwrap_err(),
                        multi::optimize(&sys, &tech, ProcessorSelection::StatesCount)
                            .map(|_| ())
                            .unwrap_err(),
                        asic::optimize(&sys, &tech, &cfg).map(|_| ()).unwrap_err(),
                    ] {
                        let e = classify(err);
                        assert_eq!(e.class(), ErrorClass::Numerical, "{fault:?}: {e}");
                        assert_eq!(e.code(), "NUM-UNSTABLE", "{fault:?}: {e}");
                    }
                }
                Fault::NanCoefficients => {
                    // The guardrail sits at the constructor: poisoned
                    // coefficients never reach the optimizers at all.
                    let (a, b, c, d) = fault::nan_coefficients(1, 1, 4, seed);
                    let err = StateSpace::new(a, b, c, d).unwrap_err();
                    let e = LintraError::from(err);
                    assert_eq!(e.class(), ErrorClass::Numerical);
                    assert_eq!(e.code(), "NUM-NONFINITE");
                }
                Fault::ResourceStarvation => {
                    let sys = healthy_system(seed);
                    let err = multi::optimize(&sys, &tech, fault::starved_selection())
                        .map(|_| ())
                        .unwrap_err();
                    let e = classify(err);
                    assert_eq!(e.class(), ErrorClass::Resource, "{e}");
                    // The single-processor and ASIC flows take no
                    // processor-count knob and must be unaffected.
                    single::optimize(&sys, &tech).expect("single unaffected");
                    asic::optimize(&sys, &tech, &cfg).expect("asic unaffected");
                }
                Fault::BisectionFailure => {
                    let sys = healthy_system(seed);
                    let bad = fault::sub_threshold_tech();
                    let s = single::optimize(&sys, &bad).expect("degrades, not errors");
                    assert_eq!(s.real.scaling.voltage, bad.initial_voltage);
                    assert_eq!(s.real.scaling.slowdown_at_voltage, 1.0);
                    assert!(
                        s.diagnostics
                            .iter()
                            .any(|d| d.code == DiagCode::FrequencyOnlyFallback),
                        "single must explain its frequency-only fallback"
                    );
                    assert!(s.real.power_reduction().is_finite());
                    assert!(s.real.power_reduction() >= 1.0 - 1e-9);

                    let m = multi::optimize(&sys, &bad, ProcessorSelection::StatesCount)
                        .expect("degrades, not errors");
                    assert_eq!(m.scaling.voltage, bad.initial_voltage);
                    assert!(m
                        .diagnostics
                        .iter()
                        .any(|d| d.code == DiagCode::FrequencyOnlyFallback));
                    assert!(m.power_reduction().is_finite());

                    let a = asic::optimize(&sys, &bad, &cfg).expect("degrades, not errors");
                    assert_eq!(a.voltage, bad.initial_voltage);
                    assert!(a
                        .diagnostics
                        .iter()
                        .any(|d| d.code == DiagCode::FrequencyOnlyFallback));
                    assert!(a.improvement().is_finite());
                }
                Fault::WorkerPanic => {
                    let pool = ThreadPool::new(3);
                    let (f, poisoned) = fault::panicking_sweep_point(12, seed);
                    let results = pool.map((0..12).collect(), &f);
                    for (idx, r) in results.iter().enumerate() {
                        if idx == poisoned {
                            let err = r.clone().expect_err("poisoned point must fail");
                            let e = LintraError::from(err);
                            assert_eq!(e.class(), ErrorClass::Resource, "{e}");
                            assert_eq!(e.code(), "RES-WORKER-PANIC", "{e}");
                            assert!(
                                e.to_string().contains(&format!("sweep point {poisoned}")),
                                "error must blame the poisoned index: {e}"
                            );
                        } else {
                            assert_eq!(*r, Ok(idx), "sibling {idx} must still evaluate");
                        }
                    }
                    // No deadlock, no poisoned locks: the same pool keeps
                    // serving healthy sweeps afterwards.
                    let healthy = pool.try_map((0..12).collect(), |x: usize| x * 2).unwrap();
                    assert_eq!(healthy, (0..24).step_by(2).collect::<Vec<_>>());
                }
                Fault::SlowWorker => {
                    // The engine's watchdog flags the stalled point as
                    // RES-WORKER-STALL; siblings are unaffected. The full
                    // client-visible loop is driven in tests/chaos.rs.
                    let pool = ThreadPool::new(2);
                    let budget = std::time::Duration::from_millis(20);
                    let (f, stalled) = fault::slow_sweep_point(8, seed, budget * 4);
                    let results = pool.map_ctl(
                        (0..8).collect(),
                        &f,
                        SweepCtl {
                            token: None,
                            stall_budget: Some(budget),
                        },
                    );
                    for (idx, r) in results.iter().enumerate() {
                        if idx == stalled {
                            let err = r.clone().expect_err("stalled point must be flagged");
                            let e = LintraError::from(err);
                            assert_eq!(e.class(), ErrorClass::Resource, "{e}");
                            assert_eq!(e.code(), "RES-WORKER-STALL", "{e}");
                        } else {
                            assert_eq!(*r, Ok(idx), "sibling {idx} must still evaluate");
                        }
                    }
                }
                Fault::ConnDrop => {
                    // Service-layer fault: here we only pin the injection
                    // helper's contract (a strict prefix of a valid line);
                    // the server/client behavior is driven in chaos.rs.
                    let line = "{\"id\": \"r1\", \"op\": \"ping\"}\n";
                    let cut = fault::truncated_request(line, seed);
                    assert!(!cut.is_empty() && line.starts_with(&cut));
                    assert!(cut.len() < line.trim_end().len());
                }
                Fault::MalformedRequest => {
                    // Same: the lines must be deterministic and plentiful;
                    // the VAL-MALFORMED-REQUEST response is asserted over
                    // the wire in chaos.rs.
                    let lines = fault::malformed_request_lines(seed);
                    assert_eq!(lines, fault::malformed_request_lines(seed));
                    assert!(lines.len() >= 5);
                }
                Fault::SaturationBudget => {
                    // A budget exhausted on the very first sweep must
                    // degrade to a best-so-far extraction with the
                    // documented diagnostic — never an error, never a
                    // result worse than the fixed script.
                    let sys = healthy_system(seed);
                    let starved = fault::tiny_saturation_budget();
                    let r = saturate::optimize(&sys, &tech, &starved)
                        .expect("budget exhaustion degrades, not errors");
                    assert!(!r.stats.saturated(), "{fault:?}: budget must bite");
                    let diag = r
                        .diagnostics
                        .iter()
                        .find(|d| d.code == DiagCode::SaturationBudget)
                        .expect("budget stop must surface a diagnostic");
                    assert!(
                        diag.message.contains("RES-SATURATION-BUDGET"),
                        "{fault:?}: {diag}"
                    );
                    assert!(r.optimized.total_j().is_finite());
                    assert!(
                        r.vs_script() >= 1.0 - 1e-12,
                        "{fault:?}: best-so-far must never lose to the script"
                    );
                    // A strict caller sees the same budget stop as a
                    // typed, classified error instead.
                    let strict = saturate::SaturateConfig {
                        require_saturation: true,
                        ..starved
                    };
                    let err = saturate::optimize(&sys, &tech, &strict)
                        .map(|_| ())
                        .expect_err("strict mode must refuse an unsaturated result");
                    let e = classify(err);
                    assert_eq!(e.class(), ErrorClass::Resource, "{fault:?}: {e}");
                    assert_eq!(e.code(), "RES-SATURATION-BUDGET", "{fault:?}: {e}");
                }
                Fault::ReplLinkDrop | Fault::LaggingFollower | Fault::StaleEpochPrimary => {
                    // Replication faults live above the optimizer layer:
                    // the deterministic injection knob is
                    // `lintra_serve::ReplChaos` and the driven loop
                    // (resync, catch-up, fencing) runs in the serve
                    // crate's tests/replication.rs. Here we pin the
                    // contract this crate owns: the diagnostics the
                    // faults must surface stay documented with their
                    // frozen classes.
                    let codes = lintra::diag::documented_codes();
                    let class_of = |code: &str| {
                        codes
                            .iter()
                            .find(|(c, _)| *c == code)
                            .map(|(_, class)| *class)
                    };
                    let required = match fault {
                        Fault::ReplLinkDrop | Fault::LaggingFollower => {
                            ("IO-REPL-CORRUPT", ErrorClass::Io)
                        }
                        _ => ("RES-STALE-EPOCH", ErrorClass::Resource),
                    };
                    assert_eq!(class_of(required.0), Some(required.1), "{fault:?}");
                    assert_eq!(
                        class_of("RES-NOT-PRIMARY"),
                        Some(ErrorClass::Resource),
                        "{fault:?}: replicas must keep redirecting compute"
                    );
                }
            }
        }
    }
}

#[test]
fn asic_unfolding_cap_degrades_with_diagnostic() {
    // A tight cap keeps the ASIC flow from reaching the voltage floor; it
    // must still succeed, scale as far as the cap allows, and say so.
    let sys = healthy_system(7);
    let tech = TechConfig::dac96(5.0);
    let cfg = asic::AsicConfig {
        max_unfolding: 1,
        ..asic::AsicConfig::default()
    };
    let r = asic::optimize(&sys, &tech, &cfg).expect("capped, not failed");
    assert!(r.unfolding <= 1);
    assert!(r
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::UnfoldingCapped));
    assert!(r.voltage > tech.voltage.v_min() - 1e-12);
    assert!(r.improvement().is_finite());
}

#[test]
fn voltage_floor_clamp_is_diagnosed_not_silent() {
    // A deep slowdown pushes the voltage to the 1.1 V floor; the clamp
    // must be visible in the diagnostics.
    let sys = lintra::suite::by_name("iir6")
        .expect("benchmark exists")
        .system
        .clone();
    let tech = TechConfig::dac96(5.0);
    let r = asic::optimize(&sys, &tech, &asic::AsicConfig::default()).expect("optimizes");
    assert!(r.voltage >= tech.voltage.v_min() - 1e-12);
    if (r.voltage - tech.voltage.v_min()).abs() < 1e-9 {
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == DiagCode::VoltageClamped),
            "clamping at the floor must produce a diagnostic"
        );
    }
}

#[test]
fn fault_outcomes_are_deterministic() {
    // Same seed, same classified outcome — the harness is reproducible.
    let tech = TechConfig::dac96(3.3);
    for _ in 0..2 {
        let (a, b, c, d) = fault::unstable_system(1, 1, 3, 123);
        let sys = StateSpace::new(a, b, c, d).expect("finite");
        let e = classify(single::optimize(&sys, &tech).map(|_| ()).unwrap_err());
        assert_eq!(e.code(), "NUM-UNSTABLE");
        assert_eq!(e.exit_code(), 3);
    }
}

#[test]
fn error_classes_map_to_distinct_exit_codes() {
    let mut codes: Vec<i32> = [
        ErrorClass::Validation,
        ErrorClass::Numerical,
        ErrorClass::Resource,
        ErrorClass::Convergence,
        ErrorClass::Io,
    ]
    .iter()
    .map(|c| c.exit_code())
    .collect();
    assert!(
        codes.iter().all(|&c| c != 0),
        "all error exit codes are nonzero"
    );
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), 5, "every class keeps its own exit code");
}

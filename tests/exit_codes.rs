//! Exit-code stability snapshot.
//!
//! The class → exit-code mapping and the documented diagnostic codes are
//! a public contract: scripts grep the codes and branch on the exit
//! status. This suite pins both so a refactor cannot silently renumber
//! them — if one of these assertions fails, the change is breaking and
//! needs a deliberate migration note, not a test update.

use lintra::{ErrorClass, LintraError};
use lintra_bench::wire::WireFailure;
use lintra_cli::CliError;

#[test]
fn class_exit_codes_are_frozen() {
    let expected = [
        (ErrorClass::Validation, 2),
        (ErrorClass::Numerical, 3),
        (ErrorClass::Resource, 4),
        (ErrorClass::Convergence, 5),
        (ErrorClass::Io, 6),
    ];
    assert_eq!(
        ErrorClass::all().len(),
        expected.len(),
        "a new class needs a frozen code here"
    );
    for (class, code) in expected {
        assert_eq!(
            class.exit_code(),
            code,
            "{class:?} renumbered — breaking change"
        );
    }
}

#[test]
fn class_labels_round_trip() {
    for class in ErrorClass::all() {
        assert_eq!(ErrorClass::from_label(class.label()), Some(class));
    }
    assert_eq!(ErrorClass::from_label("nonesuch"), None);
}

#[test]
fn documented_codes_are_unique_and_prefixed_by_class() {
    let codes = lintra::diag::documented_codes();
    let mut seen = std::collections::BTreeSet::new();
    for (code, class) in codes {
        assert!(seen.insert(code), "duplicate documented code {code}");
        let prefix = match class {
            ErrorClass::Validation => "VAL-",
            ErrorClass::Numerical => "NUM-",
            ErrorClass::Resource => "RES-",
            ErrorClass::Convergence => "CNV-",
            ErrorClass::Io => "IO-",
        };
        assert!(
            code.starts_with(prefix),
            "{code} is documented as {class:?} but lacks the {prefix} prefix"
        );
    }
}

#[test]
fn service_codes_are_documented() {
    let codes = lintra::diag::documented_codes();
    for required in [
        "RES-OVERLOAD",
        "RES-CIRCUIT-OPEN",
        "RES-SHUTDOWN",
        "RES-DEADLINE",
        "RES-WORKER-STALL",
        "RES-WORKER-PANIC",
        "RES-DUPLICATE-REQUEST",
        "VAL-MALFORMED-REQUEST",
        "VAL-CONFIG",
        "IO-JOURNAL-CORRUPT",
        "IO-SNAPSHOT-CORRUPT",
        "RES-STALE-EPOCH",
        "RES-NOT-PRIMARY",
        "IO-REPL-CORRUPT",
        "RES-SATURATION-BUDGET",
        "CNV-SIM-INVARIANT",
        "VAL-FRAME-TOO-LARGE",
        "RES-SHARD-DOWN",
        "RES-RETRY-BUDGET",
    ] {
        assert!(
            codes.iter().any(|(c, _)| *c == required),
            "{required} must stay in documented_codes()"
        );
    }
}

#[test]
fn durability_codes_map_to_their_classes() {
    let codes = lintra::diag::documented_codes();
    let class_of = |code: &str| {
        codes
            .iter()
            .find(|(c, _)| *c == code)
            .map(|(_, class)| *class)
    };
    assert_eq!(
        class_of("RES-DUPLICATE-REQUEST"),
        Some(ErrorClass::Resource)
    );
    assert_eq!(class_of("IO-JOURNAL-CORRUPT"), Some(ErrorClass::Io));
    assert_eq!(class_of("IO-SNAPSHOT-CORRUPT"), Some(ErrorClass::Io));
    assert_eq!(class_of("RES-STALE-EPOCH"), Some(ErrorClass::Resource));
    assert_eq!(class_of("RES-NOT-PRIMARY"), Some(ErrorClass::Resource));
    assert_eq!(class_of("IO-REPL-CORRUPT"), Some(ErrorClass::Io));
    assert_eq!(
        class_of("VAL-FRAME-TOO-LARGE"),
        Some(ErrorClass::Validation)
    );
    assert_eq!(class_of("RES-SHARD-DOWN"), Some(ErrorClass::Resource));
    assert_eq!(class_of("RES-RETRY-BUDGET"), Some(ErrorClass::Resource));

    // A corrupt snapshot surfaces as IO-SNAPSHOT-CORRUPT through the
    // standard From conversion; an I/O failure stays IO-FAILURE.
    let corrupt = LintraError::from(lintra::engine::SnapshotError::Corrupt {
        detail: "checksum mismatch".to_string(),
    });
    assert_eq!(corrupt.code(), "IO-SNAPSHOT-CORRUPT");
    assert_eq!(corrupt.class(), ErrorClass::Io);
    assert_eq!(corrupt.exit_code(), 6);
    let io = LintraError::from(lintra::engine::SnapshotError::Io(std::io::Error::other(
        "disk full",
    )));
    assert_eq!(io.code(), "IO-FAILURE");
}

#[test]
fn wire_failures_exit_like_local_failures_of_the_same_class() {
    for class in ErrorClass::all() {
        let remote = WireFailure {
            class,
            code: "X-TEST".to_string(),
            message: "snapshot".to_string(),
        };
        assert_eq!(remote.exit_code(), class.exit_code());
        assert_eq!(CliError::Remote(remote).exit_code(), class.exit_code());
    }
}

#[test]
fn cli_error_variants_keep_their_codes() {
    assert_eq!(CliError::Usage("bad".into()).exit_code(), 2);
    assert_eq!(
        CliError::Io(std::io::Error::other("disk full")).exit_code(),
        6
    );
    let pipeline = CliError::Pipeline(LintraError::new(
        ErrorClass::Convergence,
        "CNV-TEST",
        "did not settle",
    ));
    assert_eq!(pipeline.exit_code(), 5);
}

//! Control-dataflow-graph (CDFG) intermediate representation.
//!
//! §1 of the paper defines linear systems in terms of their CDFG: all
//! operators are two-input additions, variable-plus-constant additions, or
//! constant multiplications. This crate provides that IR:
//!
//! * [`Dfg`] — an append-only DAG of [`NodeKind`] nodes (predecessors must
//!   precede their users, so the construction order *is* a topological
//!   order and cycles are impossible by construction; cross-iteration
//!   feedback is expressed through matching [`NodeKind::StateIn`] /
//!   [`NodeKind::StateOut`] pairs),
//! * [`build::from_state_space`] — the *maximally fast* form used
//!   throughout the paper: one constant multiplication per non-trivial
//!   coefficient followed by a balanced binary adder tree,
//! * critical-path analysis ([`Dfg::critical_path`],
//!   [`Dfg::feedback_critical_path`]) with per-operation timings,
//! * the unified [`cost::CostModel`] trait pricing nodes, censuses and
//!   graphs (op counts, processor cycles, critical path here; the `C·V²`
//!   energy model implements it from `lintra-power`),
//! * bit-true [`Dfg::simulate`] used to prove builders equivalent to the
//!   state-space semantics,
//! * [`Dfg::to_dot`] for inspection.
//!
//! # Examples
//!
//! ```
//! use lintra_dfg::{build, OpTiming};
//! use lintra_linsys::StateSpace;
//! use lintra_matrix::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = StateSpace::new(
//!     Matrix::from_rows(&[&[0.5, 0.3], &[0.2, 0.4]]),
//!     Matrix::from_rows(&[&[1.0], &[0.7]]),
//!     Matrix::from_rows(&[&[0.6, 0.9]]),
//!     Matrix::from_rows(&[&[0.1]]),
//! )?;
//! let g = build::from_state_space(&sys)?;
//! // CP = t_mul + ceil(log2(1 + R)) * t_add with R = 2.
//! let t = OpTiming { t_mul: 2.0, t_add: 1.0, t_shift: 0.0 };
//! assert_eq!(g.feedback_critical_path(&t), 2.0 + 2.0);
//! # Ok(())
//! # }
//! ```

pub mod build;
pub mod cost;
mod graph;

pub use cost::{CostModel, CriticalPathCost, CycleCost, OpCountCost};
pub use graph::{Dfg, DfgError, NodeId, NodeKind, OpCounts, OpTiming};

//! Unified cost models over the DFG node language.
//!
//! Before this module the repository had three disconnected notions of
//! "cost": processor cycles (`linsys::OpCount::cycles`), datapath energy
//! (`power::EnergyModel::energy_per_sample`, the paper's `C·V²` model) and
//! the critical path (`Dfg::critical_path`). [`CostModel`] puts them behind
//! one trait so the optimizers, the e-graph extractor and the bench tables
//! all price a graph the same way.
//!
//! Two entry points matter for exactness:
//!
//! * [`CostModel::census_cost`] prices an operation *census* ([`OpCounts`])
//!   with one `count · weight` product per class, summed multiplies-first.
//!   This is bit-identical to the legacy arithmetic
//!   (`muls·w_mul + adds·w_add` for cycles, `count · C·V²` per class for
//!   energy), which the parity-freeze tests pin down.
//! * [`CostModel::node_cost`] prices a single node — the additive objective
//!   the e-graph extractor minimizes per e-class.
//!
//! Non-additive models (the critical path) override [`CostModel::graph_cost`]
//! and keep `node_cost` as the per-node delay, which the extractor uses as
//! an additive surrogate.

use crate::graph::{Dfg, NodeKind, OpCounts, OpTiming};

/// A pricing function over DFG nodes, censuses and whole graphs.
pub trait CostModel {
    /// Short stable identifier (used in diagnostics and bench rows).
    fn name(&self) -> &'static str;

    /// Cost contributed by a single node of the given kind.
    fn node_cost(&self, kind: &NodeKind) -> f64;

    /// Cost of an operation census. The default prices each class by its
    /// representative [`node_cost`](CostModel::node_cost) and sums
    /// multiplies-first — the exact association order of the legacy
    /// cycle/energy formulas, so additive models inherit bit-identical
    /// parity for free.
    fn census_cost(&self, counts: &OpCounts) -> f64 {
        counts.muls as f64 * self.node_cost(&NodeKind::MulConst(0.0))
            + counts.adds as f64 * self.node_cost(&NodeKind::Add)
            + counts.shifts as f64 * self.node_cost(&NodeKind::Shift(0))
            + counts.delays as f64 * self.node_cost(&NodeKind::Delay)
            + counts.negs as f64 * self.node_cost(&NodeKind::Neg)
    }

    /// Cost of a whole graph; defaults to the census cost.
    fn graph_cost(&self, g: &Dfg) -> f64 {
        self.census_cost(&g.op_counts())
    }
}

/// Unit cost per arithmetic operation (adds + multiplies + shifts) — the
/// op-count tables of §3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCountCost;

impl CostModel for OpCountCost {
    fn name(&self) -> &'static str {
        "op-count"
    }

    fn node_cost(&self, kind: &NodeKind) -> f64 {
        match kind {
            NodeKind::Add | NodeKind::Sub | NodeKind::MulConst(_) | NodeKind::Shift(_) => 1.0,
            _ => 0.0,
        }
    }
}

/// Processor cycles per sample: `muls·w_mul + adds·w_add`, the §3/§4
/// instruction-count model (`linsys::OpCount::cycles`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleCost {
    /// Cycles per constant multiplication.
    pub w_mul: f64,
    /// Cycles per addition/subtraction.
    pub w_add: f64,
}

impl CostModel for CycleCost {
    fn name(&self) -> &'static str {
        "cycles"
    }

    fn node_cost(&self, kind: &NodeKind) -> f64 {
        match kind {
            NodeKind::MulConst(_) => self.w_mul,
            NodeKind::Add | NodeKind::Sub => self.w_add,
            _ => 0.0,
        }
    }
}

/// Longest register-to-register combinational delay — the clock-period
/// model behind the voltage feasibility checks. Not additive over nodes:
/// [`graph_cost`](CostModel::graph_cost) is the true critical path, while
/// [`node_cost`](CostModel::node_cost) (the per-node delay) serves the
/// extractor as an additive surrogate that favours shallow operators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPathCost {
    /// Per-operation delays.
    pub timing: OpTiming,
}

impl CostModel for CriticalPathCost {
    fn name(&self) -> &'static str {
        "critical-path"
    }

    fn node_cost(&self, kind: &NodeKind) -> f64 {
        self.timing.of(kind)
    }

    fn graph_cost(&self, g: &Dfg) -> f64 {
        g.critical_path(&self.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn small_graph() -> Dfg {
        // y = (x * 0.5 + s) << 1, s' = y
        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let s = g.push(NodeKind::StateIn { index: 0 }, vec![]).unwrap();
        let m = g.push(NodeKind::MulConst(0.5), vec![x]).unwrap();
        let a = g.push(NodeKind::Add, vec![m, s]).unwrap();
        let sh = g.push(NodeKind::Shift(1), vec![a]).unwrap();
        g.push(
            NodeKind::Output {
                sample: 0,
                channel: 0,
            },
            vec![sh],
        )
        .unwrap();
        g.push(NodeKind::StateOut { index: 0 }, vec![sh]).unwrap();
        g
    }

    #[test]
    fn op_count_prices_arithmetic_only() {
        let g = small_graph();
        let m = OpCountCost;
        assert_eq!(m.graph_cost(&g), 3.0); // 1 mul + 1 add + 1 shift
        assert_eq!(m.node_cost(&NodeKind::Delay), 0.0);
        assert_eq!(m.node_cost(&NodeKind::Neg), 0.0);
    }

    #[test]
    fn cycle_cost_matches_the_legacy_formula_exactly() {
        // Bit-identical to OpCount::cycles = muls·w_mul + adds·w_add for
        // weights that do not round trivially.
        let (w_mul, w_add) = (3.000000000000123, 1.0000000007);
        let m = CycleCost { w_mul, w_add };
        for (muls, adds) in [(0u64, 0u64), (1, 0), (17, 5), (12345, 999)] {
            let counts = OpCounts {
                adds,
                muls,
                shifts: 7,
                delays: 3,
                negs: 2,
            };
            let legacy = muls as f64 * w_mul + adds as f64 * w_add;
            assert_eq!(m.census_cost(&counts), legacy);
        }
    }

    #[test]
    fn critical_path_cost_is_the_true_critical_path() {
        let g = small_graph();
        let timing = OpTiming::default();
        let m = CriticalPathCost { timing };
        assert_eq!(m.graph_cost(&g), g.critical_path(&timing));
        // The additive surrogate over-approximates the path.
        let additive: f64 = (0..g.len())
            .map(|i| m.node_cost(&g.node(NodeId(i)).kind))
            .sum();
        assert!(additive >= m.graph_cost(&g));
    }

    #[test]
    fn census_default_sums_multiplies_first() {
        // The default census order is pinned: models relying on it for
        // parity (CycleCost, EnergyCost in lintra-power) must not drift.
        let m = CycleCost {
            w_mul: 2.0,
            w_add: 1.0,
        };
        let counts = OpCounts {
            adds: 3,
            muls: 2,
            shifts: 1,
            delays: 1,
            negs: 0,
        };
        assert_eq!(m.census_cost(&counts), 2.0 * 2.0 + 3.0 * 1.0);
    }
}

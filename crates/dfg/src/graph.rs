//! The DAG structure, validation, analysis, and simulation.

use std::collections::HashMap;
use std::fmt;

/// Index of a node inside a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Operator set of a linear-computation CDFG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Primary input: sample offset within the batch and channel index.
    Input {
        /// Which sample of the processed batch (0 for non-unfolded graphs).
        sample: usize,
        /// Input channel (column of `X`).
        channel: usize,
    },
    /// Previous-iteration state variable `S[n−1][index]`.
    StateIn {
        /// State index.
        index: usize,
    },
    /// A literal constant value.
    Const(f64),
    /// Two-operand addition.
    Add,
    /// Two-operand subtraction (`pred0 − pred1`).
    Sub,
    /// Multiplication by a constant.
    MulConst(f64),
    /// Multiplication by `2^amount` (hardwired shift; `amount` may be
    /// negative).
    Shift(i32),
    /// Arithmetic negation.
    Neg,
    /// A register (pipeline stage); value passes through, time restarts.
    Delay,
    /// Primary output: sample offset within the batch and channel index.
    Output {
        /// Which sample of the produced batch.
        sample: usize,
        /// Output channel (row of `Y`).
        channel: usize,
    },
    /// Next-iteration state variable `S[n][index]`.
    StateOut {
        /// State index.
        index: usize,
    },
}

impl NodeKind {
    /// Required number of predecessors.
    pub fn arity(&self) -> usize {
        match self {
            NodeKind::Input { .. } | NodeKind::StateIn { .. } | NodeKind::Const(_) => 0,
            NodeKind::Add | NodeKind::Sub => 2,
            NodeKind::MulConst(_)
            | NodeKind::Shift(_)
            | NodeKind::Neg
            | NodeKind::Delay
            | NodeKind::Output { .. }
            | NodeKind::StateOut { .. } => 1,
        }
    }

    /// `true` for nodes that occupy a functional unit (cost model).
    pub fn is_operation(&self) -> bool {
        matches!(
            self,
            NodeKind::Add | NodeKind::Sub | NodeKind::MulConst(_) | NodeKind::Shift(_)
        )
    }
}

/// One node: an operator and its predecessor edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operator.
    pub kind: NodeKind,
    /// Predecessor node ids (all strictly smaller than this node's id).
    pub preds: Vec<NodeId>,
}

/// Error from [`Dfg::push`], [`Dfg::validate`], or [`Dfg::simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// Wrong number of predecessors for the operator.
    Arity {
        /// Expected predecessor count.
        expected: usize,
        /// Supplied predecessor count.
        actual: usize,
    },
    /// A predecessor id does not refer to an already-created node.
    ForwardReference {
        /// The offending predecessor.
        pred: usize,
        /// The id the new node would get (or that holds the reference).
        node: usize,
    },
    /// Simulation referenced an input `(sample, channel)` that was not
    /// supplied.
    MissingInput {
        /// Sample offset within the batch.
        sample: usize,
        /// Input channel.
        channel: usize,
    },
    /// Simulation referenced a state index beyond the supplied state
    /// vector.
    MissingState {
        /// The missing state index.
        index: usize,
        /// Length of the supplied state vector.
        supplied: usize,
    },
    /// Simulation produced a NaN or infinite value at a node (numerical
    /// sentinel: poisoned inputs or coefficients are reported at the first
    /// node they reach instead of propagating silently).
    NonFinite {
        /// The node whose value became non-finite.
        node: usize,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::Arity { expected, actual } => {
                write!(f, "operator takes {expected} predecessors, got {actual}")
            }
            DfgError::ForwardReference { pred, node } => {
                write!(f, "node {node} references not-yet-created node {pred}")
            }
            DfgError::MissingInput { sample, channel } => {
                write!(
                    f,
                    "simulation is missing input (sample {sample}, channel {channel})"
                )
            }
            DfgError::MissingState { index, supplied } => {
                write!(
                    f,
                    "simulation references state {index} but only {supplied} were supplied"
                )
            }
            DfgError::NonFinite { node } => {
                write!(f, "simulation produced a non-finite value at node {node}")
            }
        }
    }
}

impl std::error::Error for DfgError {}

/// Per-operation delays for critical-path analysis (the paper uses
/// `t_add = 1`, `t_mul = m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Delay of a constant multiplication.
    pub t_mul: f64,
    /// Delay of an addition/subtraction.
    pub t_add: f64,
    /// Delay of a hardwired shift (0 on an ASIC).
    pub t_shift: f64,
}

impl Default for OpTiming {
    fn default() -> Self {
        OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        }
    }
}

impl OpTiming {
    /// Delay contributed by one node.
    pub fn of(&self, kind: &NodeKind) -> f64 {
        match kind {
            NodeKind::Add | NodeKind::Sub => self.t_add,
            NodeKind::MulConst(_) => self.t_mul,
            NodeKind::Shift(_) => self.t_shift,
            // Negation folds into the consuming adder/subtractor.
            _ => 0.0,
        }
    }
}

/// Operation census of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Additions and subtractions.
    pub adds: u64,
    /// Constant multiplications.
    pub muls: u64,
    /// Shifts.
    pub shifts: u64,
    /// Registers ([`NodeKind::Delay`]).
    pub delays: u64,
    /// Explicit negations.
    pub negs: u64,
}

/// An append-only dataflow DAG.
///
/// Nodes may only reference earlier nodes, so insertion order is a valid
/// topological order and the graph is acyclic by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dfg {
    nodes: Vec<Node>,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Appends a node.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError`] on arity mismatch or forward references.
    pub fn push(&mut self, kind: NodeKind, preds: Vec<NodeId>) -> Result<NodeId, DfgError> {
        if preds.len() != kind.arity() {
            return Err(DfgError::Arity {
                expected: kind.arity(),
                actual: preds.len(),
            });
        }
        let id = self.nodes.len();
        for p in &preds {
            if p.0 >= id {
                return Err(DfgError::ForwardReference {
                    pred: p.0,
                    node: id,
                });
            }
        }
        self.nodes.push(Node { kind, preds });
        Ok(NodeId(id))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterate over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Re-checks the structural invariants ([`Dfg::push`] enforces them on
    /// construction; transformation passes call this after rewriting a
    /// graph so a buggy pass is reported as a typed error instead of
    /// corrupting downstream analyses).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::Arity`] or [`DfgError::ForwardReference`] for
    /// the first violating node.
    pub fn validate(&self) -> Result<(), DfgError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.preds.len() != n.kind.arity() {
                return Err(DfgError::Arity {
                    expected: n.kind.arity(),
                    actual: n.preds.len(),
                });
            }
            for p in &n.preds {
                if p.0 >= i {
                    return Err(DfgError::ForwardReference { pred: p.0, node: i });
                }
            }
        }
        Ok(())
    }

    /// Counts operations by class.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for n in &self.nodes {
            match n.kind {
                NodeKind::Add | NodeKind::Sub => c.adds += 1,
                NodeKind::MulConst(_) => c.muls += 1,
                NodeKind::Shift(_) => c.shifts += 1,
                NodeKind::Delay => c.delays += 1,
                NodeKind::Neg => c.negs += 1,
                _ => {}
            }
        }
        c
    }

    /// Longest combinational path delay from any source (or register
    /// output) to any sink (or register input).
    pub fn critical_path(&self, timing: &OpTiming) -> f64 {
        self.finish_times(timing).into_iter().fold(0.0, f64::max)
    }

    /// Longest combinational path from a [`NodeKind::StateIn`] to a
    /// [`NodeKind::StateOut`] — the feedback section's critical path, the
    /// quantity that bounds throughput (§1: everything else can be
    /// pipelined away).
    pub fn feedback_critical_path(&self, timing: &OpTiming) -> f64 {
        // Longest path considering only paths originating at StateIn.
        let mut depth = vec![f64::NEG_INFINITY; self.nodes.len()];
        let mut best = 0.0_f64;
        for (i, n) in self.nodes.iter().enumerate() {
            let from_state = matches!(n.kind, NodeKind::StateIn { .. });
            let pred_depth = n
                .preds
                .iter()
                .map(|p| depth[p.0])
                .fold(f64::NEG_INFINITY, f64::max);
            let start = if from_state { 0.0 } else { pred_depth };
            // Registers cut combinational paths, and a node no path from
            // StateIn reaches stays unreachable.
            let d = if matches!(n.kind, NodeKind::Delay) || start == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                start + timing.of(&n.kind)
            };
            depth[i] = d;
            if matches!(n.kind, NodeKind::StateOut { .. }) && pred_depth > f64::NEG_INFINITY {
                best = best.max(pred_depth);
            }
        }
        best
    }

    /// Per-node combinational finish times (registers restart at 0).
    fn finish_times(&self, timing: &OpTiming) -> Vec<f64> {
        let mut t = vec![0.0_f64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let start = n.preds.iter().map(|p| t[p.0]).fold(0.0, f64::max);
            t[i] = if matches!(n.kind, NodeKind::Delay) {
                0.0
            } else {
                start + timing.of(&n.kind)
            };
        }
        t
    }

    /// Evaluates the graph for one iteration.
    ///
    /// `state` supplies every [`NodeKind::StateIn`] by index; `inputs`
    /// supplies every [`NodeKind::Input`] keyed by `(sample, channel)`.
    /// Returns the values of outputs keyed by `(sample, channel)` and of
    /// next states keyed by index.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::MissingInput`] or [`DfgError::MissingState`] if
    /// a referenced input or state value was not supplied, and
    /// [`DfgError::NonFinite`] if any node's value becomes NaN or infinite.
    #[allow(clippy::type_complexity)]
    pub fn simulate(
        &self,
        state: &[f64],
        inputs: &HashMap<(usize, usize), f64>,
    ) -> Result<(HashMap<(usize, usize), f64>, HashMap<usize, f64>), DfgError> {
        let mut v = vec![0.0_f64; self.nodes.len()];
        let mut outs = HashMap::new();
        let mut states = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let p = |k: usize| v[n.preds[k].0];
            let value = match n.kind {
                NodeKind::Input { sample, channel } => *inputs
                    .get(&(sample, channel))
                    .ok_or(DfgError::MissingInput { sample, channel })?,
                NodeKind::StateIn { index } => *state.get(index).ok_or(DfgError::MissingState {
                    index,
                    supplied: state.len(),
                })?,
                NodeKind::Const(c) => c,
                NodeKind::Add => p(0) + p(1),
                NodeKind::Sub => p(0) - p(1),
                NodeKind::MulConst(c) => c * p(0),
                NodeKind::Shift(s) => p(0) * (s as f64).exp2(),
                NodeKind::Neg => -p(0),
                NodeKind::Delay => p(0),
                NodeKind::Output { sample, channel } => {
                    outs.insert((sample, channel), p(0));
                    p(0)
                }
                NodeKind::StateOut { index } => {
                    states.insert(index, p(0));
                    p(0)
                }
            };
            if !value.is_finite() {
                return Err(DfgError::NonFinite { node: i });
            }
            v[i] = value;
        }
        Ok((outs, states))
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph dfg {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label = match n.kind {
                NodeKind::Input { sample, channel } => format!("x[{sample}][{channel}]"),
                NodeKind::StateIn { index } => format!("s{index}"),
                NodeKind::Const(c) => format!("{c}"),
                NodeKind::Add => "+".into(),
                NodeKind::Sub => "-".into(),
                NodeKind::MulConst(c) => format!("*{c:.4}"),
                NodeKind::Shift(k) => format!("<<{k}"),
                NodeKind::Neg => "neg".into(),
                NodeKind::Delay => "D".into(),
                NodeKind::Output { sample, channel } => format!("y[{sample}][{channel}]"),
                NodeKind::StateOut { index } => format!("s{index}'"),
            };
            s.push_str(&format!("  n{i} [label=\"{label}\"];\n"));
            for p in &n.preds {
                s.push_str(&format!("  n{} -> n{i};\n", p.0));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (Dfg, NodeId) {
        // y = 0.5 * (x + s)
        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let s = g.push(NodeKind::StateIn { index: 0 }, vec![]).unwrap();
        let a = g.push(NodeKind::Add, vec![x, s]).unwrap();
        let m = g.push(NodeKind::MulConst(0.5), vec![a]).unwrap();
        let y = g
            .push(
                NodeKind::Output {
                    sample: 0,
                    channel: 0,
                },
                vec![m],
            )
            .unwrap();
        let _ = g.push(NodeKind::StateOut { index: 0 }, vec![m]).unwrap();
        (g, y)
    }

    #[test]
    fn arity_enforced() {
        let mut g = Dfg::new();
        let x = g.push(NodeKind::Const(1.0), vec![]).unwrap();
        assert_eq!(
            g.push(NodeKind::Add, vec![x]).unwrap_err(),
            DfgError::Arity {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(
            g.push(NodeKind::Const(2.0), vec![x]).unwrap_err(),
            DfgError::Arity {
                expected: 0,
                actual: 1
            }
        );
    }

    #[test]
    fn forward_reference_rejected() {
        let mut g = Dfg::new();
        let err = g.push(NodeKind::Neg, vec![NodeId(5)]).unwrap_err();
        assert_eq!(err, DfgError::ForwardReference { pred: 5, node: 0 });
    }

    #[test]
    fn simulation_semantics() {
        let (g, _) = chain();
        let mut inputs = HashMap::new();
        inputs.insert((0, 0), 3.0);
        let (outs, states) = g.simulate(&[1.0], &inputs).unwrap();
        assert_eq!(outs[&(0, 0)], 2.0);
        assert_eq!(states[&0], 2.0);
    }

    #[test]
    fn missing_input_reported() {
        let (g, _) = chain();
        let err = g.simulate(&[1.0], &HashMap::new()).unwrap_err();
        assert_eq!(
            err,
            DfgError::MissingInput {
                sample: 0,
                channel: 0
            }
        );
    }

    #[test]
    fn missing_state_reported() {
        let (g, _) = chain();
        let mut inputs = HashMap::new();
        inputs.insert((0, 0), 3.0);
        let err = g.simulate(&[], &inputs).unwrap_err();
        assert_eq!(
            err,
            DfgError::MissingState {
                index: 0,
                supplied: 0
            }
        );
    }

    #[test]
    fn non_finite_value_reported() {
        let (g, _) = chain();
        let mut inputs = HashMap::new();
        inputs.insert((0, 0), f64::NAN);
        let err = g.simulate(&[1.0], &inputs).unwrap_err();
        assert!(matches!(err, DfgError::NonFinite { .. }));
    }

    #[test]
    fn validate_accepts_pushed_graph() {
        let (g, _) = chain();
        assert!(g.validate().is_ok());
        assert!(Dfg::new().validate().is_ok());
    }

    #[test]
    fn op_census() {
        let (g, _) = chain();
        let c = g.op_counts();
        assert_eq!(c.adds, 1);
        assert_eq!(c.muls, 1);
        assert_eq!(c.shifts, 0);
    }

    #[test]
    fn critical_path_chains_delays() {
        let (g, _) = chain();
        let t = OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        assert_eq!(g.critical_path(&t), 3.0);
        assert_eq!(g.feedback_critical_path(&t), 3.0);
    }

    #[test]
    fn registers_cut_paths() {
        // x -> * -> D -> + -> y : CP = max(mul, add) not mul+add.
        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let m = g.push(NodeKind::MulConst(0.3), vec![x]).unwrap();
        let d = g.push(NodeKind::Delay, vec![m]).unwrap();
        let a = g.push(NodeKind::Add, vec![d, x]).unwrap();
        let _ = g
            .push(
                NodeKind::Output {
                    sample: 0,
                    channel: 0,
                },
                vec![a],
            )
            .unwrap();
        let t = OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        assert_eq!(g.critical_path(&t), 2.0);
    }

    #[test]
    fn feedback_path_ignores_input_only_paths() {
        // Long input-only chain, short state chain.
        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let mut acc = x;
        for _ in 0..5 {
            acc = g.push(NodeKind::MulConst(0.9), vec![acc]).unwrap();
        }
        let s = g.push(NodeKind::StateIn { index: 0 }, vec![]).unwrap();
        let sum = g.push(NodeKind::Add, vec![acc, s]).unwrap();
        let _ = g.push(NodeKind::StateOut { index: 0 }, vec![sum]).unwrap();
        let t = OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        assert_eq!(g.critical_path(&t), 11.0);
        assert_eq!(g.feedback_critical_path(&t), 1.0);
    }

    #[test]
    fn shift_simulation() {
        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let up = g.push(NodeKind::Shift(3), vec![x]).unwrap();
        let dn = g.push(NodeKind::Shift(-2), vec![x]).unwrap();
        let a = g.push(NodeKind::Add, vec![up, dn]).unwrap();
        let _ = g
            .push(
                NodeKind::Output {
                    sample: 0,
                    channel: 0,
                },
                vec![a],
            )
            .unwrap();
        let mut inputs = HashMap::new();
        inputs.insert((0, 0), 4.0);
        let (outs, _) = g.simulate(&[], &inputs).unwrap();
        assert_eq!(outs[&(0, 0)], 33.0);
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let (g, _) = chain();
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("*0.5"));
        assert!(dot.contains("->"));
    }
}

//! Builders from state-space matrices to maximally-fast dataflow graphs.
//!
//! The *maximally fast* organization (§1 of the paper): every linear
//! combination does its constant multiplications in parallel and then sums
//! them in a fully balanced binary tree, so the feedback critical path is
//! `t_mul + ⌈log₂(1+R)⌉·t_add` regardless of unfolding.

use crate::{Dfg, DfgError, NodeId, NodeKind};
use lintra_linsys::count::{classify, CoeffClass, CLASSIFY_TOL};
use lintra_linsys::{StateSpace, UnfoldedSystem};
use lintra_matrix::Matrix;

/// A term awaiting summation: a node and whether it enters negated.
///
/// Exposed so other crates (the Horner builder in `lintra-transform`) can
/// compose linear combinations with the same balanced-tree machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// The value-producing node.
    pub node: NodeId,
    /// `true` when the term enters the sum negated.
    pub neg: bool,
}

/// A positive term wrapping an existing node.
pub fn plain_term(node: NodeId) -> Term {
    Term { node, neg: false }
}

/// Emits the multiplication terms of one matrix row applied to source
/// nodes, skipping zero coefficients and folding ±1 into wires/negations.
///
/// # Errors
///
/// Propagates [`DfgError`] from node insertion.
///
/// # Panics
///
/// Panics if `coeffs` and `srcs` have different lengths.
pub fn row_terms(g: &mut Dfg, coeffs: &[f64], srcs: &[NodeId]) -> Result<Vec<Term>, DfgError> {
    assert_eq!(coeffs.len(), srcs.len(), "row/source length mismatch");
    let mut terms = Vec::new();
    for (&c, &s) in coeffs.iter().zip(srcs) {
        if let Some(t) = coeff_term(g, c, s)? {
            terms.push(t);
        }
    }
    Ok(terms)
}

/// Sums terms into a single pending [`Term`] with a balanced tree; `None`
/// for an empty list.
///
/// # Errors
///
/// Propagates [`DfgError`] from node insertion.
pub fn sum_to_term(g: &mut Dfg, terms: Vec<Term>) -> Result<Option<Term>, DfgError> {
    balanced_tree(g, terms)
}

/// Sums terms into a node (`Const(0)` when empty, `Neg` applied if the
/// tree is negative).
///
/// # Errors
///
/// Propagates [`DfgError`] from node insertion.
pub fn sum_to_node(g: &mut Dfg, terms: Vec<Term>) -> Result<NodeId, DfgError> {
    balanced_sum(g, terms)
}

/// Materializes a pending term as a node (applies `Neg` when needed).
///
/// # Errors
///
/// Propagates [`DfgError`] from node insertion.
pub fn term_to_node(g: &mut Dfg, t: Term) -> Result<NodeId, DfgError> {
    if t.neg {
        g.push(NodeKind::Neg, vec![t.node])
    } else {
        Ok(t.node)
    }
}

/// Combines terms with a balanced binary tree of adds/subs; `None` for an
/// empty list. The returned term may carry a pending negation.
fn balanced_tree(g: &mut Dfg, mut terms: Vec<Term>) -> Result<Option<Term>, DfgError> {
    if terms.is_empty() {
        return Ok(None);
    }
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let (a, b) = (pair[0], pair[1]);
            let combined = match (a.neg, b.neg) {
                (false, false) => Term {
                    node: g.push(NodeKind::Add, vec![a.node, b.node])?,
                    neg: false,
                },
                (false, true) => Term {
                    node: g.push(NodeKind::Sub, vec![a.node, b.node])?,
                    neg: false,
                },
                (true, false) => Term {
                    node: g.push(NodeKind::Sub, vec![b.node, a.node])?,
                    neg: false,
                },
                (true, true) => Term {
                    node: g.push(NodeKind::Add, vec![a.node, b.node])?,
                    neg: true,
                },
            };
            next.push(combined);
        }
        terms = next;
    }
    Ok(Some(terms[0]))
}

/// Sums terms to a single node, inserting a `Neg` if the whole tree is
/// negative, or a `Const(0)` node for an empty list.
fn balanced_sum(g: &mut Dfg, terms: Vec<Term>) -> Result<NodeId, DfgError> {
    match balanced_tree(g, terms)? {
        None => g.push(NodeKind::Const(0.0), vec![]),
        Some(t) if t.neg => g.push(NodeKind::Neg, vec![t.node]),
        Some(t) => Ok(t.node),
    }
}

/// Emits the term for one coefficient applied to `src`, skipping zeros.
fn coeff_term(g: &mut Dfg, coeff: f64, src: NodeId) -> Result<Option<Term>, DfgError> {
    Ok(match classify(coeff, CLASSIFY_TOL) {
        CoeffClass::Zero => None,
        CoeffClass::One => Some(Term {
            node: src,
            neg: false,
        }),
        CoeffClass::MinusOne => Some(Term {
            node: src,
            neg: true,
        }),
        // In the processor-oriented maximally fast form a power of two is
        // still a constant multiplication node; the ASIC passes in
        // `lintra-transform` rewrite it into a Shift.
        CoeffClass::PowerOfTwo { .. } | CoeffClass::General => Some(Term {
            node: g.push(NodeKind::MulConst(coeff), vec![src])?,
            neg: false,
        }),
    })
}

/// Builds one stacked row group `dst_row = [lhs | rhs]·[v; w]`.
///
/// The `rhs` (input-side) contributions are first collapsed into their own
/// sub-tree and then enter the `lhs` (state-side) tree as a *single* leaf —
/// the paper's "on-arrival" organization: input work is pipelineable, so
/// the feedback path only pays `⌈log₂(terms_lhs + 1)⌉` adder levels
/// (`⌈log₂(1+R)⌉` in the dense case) no matter how far the system is
/// unfolded.
fn build_rows(
    g: &mut Dfg,
    lhs: &Matrix,
    lhs_src: &[NodeId],
    rhs: &Matrix,
    rhs_src: &[NodeId],
    mut sink: impl FnMut(usize) -> NodeKind,
) -> Result<(), DfgError> {
    for r in 0..lhs.rows() {
        let mut terms = Vec::new();
        for (j, &src) in lhs_src.iter().enumerate() {
            if let Some(t) = coeff_term(g, lhs[(r, j)], src)? {
                terms.push(t);
            }
        }
        let mut rhs_terms = Vec::new();
        for (j, &src) in rhs_src.iter().enumerate() {
            if let Some(t) = coeff_term(g, rhs[(r, j)], src)? {
                rhs_terms.push(t);
            }
        }
        if let Some(rhs_root) = balanced_tree(g, rhs_terms)? {
            terms.push(rhs_root);
        }
        let root = balanced_sum(g, terms)?;
        let kind = sink(r);
        g.push(kind, vec![root])?;
    }
    Ok(())
}

/// Builds the maximally fast CDFG of one iteration of `sys`
/// (`S' = A·S + B·X`, `Y = C·S + D·X`), with inputs labelled as sample 0.
///
/// # Errors
///
/// Propagates [`DfgError`] from node insertion.
pub fn from_state_space(sys: &StateSpace) -> Result<Dfg, DfgError> {
    from_state_space_batched(sys, 1, sys.num_inputs(), sys.num_outputs())
}

/// Builds the maximally fast CDFG of an unfolded system, labelling inputs
/// and outputs with their within-batch sample indices.
///
/// # Errors
///
/// Propagates [`DfgError`] from node insertion.
pub fn from_unfolded(u: &UnfoldedSystem) -> Result<Dfg, DfgError> {
    let (p, q, _) = u.original_dims;
    from_state_space_batched(&u.system, u.batch(), p, q)
}

/// Shared builder: the block system's stacked inputs/outputs are labelled
/// `(sample, channel)` with `channel < p` (resp. `q`).
fn from_state_space_batched(
    sys: &StateSpace,
    batch: usize,
    p: usize,
    q: usize,
) -> Result<Dfg, DfgError> {
    assert_eq!(
        sys.num_inputs(),
        batch * p,
        "input width does not match batch"
    );
    assert_eq!(
        sys.num_outputs(),
        batch * q,
        "output width does not match batch"
    );
    let mut g = Dfg::new();
    let mut states = Vec::with_capacity(sys.num_states());
    for i in 0..sys.num_states() {
        states.push(g.push(NodeKind::StateIn { index: i }, vec![])?);
    }
    let mut inputs = Vec::with_capacity(sys.num_inputs());
    for i in 0..sys.num_inputs() {
        inputs.push(g.push(
            NodeKind::Input {
                sample: i / p,
                channel: i % p,
            },
            vec![],
        )?);
    }
    build_rows(&mut g, sys.a(), &states, sys.b(), &inputs, |r| {
        NodeKind::StateOut { index: r }
    })?;
    build_rows(&mut g, sys.c(), &states, sys.d(), &inputs, |r| {
        NodeKind::Output {
            sample: r / q,
            channel: r % q,
        }
    })?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpTiming;
    use lintra_linsys::count::{op_count, TrivialityRule};
    use lintra_linsys::unfold;
    use std::collections::HashMap;

    fn sys() -> StateSpace {
        StateSpace::new(
            Matrix::from_rows(&[&[0.4, 0.3], &[-0.2, 0.5]]),
            Matrix::from_rows(&[&[0.7], &[1.0]]),
            Matrix::from_rows(&[&[0.6, -1.0]]),
            Matrix::from_rows(&[&[0.35]]),
        )
        .unwrap()
    }

    #[test]
    fn graph_simulation_matches_state_space_step() {
        let s = sys();
        let g = from_state_space(&s).unwrap();
        let state = [0.7, -0.4];
        let mut inputs = HashMap::new();
        inputs.insert((0usize, 0usize), 1.3);
        let (outs, next) = g.simulate(&state, &inputs).unwrap();
        let (y, sn) = s.step(&state, &[1.3]).unwrap();
        assert!((outs[&(0, 0)] - y[0]).abs() < 1e-12);
        assert!((next[&0] - sn[0]).abs() < 1e-12);
        assert!((next[&1] - sn[1]).abs() < 1e-12);
    }

    #[test]
    fn graph_op_counts_match_linsys_counts() {
        let s = sys();
        let g = from_state_space(&s).unwrap();
        let c = op_count(&s, TrivialityRule::ZeroOne);
        let gc = g.op_counts();
        assert_eq!(gc.muls, c.muls);
        assert_eq!(gc.adds, c.adds);
    }

    #[test]
    fn unfolded_graph_matches_unfolded_counts() {
        let s = sys();
        for i in [1u32, 3, 5] {
            let u = unfold(&s, i).unwrap();
            let g = from_unfolded(&u).unwrap();
            let c = op_count(&u.system, TrivialityRule::ZeroOne);
            let gc = g.op_counts();
            assert_eq!(gc.muls, c.muls, "i={i}");
            assert_eq!(gc.adds, c.adds, "i={i}");
        }
    }

    #[test]
    fn feedback_critical_path_matches_formula_and_stays_flat() {
        // A dense system: CP = t_mul + ceil(log2(1+R)) * t_add for all i.
        let f = |i: usize, j: usize| 0.23 + 0.017 * i as f64 + 0.009 * j as f64;
        let dense = StateSpace::new(
            Matrix::from_fn(5, 5, f).scale(0.2),
            Matrix::from_fn(5, 1, f),
            Matrix::from_fn(1, 5, f),
            Matrix::from_fn(1, 1, f),
        )
        .unwrap();
        let t = OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        let expect = 2.0 + (6.0_f64).log2().ceil();
        for i in 0..5u32 {
            let g = from_unfolded(&unfold(&dense, i).unwrap()).unwrap();
            assert_eq!(g.feedback_critical_path(&t), expect, "i={i}");
        }
    }

    #[test]
    fn unfolded_graph_simulates_batches_correctly() {
        let s = sys();
        let u = unfold(&s, 2).unwrap();
        let g = from_unfolded(&u).unwrap();
        // Reference: plain simulation.
        let xs = [0.5, -1.0, 2.0, 0.25, 0.75, -0.5];
        let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let want = s.simulate(&inputs).unwrap();
        // Graph: two batches of 3.
        let mut state = vec![0.0, 0.0];
        let mut got = Vec::new();
        for batch in xs.chunks(3) {
            let mut m = HashMap::new();
            for (k, &x) in batch.iter().enumerate() {
                m.insert((k, 0usize), x);
            }
            let (outs, next) = g.simulate(&state, &m).unwrap();
            for k in 0..3 {
                got.push(outs[&(k, 0)]);
            }
            state = vec![next[&0], next[&1]];
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w[0]).abs() < 1e-10, "{g} vs {}", w[0]);
        }
    }

    #[test]
    fn trivial_coefficients_produce_no_mul_nodes() {
        let s = StateSpace::new(
            Matrix::from_rows(&[&[1.0, -1.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[1.0], &[0.0]]),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::from_rows(&[&[0.0]]),
        )
        .unwrap();
        let g = from_state_space(&s).unwrap();
        assert_eq!(g.op_counts().muls, 0);
    }

    #[test]
    fn empty_row_yields_zero_constant() {
        let s = StateSpace::new(
            Matrix::from_rows(&[&[0.0]]),
            Matrix::from_rows(&[&[0.0]]),
            Matrix::from_rows(&[&[1.0]]),
            Matrix::from_rows(&[&[0.0]]),
        )
        .unwrap();
        let g = from_state_space(&s).unwrap();
        let (outs, next) = g.simulate(&[5.0], &HashMap::from([((0, 0), 9.0)])).unwrap();
        assert_eq!(next[&0], 0.0);
        assert_eq!(outs[&(0, 0)], 5.0);
    }

    #[test]
    fn adder_tree_is_balanced() {
        // 1 state term + 7 input terms: the input sub-tree is balanced
        // (depth ceil(log2 7) = 3) and joins the state tree as one leaf.
        let f = |_: usize, _: usize| 0.5;
        let s = StateSpace::new(
            Matrix::from_fn(1, 1, f),
            Matrix::from_fn(1, 7, f),
            Matrix::from_fn(1, 1, f),
            Matrix::from_fn(1, 7, f),
        )
        .unwrap();
        let g = from_state_space(&s).unwrap();
        let t = OpTiming {
            t_mul: 1.0,
            t_add: 1.0,
            t_shift: 0.0,
        };
        // Input path: mul (1) + 3 input-tree adds + 1 joining add = 5.
        assert_eq!(g.critical_path(&t), 5.0);
        // Feedback path: mul (1) + ceil(log2(1+R)) = 1 add -> 2.
        assert_eq!(g.feedback_critical_path(&t), 2.0);
    }
}

//! §4 — unfolding plus multiple processors.
//!
//! Adding processors multiplies switched capacitance by `N` but (for
//! `N ≤ R`, under the zero-communication-cost assumption) speeds the
//! unfolded computation up by `N`, so the voltage term wins:
//! `Power(N)/Power(1) = N·(V(N)/V₀)²/S_max(N, i)`. The speedup is
//! *measured* here by list scheduling the unfolded dataflow graph rather
//! than assumed.

use crate::{scale_or_fallback, Diagnostic, OptError, TechConfig};
use lintra_dfg::build;
use lintra_engine::{SweepCache, ThreadPool};
use lintra_linsys::count::{best_unfolding, TrivialityRule};
use lintra_linsys::{unfold, StateSpace};
use lintra_power::VoltageScaling;
use lintra_sched::list_schedule;

/// How the number of processors is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcessorSelection {
    /// The paper's conservative choice `N = R` (speedup provably linear up
    /// to there).
    #[default]
    StatesCount,
    /// Sweep `N` and keep the power minimum.
    SearchBest {
        /// Largest `N` to consider.
        max: usize,
    },
}

/// Result of the §4 strategy on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiProcessorResult {
    /// Unfolding factor used (the §3 optimum).
    pub unfolding: u64,
    /// Number of processors.
    pub processors: usize,
    /// Measured `S_max(N, i)`: throughput of `N` processors on the
    /// unfolded computation over one processor on the original.
    pub speedup: f64,
    /// Voltage scaling applied to all processors.
    pub scaling: VoltageScaling,
    /// Cycles per sample on one processor, original computation.
    pub base_cycles_per_sample: f64,
    /// Cycles per sample on `N` processors, unfolded computation.
    pub cycles_per_sample: f64,
    /// Non-fatal warnings (voltage clamped at the floor, frequency-only
    /// fallback).
    pub diagnostics: Vec<Diagnostic>,
}

impl MultiProcessorResult {
    /// Power-reduction factor relative to the original single-processor
    /// implementation: `(V₀/V₁)²·S_max/N` (the `N` extra capacitance is
    /// charged here).
    pub fn power_reduction(&self) -> f64 {
        self.scaling.power_reduction() / self.processors as f64
    }
}

/// Measures `S_max(N, i)` for a given unfolding and processor count.
///
/// # Errors
///
/// Propagates unfolding failures (unstable or non-finite system), graph
/// construction failures, and [`lintra_sched::ScheduleError::NoProcessors`]
/// when `n` is zero.
pub fn measured_speedup(
    sys: &StateSpace,
    unfolding: u64,
    n: usize,
    tech: &TechConfig,
) -> Result<f64, OptError> {
    let base_graph = build::from_state_space(sys)?;
    let base = list_schedule(&base_graph, 1, &tech.processor)?.length as f64;
    let unfolded = build::from_unfolded(&unfold(sys, unfolding as u32)?)?;
    let len = list_schedule(&unfolded, n, &tech.processor)?.length as f64;
    Ok(base / (len / (unfolding + 1) as f64))
}

/// Runs the §4 strategy: unfold to the §3 optimum, add processors, slow
/// all of them down by the measured `S_max(N, i)` via voltage reduction.
///
/// # Errors
///
/// Returns [`OptError::Linsys`] / [`OptError::Dfg`] when analysis or graph
/// construction fails, and [`OptError::Schedule`] when the processor
/// selection yields zero processors
/// (`ProcessorSelection::SearchBest { max: 0 }` — resource starvation is
/// reported, not papered over). Voltage-floor clamping and
/// threshold-limited supplies degrade gracefully with diagnostics.
pub fn optimize(
    sys: &StateSpace,
    tech: &TechConfig,
    selection: ProcessorSelection,
) -> Result<MultiProcessorResult, OptError> {
    let cycles = tech.cycle_cost();
    let choice = best_unfolding(sys, TrivialityRule::ZeroOne, cycles.w_mul, cycles.w_add)?;
    let i = choice.unfolding;

    let evaluate = |n: usize| -> Result<MultiProcessorResult, OptError> {
        let base_graph = build::from_state_space(sys)?;
        let base = list_schedule(&base_graph, 1, &tech.processor)?.length as f64;
        let unfolded = build::from_unfolded(&unfold(sys, i as u32)?)?;
        let len = list_schedule(&unfolded, n, &tech.processor)?.length as f64;
        let per_sample = len / (i + 1) as f64;
        let speedup = base / per_sample;
        let mut diagnostics = Vec::new();
        let scaling = scale_or_fallback(
            &tech.voltage,
            tech.initial_voltage,
            speedup,
            &mut diagnostics,
        )?;
        Ok(MultiProcessorResult {
            unfolding: i,
            processors: n,
            speedup,
            scaling,
            base_cycles_per_sample: base,
            cycles_per_sample: per_sample,
            diagnostics,
        })
    };

    match selection {
        ProcessorSelection::StatesCount => evaluate(sys.num_states().max(1)),
        ProcessorSelection::SearchBest { max } => {
            let mut best: Option<MultiProcessorResult> = None;
            for n in 1..=max {
                let cand = evaluate(n)?;
                best = fold_candidate(best, cand);
            }
            best.ok_or(OptError::Schedule(
                lintra_sched::ScheduleError::NoProcessors,
            ))
        }
    }
}

/// The `SearchBest` tie-break, shared by the sequential loop and the
/// parallel fold: an earlier (smaller-`n`) candidate wins ties, so folding
/// pool results in ascending `n` order reproduces the sequential choice
/// exactly.
fn fold_candidate(
    best: Option<MultiProcessorResult>,
    cand: MultiProcessorResult,
) -> Option<MultiProcessorResult> {
    Some(match best {
        Some(b) if b.power_reduction() >= cand.power_reduction() => b,
        _ => cand,
    })
}

/// [`optimize`] with the `N` sweep fanned out over the engine's
/// [`ThreadPool`] and the unfolding analysis served by an incremental
/// [`SweepCache`]. Candidates are evaluated concurrently, then folded in
/// ascending `n` order with the same tie-break as the sequential loop, so
/// the result is bit-identical to [`optimize`]'s (asserted by the
/// differential test layer).
///
/// # Errors
///
/// Identical to [`optimize`], plus [`OptError::Engine`] if a sweep worker
/// panics. When several `n` fail, the lowest `n`'s error is reported —
/// the same one the sequential loop would hit first.
pub fn optimize_with_pool(
    sys: &StateSpace,
    tech: &TechConfig,
    selection: ProcessorSelection,
    pool: &ThreadPool,
) -> Result<MultiProcessorResult, OptError> {
    let cycles = tech.cycle_cost();
    let mut cache = SweepCache::new(sys);
    let choice = lintra_engine::best_unfolding(
        &mut cache,
        TrivialityRule::ZeroOne,
        cycles.w_mul,
        cycles.w_add,
    )?;
    let i = choice.unfolding;

    // Hoisted out of the per-n sweep: both graphs and the base schedule
    // are n-independent. Build is deterministic, so sharing one graph
    // across workers yields the very lengths the sequential path computes
    // from its per-n rebuilds.
    let base_graph = build::from_state_space(sys)?;
    let base = list_schedule(&base_graph, 1, &tech.processor)?.length as f64;
    let unfolded = build::from_unfolded(&cache.unfolded(i as u32)?)?;

    let evaluate = |n: usize| -> Result<MultiProcessorResult, OptError> {
        let len = list_schedule(&unfolded, n, &tech.processor)?.length as f64;
        let per_sample = len / (i + 1) as f64;
        let speedup = base / per_sample;
        let mut diagnostics = Vec::new();
        let scaling = scale_or_fallback(
            &tech.voltage,
            tech.initial_voltage,
            speedup,
            &mut diagnostics,
        )?;
        Ok(MultiProcessorResult {
            unfolding: i,
            processors: n,
            speedup,
            scaling,
            base_cycles_per_sample: base,
            cycles_per_sample: per_sample,
            diagnostics,
        })
    };

    match selection {
        ProcessorSelection::StatesCount => evaluate(sys.num_states().max(1)),
        ProcessorSelection::SearchBest { max } => {
            let candidates = pool.try_map((1..=max).collect(), evaluate)?;
            let mut best: Option<MultiProcessorResult> = None;
            for cand in candidates {
                best = fold_candidate(best, cand?);
            }
            best.ok_or(OptError::Schedule(
                lintra_sched::ScheduleError::NoProcessors,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single;
    use lintra_suite::{by_name, dense_synthetic, suite};

    #[test]
    fn worked_example_two_processors() {
        // §4: dense P = Q = 1, R = 5, i = 6, N = 2 at 3.0 V lands near
        // S ≈ 3.95 and V ≈ 1.7 V.
        let sys = dense_synthetic(1, 1, 5);
        let tech = TechConfig::dac96(3.0);
        let s2 = measured_speedup(&sys, 6, 2, &tech).unwrap();
        assert!(
            s2 > 2.0 * 1.8 && s2 <= 2.0 * 1.975 + 1e-9,
            "S(2,6) = {s2}, expected close to 3.95"
        );
        let v = tech.voltage.scale_for_slowdown(3.0, s2).unwrap().voltage;
        assert!((v - 1.7).abs() < 0.15, "voltage {v}");
    }

    #[test]
    fn multiprocessor_beats_single_processor_on_dense_designs() {
        let tech = TechConfig::dac96(3.3);
        for name in ["ellip", "steam", "iir5"] {
            let d = by_name(name).unwrap();
            let s = single::optimize(&d.system, &tech).unwrap();
            let m = optimize(&d.system, &tech, ProcessorSelection::StatesCount).unwrap();
            assert!(
                m.power_reduction() >= s.real.power_reduction() * 0.95,
                "{name}: multi {} vs single {}",
                m.power_reduction(),
                s.real.power_reduction()
            );
        }
    }

    #[test]
    fn speedup_close_to_linear_for_n_up_to_r() {
        let sys = dense_synthetic(1, 1, 4);
        let tech = TechConfig::dac96(3.3);
        let s1 = measured_speedup(&sys, 4, 1, &tech).unwrap();
        for n in 2..=4 {
            let sn = measured_speedup(&sys, 4, n, &tech).unwrap();
            assert!(
                sn >= 0.85 * n as f64 * s1,
                "S({n}) = {sn} not near-linear (S(1) = {s1})"
            );
        }
    }

    #[test]
    fn search_best_at_least_matches_states_count() {
        let d = by_name("chemical").unwrap();
        let tech = TechConfig::dac96(3.3);
        let fixed = optimize(&d.system, &tech, ProcessorSelection::StatesCount).unwrap();
        let best = optimize(
            &d.system,
            &tech,
            ProcessorSelection::SearchBest {
                max: d.system.num_states() + 2,
            },
        )
        .unwrap();
        assert!(best.power_reduction() >= fixed.power_reduction() - 1e-9);
    }

    #[test]
    fn suite_average_is_large() {
        // The paper's abstract: about 8x for multiprocessor on average.
        let tech = TechConfig::dac96(3.3);
        let reductions: Vec<f64> = suite()
            .iter()
            .map(|d| {
                optimize(&d.system, &tech, ProcessorSelection::StatesCount)
                    .unwrap()
                    .power_reduction()
            })
            .collect();
        let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
        assert!(
            avg > 2.0,
            "average multiprocessor reduction {avg} ({reductions:?})"
        );
    }

    #[test]
    fn pooled_search_is_bit_identical_to_sequential() {
        let tech = TechConfig::dac96(3.3);
        let pool = ThreadPool::new(4);
        for d in suite() {
            for selection in [
                ProcessorSelection::StatesCount,
                ProcessorSelection::SearchBest {
                    max: d.system.num_states() + 2,
                },
            ] {
                let seq = optimize(&d.system, &tech, selection).unwrap();
                let par = optimize_with_pool(&d.system, &tech, selection, &pool).unwrap();
                assert_eq!(par, seq, "{} with {selection:?}", d.name);
            }
        }
    }

    #[test]
    fn pooled_zero_processor_search_is_a_typed_error() {
        let sys = dense_synthetic(1, 1, 3);
        let tech = TechConfig::dac96(3.3);
        let err = optimize_with_pool(
            &sys,
            &tech,
            ProcessorSelection::SearchBest { max: 0 },
            &ThreadPool::new(2),
        )
        .unwrap_err();
        assert!(matches!(err, OptError::Schedule(_)), "{err}");
    }

    #[test]
    fn zero_processor_search_is_a_typed_error() {
        let sys = dense_synthetic(1, 1, 3);
        let tech = TechConfig::dac96(3.3);
        let err = optimize(&sys, &tech, ProcessorSelection::SearchBest { max: 0 }).unwrap_err();
        assert!(matches!(err, OptError::Schedule(_)), "{err}");
    }

    #[test]
    fn below_threshold_supply_degrades_to_frequency_only() {
        // A supply at the threshold voltage cannot be inverted; the
        // optimizer must fall back to a linear frequency reduction and say
        // so, not panic.
        let sys = dense_synthetic(1, 1, 5);
        let tech = TechConfig::dac96(0.9);
        let m = optimize(&sys, &tech, ProcessorSelection::StatesCount).unwrap();
        assert_eq!(m.scaling.voltage, 0.9);
        assert!((m.power_reduction() - m.speedup / m.processors as f64).abs() < 1e-9);
        assert!(m
            .diagnostics
            .iter()
            .any(|d| d.code == crate::DiagCode::FrequencyOnlyFallback));
    }

    #[test]
    fn voltage_never_below_floor() {
        let tech = TechConfig::dac96(5.0);
        for d in suite() {
            let m = optimize(&d.system, &tech, ProcessorSelection::StatesCount).unwrap();
            assert!(
                m.scaling.voltage >= tech.voltage.v_min() - 1e-12,
                "{}",
                d.name
            );
        }
    }
}

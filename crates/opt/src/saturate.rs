//! Equality-saturation strategy: the §5 ASIC script as a *search*.
//!
//! The fixed script commits to one realization (unfold → generalized
//! Horner → MCM). This strategy instead loads the script's intermediate
//! graphs into an e-graph — the plain unfolded multiply-accumulate form,
//! the Horner restructuring and the MCM shift-add network all become
//! representatives of the same e-classes — saturates with the rewrite-rule
//! library, and extracts the minimum-energy representative under the
//! unified [`CostModel`](lintra_dfg::CostModel) at the script's operating
//! voltage.
//!
//! By construction the result is **never worse than the fixed script**:
//! the script's own output is one of the candidates, and the final
//! accounting takes the cheaper of the extracted graph and the script
//! graph. Budget exhaustion degrades gracefully — the best-so-far
//! extraction is used and a [`DiagCode::SaturationBudget`] diagnostic
//! (service code `RES-SATURATION-BUDGET`) records the shortfall — unless
//! [`SaturateConfig::require_saturation`] demands a fixpoint.

use crate::asic::{script_with_graphs, AsicConfig};
use crate::{DiagCode, Diagnostic, OptError, TechConfig};
use lintra_dfg::build;
use lintra_egraph::{EGraph, EgraphError, RuleSet, SaturationBudget, SaturationStats};
use lintra_engine::SweepCache;
use lintra_linsys::{unfold, LinsysError, StateSpace, UnfoldedSystem};
use lintra_power::EnergyBreakdown;
use lintra_transform::horner::HornerForm;

/// Source of the script's intermediate forms: the strategy needs both the
/// Horner restructurings (for the unfolding search) and the plain
/// unfolded system (to seed the e-graph). Routing both through one trait
/// lets the cached path serve the unfold seed from the same power chain
/// the Horner search just built instead of re-deriving it from scratch.
trait ScriptForms {
    fn horner(&mut self, i: u32) -> Result<HornerForm, LinsysError>;
    fn unfolded(&mut self, i: u32) -> Result<UnfoldedSystem, LinsysError>;
}

/// From-scratch forms for the uncached entry point.
struct FreshForms<'a>(&'a StateSpace);

impl ScriptForms for FreshForms<'_> {
    fn horner(&mut self, i: u32) -> Result<HornerForm, LinsysError> {
        HornerForm::new(self.0, i)
    }

    fn unfolded(&mut self, i: u32) -> Result<UnfoldedSystem, LinsysError> {
        unfold(self.0, i)
    }
}

impl ScriptForms for &mut SweepCache {
    fn horner(&mut self, i: u32) -> Result<HornerForm, LinsysError> {
        SweepCache::horner(self, i)
    }

    fn unfolded(&mut self, i: u32) -> Result<UnfoldedSystem, LinsysError> {
        SweepCache::unfolded(self, i)
    }
}

/// Configuration of the equality-saturation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturateConfig {
    /// The underlying §5 script configuration (quantization, recoding,
    /// unfolding cap, timing).
    pub asic: AsicConfig,
    /// Node/iteration budgets for the saturation loop.
    pub budget: SaturationBudget,
    /// When `true`, budget exhaustion is a hard error
    /// ([`OptError::Egraph`] with [`EgraphError::Budget`]) instead of a
    /// best-so-far extraction plus diagnostic.
    pub require_saturation: bool,
}

impl Default for SaturateConfig {
    fn default() -> Self {
        SaturateConfig {
            asic: AsicConfig::default(),
            // Tighter than the e-graph's own default: the script injection
            // already seeds the optimal candidates, so a few sweeps of the
            // rule library suffice and keep the strategy interactive.
            budget: SaturationBudget {
                max_enodes: 50_000,
                max_iterations: 3,
            },
            require_saturation: false,
        }
    }
}

impl SaturateConfig {
    /// A configuration whose budget is exhausted immediately — the
    /// fault-injection probe for the `RES-SATURATION-BUDGET` path.
    pub fn tiny_budget() -> SaturateConfig {
        SaturateConfig {
            budget: SaturationBudget {
                max_enodes: 1,
                max_iterations: 1,
            },
            ..SaturateConfig::default()
        }
    }
}

/// Result of the equality-saturation strategy on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturateResult {
    /// Unfolding factor (inherited from the script; batch = `unfolding+1`).
    pub unfolding: u32,
    /// Operating voltage of the transformed design.
    pub voltage: f64,
    /// Energy per sample of the original datapath at the initial voltage.
    pub initial: EnergyBreakdown,
    /// Energy per sample of the winning realization (extracted graph or
    /// script graph, whichever is cheaper) at the reduced voltage.
    pub optimized: EnergyBreakdown,
    /// Energy per sample of the fixed §5 script's realization — the
    /// baseline the search must not lose to.
    pub script: EnergyBreakdown,
    /// Saturation statistics (budget usage, stop reason).
    pub stats: SaturationStats,
    /// Non-fatal warnings from the script and the saturation loop.
    pub diagnostics: Vec<Diagnostic>,
}

impl SaturateResult {
    /// Improvement factor over the original datapath.
    pub fn improvement(&self) -> f64 {
        self.initial.total_j() / self.optimized.total_j()
    }

    /// How the search compares to the fixed script (`≥ 1` by
    /// construction).
    pub fn vs_script(&self) -> f64 {
        self.script.total_j() / self.optimized.total_j()
    }
}

/// Runs the equality-saturation strategy.
///
/// # Errors
///
/// Everything [`crate::asic::optimize`] can return, plus
/// [`OptError::Egraph`] when the e-graph rejects a graph or — only with
/// [`SaturateConfig::require_saturation`] — when the budget runs out.
pub fn optimize(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &SaturateConfig,
) -> Result<SaturateResult, OptError> {
    optimize_impl(sys, tech, cfg, &mut FreshForms(sys))
}

/// [`optimize`] with the Horner restructurings *and* the unfolded
/// e-graph seed served by an incremental [`SweepCache`], mirroring
/// [`crate::asic::optimize_cached`]. The unfold reuses the power chain
/// the Horner search just built, so the seed costs only the coupling
/// blocks the search did not touch.
///
/// # Errors
///
/// Identical to [`optimize`].
pub fn optimize_cached(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &SaturateConfig,
    cache: &mut SweepCache,
) -> Result<SaturateResult, OptError> {
    let mut forms = cache;
    optimize_impl(sys, tech, cfg, &mut forms)
}

fn optimize_impl<F>(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &SaturateConfig,
    forms: &mut F,
) -> Result<SaturateResult, OptError>
where
    F: ScriptForms,
{
    let art = script_with_graphs(sys, tech, &cfg.asic, &mut |i| forms.horner(i))?;
    let script = art.result;
    let mut diagnostics = script.diagnostics.clone();

    // Seed the e-graph with every realization the script flow knows:
    // the Horner form, the plain unfolded multiply-accumulate form, and
    // the §5 shift-add network. Rooting them in the same e-classes makes
    // each a candidate and lets the rule library recombine them.
    let (mut eg, roots) = EGraph::from_dfg(&art.horner_dfg)?;
    let unfolded = build::from_unfolded(&forms.unfolded(script.unfolding)?)?;
    let unfolded_roots = eg.add_dfg(&unfolded)?;
    eg.union_roots(&roots, &unfolded_roots)?;
    let script_roots = eg.add_dfg(&art.shifted)?;
    eg.union_roots(&roots, &script_roots)?;

    let rules = RuleSet::asic(cfg.asic.frac_bits, cfg.asic.recoding);
    let stats = eg.saturate(&rules, &cfg.budget);
    if !stats.saturated() {
        if cfg.require_saturation {
            return Err(OptError::Egraph(EgraphError::Budget {
                iterations: stats.iterations,
                enodes: stats.enodes,
            }));
        }
        diagnostics.push(Diagnostic {
            code: DiagCode::SaturationBudget,
            message: format!(
                "RES-SATURATION-BUDGET: equality saturation stopped early ({stats}); \
                 extraction uses the best representations found so far"
            ),
        });
    }

    // Extract the minimum-energy representative at the script's voltage
    // and price it with the script's own per-sample accounting.
    let model = tech.energy_cost(script.voltage);
    let extraction = eg.extract(&roots, &model)?;
    let n = script.unfolding as u64 + 1;
    let (p, q, r) = sys.dims();
    let per = |x: u64| -> u64 { x.div_ceil(n) };
    let oc = extraction.dfg.op_counts();
    let extracted = model.breakdown(&lintra_dfg::OpCounts {
        adds: per(oc.adds),
        muls: per(oc.muls),
        shifts: per(oc.shifts),
        delays: per(r as u64) + (p + q) as u64,
        negs: 0,
    });

    // Never worse than the script: keep whichever realization is cheaper.
    let optimized = if extracted.total_j() <= script.optimized.total_j() {
        extracted
    } else {
        script.optimized
    };

    Ok(SaturateResult {
        unfolding: script.unfolding,
        voltage: script.voltage,
        initial: script.initial,
        optimized,
        script: script.optimized,
        stats,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_suite::{by_name, suite};

    fn tech() -> TechConfig {
        TechConfig::dac96(3.3)
    }

    #[test]
    fn never_worse_than_the_fixed_script() {
        let cfg = SaturateConfig::default();
        for d in suite() {
            let r = optimize(&d.system, &tech(), &cfg).unwrap();
            assert!(
                r.vs_script() >= 1.0 - 1e-12,
                "{}: egraph {} vs script {}",
                d.name,
                r.optimized.total_j(),
                r.script.total_j()
            );
            assert!(r.improvement() > 1.0, "{}", d.name);
        }
    }

    #[test]
    fn inherits_the_script_operating_point() {
        let d = by_name("iir5").unwrap();
        let script = crate::asic::optimize(&d.system, &tech(), &AsicConfig::default()).unwrap();
        let sat = optimize(&d.system, &tech(), &SaturateConfig::default()).unwrap();
        assert_eq!(sat.unfolding, script.unfolding);
        assert_eq!(sat.voltage, script.voltage);
        assert_eq!(sat.initial, script.initial);
        assert_eq!(sat.script, script.optimized);
    }

    #[test]
    fn tiny_budget_degrades_with_diagnostic_not_error() {
        let d = by_name("dist").unwrap();
        let r = optimize(&d.system, &tech(), &SaturateConfig::tiny_budget()).unwrap();
        assert!(!r.stats.saturated());
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == DiagCode::SaturationBudget)
            .expect("budget diagnostic");
        assert!(diag.message.contains("RES-SATURATION-BUDGET"), "{diag}");
        // Best-so-far is still never worse than the script.
        assert!(r.vs_script() >= 1.0 - 1e-12);
    }

    #[test]
    fn require_saturation_turns_budget_into_an_error() {
        let d = by_name("dist").unwrap();
        let cfg = SaturateConfig {
            require_saturation: true,
            ..SaturateConfig::tiny_budget()
        };
        let err = optimize(&d.system, &tech(), &cfg).unwrap_err();
        assert!(matches!(err, OptError::Egraph(EgraphError::Budget { .. })));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn cached_path_is_bit_identical_to_sequential() {
        let cfg = SaturateConfig::default();
        for name in ["dist", "iir5"] {
            let d = by_name(name).unwrap();
            let seq = optimize(&d.system, &tech(), &cfg).unwrap();
            let mut cache = SweepCache::new(&d.system);
            let cached = optimize_cached(&d.system, &tech(), &cfg, &mut cache).unwrap();
            assert_eq!(cached, seq, "{name}");
        }
    }
}

//! End-to-end power optimization strategies (§3, §4, §5 of the paper).
//!
//! * [`single`] — unfolding-driven voltage–throughput trade-off on one
//!   programmable processor (Table 2),
//! * [`multi`] — the same plus `N` processors with measured schedule
//!   speedups (Table 3),
//! * [`asic`] — the transformation script unfold → generalized Horner →
//!   MCM for custom datapaths (Table 4).
//!
//! # Examples
//!
//! ```
//! use lintra_opt::{single, TechConfig};
//! use lintra_suite::dense_synthetic;
//!
//! # fn main() -> Result<(), lintra_opt::OptError> {
//! let sys = dense_synthetic(1, 1, 5);
//! let r = single::optimize(&sys, &TechConfig::dac96(3.3))?;
//! // The §3 worked example: i_opt = 6, S_max ≈ 1.975.
//! assert_eq!(r.dense.unfolding, 6);
//! assert!(r.dense.power_reduction() > 2.0);
//! # Ok(())
//! # }
//! ```

pub mod asic;
pub mod multi;
pub mod saturate;
pub mod single;

use lintra_dfg::{CycleCost, DfgError};
use lintra_egraph::EgraphError;
use lintra_engine::EngineError;
use lintra_linsys::LinsysError;
use lintra_power::{EnergyCost, EnergyModel, VoltageError, VoltageModel, VoltageScaling};
use lintra_sched::{ProcessorModel, ScheduleError};
use std::fmt;

/// Error from any of the three optimization strategies.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// System-level analysis failed (unstable system, non-finite
    /// coefficients, shape mismatch).
    Linsys(LinsysError),
    /// Dataflow-graph construction or validation failed.
    Dfg(DfgError),
    /// Scheduling failed (e.g. zero processors requested).
    Schedule(ScheduleError),
    /// Voltage-curve inversion failed in a way no fallback covers
    /// (non-finite slowdown from corrupted analysis values).
    Voltage(VoltageError),
    /// A parallel sweep worker failed (a sweep point panicked in the
    /// engine's thread pool).
    Engine(EngineError),
    /// The equality-saturation search failed (invalid graph handed to the
    /// e-graph, or budget exhaustion under
    /// [`saturate::SaturateConfig::require_saturation`]).
    Egraph(EgraphError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Linsys(e) => write!(f, "system analysis failed: {e}"),
            OptError::Dfg(e) => write!(f, "dataflow graph construction failed: {e}"),
            OptError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            OptError::Voltage(e) => write!(f, "voltage scaling failed: {e}"),
            OptError::Engine(e) => write!(f, "parallel sweep failed: {e}"),
            OptError::Egraph(e) => write!(f, "equality saturation failed: {e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Linsys(e) => Some(e),
            OptError::Dfg(e) => Some(e),
            OptError::Schedule(e) => Some(e),
            OptError::Voltage(e) => Some(e),
            OptError::Engine(e) => Some(e),
            OptError::Egraph(e) => Some(e),
        }
    }
}

impl From<LinsysError> for OptError {
    fn from(e: LinsysError) -> Self {
        OptError::Linsys(e)
    }
}

impl From<DfgError> for OptError {
    fn from(e: DfgError) -> Self {
        OptError::Dfg(e)
    }
}

impl From<ScheduleError> for OptError {
    fn from(e: ScheduleError) -> Self {
        OptError::Schedule(e)
    }
}

impl From<VoltageError> for OptError {
    fn from(e: VoltageError) -> Self {
        OptError::Voltage(e)
    }
}

impl From<EngineError> for OptError {
    fn from(e: EngineError) -> Self {
        OptError::Engine(e)
    }
}

impl From<EgraphError> for OptError {
    fn from(e: EgraphError) -> Self {
        OptError::Egraph(e)
    }
}

/// Machine-readable class of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagCode {
    /// The technology floor `V_min` limited the voltage reduction; the
    /// residual slowdown only earns a linear (frequency) reduction.
    VoltageClamped,
    /// Voltage scaling was unavailable (supply at or below threshold, or
    /// bisection failure); the full slowdown was taken as a linear
    /// frequency reduction instead (§3's fallback).
    FrequencyOnlyFallback,
    /// The unfolding search hit its configured cap before reaching the
    /// slack needed for the voltage floor.
    UnfoldingCapped,
    /// Equality saturation stopped on a node/iteration budget before
    /// reaching a fixpoint; extraction used the best representations found
    /// so far (service code `RES-SATURATION-BUDGET`).
    SaturationBudget,
}

/// A non-fatal warning emitted while an optimizer degraded gracefully.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Machine-readable class.
    pub code: DiagCode,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning[{:?}]: {}", self.code, self.message)
    }
}

/// Shared voltage-scaling step with graceful degradation: when the
/// delay-curve inversion is unusable (supply at/below threshold), fall
/// back to a pure frequency reduction — the paper's §3 linear fallback —
/// and record a diagnostic. Non-finite slowdowns (corrupted upstream
/// analysis) still fail hard.
pub(crate) fn scale_or_fallback(
    model: &VoltageModel,
    v_from: f64,
    slowdown: f64,
    diags: &mut Vec<Diagnostic>,
) -> Result<VoltageScaling, OptError> {
    if !slowdown.is_finite() {
        return Err(OptError::Voltage(VoltageError::InfeasibleSlowdown {
            slowdown,
        }));
    }
    let slowdown = slowdown.max(1.0);
    match model.scale_for_slowdown(v_from, slowdown) {
        Ok(s) => {
            if s.clamped() {
                diags.push(Diagnostic {
                    code: DiagCode::VoltageClamped,
                    message: format!(
                        "voltage clamped at the {} V technology floor; residual slowdown \
                         {:.3}x earns only a linear reduction",
                        model.v_min(),
                        s.residual_slowdown()
                    ),
                });
            }
            Ok(s)
        }
        Err(e @ (VoltageError::BelowThreshold { .. } | VoltageError::NonConvergence { .. })) => {
            diags.push(Diagnostic {
                code: DiagCode::FrequencyOnlyFallback,
                message: format!(
                    "voltage scaling unavailable ({e}); applying the {slowdown:.3}x slowdown \
                     as a frequency reduction only"
                ),
            });
            Ok(VoltageScaling {
                v_initial: v_from,
                voltage: v_from,
                slowdown_requested: slowdown,
                slowdown_at_voltage: 1.0,
            })
        }
        Err(e) => Err(OptError::Voltage(e)),
    }
}

/// Shared technology configuration for all optimizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechConfig {
    /// Voltage/delay model (Fig. 1).
    pub voltage: VoltageModel,
    /// Per-operation energy model.
    pub energy: EnergyModel,
    /// Initial supply voltage (3.3 V or 5.0 V in the paper).
    pub initial_voltage: f64,
    /// Processor instruction timing.
    pub processor: ProcessorModel,
}

impl TechConfig {
    /// The paper's setup at the given initial voltage: `V_t = 0.9`,
    /// `V_min = 1.1`, unit-cycle instructions, 16-bit datapath energies.
    pub fn dac96(initial_voltage: f64) -> TechConfig {
        TechConfig {
            voltage: VoltageModel::dac96(),
            energy: EnergyModel::asic_16bit(),
            initial_voltage,
            processor: ProcessorModel::unit(),
        }
    }

    /// The processor's instruction timing as the unified cycle cost model
    /// — the weights the §3/§4 unfolding searches minimize.
    pub fn cycle_cost(&self) -> CycleCost {
        CycleCost {
            w_mul: self.processor.cycles_mul as f64,
            w_add: self.processor.cycles_add as f64,
        }
    }

    /// The datapath energy model at a given supply voltage as the unified
    /// cost model — the §5 accounting and the e-graph extraction objective.
    pub fn energy_cost(&self, voltage: f64) -> EnergyCost {
        EnergyCost {
            model: self.energy,
            voltage,
        }
    }
}

/// The three optimization strategies, under the names the CLI's
/// `--strategy` flag and the serve wire protocol accept. Parsing is
/// strict: an unknown name is a configuration error ([`UnknownStrategy`],
/// classified `VAL-CONFIG`), never a silent fallback to
/// [`Strategy::Single`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// §3: unfolding + voltage scaling on one programmable processor.
    Single,
    /// §4: unfolding across `N` processors.
    Multi,
    /// §5: the unfold → Horner → MCM ASIC script.
    Asic,
    /// The §5 script followed by equality-saturation search over the DFG
    /// with cost-based extraction (never worse than the fixed script).
    Egraph,
}

impl Strategy {
    /// The accepted spelling of this strategy.
    pub const fn name(self) -> &'static str {
        match self {
            Strategy::Single => "single",
            Strategy::Multi => "multi",
            Strategy::Asic => "asic",
            Strategy::Egraph => "egraph",
        }
    }

    /// Every strategy, for exhaustive sweeps and help texts.
    pub const fn all() -> [Strategy; 4] {
        [
            Strategy::Single,
            Strategy::Multi,
            Strategy::Asic,
            Strategy::Egraph,
        ]
    }

    /// Parses a strategy name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownStrategy`] (a configuration mistake, not a usage
    /// typo to be silently defaulted) for anything but the exact names.
    pub fn parse(name: &str) -> Result<Strategy, UnknownStrategy> {
        Strategy::all()
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| UnknownStrategy {
                name: name.to_string(),
            })
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `--strategy` (or wire `strategy`) value that names no strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStrategy {
    /// The rejected value.
    pub name: String,
}

impl fmt::Display for UnknownStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = Strategy::all().iter().map(|s| s.name()).collect();
        write!(
            f,
            "unknown strategy `{}`; expected one of: {}",
            self.name,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownStrategy {}

#[cfg(test)]
mod strategy_tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in Strategy::all() {
            assert_eq!(Strategy::parse(s.name()), Ok(s));
            assert_eq!(s.to_string(), s.name());
        }
    }

    #[test]
    fn unknown_names_are_errors_not_fallbacks() {
        for bad in ["", "Single", "SINGLE", "dual", "asic "] {
            let err = Strategy::parse(bad).unwrap_err();
            assert_eq!(err.name, bad);
            assert!(err.to_string().contains("single, multi, asic"), "{err}");
        }
    }
}

//! End-to-end power optimization strategies (§3, §4, §5 of the paper).
//!
//! * [`single`] — unfolding-driven voltage–throughput trade-off on one
//!   programmable processor (Table 2),
//! * [`multi`] — the same plus `N` processors with measured schedule
//!   speedups (Table 3),
//! * [`asic`] — the transformation script unfold → generalized Horner →
//!   MCM for custom datapaths (Table 4).
//!
//! # Examples
//!
//! ```
//! use lintra_opt::{single, TechConfig};
//! use lintra_suite::dense_synthetic;
//!
//! let sys = dense_synthetic(1, 1, 5);
//! let r = single::optimize(&sys, &TechConfig::dac96(3.3));
//! // The §3 worked example: i_opt = 6, S_max ≈ 1.975.
//! assert_eq!(r.dense.unfolding, 6);
//! assert!(r.dense.power_reduction() > 2.0);
//! ```

pub mod asic;
pub mod multi;
pub mod single;

use lintra_power::{EnergyModel, VoltageModel};
use lintra_sched::ProcessorModel;

/// Shared technology configuration for all optimizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechConfig {
    /// Voltage/delay model (Fig. 1).
    pub voltage: VoltageModel,
    /// Per-operation energy model.
    pub energy: EnergyModel,
    /// Initial supply voltage (3.3 V or 5.0 V in the paper).
    pub initial_voltage: f64,
    /// Processor instruction timing.
    pub processor: ProcessorModel,
}

impl TechConfig {
    /// The paper's setup at the given initial voltage: `V_t = 0.9`,
    /// `V_min = 1.1`, unit-cycle instructions, 16-bit datapath energies.
    pub fn dac96(initial_voltage: f64) -> TechConfig {
        TechConfig {
            voltage: VoltageModel::dac96(),
            energy: EnergyModel::asic_16bit(),
            initial_voltage,
            processor: ProcessorModel::unit(),
        }
    }
}

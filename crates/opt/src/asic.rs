//! §5 — the ASIC transformation script: unfold → generalized Horner → MCM.
//!
//! The script produces a computation whose only cross-iteration cycle is
//! the precomputed `A^n·S` product, so arbitrarily many pipeline stages
//! can be inserted in the feed-forward part and the supply voltage can be
//! driven to the technology minimum. Energy per sample is then the
//! (shift-add) operation census at `V_min`, compared against the original
//! multiply-accumulate datapath at the initial voltage.

use crate::{scale_or_fallback, DiagCode, Diagnostic, OptError, TechConfig};
use lintra_dfg::{build, CostModel, CriticalPathCost, OpCounts, OpTiming};
use lintra_engine::SweepCache;
use lintra_linsys::{LinsysError, StateSpace};
use lintra_mcm::Recoding;
use lintra_power::EnergyBreakdown;
use lintra_transform::horner::HornerForm;
use lintra_transform::mcm_pass::{expand_multiplications, McmPassConfig, McmPassReport};

/// Configuration of the ASIC flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicConfig {
    /// Fixed-point fractional bits for the MCM quantization.
    pub frac_bits: u32,
    /// MCM digit recoding.
    pub recoding: Recoding,
    /// Cap on the unfolding search (batch = unfolding + 1).
    pub max_unfolding: u32,
    /// Datapath timing used for the pipelining/voltage feasibility check.
    pub timing: OpTiming,
}

impl Default for AsicConfig {
    fn default() -> Self {
        AsicConfig {
            frac_bits: 12,
            recoding: Recoding::Csd,
            max_unfolding: 127,
            timing: OpTiming {
                t_mul: 2.0,
                t_add: 1.0,
                t_shift: 0.0,
            },
        }
    }
}

/// Result of the ASIC flow on one design (one Table-4 row).
#[derive(Debug, Clone, PartialEq)]
pub struct AsicResult {
    /// Unfolding factor chosen (batch = `unfolding + 1`).
    pub unfolding: u32,
    /// Operating voltage of the transformed design.
    pub voltage: f64,
    /// Energy per sample of the original multiply-accumulate datapath at
    /// the initial voltage.
    pub initial: EnergyBreakdown,
    /// Energy per sample of the transformed (Horner + MCM shift-add)
    /// datapath at the reduced voltage.
    pub optimized: EnergyBreakdown,
    /// MCM pass statistics.
    pub mcm: McmPassReport,
    /// Non-fatal warnings (unfolding capped, voltage clamped,
    /// frequency-only fallback).
    pub diagnostics: Vec<Diagnostic>,
}

impl AsicResult {
    /// Improvement factor (Table 4's last column).
    pub fn improvement(&self) -> f64 {
        self.initial.total_j() / self.optimized.total_j()
    }
}

/// Smallest unfolding whose pipelined feed-forward leaves enough slack to
/// run the feedback cycle at `V_min`.
///
/// The original design's clock period is its full critical path at the
/// initial voltage; the transformed design must only close the (constant)
/// feedback path within `n` sample periods, so the available slowdown is
/// `n·CP_original/CP_feedback`.
fn required_unfolding<H>(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &AsicConfig,
    diags: &mut Vec<Diagnostic>,
    horner: &mut H,
) -> Result<u32, OptError>
where
    H: FnMut(u32) -> Result<HornerForm, LinsysError>,
{
    let clock = CriticalPathCost { timing: cfg.timing };
    let base_cp = clock.graph_cost(&build::from_state_space(sys)?).max(1.0);
    let v0 = tech.initial_voltage;
    // A supply at (or below) the threshold or the floor has no voltage
    // headroom for unfolding to buy; ask for no slowdown rather than
    // evaluating the delay curve outside its domain.
    let needed = if v0.is_finite() && v0 > tech.voltage.vt() && v0 > tech.voltage.v_min() {
        tech.voltage.slowdown_between(v0, tech.voltage.v_min())
    } else {
        1.0
    };
    // The feedback path of the Horner form is independent of the unfolding
    // depth (only A^n·S is in the cycle), so solve for n in closed form
    // from the depth at n = 1 and verify, bumping if the measured path at
    // the chosen depth differs by a rounding level.
    let fb1 = horner(0)?
        .to_dfg()?
        .feedback_critical_path(&cfg.timing)
        .max(1.0);
    let mut i = ((needed * fb1 / base_cp).ceil() as i64 - 1).max(0) as u32;
    loop {
        i = i.min(cfg.max_unfolding);
        let fb = horner(i)?
            .to_dfg()?
            .feedback_critical_path(&cfg.timing)
            .max(1.0);
        let available = (i as f64 + 1.0) * base_cp / fb;
        if available >= needed {
            return Ok(i);
        }
        if i >= cfg.max_unfolding {
            diags.push(Diagnostic {
                code: DiagCode::UnfoldingCapped,
                message: format!(
                    "unfolding capped at {i}: available slowdown {available:.2}x is short of \
                     the {needed:.2}x needed to reach the voltage floor"
                ),
            });
            return Ok(i);
        }
        i += 1;
    }
}

/// Runs the full §5 script and accounts energy per sample.
///
/// # Errors
///
/// Returns [`OptError::Linsys`] for an unstable or non-finite system and
/// [`OptError::Dfg`] when a transformation pass produces an invalid graph.
/// Hitting the unfolding cap or the voltage floor is *not* an error — the
/// flow degrades to the deepest/lowest feasible point and records a
/// diagnostic.
pub fn optimize(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &AsicConfig,
) -> Result<AsicResult, OptError> {
    optimize_impl(sys, tech, cfg, &mut |i| HornerForm::new(sys, i))
}

/// [`optimize`] with every Horner restructuring served by the incremental
/// power chain of a [`SweepCache`] — the unfolding search re-derives
/// `A^n`/`C·A^k` dozens of times per design, and the cache computes each
/// power exactly once. Bit-identical to [`optimize`] (asserted by the
/// differential test layer).
///
/// # Errors
///
/// Identical to [`optimize`].
pub fn optimize_cached(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &AsicConfig,
    cache: &mut SweepCache,
) -> Result<AsicResult, OptError> {
    optimize_impl(sys, tech, cfg, &mut |i| cache.horner(i))
}

fn optimize_impl<H>(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &AsicConfig,
    horner: &mut H,
) -> Result<AsicResult, OptError>
where
    H: FnMut(u32) -> Result<HornerForm, LinsysError>,
{
    Ok(script_with_graphs(sys, tech, cfg, horner)?.result)
}

/// Everything [`optimize`] computes plus the intermediate graphs, so the
/// equality-saturation strategy can seed its e-graph with the script's
/// realizations instead of re-deriving them.
pub(crate) struct ScriptArtifacts {
    /// The fixed-script result exactly as [`optimize`] returns it.
    pub result: AsicResult,
    /// The unfolded generalized-Horner graph (pre-MCM, real multipliers).
    pub horner_dfg: lintra_dfg::Dfg,
    /// The post-MCM shift-add graph the script's accounting prices.
    pub shifted: lintra_dfg::Dfg,
}

pub(crate) fn script_with_graphs<H>(
    sys: &StateSpace,
    tech: &TechConfig,
    cfg: &AsicConfig,
    horner: &mut H,
) -> Result<ScriptArtifacts, OptError>
where
    H: FnMut(u32) -> Result<HornerForm, LinsysError>,
{
    let (p, q, r) = sys.dims();
    let mut diagnostics = Vec::new();

    // Initial design: maximally fast multiply-accumulate datapath at V0,
    // priced through the unified energy cost model.
    let base = build::from_state_space(sys)?;
    let bc = base.op_counts();
    let regs0 = (r + p + q) as u64;
    let initial = tech.energy_cost(tech.initial_voltage).breakdown(&OpCounts {
        delays: regs0,
        ..bc
    });

    // Transformed design.
    let unfolding = required_unfolding(sys, tech, cfg, &mut diagnostics, horner)?;
    let n = unfolding as u64 + 1;
    let horner_dfg = horner(unfolding)?.to_dfg()?;
    let (shifted, mcm) = expand_multiplications(
        &horner_dfg,
        McmPassConfig {
            frac_bits: cfg.frac_bits,
            recoding: cfg.recoding,
        },
    )?;
    let oc = shifted.op_counts();
    debug_assert_eq!(oc.muls, 0, "mcm pass must remove every multiplier");

    // Feasible voltage: everything the unfolding earned, clamped at V_min.
    let clock = CriticalPathCost { timing: cfg.timing };
    let base_cp = clock.graph_cost(&base).max(1.0);
    let fb = shifted.feedback_critical_path(&cfg.timing).max(1.0);
    let available = n as f64 * base_cp / fb;
    let scaling = scale_or_fallback(
        &tech.voltage,
        tech.initial_voltage,
        available,
        &mut diagnostics,
    )?;

    // Per-sample counts: one batch of the transformed graph serves n
    // samples; registers: state registers once per batch + I/O registers
    // per sample.
    let per = |x: u64| -> u64 { x.div_ceil(n) };
    let regs = per(r as u64) + (p + q) as u64;
    let optimized = tech.energy_cost(scaling.voltage).breakdown(&OpCounts {
        adds: per(oc.adds),
        muls: 0,
        shifts: per(oc.shifts),
        delays: regs,
        negs: 0,
    });

    Ok(ScriptArtifacts {
        result: AsicResult {
            unfolding,
            voltage: scaling.voltage,
            initial,
            optimized,
            mcm,
            diagnostics,
        },
        horner_dfg,
        shifted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_suite::{by_name, suite};

    /// 3.3 V keeps the required unfolding (and test time) moderate; the
    /// single-design floor test below uses 5.0 V.
    fn tech() -> TechConfig {
        TechConfig::dac96(3.3)
    }

    #[test]
    fn asic_flow_reaches_the_voltage_floor() {
        let d = by_name("iir5").unwrap();
        let r = optimize(&d.system, &TechConfig::dac96(5.0), &AsicConfig::default()).unwrap();
        assert!(
            (r.voltage - 1.1).abs() < 1e-6,
            "expected V_min, got {} (unfolding {})",
            r.voltage,
            r.unfolding
        );
    }

    #[test]
    fn asic_improvements_are_large() {
        // Table 4: average/median improvement factors in the tens.
        let cfg = AsicConfig::default();
        let t = tech();
        let mut factors = Vec::new();
        for d in suite() {
            let r = optimize(&d.system, &t, &cfg).unwrap();
            assert!(r.improvement() > 1.0, "{} got {}", d.name, r.improvement());
            factors.push(r.improvement());
        }
        let avg = factors.iter().sum::<f64>() / factors.len() as f64;
        assert!(avg > 10.0, "average improvement {avg} ({factors:?})");
    }

    #[test]
    fn multipliers_are_fully_eliminated() {
        let d = by_name("chemical").unwrap();
        let r = optimize(&d.system, &tech(), &AsicConfig::default()).unwrap();
        assert!(r.mcm.muls_removed > 0);
        assert_eq!(r.optimized.mults_j, 0.0);
    }

    #[test]
    fn improvement_grows_with_initial_voltage() {
        let d = by_name("iir6").unwrap();
        let cfg = AsicConfig::default();
        let lo = optimize(&d.system, &TechConfig::dac96(3.3), &cfg).unwrap();
        let hi = optimize(&d.system, &TechConfig::dac96(5.0), &cfg).unwrap();
        assert!(hi.improvement() > lo.improvement());
    }

    #[test]
    fn tight_unfolding_cap_degrades_with_diagnostic() {
        // A cap of 1 cannot possibly buy the ~92x slowdown 5.0 V needs;
        // the flow must still return a (shallow) result and say why.
        let d = by_name("iir5").unwrap();
        let cfg = AsicConfig {
            max_unfolding: 1,
            ..AsicConfig::default()
        };
        let r = optimize(&d.system, &TechConfig::dac96(5.0), &cfg).unwrap();
        assert!(r.unfolding <= 1);
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.code == DiagCode::UnfoldingCapped));
        assert!(
            r.voltage > 1.1,
            "capped flow should not reach the floor, got {}",
            r.voltage
        );
    }

    #[test]
    fn cached_horner_path_is_bit_identical_to_sequential() {
        let t = tech();
        let cfg = AsicConfig::default();
        for d in suite() {
            let seq = optimize(&d.system, &t, &cfg).unwrap();
            let mut cache = SweepCache::new(&d.system);
            let cached = optimize_cached(&d.system, &t, &cfg, &mut cache).unwrap();
            assert_eq!(cached, seq, "{}", d.name);
            assert!(
                cache.stats().hits > 0,
                "{}: deep search should reuse powers",
                d.name
            );
        }
    }

    #[test]
    fn unfolding_is_bounded_and_sufficient() {
        // Reaching the 1.1 V floor from 5.0 V needs a ~92x slowdown, which
        // the constant feedback path converts into a batch of roughly
        // 92·CP_fb/CP_base samples — large but finite and under the cap.
        for d in suite() {
            let r = optimize(&d.system, &tech(), &AsicConfig::default()).unwrap();
            assert!(
                r.unfolding <= 127,
                "{} used unfolding {}",
                d.name,
                r.unfolding
            );
            assert!(
                r.unfolding >= 8,
                "{} suspiciously shallow: {}",
                d.name,
                r.unfolding
            );
        }
    }
}

//! §3 — single-processor power reduction via unfolding-driven
//! voltage–throughput trade-off.
//!
//! On one programmable processor throughput is decided solely by the
//! instruction count per sample. Unfolding to `i_opt` minimizes it, the
//! clock is slowed by the earned factor `S_max`, and the supply voltage is
//! dropped to the lowest value that still meets the slower clock. Power
//! falls by `(V₀/V₁)²·S_max`; if voltage scaling is unavailable, the same
//! `S_max` still buys a *linear* reduction via clock slowdown or shutdown.

use crate::{scale_or_fallback, Diagnostic, OptError, TechConfig};
use lintra_dfg::{CostModel, CycleCost, OpCounts};
use lintra_engine::SweepCache;
use lintra_linsys::count::{
    best_unfolding, dense_iopt, dense_op_count, op_count, OpCount, TrivialityRule, UnfoldingChoice,
};
use lintra_linsys::{LinsysError, StateSpace};
use lintra_power::VoltageScaling;

/// Prices a linsys instruction census through the unified cycle model.
/// Bit-identical to `OpCount::cycles` (the census default multiplies
/// first; parity is pinned in `lintra_dfg::cost`'s tests).
fn instr_cycles(model: &CycleCost, ops: &OpCount) -> f64 {
    model.census_cost(&OpCounts {
        adds: ops.adds,
        muls: ops.muls,
        shifts: ops.shifts,
        delays: 0,
        negs: 0,
    })
}

/// One column group of Table 2 (either the dense-analysis columns or the
/// real-coefficient heuristic columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnfoldingOutcome {
    /// Operations of the original (`i = 0`) system per iteration.
    pub ops_initial: OpCount,
    /// Chosen unfolding factor.
    pub unfolding: u64,
    /// Operations of one unfolded iteration (`i + 1` samples).
    pub ops_unfolded: OpCount,
    /// Throughput improvement `S_max` (per-sample cycle ratio).
    pub speedup: f64,
    /// The voltage scaling applied.
    pub scaling: VoltageScaling,
}

impl UnfoldingOutcome {
    /// Relative clock frequency after the trade-off (`1/S_max`; Table 2's
    /// "Frq" column).
    pub fn frequency_ratio(&self) -> f64 {
        1.0 / self.speedup
    }

    /// Power-reduction factor with voltage scaling (Table 2's "Pwr").
    pub fn power_reduction(&self) -> f64 {
        self.scaling.power_reduction()
    }

    /// Power-reduction factor when the voltage cannot be changed: the §3
    /// frequency-reduction/shutdown fallback (linear in `S_max`).
    pub fn power_reduction_frequency_only(&self) -> f64 {
        self.speedup
    }
}

/// Full result of the single-processor strategy on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleProcessorResult {
    /// `(P, Q, R)` of the design.
    pub dims: (usize, usize, usize),
    /// Predicted outcome assuming dense coefficient matrices (closed
    /// forms, EQ 4/5).
    pub dense: UnfoldingOutcome,
    /// Measured outcome on the actual coefficients (§3 heuristic).
    pub real: UnfoldingOutcome,
    /// Non-fatal warnings (voltage clamped at the floor, frequency-only
    /// fallback).
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs the §3 strategy: dense closed-form prediction plus the empirical
/// heuristic on the actual coefficients, both followed by the
/// voltage-scaling step.
///
/// # Errors
///
/// Returns [`OptError::Linsys`] when the unfolding analysis rejects the
/// system (unstable `A`, non-finite coefficients) and [`OptError::Voltage`]
/// when a computed speedup is non-finite. A supply voltage at or below
/// threshold is *not* an error: the optimizer degrades to the §3
/// frequency-only fallback and records a diagnostic.
pub fn optimize(sys: &StateSpace, tech: &TechConfig) -> Result<SingleProcessorResult, OptError> {
    optimize_impl(sys, tech, |rule, wm, wa| best_unfolding(sys, rule, wm, wa))
}

/// [`optimize`] with the unfolding search served by an incremental
/// [`SweepCache`] — the engine-backed path used by the parallel table
/// drivers. The cache is bit-identical to the from-scratch unfolder, so
/// the returned result compares `==` with [`optimize`]'s (asserted by the
/// differential test layer).
///
/// # Errors
///
/// Identical to [`optimize`].
pub fn optimize_cached(
    sys: &StateSpace,
    tech: &TechConfig,
    cache: &mut SweepCache,
) -> Result<SingleProcessorResult, OptError> {
    optimize_impl(sys, tech, |rule, wm, wa| {
        lintra_engine::best_unfolding(cache, rule, wm, wa)
    })
}

fn optimize_impl<F>(
    sys: &StateSpace,
    tech: &TechConfig,
    search: F,
) -> Result<SingleProcessorResult, OptError>
where
    F: FnOnce(TrivialityRule, f64, f64) -> Result<UnfoldingChoice, LinsysError>,
{
    let (p, q, r) = sys.dims();
    let cycles = tech.cycle_cost();
    let (wm, wa) = (cycles.w_mul, cycles.w_add);
    let mut diagnostics = Vec::new();

    // Dense analysis.
    let (pu, qu, ru) = (p as u64, q as u64, r as u64);
    let iopt = dense_iopt(pu, qu, ru, wm, wa);
    let ops0 = dense_op_count(pu, qu, ru, 0);
    let opsi = dense_op_count(pu, qu, ru, iopt);
    let dense_speedup =
        instr_cycles(&cycles, &ops0) / (instr_cycles(&cycles, &opsi) / (iopt + 1) as f64);
    let dense = UnfoldingOutcome {
        ops_initial: ops0,
        unfolding: iopt,
        ops_unfolded: opsi,
        speedup: dense_speedup,
        scaling: scale_or_fallback(
            &tech.voltage,
            tech.initial_voltage,
            dense_speedup,
            &mut diagnostics,
        )?,
    };

    // Real coefficients.
    let choice = search(TrivialityRule::ZeroOne, wm, wa)?;
    let real = UnfoldingOutcome {
        ops_initial: op_count(sys, TrivialityRule::ZeroOne),
        unfolding: choice.unfolding,
        ops_unfolded: choice.ops,
        speedup: choice.speedup(),
        scaling: scale_or_fallback(
            &tech.voltage,
            tech.initial_voltage,
            choice.speedup(),
            &mut diagnostics,
        )?,
    };

    Ok(SingleProcessorResult {
        dims: (p, q, r),
        dense,
        real,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_suite::{by_name, dense_synthetic, suite};

    #[test]
    fn worked_example_matches_paper_numbers() {
        // §3: P = Q = 1, R = 5, initial 3.0 V.
        let sys = dense_synthetic(1, 1, 5);
        let r = optimize(&sys, &TechConfig::dac96(3.0)).unwrap();
        assert_eq!(r.dense.unfolding, 6);
        assert!(
            (r.dense.speedup - 1.975).abs() < 0.01,
            "S_max {}",
            r.dense.speedup
        );
        // Voltage drops substantially below 3.0 and power reduction beats
        // the linear fallback.
        assert!(r.dense.scaling.voltage < 2.5);
        assert!(r.dense.power_reduction() > r.dense.power_reduction_frequency_only());
        // Dense synthetic system: the heuristic should agree with the
        // closed form.
        assert_eq!(r.real.unfolding, 6);
        assert!((r.real.speedup - r.dense.speedup).abs() < 0.02);
    }

    #[test]
    fn higher_initial_voltage_gives_larger_reduction() {
        // §3: "If the initial voltage was 5.0 ... an even larger power
        // reduction".
        let sys = dense_synthetic(1, 1, 5);
        let r33 = optimize(&sys, &TechConfig::dac96(3.3)).unwrap();
        let r50 = optimize(&sys, &TechConfig::dac96(5.0)).unwrap();
        assert!(r50.dense.power_reduction() > r33.dense.power_reduction());
    }

    #[test]
    fn dist_gets_no_reduction() {
        let d = by_name("dist").unwrap();
        let r = optimize(&d.system, &TechConfig::dac96(3.3)).unwrap();
        assert_eq!(r.real.unfolding, 0);
        assert!((r.real.power_reduction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_designs_match_dense_prediction() {
        for name in ["ellip", "steam"] {
            let d = by_name(name).unwrap();
            let r = optimize(&d.system, &TechConfig::dac96(3.3)).unwrap();
            assert_eq!(r.real.unfolding, r.dense.unfolding, "{name}");
            assert!(
                (r.real.power_reduction() - r.dense.power_reduction()).abs()
                    < 0.05 * r.dense.power_reduction(),
                "{name}: real {} vs dense {}",
                r.real.power_reduction(),
                r.dense.power_reduction()
            );
        }
    }

    #[test]
    fn suite_average_reduction_is_substantial() {
        // The paper reports a meaningful average power reduction at 3.3 V
        // with at least one design (dist) getting none.
        let results: Vec<f64> = suite()
            .iter()
            .map(|d| {
                optimize(&d.system, &TechConfig::dac96(3.3))
                    .unwrap()
                    .real
                    .power_reduction()
            })
            .collect();
        let avg = results.iter().sum::<f64>() / results.len() as f64;
        assert!(avg > 1.5, "average reduction {avg} ({results:?})");
        assert!(
            results.iter().any(|&x| (x - 1.0).abs() < 1e-9),
            "dist should be 1.0"
        );
    }

    #[test]
    fn frequency_only_fallback_is_linear() {
        let sys = dense_synthetic(1, 1, 8);
        let r = optimize(&sys, &TechConfig::dac96(3.3)).unwrap();
        assert!((r.dense.power_reduction_frequency_only() - r.dense.speedup).abs() < 1e-12);
        assert!((r.dense.frequency_ratio() - 1.0 / r.dense.speedup).abs() < 1e-12);
    }

    #[test]
    fn cached_search_is_bit_identical_to_sequential() {
        let tech = TechConfig::dac96(3.3);
        for d in suite() {
            let seq = optimize(&d.system, &tech).unwrap();
            let mut cache = SweepCache::new(&d.system);
            let cached = optimize_cached(&d.system, &tech, &mut cache).unwrap();
            assert_eq!(cached, seq, "{}", d.name);
        }
    }

    #[test]
    fn real_never_beats_what_its_own_speedup_allows() {
        for d in suite() {
            let r = optimize(&d.system, &TechConfig::dac96(3.3)).unwrap();
            let bound = (3.3 / 1.1_f64).powi(2) * r.real.speedup;
            assert!(r.real.power_reduction() <= bound + 1e-9, "{}", d.name);
        }
    }
}

//! Crash-safe binary snapshots of a [`SweepCache`].
//!
//! An unfolded sweep is the expensive artifact of the whole pipeline: the
//! `A^k` / `A^k·B` / `C·A^k` / `C·A^k·B` chains a [`SweepCache`] holds are
//! pure functions of the design, so they can be persisted across process
//! restarts and reused bit-for-bit. This module serializes a cache to a
//! dependency-free binary format with the durability properties a
//! write-behind store needs:
//!
//! * **Atomic visibility** — [`save`] writes to a temporary sibling file,
//!   fsyncs it, and renames it over the destination, so a reader never
//!   observes a half-written snapshot, even across `kill -9` or power
//!   loss mid-write.
//! * **Checksummed loads** — the payload carries a CRC32 ([`crc32`],
//!   IEEE polynomial); [`load`] verifies it before deserializing, so a
//!   flipped bit is a classified [`SnapshotError::Corrupt`], never a
//!   silently wrong matrix or a panic.
//! * **Structural validation** — after the checksum, the decoded cache is
//!   checked against the [`SweepCache`] invariants (`powers[0] = I`,
//!   coupling chains no longer than the power chain, finite entries via
//!   [`StateSpace::new`]); any violation is also `Corrupt`.
//! * **Quarantine, not deletion** — [`quarantine`] renames a corrupt file
//!   to a `.quarantined-<n>` sibling so the evidence survives for
//!   inspection while the caller starts over with a cold cache.
//!
//! The on-disk layout (all integers little-endian):
//!
//! ```text
//! magic  b"LSNP"            4 bytes
//! version u32               format version, currently 1
//! crc     u32               CRC32 (IEEE) of the payload bytes
//! len     u64               payload length in bytes
//! payload                   rho, sys {A,B,C,D}, powers, ab, ca, cab, stats
//! ```
//!
//! Matrices are encoded as `rows u64, cols u64, rows·cols f64-bit
//! patterns`, so a snapshot round-trips every value bit-identically — the
//! same contract the cache itself keeps with the from-scratch unfold.

use std::io::Write;
use std::path::{Path, PathBuf};

use lintra_linsys::StateSpace;
use lintra_matrix::Matrix;

use crate::cache::{CacheStats, SweepCache};

/// Snapshot format magic bytes.
const MAGIC: [u8; 4] = *b"LSNP";

/// Snapshot format version; bump on layout changes.
const VERSION: u32 = 1;

/// CRC32 (IEEE 802.3 polynomial, reflected), byte-at-a-time.
///
/// Shared by the snapshot format here and the request journal in the
/// serve layer, so both durability artifacts use one checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Failure loading or saving a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but is not a valid snapshot: bad magic, bad
    /// version, checksum mismatch, truncation, or an invariant violation
    /// in the decoded cache. The file should be quarantined.
    Corrupt {
        /// What exactly failed to verify.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Corrupt { detail } => {
                write!(f, "snapshot failed verification: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

fn corrupt(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        detail: detail.into(),
    }
}

// --- encoding -------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_f64(out, v);
    }
}

fn put_matrices(out: &mut Vec<u8>, ms: &[Matrix]) {
    put_u64(out, ms.len() as u64);
    for m in ms {
        put_matrix(out, m);
    }
}

/// Serializes the cache payload (everything after the header).
fn encode_payload(cache: &SweepCache) -> Vec<u8> {
    let (sys, rho, powers, ab, ca, cab, stats) = cache.snapshot_parts();
    let mut out = Vec::new();
    put_f64(&mut out, rho);
    put_matrix(&mut out, sys.a());
    put_matrix(&mut out, sys.b());
    put_matrix(&mut out, sys.c());
    put_matrix(&mut out, sys.d());
    put_matrices(&mut out, powers);
    put_matrices(&mut out, ab);
    put_matrices(&mut out, ca);
    put_matrices(&mut out, cab);
    put_u64(&mut out, stats.hits);
    put_u64(&mut out, stats.misses);
    out
}

// --- decoding -------------------------------------------------------------

struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("payload truncated at byte {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn dim(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        // A dimension bigger than the remaining payload could even hold is
        // corruption, not a huge-but-valid snapshot; reject before any
        // allocation is sized by attacker-controlled garbage.
        if v > (self.bytes.len() / 8) as u64 {
            return Err(corrupt(format!(
                "{what} dimension {v} exceeds payload size"
            )));
        }
        Ok(v as usize)
    }

    fn matrix(&mut self, what: &str) -> Result<Matrix, SnapshotError> {
        let rows = self.dim(what)?;
        let cols = self.dim(what)?;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n <= self.bytes.len() / 8)
            .ok_or_else(|| corrupt(format!("{what} shape {rows}x{cols} exceeds payload size")))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        if rows == 0 || cols == 0 {
            return Err(corrupt(format!(
                "{what} has an empty dimension ({rows}x{cols})"
            )));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn matrices(&mut self, what: &str) -> Result<Vec<Matrix>, SnapshotError> {
        let n = self.dim(what)?;
        (0..n)
            .map(|i| self.matrix(&format!("{what}[{i}]")))
            .collect()
    }
}

fn decode_payload(bytes: &[u8]) -> Result<SweepCache, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    let rho = r.f64()?;
    let a = r.matrix("A")?;
    let b = r.matrix("B")?;
    let c = r.matrix("C")?;
    let d = r.matrix("D")?;
    let sys = StateSpace::new(a, b, c, d)
        .map_err(|e| corrupt(format!("decoded system fails validation: {e}")))?;
    let powers = r.matrices("powers")?;
    let ab = r.matrices("ab")?;
    let ca = r.matrices("ca")?;
    let cab = r.matrices("cab")?;
    let stats = CacheStats {
        hits: r.u64()?,
        misses: r.u64()?,
    };
    if r.pos != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after payload",
            bytes.len() - r.pos
        )));
    }
    SweepCache::from_snapshot_parts(sys, rho, powers, ab, ca, cab, stats)
        .map_err(|detail| corrupt(format!("decoded cache violates invariants: {detail}")))
}

// --- file format ----------------------------------------------------------

/// Serializes the cache to the full on-disk byte form (header included).
pub fn to_bytes(cache: &SweepCache) -> Vec<u8> {
    let payload = encode_payload(cache);
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Parses the full on-disk byte form back into a cache.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on bad magic, unsupported version, length
/// mismatch, checksum mismatch, or invariant violations — never a panic.
pub fn from_bytes(bytes: &[u8]) -> Result<SweepCache, SnapshotError> {
    if bytes.len() < 20 {
        return Err(corrupt(format!(
            "file too short for a header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(corrupt("bad magic (not a lintra snapshot)"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let want_crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let payload = &bytes[20..];
    if payload.len() as u64 != len {
        return Err(corrupt(format!(
            "payload length mismatch: header says {len}, file has {}",
            payload.len()
        )));
    }
    let got_crc = crc32(payload);
    if got_crc != want_crc {
        return Err(corrupt(format!(
            "checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }
    decode_payload(payload)
}

/// Atomically persists the cache to `path`: write a temporary sibling,
/// fsync it, rename it into place, fsync the directory (best-effort).
///
/// # Errors
///
/// [`SnapshotError::Io`] when any filesystem step fails; the destination
/// is either the previous snapshot or the new one, never a mix.
pub fn save(cache: &SweepCache, path: &Path) -> Result<(), SnapshotError> {
    let bytes = to_bytes(cache);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself: fsync the containing directory.
    // Failure here only widens the crash window; the rename is still
    // atomic, so ignore errors (some filesystems refuse dir fsync).
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads and verifies a snapshot from `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be read and
/// [`SnapshotError::Corrupt`] when it fails any verification step.
pub fn load(path: &Path) -> Result<SweepCache, SnapshotError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}

/// What [`install_dir`] found in a snapshot directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstallReport {
    /// Snapshots that verified and were installed.
    pub loaded: usize,
    /// Corrupt snapshots moved aside with [`quarantine`].
    pub quarantined: usize,
}

/// Loads every `*.snap` in `dir` into `caches`, keyed by file stem.
///
/// This is the shared install path for both server startup recovery and
/// follower promotion: a snapshot that fails its checksum or invariants
/// is quarantined — never trusted, never fatal — and a missing directory
/// simply installs nothing.
///
/// # Errors
///
/// Only real filesystem failures (unreadable directory, failed rename)
/// error out; damaged snapshot *content* never does.
pub fn install_dir(
    dir: &Path,
    caches: &mut std::collections::HashMap<String, crate::cache::SweepCache>,
) -> Result<InstallReport, std::io::Error> {
    let mut report = InstallReport::default();
    if !dir.exists() {
        return Ok(report);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("snap") {
            continue;
        }
        let Some(design) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
            continue;
        };
        match load(&path) {
            Ok(cache) => {
                caches.insert(design, cache);
                report.loaded += 1;
            }
            Err(SnapshotError::Corrupt { .. }) => {
                quarantine(&path)?;
                report.quarantined += 1;
            }
            Err(SnapshotError::Io(e)) => return Err(e),
        }
    }
    Ok(report)
}

/// Moves a corrupt file aside to `<path>.quarantined-<n>` (first free
/// `n`), preserving the evidence while the caller starts fresh.
///
/// # Errors
///
/// Propagates the rename failure.
pub fn quarantine(path: &Path) -> Result<PathBuf, std::io::Error> {
    for n in 0..u32::MAX {
        let candidate = PathBuf::from(format!("{}.quarantined-{n}", path.display()));
        if !candidate.exists() {
            std::fs::rename(path, &candidate)?;
            return Ok(candidate);
        }
    }
    Err(std::io::Error::other("no free quarantine slot"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys_mimo() -> StateSpace {
        StateSpace::new(
            Matrix::from_rows(&[&[0.4, 0.12, 0.0], &[0.22, -0.3, 0.41], &[0.0, 0.2, 0.15]]),
            Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 1.0], &[0.25, -0.75]]),
            Matrix::from_rows(&[&[1.0, 0.0, 0.3], &[0.0, 0.45, -0.2]]),
            Matrix::from_rows(&[&[0.0, 0.1], &[0.2, 0.0]]),
        )
        .unwrap()
    }

    fn warm_cache() -> SweepCache {
        let mut cache = SweepCache::new(&sys_mimo());
        for i in [0u32, 3, 7] {
            cache.unfolded(i).unwrap();
        }
        cache.horner(5).unwrap();
        cache
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lintra-snap-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.snap")
    }

    #[test]
    fn byte_round_trip_is_bit_identical() {
        let mut original = warm_cache();
        let bytes = to_bytes(&original);
        let mut restored = from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(
            restored.spectral_radius().to_bits(),
            original.spectral_radius().to_bits()
        );
        for i in 0..=9u32 {
            assert_eq!(
                restored.unfolded(i).unwrap(),
                original.unfolded(i).unwrap(),
                "i = {i}"
            );
        }
        // The warm prefix must be served without recomputation.
        let mut fresh = from_bytes(&bytes).unwrap();
        let before = fresh.stats();
        fresh.unfolded(7).unwrap();
        assert_eq!(
            fresh.stats().misses,
            before.misses,
            "restored cache recomputed a warm prefix"
        );
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let path = tmp_path("roundtrip");
        let cache = warm_cache();
        save(&cache, &path).expect("save");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must not survive a save"
        );
        let mut restored = load(&path).expect("load");
        assert_eq!(restored.unfolded(7).unwrap(), unfold_reference(7));
        std::fs::remove_file(&path).ok();
    }

    fn unfold_reference(i: u32) -> lintra_linsys::UnfoldedSystem {
        lintra_linsys::unfold(&sys_mimo(), i).unwrap()
    }

    #[test]
    fn every_single_bit_flip_in_the_header_and_payload_is_caught() {
        let bytes = to_bytes(&warm_cache());
        let mut rng_positions: Vec<usize> = (0..bytes.len()).step_by(97).collect();
        rng_positions.extend([0, 4, 8, 12, 20, bytes.len() - 1]);
        for pos in rng_positions {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                from_bytes(&bad).is_err(),
                "flipping a bit at byte {pos} was not detected"
            );
        }
    }

    #[test]
    fn truncations_are_classified_not_panics() {
        let bytes = to_bytes(&warm_cache());
        for keep in [0, 1, 3, 4, 19, 20, 21, bytes.len() / 2, bytes.len() - 1] {
            let err = from_bytes(&bytes[..keep]).expect_err("truncated snapshot must fail");
            assert!(
                matches!(err, SnapshotError::Corrupt { .. }),
                "{keep}: {err}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = to_bytes(&warm_cache());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::Corrupt { .. })
        ));
        let mut bytes = to_bytes(&warm_cache());
        bytes[4] = 9;
        // Version is inside the header, not the payload CRC; still caught.
        let err = from_bytes(&bytes).expect_err("future version must be rejected");
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn quarantine_moves_the_file_aside() {
        let path = tmp_path("quarantine");
        std::fs::write(&path, b"garbage").unwrap();
        let moved = quarantine(&path).expect("quarantine");
        assert!(!path.exists());
        assert!(moved.exists());
        assert!(moved.to_string_lossy().contains(".quarantined-0"));
        // A second corrupt file gets the next slot, not an overwrite.
        std::fs::write(&path, b"garbage2").unwrap();
        let moved2 = quarantine(&path).expect("second quarantine");
        assert!(moved2.to_string_lossy().contains(".quarantined-1"));
        std::fs::remove_file(&moved).ok();
        std::fs::remove_file(&moved2).ok();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn decoded_invariant_violations_are_corrupt() {
        // Hand-build a payload whose powers[0] is not the identity: locate
        // the 3x3 identity bit pattern (unique to powers[0] in this
        // snapshot), break one entry, and re-stamp the CRC so only the
        // invariant check can object.
        let mut cache = SweepCache::new(&sys_mimo());
        cache.unfolded(2).unwrap();
        let mut bytes = to_bytes(&cache);
        let identity: Vec<u8> = Matrix::identity(3)
            .as_slice()
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        let payload_start = 20;
        let pos = bytes[payload_start..]
            .windows(identity.len())
            .position(|w| w == identity)
            .map(|p| p + payload_start)
            .expect("identity pattern present");
        bytes[pos..pos + 8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        let crc = crc32(&bytes[payload_start..]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        let err = from_bytes(&bytes).expect_err("invariant violation must be caught");
        assert!(err.to_string().contains("invariant"), "{err}");
    }
}

//! The §3 unfolding search, driven through a [`SweepCache`].
//!
//! [`best_unfolding`] replicates [`lintra_linsys::count::best_unfolding`]
//! step for step — same dense-optimum horizon, same strict-improvement
//! rule, same boundary extension — but every `unfold(sys, i)` is served by
//! the incremental cache, so the search costs one *new* power per step
//! instead of rebuilding the whole block system. Because the cache is
//! bit-identical to the from-scratch path, the returned
//! [`UnfoldingChoice`] compares `==` with the sequential one.

use crate::cache::SweepCache;
use lintra_linsys::count::{dense_iopt, op_count, OpCount, TrivialityRule, UnfoldingChoice};
use lintra_linsys::LinsysError;

/// Cached version of [`lintra_linsys::count::best_unfolding`]: evaluate
/// every `i` up to the dense analytical optimum, then keep extending while
/// the weighted per-sample count strictly improves.
///
/// # Errors
///
/// Returns [`LinsysError::UnstableSystem`] (via the cache) when the design
/// is not Schur stable, exactly as the sequential search does.
pub fn best_unfolding(
    cache: &mut SweepCache,
    rule: TrivialityRule,
    wm: f64,
    wa: f64,
) -> Result<UnfoldingChoice, LinsysError> {
    let (p, q, r) = cache.sys().dims();
    let iopt_dense = dense_iopt(p.max(1) as u64, q.max(1) as u64, r.max(1) as u64, wm, wa);

    let mut eval = |i: u64| -> Result<(OpCount, f64), LinsysError> {
        let ops = op_count(&cache.unfolded(i as u32)?.system, rule);
        let per = ops.cycles(wm, wa) / (i + 1) as f64;
        Ok((ops, per))
    };

    let (ops0, per0) = eval(0)?;
    let mut best = UnfoldingChoice {
        unfolding: 0,
        ops: ops0,
        cycles_per_sample: per0,
        baseline_cycles_per_sample: per0,
    };
    for i in 1..=iopt_dense {
        let (ops, per) = eval(i)?;
        if per < best.cycles_per_sample {
            best = UnfoldingChoice {
                unfolding: i,
                ops,
                cycles_per_sample: per,
                ..best
            };
        }
    }
    // Boundary: keep unfolding while it keeps helping.
    if best.unfolding == iopt_dense {
        let mut i = iopt_dense + 1;
        loop {
            let (ops, per) = eval(i)?;
            if per < best.cycles_per_sample {
                best = UnfoldingChoice {
                    unfolding: i,
                    ops,
                    cycles_per_sample: per,
                    ..best
                };
                i += 1;
            } else {
                break;
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_linsys::count::best_unfolding as best_unfolding_seq;
    use lintra_linsys::StateSpace;
    use lintra_matrix::Matrix;

    #[test]
    fn cached_search_equals_sequential_search() {
        let f = |i: usize, j: usize| 0.3 + 0.01 * (i as f64) + 0.007 * (j as f64);
        let dense = StateSpace::new(
            Matrix::from_fn(5, 5, f).scale(0.2),
            Matrix::from_fn(5, 1, f),
            Matrix::from_fn(1, 5, f),
            Matrix::from_fn(1, 1, f),
        )
        .unwrap();
        let diagonal = StateSpace::new(
            Matrix::from_diag(&[0.5, 0.25]),
            Matrix::from_rows(&[&[0.3], &[0.6]]),
            Matrix::from_rows(&[&[0.9, 0.8]]),
            Matrix::from_rows(&[&[0.2]]),
        )
        .unwrap();
        for sys in [dense, diagonal] {
            for rule in [TrivialityRule::ZeroOne, TrivialityRule::ZeroOnePow2] {
                for (wm, wa) in [(1.0, 1.0), (2.0, 1.0), (17.0, 3.0)] {
                    let want = best_unfolding_seq(&sys, rule, wm, wa).unwrap();
                    let mut cache = SweepCache::new(&sys);
                    let got = best_unfolding(&mut cache, rule, wm, wa).unwrap();
                    assert_eq!(got, want, "rule {rule:?}, wm {wm}, wa {wa}");
                }
            }
        }
    }

    #[test]
    fn repeated_search_on_one_cache_is_mostly_hits() {
        let f = |i: usize, j: usize| 0.3 + 0.01 * (i as f64) + 0.007 * (j as f64);
        let sys = StateSpace::new(
            Matrix::from_fn(4, 4, f).scale(0.2),
            Matrix::from_fn(4, 1, f),
            Matrix::from_fn(1, 4, f),
            Matrix::from_fn(1, 1, f),
        )
        .unwrap();
        let mut cache = SweepCache::new(&sys);
        let first = best_unfolding(&mut cache, TrivialityRule::ZeroOne, 1.0, 1.0).unwrap();
        let misses_cold = cache.stats().misses;
        let second = best_unfolding(&mut cache, TrivialityRule::ZeroOnePow2, 1.0, 1.0).unwrap();
        assert_eq!(first.unfolding, second.unfolding);
        assert_eq!(
            cache.stats().misses,
            misses_cold,
            "second rule pass recomputes nothing"
        );
        assert!(cache.stats().hit_rate() > 0.45);
    }
}

//! Cooperative cancellation for sweeps.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the code
//! that *requests* a sweep (a service handler with a per-request
//! deadline, a drain loop shutting the process down) and the workers that
//! *run* it. Workers never block on the token and are never interrupted
//! mid-point: the pool observes the token **between sweep points** (see
//! [`ThreadPool::map_ctl`](crate::ThreadPool::map_ctl)), so a cancelled
//! or deadline-expired sweep stops after at most one in-flight point per
//! worker — the bound behind the service layer's "`RES-DEADLINE` within
//! 2× the deadline" guarantee.
//!
//! Two things can retire a token:
//!
//! * an explicit [`CancelToken::cancel`] (graceful shutdown, a client
//!   that went away), reported as [`CancelReason::Cancelled`], and
//! * an absolute deadline fixed at construction
//!   ([`CancelToken::with_deadline`]), reported as
//!   [`CancelReason::DeadlineExpired`].
//!
//! An explicit cancel takes precedence when both hold, so a drain that
//! races a deadline reports deterministically as a drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token stopped being live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (shutdown, client gone).
    Cancelled,
    /// The deadline fixed at construction passed.
    DeadlineExpired,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; all clones share one state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; only [`CancelToken::cancel`] retires it.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires `budget` from now (and can still be cancelled
    /// explicitly before that).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Retires the token; all clones observe the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Why the token is retired, or `None` while it is still live.
    /// Explicit cancellation wins over an expired deadline.
    pub fn reason(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Some(CancelReason::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::DeadlineExpired),
            _ => None,
        }
    }

    /// `true` while neither cancelled nor past the deadline.
    pub fn is_live(&self) -> bool {
        self.reason().is_none()
    }

    /// Time left until the deadline (`None` for deadline-free tokens,
    /// zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(t.is_live());
        assert_eq!(t.reason(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert_eq!(c.reason(), Some(CancelReason::Cancelled));
        assert!(!c.is_live());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExpired));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn explicit_cancel_beats_expired_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn generous_deadline_stays_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.is_live());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }
}

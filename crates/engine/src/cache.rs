//! Incremental caches for sweep evaluation.
//!
//! Every sweep the paper runs (unfolding factor `i`, processor count `N`,
//! the 8-design suite) re-derives the same intermediates: the powers
//! `A^k`, the input couplings `A^k·B`, the output couplings `C·A^k`, the
//! Toeplitz sub-diagonal blocks `C·A^k·B` of `D_u`, and (for the ASIC
//! path) the Horner precomputations `A^n` / `[C·A^0 … C·A^{n−1}]`.
//! This module memoizes them *without changing a single bit* of any
//! result: each cached value is produced by exactly the expression the
//! from-scratch code uses — the same operand matrices, multiplied in the
//! same order by the same kernel — so reuse is bit-identical, not merely
//! tolerance-equal. The differential and property tests assert `==` on
//! the produced systems, never `approx_eq`.
//!
//! Cache-key discipline: a [`SweepCache`]/[`HornerCache`] is keyed by
//! *owning* its [`StateSpace`] (one cache per design), so there is no hash
//! collision to reason about. [`ExpmMemo`] is keyed by the bit pattern of
//! the input matrix (shape + `f64::to_bits` of every entry) with a full
//! stored-input equality check behind the hash, so a collision degrades to
//! a miss, never to a wrong result.

use lintra_linsys::{LinsysError, StateSpace, UnfoldedSystem};
use lintra_matrix::{expm_with, ExpmWorkspace, Matrix, MatrixError};
use lintra_transform::horner::HornerForm;

/// Hit/miss counters for a cache. A "hit" is one matrix product (or one
/// whole memoized `expm`) that was *not* recomputed thanks to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Products served from the cache.
    pub hits: u64,
    /// Products actually computed.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn absorb(&mut self, required: u64, computed: u64) {
        self.hits += required - computed;
        self.misses += computed;
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// cache — the per-call increment of a long-lived cache. Saturating,
    /// so a cache reset between snapshots reads as zero rather than
    /// wrapping.
    #[must_use]
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

/// Incremental unfolding: stepping `i → i+1` reuses every block computed
/// for `i` and adds only the new power, coupling column/row, and Toeplitz
/// sub-diagonal.
///
/// `unfolded(i)` is bit-identical to [`lintra_linsys::unfold`]`(sys, i)`:
/// both build `A^k` by the same left-to-right product chain and every
/// block from the same operand expressions, so the assembled
/// [`UnfoldedSystem`]s compare `==`.
#[derive(Debug, Clone)]
pub struct SweepCache {
    sys: StateSpace,
    rho: f64,
    /// `powers[k] = A^k`, grown on demand.
    powers: Vec<Matrix>,
    /// `ab[k] = A^k · B` — columns of `B_u`.
    ab: Vec<Matrix>,
    /// `ca[k] = C · A^k` — rows of `C_u`.
    ca: Vec<Matrix>,
    /// `cab[k] = (C · A^k) · B` — the `D_u` sub-diagonal at offset `k+1`.
    cab: Vec<Matrix>,
    stats: CacheStats,
}

impl SweepCache {
    /// A cache dedicated to `sys`. The spectral radius is computed once
    /// here and reused by every subsequent call.
    pub fn new(sys: &StateSpace) -> SweepCache {
        SweepCache {
            rho: sys.spectral_radius(),
            sys: sys.clone(),
            powers: vec![Matrix::identity(sys.num_states())],
            ab: Vec::new(),
            ca: Vec::new(),
            cab: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The design this cache serves.
    pub fn sys(&self) -> &StateSpace {
        &self.sys
    }

    /// Internal state in serialization order, for the snapshot encoder.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &StateSpace,
        f64,
        &[Matrix],
        &[Matrix],
        &[Matrix],
        &[Matrix],
        CacheStats,
    ) {
        (
            &self.sys,
            self.rho,
            &self.powers,
            &self.ab,
            &self.ca,
            &self.cab,
            self.stats,
        )
    }

    /// Rebuilds a cache from decoded snapshot state, enforcing every
    /// structural invariant [`SweepCache::new`] + incremental growth
    /// would have established. Used only by the snapshot decoder — a
    /// checksum-valid but structurally impossible file must still be
    /// rejected as corrupt rather than poison later sweeps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub(crate) fn from_snapshot_parts(
        sys: StateSpace,
        rho: f64,
        powers: Vec<Matrix>,
        ab: Vec<Matrix>,
        ca: Vec<Matrix>,
        cab: Vec<Matrix>,
        stats: CacheStats,
    ) -> Result<SweepCache, String> {
        // The spectral radius is a pure function of the (already
        // validated) system; recomputing it is cheap and pins the stored
        // value bit-for-bit.
        let fresh_rho = sys.spectral_radius();
        if rho.to_bits() != fresh_rho.to_bits() {
            return Err(format!(
                "stored spectral radius {rho} != recomputed {fresh_rho}"
            ));
        }
        let (p, q, r) = sys.dims();
        match powers.first() {
            Some(first) if matrix_bits_eq(first, &Matrix::identity(r)) => {}
            _ => return Err("powers[0] must be the identity".to_string()),
        }
        for (what, ms, (rows, cols)) in [
            ("powers", &powers, (r, r)),
            ("ab", &ab, (r, p)),
            ("ca", &ca, (q, r)),
            ("cab", &cab, (q, p)),
        ] {
            if let Some(bad) = ms.iter().position(|m| m.shape() != (rows, cols)) {
                return Err(format!(
                    "{what}[{bad}] has shape {:?}, want {rows}x{cols}",
                    { ms[bad].shape() }
                ));
            }
        }
        // Each chain is grown alongside the power chain and can never be
        // longer than it.
        for (what, len) in [("ab", ab.len()), ("ca", ca.len()), ("cab", cab.len())] {
            if len > powers.len() {
                return Err(format!("{what} chain ({len}) outgrew the power chain"));
            }
        }
        Ok(SweepCache {
            sys,
            rho,
            powers,
            ab,
            ca,
            cab,
            stats,
        })
    }

    /// Cached spectral-radius estimate of `A`.
    pub fn spectral_radius(&self) -> f64 {
        self.rho
    }

    /// Hit/miss counters (one unit = one matrix product).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Grows `powers` to hold `A^0..=A^n`; returns the number computed.
    fn ensure_powers(&mut self, n: usize) -> u64 {
        let mut computed = 0;
        for k in self.powers.len()..=n {
            self.powers.push(&self.powers[k - 1] * self.sys.a());
            computed += 1;
        }
        computed
    }

    /// Unfolds the design `i` times, reusing all previously computed
    /// blocks. Bit-identical to [`lintra_linsys::unfold`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`lintra_linsys::unfold`]:
    /// [`LinsysError::UnstableSystem`] when `ρ(A) ≥ 1`, and
    /// [`LinsysError::NonFinite`] if an assembled block fails the NaN/∞
    /// sentinel in [`StateSpace::new`].
    pub fn unfolded(&mut self, i: u32) -> Result<UnfoldedSystem, LinsysError> {
        if self.rho >= 1.0 {
            return Err(LinsysError::UnstableSystem {
                spectral_radius: self.rho,
            });
        }
        let (p, q, r) = self.sys.dims();
        let n = i as usize + 1;

        // Products required by a from-scratch unfold at this i: n powers
        // (A^1..A^n), n input couplings, n output couplings, and n−1
        // two-product sub-diagonals.
        let required = (n as u64) * 3 + 2 * (n as u64 - 1);
        let mut computed = self.ensure_powers(n);
        for k in self.ab.len()..n {
            self.ab.push(&self.powers[k] * self.sys.b());
            computed += 1;
        }
        for j in self.ca.len()..n {
            self.ca.push(self.sys.c() * &self.powers[j]);
            computed += 1;
        }
        for m in self.cab.len()..n.saturating_sub(1) {
            // Same value chain as `&(sys.c() * &powers[m]) * sys.b()`:
            // `ca[m]` holds the bit-identical inner product already, so
            // only the outer product is computed here — the inner one is
            // an honest cache hit even on a cold chain.
            self.cab.push(&self.ca[m] * self.sys.b());
            computed += 1;
        }
        self.stats.absorb(required, computed);

        let a_u = self.powers[n].clone();

        // B' = [A^i B | ... | A^0 B]
        let mut b_u = Matrix::zeros(r, n * p);
        for k in 0..n {
            b_u.set_block(0, k * p, &self.ab[n - 1 - k]);
        }

        // C' = [C A^0; C A^1; ...; C A^i]
        let mut c_u = Matrix::zeros(n * q, r);
        for (j, blk) in self.ca.iter().enumerate().take(n) {
            c_u.set_block(j * q, 0, blk);
        }

        // D' block lower-triangular Toeplitz.
        let mut d_u = Matrix::zeros(n * q, n * p);
        for j in 0..n {
            for k in 0..=j {
                if j == k {
                    d_u.set_block(j * q, k * p, self.sys.d());
                } else {
                    d_u.set_block(j * q, k * p, &self.cab[j - k - 1]);
                }
            }
        }

        let system = StateSpace::new(a_u, b_u, c_u, d_u)?;
        Ok(UnfoldedSystem {
            system,
            unfolding: i,
            original_dims: (p, q, r),
        })
    }

    /// The Horner restructuring of the design at `unfolding`, assembled
    /// from the cached power chain. Bit-identical to
    /// [`HornerForm::new`]`(sys, unfolding)`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`HornerForm::new`]:
    /// [`LinsysError::UnstableSystem`] and [`LinsysError::NonFinite`].
    pub fn horner(&mut self, unfolding: u32) -> Result<HornerForm, LinsysError> {
        if self.rho >= 1.0 {
            return Err(LinsysError::UnstableSystem {
                spectral_radius: self.rho,
            });
        }
        let n = unfolding as usize + 1;
        // HornerForm::new computes n C·A^k products and n A-multiplies.
        let required = 2 * n as u64;
        let mut computed = self.ensure_powers(n);
        for j in self.ca.len()..n {
            self.ca.push(self.sys.c() * &self.powers[j]);
            computed += 1;
        }
        self.stats.absorb(required, computed);
        HornerForm::from_parts(&self.sys, self.powers[n].clone(), self.ca[..n].to_vec())
    }
}

/// Bit-pattern hash of a matrix (FNV-1a over shape and entry bits).
fn matrix_bit_hash(m: &Matrix) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(m.rows() as u64);
    mix(m.cols() as u64);
    for &v in m.as_slice() {
        mix(v.to_bits());
    }
    h
}

/// Exact (bit-level) matrix equality: shapes match and every entry has the
/// same `f64` bit pattern.
fn matrix_bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Memoized [`expm`]: repeated exponentials of the same matrix (the suite
/// re-discretizes the same plants for every strategy) are computed once.
///
/// Keys are the full bit pattern of the input; the stored input is
/// re-compared on every hash match, so a hash collision costs a
/// recomputation but can never return the wrong exponential.
#[derive(Debug, Clone, Default)]
pub struct ExpmMemo {
    entries: Vec<(u64, Matrix, Matrix)>,
    /// Padé/squaring buffers reused across misses: a memo already
    /// implies repeated exponentials, so the workspace stays warm.
    ws: ExpmWorkspace,
    stats: CacheStats,
}

impl ExpmMemo {
    /// An empty memo.
    pub fn new() -> ExpmMemo {
        ExpmMemo::default()
    }

    /// Hit/miss counters (one unit = one `expm` call).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// `e^A`, served from the memo when this exact matrix was seen before.
    ///
    /// # Errors
    ///
    /// Exactly those of [`lintra_matrix::expm`] (errors are not memoized
    /// — a failing input fails identically every time and stays cheap).
    pub fn expm(&mut self, a: &Matrix) -> Result<Matrix, MatrixError> {
        let h = matrix_bit_hash(a);
        if let Some((_, _, e)) = self
            .entries
            .iter()
            .find(|(eh, ea, _)| *eh == h && matrix_bits_eq(ea, a))
        {
            self.stats.hits += 1;
            return Ok(e.clone());
        }
        let e = expm_with(a, &mut self.ws)?;
        self.stats.misses += 1;
        self.entries.push((h, a.clone(), e.clone()));
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_linsys::unfold;
    use lintra_matrix::expm;

    fn sys_mimo() -> StateSpace {
        StateSpace::new(
            Matrix::from_rows(&[&[0.4, 0.12, 0.0], &[0.22, -0.3, 0.41], &[0.0, 0.2, 0.15]]),
            Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 1.0], &[0.25, -0.75]]),
            Matrix::from_rows(&[&[1.0, 0.0, 0.3], &[0.0, 0.45, -0.2]]),
            Matrix::from_rows(&[&[0.0, 0.1], &[0.2, 0.0]]),
        )
        .unwrap()
    }

    #[test]
    fn incremental_unfold_is_bit_identical_ascending() {
        let sys = sys_mimo();
        let mut cache = SweepCache::new(&sys);
        for i in 0..10u32 {
            let want = unfold(&sys, i).unwrap();
            let got = cache.unfolded(i).unwrap();
            assert_eq!(got, want, "i = {i}");
        }
    }

    #[test]
    fn incremental_unfold_is_bit_identical_any_order() {
        let sys = sys_mimo();
        let mut cache = SweepCache::new(&sys);
        for i in [7u32, 0, 3, 9, 3, 1] {
            assert_eq!(
                cache.unfolded(i).unwrap(),
                unfold(&sys, i).unwrap(),
                "i = {i}"
            );
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let mut cache = SweepCache::new(&sys_mimo());
        cache.unfolded(5).unwrap();
        let after_first = cache.stats();
        // Even a cold unfold reuses the cached `C·A^k` inside each of the
        // n−1 sub-diagonals, where from-scratch recomputes it.
        assert_eq!(after_first.hits, 5, "cold cache hits only via C·A^k");
        cache.unfolded(5).unwrap();
        let after_second = cache.stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "warm repeat computes nothing"
        );
        assert!(after_second.hits > 0);
        assert!(cache.stats().hit_rate() > 0.4);
    }

    #[test]
    fn stepping_up_computes_only_the_increment() {
        let mut cache = SweepCache::new(&sys_mimo());
        cache.unfolded(6).unwrap();
        let before = cache.stats().misses;
        cache.unfolded(7).unwrap();
        // i=7 adds one power, one A^kB, one C·A^k, and one sub-diagonal
        // outer product (its inner `C·A^k` is served from the cache).
        assert_eq!(cache.stats().misses - before, 4);
    }

    #[test]
    fn unstable_design_fails_identically() {
        let sys = StateSpace::new(
            Matrix::from_diag(&[1.5, 0.2]),
            Matrix::from_rows(&[&[1.0], &[1.0]]),
            Matrix::from_rows(&[&[1.0, 1.0]]),
            Matrix::from_rows(&[&[0.0]]),
        )
        .unwrap();
        let mut cache = SweepCache::new(&sys);
        assert_eq!(cache.unfolded(3).unwrap_err(), unfold(&sys, 3).unwrap_err());
    }

    #[test]
    fn cached_horner_is_bit_identical() {
        let sys = sys_mimo();
        let mut cache = SweepCache::new(&sys);
        for i in [0u32, 4, 2, 8] {
            let want = HornerForm::new(&sys, i).unwrap();
            let got = cache.horner(i).unwrap();
            assert_eq!(got.batch, want.batch, "i = {i}");
            assert_eq!(got.a_n, want.a_n, "i = {i}");
            assert_eq!(got.c_powers, want.c_powers, "i = {i}");
            assert_eq!(got.original(), want.original(), "i = {i}");
        }
    }

    #[test]
    fn horner_and_unfold_share_the_power_chain() {
        let mut cache = SweepCache::new(&sys_mimo());
        cache.unfolded(8).unwrap();
        let before = cache.stats().misses;
        cache.horner(8).unwrap();
        // All 9 powers and 9 C·A^k rows were already cached.
        assert_eq!(cache.stats().misses, before);
    }

    #[test]
    fn expm_memo_returns_the_same_bits() {
        let a = Matrix::from_rows(&[&[0.1, 0.3], &[-0.2, 0.05]]);
        let mut memo = ExpmMemo::new();
        let fresh = expm(&a).unwrap();
        let first = memo.expm(&a).unwrap();
        let second = memo.expm(&a).unwrap();
        assert!(matrix_bits_eq(&first, &fresh));
        assert!(matrix_bits_eq(&second, &fresh));
        assert_eq!(memo.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn expm_memo_distinguishes_near_identical_inputs() {
        let a = Matrix::from_rows(&[&[0.1, 0.0], &[0.0, 0.2]]);
        let mut b = a.clone();
        b[(0, 0)] = 0.1 + 1e-16; // rounds to a different bit pattern? keep explicit:
        let mut memo = ExpmMemo::new();
        memo.expm(&a).unwrap();
        if matrix_bits_eq(&a, &b) {
            // Perturbation vanished in rounding; nothing to distinguish.
            return;
        }
        memo.expm(&b).unwrap();
        assert_eq!(memo.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn expm_memo_propagates_errors_unmemoized() {
        let mut memo = ExpmMemo::new();
        let bad = Matrix::zeros(2, 3);
        assert!(memo.expm(&bad).is_err());
        assert!(memo.expm(&bad).is_err());
        assert_eq!(memo.stats(), CacheStats { hits: 0, misses: 0 });
    }
}

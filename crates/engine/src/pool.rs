//! A dependency-free work-stealing thread pool for sweep fan-out.
//!
//! The paper's evaluation is a pile of *independent* sweep points —
//! `(design, strategy)`, `(design, i)`, `(design, N)` — each a pure
//! function of its inputs. This pool runs such a batch across OS threads
//! (std `thread::scope` + channels only, keeping the workspace free of
//! crates-io dependencies) while preserving a hard determinism contract:
//!
//! * **Ordering** — results come back indexed by the input position, so
//!   [`ThreadPool::map`] returns exactly the vector a sequential `map`
//!   would, whatever interleaving the scheduler chose.
//! * **Isolation** — each sweep point runs under
//!   [`std::panic::catch_unwind`]; a panicking point yields an
//!   [`EngineError::WorkerPanic`] *for that index only*. Sibling points
//!   keep running and the pool stays usable (no poisoned locks, no
//!   deadlock: workers never hold a lock while running user code).
//!
//! Scheduling is classic work stealing: task indices are dealt round-robin
//! into one deque per worker; a worker pops its own deque from the front
//! (cache-friendly FIFO of its deal) and, when empty, steals from the
//! *back* of a sibling's deque, so imbalanced sweeps (one slow design)
//! rebalance automatically.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::cancel::{CancelReason, CancelToken};

/// Error from a parallel sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A sweep point panicked inside a worker thread. The point's index
    /// and the panic payload (when it was a string) are preserved; all
    /// sibling points were still evaluated.
    WorkerPanic {
        /// Index of the sweep point in the submitted batch.
        task: usize,
        /// Panic payload, or a placeholder for non-string payloads.
        message: String,
    },
    /// The sweep's [`CancelToken`] was cancelled before this point ran
    /// (graceful shutdown, client gone). The point was skipped.
    Cancelled {
        /// Index of the skipped sweep point.
        task: usize,
    },
    /// The sweep's [`CancelToken`] deadline expired before this point
    /// ran. The point was skipped; cancellation is observed between
    /// points, so the sweep returns within one point's latency of the
    /// deadline.
    DeadlineExpired {
        /// Index of the skipped sweep point.
        task: usize,
    },
    /// The point ran to completion but exceeded the stall budget — the
    /// watchdog flags it as hung rather than trusting a result that took
    /// pathologically long.
    WorkerStall {
        /// Index of the stalled sweep point.
        task: usize,
        /// Observed wall time of the point, milliseconds.
        elapsed_ms: u64,
        /// The configured stall budget, milliseconds.
        budget_ms: u64,
    },
    /// The `LINTRA_JOBS` environment variable held something other than a
    /// positive integer.
    InvalidJobs {
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanic { task, message } => {
                write!(
                    f,
                    "sweep point {task} panicked in a worker thread: {message}"
                )
            }
            EngineError::Cancelled { task } => {
                write!(f, "sweep point {task} skipped: sweep cancelled")
            }
            EngineError::DeadlineExpired { task } => {
                write!(f, "sweep point {task} skipped: sweep deadline expired")
            }
            EngineError::WorkerStall {
                task,
                elapsed_ms,
                budget_ms,
            } => {
                write!(
                    f,
                    "sweep point {task} stalled: ran {elapsed_ms} ms against a \
                     {budget_ms} ms stall budget"
                )
            }
            EngineError::InvalidJobs { value } => {
                write!(f, "LINTRA_JOBS must be a positive integer, got `{value}`")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-sweep robustness controls for [`ThreadPool::map_ctl`].
///
/// The default is the classic unbounded sweep ([`ThreadPool::map`]):
/// no cancellation, no stall budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepCtl<'t> {
    /// Cooperative cancellation, observed **between** sweep points: once
    /// the token retires, every not-yet-started point yields
    /// [`EngineError::Cancelled`] / [`EngineError::DeadlineExpired`] at
    /// its index instead of running.
    pub token: Option<&'t CancelToken>,
    /// Watchdog budget per point: a point whose wall time exceeds this is
    /// reported as [`EngineError::WorkerStall`] instead of its value.
    pub stall_budget: Option<Duration>,
}

fn cancel_error(reason: CancelReason, task: usize) -> EngineError {
    match reason {
        CancelReason::Cancelled => EngineError::Cancelled { task },
        CancelReason::DeadlineExpired => EngineError::DeadlineExpired { task },
    }
}

/// Renders a panic payload as a string, mirroring what `std` prints.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Recovers a mutex guard even if a sibling panicked while holding it.
///
/// Workers never hold the deque locks across user code, so poisoning can
/// only happen if the *pop itself* panicked (allocation failure); the
/// queue contents are plain indices, always valid to reuse.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-width work-stealing pool.
///
/// The pool is a lightweight handle (it holds only the worker count);
/// worker threads are scoped to each [`ThreadPool::map`] call, so borrowed
/// data can flow into sweep closures without `'static` bounds and there is
/// no shutdown protocol to get wrong.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    jobs: usize,
}

impl ThreadPool {
    /// A pool with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> ThreadPool {
        ThreadPool { jobs: jobs.max(1) }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to 1 when the platform cannot tell).
    pub fn auto() -> ThreadPool {
        ThreadPool::new(
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// A pool sized by the `LINTRA_JOBS` environment variable when it is
    /// set, falling back to [`ThreadPool::auto`] when it is absent.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidJobs`] when the variable is set but
    /// is not a positive integer — a validation-class configuration error
    /// rather than a silent fallback.
    pub fn from_env() -> Result<ThreadPool, EngineError> {
        match std::env::var("LINTRA_JOBS") {
            Err(std::env::VarError::NotPresent) => Ok(ThreadPool::auto()),
            Err(std::env::VarError::NotUnicode(_)) => Err(EngineError::InvalidJobs {
                value: "<non-unicode>".to_string(),
            }),
            Ok(raw) => Self::parse_jobs_var(&raw).map(ThreadPool::new),
        }
    }

    /// Validates one `LINTRA_JOBS` value (exposed for the CLI's error
    /// messages and the tests).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidJobs`] unless `raw` parses as an
    /// integer `>= 1`.
    pub fn parse_jobs_var(raw: &str) -> Result<usize, EngineError> {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(EngineError::InvalidJobs {
                value: raw.to_string(),
            }),
        }
    }

    /// Number of worker threads used per sweep.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluates `f` over every item, in parallel, returning per-item
    /// results **in input order**. A panicking item maps to
    /// `Err(EngineError::WorkerPanic)` at its position; every other item
    /// is still evaluated.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, EngineError>>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        self.map_ctl(items, f, SweepCtl::default())
    }

    /// [`ThreadPool::map`] under per-sweep robustness controls: a
    /// cooperative [`CancelToken`] observed between sweep points and a
    /// per-point stall budget enforced by timing each point.
    ///
    /// Determinism is unchanged for the points that run: results land at
    /// their input index. Once the token retires, every not-yet-claimed
    /// point deterministically yields the matching cancellation error at
    /// its index (already-running points finish; the pool never
    /// interrupts user code mid-point).
    pub fn map_ctl<I, T, F>(
        &self,
        items: Vec<I>,
        f: F,
        ctl: SweepCtl<'_>,
    ) -> Vec<Result<T, EngineError>>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Items parked behind mutexes so any worker can claim any index.
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();

        // Deal task indices round-robin into one deque per worker.
        let workers = self.jobs.min(n);
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for idx in 0..n {
            deques[idx % workers].push_back(idx);
        }
        let deques: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();

        let (tx, rx) = mpsc::channel::<(usize, Result<T, EngineError>)>();
        let f = &f;
        let slots = &slots;
        let deques = &deques;
        thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    loop {
                        // Own deque first (front), then steal (back). The
                        // own-deque guard is a statement-scoped temporary,
                        // so it MUST be dropped before probing siblings:
                        // stealing while still holding one's own lock is a
                        // circular wait the moment every deque drains at
                        // once (each worker holds lock w, wants lock w+1).
                        let own = lock_unpoisoned(&deques[w]).pop_front();
                        let idx = own.or_else(|| {
                            (1..workers)
                                .map(|off| (w + off) % workers)
                                .find_map(|v| lock_unpoisoned(&deques[v]).pop_back())
                        });
                        let Some(idx) = idx else { break };
                        let Some(item) = lock_unpoisoned(&slots[idx]).take() else {
                            continue; // claimed by a racing steal
                        };
                        // Cancellation is observed here, between points:
                        // a retired token turns every remaining claim
                        // into its cancellation error without running
                        // user code, so the sweep drains in O(queue)
                        // instead of O(work).
                        if let Some(reason) = ctl.token.and_then(CancelToken::reason) {
                            let _ = tx.send((idx, Err(cancel_error(reason, idx))));
                            continue;
                        }
                        let started = Instant::now();
                        let out = catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
                            EngineError::WorkerPanic {
                                task: idx,
                                message: payload_message(payload),
                            }
                        });
                        // Watchdog: a point that blew through the stall
                        // budget is flagged rather than trusted, even
                        // though it eventually returned.
                        let out = match (out, ctl.stall_budget) {
                            (Ok(_), Some(budget)) if started.elapsed() > budget => {
                                Err(EngineError::WorkerStall {
                                    task: idx,
                                    elapsed_ms: started.elapsed().as_millis() as u64,
                                    budget_ms: budget.as_millis() as u64,
                                })
                            }
                            (out, _) => out,
                        };
                        // The receiver outlives the scope; a send can only
                        // fail if the collector itself died, in which case
                        // there is nobody left to report to.
                        let _ = tx.send((idx, out));
                    }
                });
            }
            drop(tx);
        });

        // Reassemble in input order. Every index sends exactly once; a
        // missing slot can only mean its worker died outside catch_unwind
        // (e.g. the runtime aborted the thread), reported per-index.
        let mut out: Vec<Option<Result<T, EngineError>>> = (0..n).map(|_| None).collect();
        for (idx, res) in rx {
            out[idx] = Some(res);
        }
        out.into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or(Err(EngineError::WorkerPanic {
                    task: idx,
                    message: "worker thread died without reporting a result".to_string(),
                }))
            })
            .collect()
    }

    /// Like [`ThreadPool::map`] but short-circuits the *report* (not the
    /// evaluation) to the first failure in input order — the deterministic
    /// merge rule used by the table drivers.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index [`EngineError`] if any sweep point
    /// panicked.
    pub fn try_map<I, T, F>(&self, items: Vec<I>, f: F) -> Result<Vec<T>, EngineError>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        self.map(items, f).into_iter().collect()
    }

    /// [`ThreadPool::try_map`] under [`SweepCtl`] controls: the lowest
    /// failing index in input order wins, whether it panicked, stalled,
    /// or was skipped by cancellation.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index [`EngineError`] if any sweep point
    /// failed or was skipped.
    pub fn try_map_ctl<I, T, F>(
        &self,
        items: Vec<I>,
        f: F,
        ctl: SweepCtl<'_>,
    ) -> Result<Vec<T>, EngineError>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        self.map_ctl(items, f, ctl).into_iter().collect()
    }
}

impl Default for ThreadPool {
    /// [`ThreadPool::from_env`] with a silent fallback to
    /// [`ThreadPool::auto`] on an invalid `LINTRA_JOBS` (Default cannot
    /// report errors; call `from_env` directly to surface them).
    fn default() -> ThreadPool {
        ThreadPool::from_env().unwrap_or_else(|_| ThreadPool::auto())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let got = pool.try_map((0..64).collect(), |x: i32| x * x).unwrap();
        let want: Vec<i32> = (0..64).map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn one_worker_equals_many_workers() {
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let items: Vec<u64> = (0..100).collect();
        let seq = ThreadPool::new(1).try_map(items.clone(), f).unwrap();
        let par = ThreadPool::new(8).try_map(items, f).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn workers_actually_run_concurrently() {
        // Four tasks each wait on a 4-way barrier: the map can only finish
        // if four workers are live at once (OS threads, so this holds even
        // on a single hardware core).
        let barrier = Barrier::new(4);
        let pool = ThreadPool::new(4);
        let got = pool.try_map(vec![0usize; 4], |_| {
            barrier.wait();
            1usize
        });
        assert_eq!(got.unwrap(), vec![1; 4]);
    }

    #[test]
    fn panic_is_isolated_to_its_index() {
        let pool = ThreadPool::new(3);
        let done = AtomicUsize::new(0);
        let results = pool.map((0..10).collect(), |x: usize| {
            if x == 4 {
                panic!("poisoned sweep point {x}");
            }
            done.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(done.load(Ordering::SeqCst), 9, "siblings all evaluated");
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                let Err(EngineError::WorkerPanic { task, message }) = r else {
                    panic!("index 4 should be a WorkerPanic, got {r:?}");
                };
                assert_eq!(*task, 4);
                assert!(message.contains("poisoned sweep point 4"));
            } else {
                assert_eq!(*r, Ok(i));
            }
        }
        // The pool is reusable after a panic.
        assert_eq!(
            pool.try_map(vec![1, 2, 3], |x: i32| x + 1).unwrap(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn try_map_reports_the_lowest_failing_index() {
        let pool = ThreadPool::new(4);
        let err = pool
            .try_map((0..20).collect(), |x: usize| {
                if x % 7 == 6 {
                    panic!("bad {x}");
                }
                x
            })
            .unwrap_err();
        let EngineError::WorkerPanic { task, .. } = err else {
            panic!("expected a WorkerPanic, got {err:?}");
        };
        assert_eq!(task, 6, "first failure in input order wins");
    }

    #[test]
    fn cancelled_token_skips_unclaimed_points() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let results = pool.map_ctl(
            (0..8).collect(),
            |x: usize| x,
            SweepCtl {
                token: Some(&token),
                stall_budget: None,
            },
        );
        for (idx, r) in results.iter().enumerate() {
            assert_eq!(*r, Err(EngineError::Cancelled { task: idx }));
        }
        // The pool itself survives a fully-cancelled sweep.
        assert_eq!(
            pool.try_map(vec![1, 2], |x: i32| x * 10).unwrap(),
            vec![10, 20]
        );
    }

    #[test]
    fn expired_deadline_reports_lowest_index_deadline_error() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        let err = pool
            .try_map_ctl(
                (0..16).collect(),
                |x: usize| x,
                SweepCtl {
                    token: Some(&token),
                    stall_budget: None,
                },
            )
            .unwrap_err();
        assert_eq!(err, EngineError::DeadlineExpired { task: 0 });
    }

    #[test]
    fn mid_sweep_deadline_returns_promptly_without_running_the_tail() {
        // 40 points of ~5 ms against a 40 ms deadline: the token retires
        // mid-sweep and the remaining points must be skipped, bounding
        // the total wall time well below the 200 ms a full run needs.
        let pool = ThreadPool::new(1);
        let token = CancelToken::with_deadline(Duration::from_millis(40));
        let started = Instant::now();
        let results = pool.map_ctl(
            (0..40).collect(),
            |x: usize| {
                thread::sleep(Duration::from_millis(5));
                x
            },
            SweepCtl {
                token: Some(&token),
                stall_budget: None,
            },
        );
        assert!(
            started.elapsed() < Duration::from_millis(120),
            "cancellation must bound the sweep, took {:?}",
            started.elapsed()
        );
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(EngineError::DeadlineExpired { .. }))));
        assert!(
            results.iter().any(Result::is_ok),
            "points before the deadline ran"
        );
    }

    #[test]
    fn stalled_point_is_flagged_siblings_unaffected() {
        let pool = ThreadPool::new(2);
        let results = pool.map_ctl(
            (0..6).collect(),
            |x: usize| {
                if x == 3 {
                    thread::sleep(Duration::from_millis(80));
                }
                x
            },
            SweepCtl {
                token: None,
                stall_budget: Some(Duration::from_millis(25)),
            },
        );
        for (idx, r) in results.iter().enumerate() {
            if idx == 3 {
                let Err(EngineError::WorkerStall {
                    task,
                    elapsed_ms,
                    budget_ms,
                }) = r
                else {
                    panic!("index 3 should stall, got {r:?}");
                };
                assert_eq!(*task, 3);
                assert!(*elapsed_ms >= *budget_ms);
                assert_eq!(*budget_ms, 25);
            } else {
                assert_eq!(*r, Ok(idx));
            }
        }
    }

    #[test]
    fn parse_jobs_var_validates() {
        assert_eq!(ThreadPool::parse_jobs_var("4").unwrap(), 4);
        assert_eq!(ThreadPool::parse_jobs_var(" 2 ").unwrap(), 2);
        for bad in ["0", "-1", "four", "", "1.5"] {
            let err = ThreadPool::parse_jobs_var(bad).unwrap_err();
            assert!(
                matches!(&err, EngineError::InvalidJobs { value } if value == bad),
                "{bad:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn from_env_and_default_respect_lintra_jobs() {
        // Env mutation is process-global; this is the only test that
        // touches LINTRA_JOBS, so no lock is needed within this binary.
        std::env::set_var("LINTRA_JOBS", "3");
        assert_eq!(ThreadPool::from_env().unwrap().jobs(), 3);
        assert_eq!(ThreadPool::default().jobs(), 3);
        std::env::set_var("LINTRA_JOBS", "zero");
        assert!(matches!(
            ThreadPool::from_env(),
            Err(EngineError::InvalidJobs { ref value }) if value == "zero"
        ));
        assert!(
            ThreadPool::default().jobs() >= 1,
            "Default falls back to auto"
        );
        std::env::remove_var("LINTRA_JOBS");
        assert!(ThreadPool::from_env().unwrap().jobs() >= 1);
    }

    #[test]
    fn repeated_small_batches_never_deadlock() {
        // Regression: stealing while still holding one's own deque lock
        // was a circular wait once every deque drained at the same time.
        // Tiny batches drained instantly make that window wide; hundreds
        // of rounds across several pool widths hit it reliably.
        for jobs in [2, 4, 8] {
            let pool = ThreadPool::new(jobs);
            for round in 0..200 {
                let n = 1 + round % 16;
                let got = pool.try_map((0..n).collect(), |x: usize| x + 1).unwrap();
                assert_eq!(got, (1..=n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn empty_and_single_item_batches() {
        let pool = ThreadPool::new(4);
        assert!(pool.map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(pool.try_map(vec![41], |x: i32| x + 1).unwrap(), vec![42]);
    }

    #[test]
    fn auto_pool_has_at_least_one_worker() {
        assert!(ThreadPool::auto().jobs() >= 1);
        assert_eq!(ThreadPool::new(0).jobs(), 1);
    }
}

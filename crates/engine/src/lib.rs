//! Parallel sweep engine for the `lintra` workspace.
//!
//! Everything the paper reports is a *sweep*: Tables 2–4 sweep the
//! 8-design suite, §3 sweeps the unfolding factor `i`, §4 sweeps the
//! processor count `N`. This crate makes those sweeps fast twice over —
//! concurrently, with a dependency-free work-stealing [`ThreadPool`]
//! ([`pool`]), and incrementally, with caches ([`cache`]) that reuse the
//! shared intermediates (`A^k`, `A^k·B`, `C·A^k`, `C·A^k·B`, `e^{AT}`,
//! Horner precomputations) across sweep points — under one non-negotiable
//! contract: **results are bit-identical to the sequential from-scratch
//! path**, asserted with `==` by the differential test layer.
//!
//! The determinism contract has three legs:
//!
//! 1. [`ThreadPool::map`] returns results in input order, so a parallel
//!    sweep is indistinguishable from `items.into_iter().map(f)` however
//!    the scheduler interleaved the work.
//! 2. Cached values are produced by exactly the expressions the
//!    from-scratch code uses (same operands, same order, same kernels),
//!    so reuse changes no bits.
//! 3. Failures are deterministic too: a panicking sweep point surfaces as
//!    [`EngineError::WorkerPanic`] at its own index (siblings unaffected),
//!    and [`ThreadPool::try_map`] reports the lowest failing index.

pub mod cache;
pub mod cancel;
pub mod pool;
pub mod search;
pub mod snapshot;

pub use cache::{CacheStats, ExpmMemo, SweepCache};
pub use cancel::{CancelReason, CancelToken};
pub use pool::{EngineError, SweepCtl, ThreadPool};
pub use search::best_unfolding;
pub use snapshot::SnapshotError;

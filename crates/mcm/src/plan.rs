//! The explicit shift-add plan produced by MCM synthesis.

use crate::Cost;
use std::collections::HashSet;
use std::fmt;

/// What a [`Term`] multiplies: the input variable `x` or a previously built
/// intermediate expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The multiplied variable `x` itself.
    Input,
    /// The intermediate expression at the given index of
    /// [`McmSolution::exprs`].
    Expr(usize),
}

/// One addend `± (source ≪ shift)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Term {
    /// What is shifted.
    pub source: Source,
    /// Left-shift amount.
    pub shift: u32,
    /// `true` when the term is subtracted.
    pub neg: bool,
}

/// A sum of terms. An expression with `n ≥ 1` terms costs `n − 1`
/// additions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Expr {
    /// The addends. Never empty in a valid solution.
    pub terms: Vec<Term>,
}

/// How one requested constant is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputRef {
    /// The constant is 0.
    Zero,
    /// The constant is `± 2^shift · source` (covers ±1, ±2^k, and shared
    /// odd parts).
    Scaled(Term),
}

/// Error from [`McmSolution::verify`] or [`McmSolution::expr_values`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyMcmError {
    /// An output computes a different constant than requested.
    OutputMismatch {
        /// Index of the offending output.
        output: usize,
        /// The requested constant.
        expected: i64,
        /// What the plan actually computes.
        actual: i128,
    },
    /// The plan's expressions reference each other cyclically, so no
    /// evaluation order exists (a correctly synthesized plan never does
    /// this; reported instead of panicking so a buggy synthesis pass
    /// degrades gracefully).
    ReferenceCycle {
        /// Index of an expression on the cycle.
        expr: usize,
    },
}

impl fmt::Display for VerifyMcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyMcmError::OutputMismatch {
                output,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "mcm output {output} computes {actual} instead of {expected}"
                )
            }
            VerifyMcmError::ReferenceCycle { expr } => {
                write!(f, "mcm plan contains a reference cycle at e{expr}")
            }
        }
    }
}

impl std::error::Error for VerifyMcmError {}

/// A complete, verifiable shift-add realization of a set of constant
/// multiplications with a common variable.
///
/// Produced by [`crate::synthesize`]. `exprs` holds every expression built
/// (shared odd-constant expressions and extracted common subexpressions);
/// each expression only references `Input` or expressions *created before
/// it*, so a single forward pass (or memoized recursion) evaluates the
/// plan.
#[derive(Debug, Clone, PartialEq)]
pub struct McmSolution {
    /// All expressions, in creation order.
    pub exprs: Vec<Expr>,
    /// One entry per requested constant, in input order.
    pub outputs: Vec<(i64, OutputRef)>,
}

impl McmSolution {
    /// Value computed by a term, given already-evaluated expression values.
    fn term_value(term: &Term, values: &[i128]) -> i128 {
        let base = match term.source {
            Source::Input => 1i128,
            Source::Expr(i) => values[i],
        };
        let v = base << term.shift;
        if term.neg {
            -v
        } else {
            v
        }
    }

    /// Evaluates every expression for `x = 1` (so each value *is* the
    /// constant factor it realizes).
    ///
    /// Rewriting during synthesis makes early expressions reference newer
    /// intermediates, so evaluation is a memoized recursion over the
    /// reference DAG rather than a single index-order pass.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyMcmError::ReferenceCycle`] if the plan contains a
    /// reference cycle (which a correctly synthesized plan never does).
    pub fn expr_values(&self) -> Result<Vec<i128>, VerifyMcmError> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Unvisited,
            InProgress,
            Done,
        }
        fn eval(
            exprs: &[Expr],
            i: usize,
            values: &mut [i128],
            state: &mut [State],
        ) -> Result<i128, VerifyMcmError> {
            match state[i] {
                State::Done => return Ok(values[i]),
                State::InProgress => return Err(VerifyMcmError::ReferenceCycle { expr: i }),
                State::Unvisited => {}
            }
            state[i] = State::InProgress;
            let mut sum = 0i128;
            for t in &exprs[i].terms {
                let base = match t.source {
                    Source::Input => 1i128,
                    Source::Expr(j) => eval(exprs, j, values, state)?,
                };
                let v = base << t.shift;
                sum += if t.neg { -v } else { v };
            }
            values[i] = sum;
            state[i] = State::Done;
            Ok(sum)
        }

        let mut values = vec![0i128; self.exprs.len()];
        let mut state = vec![State::Unvisited; self.exprs.len()];
        for i in 0..self.exprs.len() {
            eval(&self.exprs, i, &mut values, &mut state)?;
        }
        Ok(values)
    }

    /// The constant factor each output actually computes.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyMcmError::ReferenceCycle`] if the plan contains a
    /// reference cycle.
    pub fn output_values(&self) -> Result<Vec<i128>, VerifyMcmError> {
        let values = self.expr_values()?;
        Ok(self
            .outputs
            .iter()
            .map(|(_, r)| match r {
                OutputRef::Zero => 0,
                OutputRef::Scaled(t) => Self::term_value(t, &values),
            })
            .collect())
    }

    /// Checks that every output computes its requested constant.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching output, or
    /// [`VerifyMcmError::ReferenceCycle`] for an unevaluable plan.
    pub fn verify(&self) -> Result<(), VerifyMcmError> {
        for (i, (v, (c, _))) in self.output_values()?.iter().zip(&self.outputs).enumerate() {
            if *v != *c as i128 {
                return Err(VerifyMcmError::OutputMismatch {
                    output: i,
                    expected: *c,
                    actual: *v,
                });
            }
        }
        Ok(())
    }

    /// Number of two-operand additions in the plan: `Σ (terms − 1)` over
    /// all expressions.
    pub fn adds(&self) -> usize {
        self.exprs
            .iter()
            .map(|e| e.terms.len().saturating_sub(1))
            .sum()
    }

    /// Number of distinct shifters: distinct `(source, shift)` pairs with a
    /// nonzero shift anywhere in the plan (shift networks are shared, as in
    /// the paper's §5 discussion).
    pub fn shifts(&self) -> usize {
        let mut set: HashSet<(Source, u32)> = HashSet::new();
        for e in &self.exprs {
            for t in &e.terms {
                if t.shift > 0 {
                    set.insert((t.source, t.shift));
                }
            }
        }
        for (_, r) in &self.outputs {
            if let OutputRef::Scaled(t) = r {
                if t.shift > 0 {
                    set.insert((t.source, t.shift));
                }
            }
        }
        set.len()
    }

    /// Combined cost.
    pub fn cost(&self) -> Cost {
        Cost {
            adds: self.adds(),
            shifts: self.shifts(),
        }
    }
}

impl fmt::Display for McmSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn term(t: &Term) -> String {
            let src = match t.source {
                Source::Input => "x".to_string(),
                Source::Expr(i) => format!("e{i}"),
            };
            let shifted = if t.shift > 0 {
                format!("{src}<<{}", t.shift)
            } else {
                src
            };
            if t.neg {
                format!("- {shifted}")
            } else {
                format!("+ {shifted}")
            }
        }
        let values = self.expr_values().unwrap_or_default();
        for (i, e) in self.exprs.iter().enumerate() {
            let body: Vec<String> = e.terms.iter().map(term).collect();
            let v = values.get(i).copied().unwrap_or(0);
            writeln!(f, "e{i} = {}   // = {v}*x", body.join(" "))?;
        }
        for (c, r) in &self.outputs {
            match r {
                OutputRef::Zero => writeln!(f, "out({c}) = 0")?,
                OutputRef::Scaled(t) => writeln!(f, "out({c}) = {}", term(t))?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(source: Source, shift: u32, neg: bool) -> Term {
        Term { source, shift, neg }
    }

    #[test]
    fn hand_built_plan_evaluates() {
        // e0 = x<<2 + x = 5x; out(10) = e0 << 1; out(-5) = -e0.
        let sol = McmSolution {
            exprs: vec![Expr {
                terms: vec![t(Source::Input, 2, false), t(Source::Input, 0, false)],
            }],
            outputs: vec![
                (10, OutputRef::Scaled(t(Source::Expr(0), 1, false))),
                (-5, OutputRef::Scaled(t(Source::Expr(0), 0, true))),
                (0, OutputRef::Zero),
            ],
        };
        assert_eq!(sol.expr_values().unwrap(), vec![5]);
        assert_eq!(sol.output_values().unwrap(), vec![10, -5, 0]);
        sol.verify().unwrap();
        assert_eq!(sol.adds(), 1);
        // Distinct shifts: (x,2) and (e0,1).
        assert_eq!(sol.shifts(), 2);
    }

    #[test]
    fn verify_reports_mismatch() {
        let sol = McmSolution {
            exprs: vec![Expr {
                terms: vec![t(Source::Input, 1, false)],
            }],
            outputs: vec![(3, OutputRef::Scaled(t(Source::Expr(0), 0, false)))],
        };
        let err = sol.verify().unwrap_err();
        assert_eq!(
            err,
            VerifyMcmError::OutputMismatch {
                output: 0,
                expected: 3,
                actual: 2
            }
        );
        assert!(err.to_string().contains("computes 2 instead of 3"));
    }

    #[test]
    fn reference_cycle_reported_not_panicking() {
        // e0 references e1 and e1 references e0.
        let sol = McmSolution {
            exprs: vec![
                Expr {
                    terms: vec![t(Source::Expr(1), 0, false)],
                },
                Expr {
                    terms: vec![t(Source::Expr(0), 1, false)],
                },
            ],
            outputs: vec![(2, OutputRef::Scaled(t(Source::Expr(1), 0, false)))],
        };
        let err = sol.expr_values().unwrap_err();
        assert!(matches!(err, VerifyMcmError::ReferenceCycle { .. }));
        assert!(sol.verify().is_err());
        // Display must not panic either.
        let _ = format!("{sol}");
    }

    #[test]
    fn shared_shifts_counted_once() {
        // Two expressions both using x<<3: one shifter.
        let sol = McmSolution {
            exprs: vec![
                Expr {
                    terms: vec![t(Source::Input, 3, false), t(Source::Input, 0, false)],
                },
                Expr {
                    terms: vec![t(Source::Input, 3, false), t(Source::Input, 0, true)],
                },
            ],
            outputs: vec![
                (9, OutputRef::Scaled(t(Source::Expr(0), 0, false))),
                (7, OutputRef::Scaled(t(Source::Expr(1), 0, false))),
            ],
        };
        sol.verify().unwrap();
        assert_eq!(sol.shifts(), 1);
        assert_eq!(sol.adds(), 2);
    }

    #[test]
    fn display_lists_expressions() {
        let sol = McmSolution {
            exprs: vec![Expr {
                terms: vec![t(Source::Input, 2, false), t(Source::Input, 0, true)],
            }],
            outputs: vec![(3, OutputRef::Scaled(t(Source::Expr(0), 0, false)))],
        };
        let s = sol.to_string();
        assert!(s.contains("e0 = + x<<2 - x"), "{s}");
        assert!(s.contains("out(3)"), "{s}");
    }
}

//! Iterative pairwise matching \[Pot94\].
//!
//! The algorithm keeps a pool of *expressions* (initially, one signed-digit
//! expansion per distinct odd constant) and repeatedly finds the pair of
//! expressions with the largest common subpattern — a set of terms that
//! coincide under a relative shift and an optional global sign flip. The
//! subpattern is extracted into a new shared expression and both users are
//! rewritten to reference it. Every extraction of an `m`-term match saves
//! `m − 1` additions, so the loop monotonically reduces cost and
//! terminates.

use crate::csd::recode;
use crate::plan::{Expr, McmSolution, OutputRef, Source, Term};
use crate::{Cost, Recoding};
use std::collections::HashMap;

/// Cost of decomposing every constant independently (the paper's baseline):
/// per-constant signed-digit expansion with *no* sharing of subexpressions
/// or shifters.
pub fn naive_cost(constants: &[i64], recoding: Recoding) -> Cost {
    constants
        .iter()
        .map(|&c| crate::csd::single_constant_cost(c, recoding))
        .fold(Cost::default(), |a, b| a + b)
}

/// Synthesizes a shared shift-add network for all `constants` (products with
/// one common variable) using iterative pairwise matching.
///
/// Constants may repeat, be negative, zero, or even; they are normalized to
/// `sign · odd · 2^e` and the matching runs on the distinct odd parts.
///
/// The returned plan is explicit and can be checked with
/// [`McmSolution::verify`]; its [`McmSolution::cost`] never exceeds
/// [`naive_cost`] in additions.
///
/// # Examples
///
/// ```
/// use lintra_mcm::{synthesize, Recoding};
///
/// let sol = synthesize(&[7, 14, 28, 0, -7], Recoding::Csd);
/// sol.verify().unwrap();
/// // One shared expression computes 7x; everything else is shift/negate.
/// assert_eq!(sol.cost().adds, 1);
/// ```
pub fn synthesize(constants: &[i64], recoding: Recoding) -> McmSolution {
    let mut exprs: Vec<Expr> = Vec::new();
    let mut odd_index: HashMap<u64, usize> = HashMap::new();
    let mut outputs: Vec<(i64, OutputRef)> = Vec::new();

    for &c in constants {
        if c == 0 {
            outputs.push((c, OutputRef::Zero));
            continue;
        }
        let neg = c < 0;
        let mag = c.unsigned_abs();
        let e = mag.trailing_zeros();
        let odd = mag >> e;
        let source = if odd == 1 {
            Source::Input
        } else {
            let idx = *odd_index.entry(odd).or_insert_with(|| {
                let digits = recode(odd as i64, recoding);
                exprs.push(Expr {
                    terms: digits
                        .iter()
                        .map(|d| Term {
                            source: Source::Input,
                            shift: d.shift,
                            neg: d.neg,
                        })
                        .collect(),
                });
                exprs.len() - 1
            });
            Source::Expr(idx)
        };
        outputs.push((
            c,
            OutputRef::Scaled(Term {
                source,
                shift: e,
                neg,
            }),
        ));
    }

    // Iterative pairwise matching over the expression pool. The memo keeps
    // the best match of every pair and only recomputes pairs whose
    // endpoints were rewritten by the previous extraction, so each
    // iteration costs O(E) pair scans instead of O(E²).
    let mut memo = PairMemo::new(&exprs);
    while let Some(best) = memo.global_best() {
        let (i, j) = (best.i, best.j);
        apply_match(&mut exprs, best);
        memo.refresh(&exprs, i, j);
    }

    McmSolution { exprs, outputs }
}

/// A candidate common subpattern between expressions `i` and `j`
/// (possibly `i == j` with disjoint term sets): terms `src` of expression
/// `i` map onto terms `dst` of expression `j` under `shift` and `flip`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Match {
    i: usize,
    j: usize,
    /// Relative shift applied to `i`'s terms to land on `j`'s.
    shift: i64,
    /// Global sign flip between the two occurrences.
    flip: bool,
    /// Matched term indices in expression `i`.
    src: Vec<usize>,
    /// Matched term indices in expression `j` (same order as `src`).
    dst: Vec<usize>,
}

impl Match {
    fn len(&self) -> usize {
        self.src.len()
    }
}

/// Transformed image of a term under a candidate `(shift, flip)`.
fn image(t: &Term, shift: i64, flip: bool) -> Option<Term> {
    let s = t.shift as i64 + shift;
    if s < 0 {
        return None;
    }
    Some(Term {
        source: t.source,
        shift: s as u32,
        neg: t.neg ^ flip,
    })
}

/// Finds the matched index sets for a fixed pair and candidate transform.
fn match_under(
    exprs: &[Expr],
    i: usize,
    j: usize,
    shift: i64,
    flip: bool,
) -> (Vec<usize>, Vec<usize>) {
    let (mut src, mut dst) = (Vec::new(), Vec::new());
    let mut used_dst = vec![false; exprs[j].terms.len()];
    for (a, t) in exprs[i].terms.iter().enumerate() {
        // In a self-match an index may participate in at most one role.
        if i == j && (dst.contains(&a)) {
            continue;
        }
        let Some(want) = image(t, shift, flip) else {
            continue;
        };
        let found = exprs[j].terms.iter().enumerate().position(|(b, u)| {
            !used_dst[b] && *u == want && !(i == j && (b == a || src.contains(&b)))
        });
        if let Some(b) = found {
            used_dst[b] = true;
            src.push(a);
            dst.push(b);
        }
    }
    (src, dst)
}

/// Best match within one fixed pair `(i, j)`: the first candidate
/// transform (in sorted `(shift, flip)` order) reaching the pair's maximal
/// match size ≥ 2. `cands` is caller-provided scratch.
fn pair_best(exprs: &[Expr], i: usize, j: usize, cands: &mut Vec<(i64, bool)>) -> Option<Match> {
    // Candidate transforms come from aligning any term of i with any
    // term of j that has the same source.
    cands.clear();
    for t in &exprs[i].terms {
        for u in &exprs[j].terms {
            if t.source == u.source {
                cands.push((u.shift as i64 - t.shift as i64, t.neg ^ u.neg));
            }
        }
    }
    cands.sort_unstable();
    cands.dedup();
    let mut best: Option<Match> = None;
    for &(shift, flip) in cands.iter() {
        if i == j && shift == 0 && !flip {
            continue; // identity self-match is meaningless
        }
        let (src, dst) = match_under(exprs, i, j, shift, flip);
        if src.len() >= 2 {
            let cand = Match {
                i,
                j,
                shift,
                flip,
                src,
                dst,
            };
            if best.as_ref().is_none_or(|b| cand.len() > b.len()) {
                best = Some(cand);
            }
        }
    }
    best
}

/// Per-pair memo of within-pair best matches.
///
/// A match for pair `(a, b)` depends only on `exprs[a]` and `exprs[b]`, so
/// after an extraction rewrites expressions `i` and `j` and appends the
/// shared expression `k`, every pair avoiding `{i, j, k}` keeps its cached
/// match. Selection order is identical to a full rescan: pairs are scanned
/// in ascending `(i, j)` with a strictly-greater size test, and each
/// cached entry was itself chosen by the same rule over sorted candidate
/// transforms — so the memoized loop extracts exactly the same sequence of
/// matches as the O(E²)-per-iteration rescan (asserted by a test below).
struct PairMemo {
    /// `best[i][j - i]` = best match within pair `(i, j)`, `i ≤ j`.
    best: Vec<Vec<Option<Match>>>,
    /// Scratch for candidate transforms, reused across pair scans.
    cands: Vec<(i64, bool)>,
}

impl PairMemo {
    fn new(exprs: &[Expr]) -> PairMemo {
        let mut memo = PairMemo {
            best: Vec::with_capacity(exprs.len()),
            cands: Vec::new(),
        };
        for i in 0..exprs.len() {
            let row = (i..exprs.len())
                .map(|j| pair_best(exprs, i, j, &mut memo.cands))
                .collect();
            memo.best.push(row);
        }
        memo
    }

    /// Re-scans every pair touching `i`, `j`, or an expression appended
    /// since the last refresh; all other entries stay cached.
    fn refresh(&mut self, exprs: &[Expr], i: usize, j: usize) {
        let e = exprs.len();
        // New expressions extend existing rows and add fresh rows; those
        // pairs are computed here for the first time.
        for a in 0..self.best.len() {
            for b in (a + self.best[a].len())..e {
                let m = pair_best(exprs, a, b, &mut self.cands);
                self.best[a].push(m);
            }
        }
        for a in self.best.len()..e {
            let row = (a..e)
                .map(|b| pair_best(exprs, a, b, &mut self.cands))
                .collect();
            self.best.push(row);
        }
        // Pairs with a rewritten endpoint.
        for d in [i, j] {
            for a in 0..e {
                let (lo, hi) = if a <= d { (a, d) } else { (d, a) };
                self.best[lo][hi - lo] = pair_best(exprs, lo, hi, &mut self.cands);
            }
        }
    }

    /// The match a full rescan would select: first pair in ascending
    /// `(i, j)` order whose cached match is strictly larger than every
    /// earlier one.
    fn global_best(&self) -> Option<Match> {
        let mut best: Option<&Match> = None;
        for row in &self.best {
            for m in row.iter().flatten() {
                if best.is_none_or(|b| m.len() > b.len()) {
                    best = Some(m);
                }
            }
        }
        best.cloned()
    }
}

/// Scans all pairs and transforms for the largest match of size ≥ 2 —
/// the reference implementation the memoized loop must agree with.
#[cfg(test)]
fn best_match(exprs: &[Expr]) -> Option<Match> {
    let mut best: Option<Match> = None;
    let mut cands = Vec::new();
    for i in 0..exprs.len() {
        for j in i..exprs.len() {
            let cand = pair_best(exprs, i, j, &mut cands);
            if let Some(c) = cand {
                if best.as_ref().is_none_or(|b| c.len() > b.len()) {
                    best = Some(c);
                }
            }
        }
    }
    best
}

/// Extracts the matched subpattern into a new expression and rewrites both
/// users.
fn apply_match(exprs: &mut Vec<Expr>, m: Match) {
    let matched: Vec<Term> = m.src.iter().map(|&a| exprs[m.i].terms[a]).collect();
    // best_match only produces matches of size >= 2; an empty match would
    // be a no-op, so bail out instead of panicking on the invariant.
    let Some(m0) = matched.iter().map(|t| t.shift).min() else {
        return;
    };
    // Normalize so the new expression's minimum-shift term is positive.
    let f = matched
        .iter()
        .find(|t| t.shift == m0)
        .map(|t| t.neg)
        .unwrap_or(false);
    let new_expr = Expr {
        terms: matched
            .iter()
            .map(|t| Term {
                source: t.source,
                shift: t.shift - m0,
                neg: t.neg ^ f,
            })
            .collect(),
    };
    let k = exprs.len();
    exprs.push(new_expr);

    let ref_i = Term {
        source: Source::Expr(k),
        shift: m0,
        neg: f,
    };
    let ref_j = Term {
        source: Source::Expr(k),
        shift: (m0 as i64 + m.shift) as u32,
        neg: f ^ m.flip,
    };

    if m.i == m.j {
        let mut remove: Vec<usize> = m.src.iter().chain(&m.dst).copied().collect();
        remove.sort_unstable();
        remove.dedup();
        for &r in remove.iter().rev() {
            exprs[m.i].terms.remove(r);
        }
        exprs[m.i].terms.push(ref_i);
        exprs[m.i].terms.push(ref_j);
    } else {
        let mut src = m.src;
        src.sort_unstable();
        for &r in src.iter().rev() {
            exprs[m.i].terms.remove(r);
        }
        exprs[m.i].terms.push(ref_i);
        let mut dst = m.dst;
        dst.sort_unstable();
        for &r in dst.iter().rev() {
            exprs[m.j].terms.remove(r);
        }
        exprs[m.j].terms.push(ref_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_185_235() {
        let naive = naive_cost(&[185, 235], Recoding::Binary);
        assert_eq!(naive, Cost { adds: 9, shifts: 9 });

        let sol = synthesize(&[185, 235], Recoding::Binary);
        sol.verify().unwrap();
        // The paper's illustration stops at 6 shifts + 6 adds; iterated
        // matching finds one further shared pattern (33x = x + x<<5) and
        // lands at 5 + 5. Assert we do at least as well as the paper.
        assert!(sol.adds() <= 6, "plan:\n{sol}");
        assert!(sol.shifts() <= 6, "plan:\n{sol}");
        assert_eq!(sol.adds(), 5, "plan:\n{sol}");
        assert_eq!(sol.shifts(), 5, "plan:\n{sol}");
        // The shared subexpression the paper exhibits computes 169x.
        let values = sol.expr_values().unwrap();
        assert!(values.contains(&169), "values {values:?}\n{sol}");
    }

    #[test]
    fn trivial_constants_cost_nothing() {
        let sol = synthesize(&[0, 1, -1, 2, -8], Recoding::Csd);
        sol.verify().unwrap();
        assert_eq!(sol.adds(), 0);
        // 2 and -8 need shifters: (x,1) and (x,3).
        assert_eq!(sol.shifts(), 2);
    }

    #[test]
    fn duplicates_and_even_multiples_share_one_expression() {
        let sol = synthesize(&[7, 14, 28, -7, 7], Recoding::Csd);
        sol.verify().unwrap();
        // Only the odd part 7 = 8 - 1 is ever computed: a single addition.
        assert_eq!(sol.adds(), 1);
    }

    #[test]
    fn self_match_within_one_constant() {
        // 0b101101 << shifts... pick c = (5) + (5 << 3) = 45: digits {0,2,3,5}
        // in binary; the pattern (x + x<<2) repeats at offset 3.
        let sol = synthesize(&[45], Recoding::Binary);
        sol.verify().unwrap();
        // Naive: 4 digits -> 3 adds. Self-match: e = x + x<<2 (1 add),
        // 45x = e + e<<3 (1 add) -> 2 adds total.
        assert_eq!(sol.adds(), 2, "plan:\n{sol}");
    }

    #[test]
    fn never_worse_than_naive_in_adds() {
        for recoding in [Recoding::Binary, Recoding::Csd] {
            for set in [
                vec![3, 5, 7, 9],
                vec![255, 127, 63],
                vec![1997, 1023, 77, 12],
                vec![-45, 45, 90],
            ] {
                let sol = synthesize(&set, recoding);
                sol.verify().unwrap();
                assert!(
                    sol.adds() <= naive_cost(&set, recoding).adds,
                    "worse than naive for {set:?} {recoding:?}"
                );
            }
        }
    }

    #[test]
    fn memoized_matching_equals_full_rescan() {
        // Drive the memoized loop and the O(E²) rescan side by side on the
        // same pool and assert they extract the same match at every step.
        for set in [
            vec![185i64, 235, 77, 1997, 45],
            (1..=24).map(|k| (k * 37 % 255) + 1).collect(),
            vec![3, 5, 9, 17, 33, 65, 129, 257],
        ] {
            let mut exprs: Vec<Expr> = set
                .iter()
                .map(|&c| Expr {
                    terms: recode(c, Recoding::Csd)
                        .iter()
                        .map(|d| Term {
                            source: Source::Input,
                            shift: d.shift,
                            neg: d.neg,
                        })
                        .collect(),
                })
                .collect();
            let mut naive = exprs.clone();
            let mut memo = PairMemo::new(&exprs);
            loop {
                let fast = memo.global_best();
                let slow = best_match(&naive);
                assert_eq!(fast, slow, "divergence on {set:?}");
                let Some(m) = fast else { break };
                let (i, j) = (m.i, m.j);
                apply_match(&mut exprs, m.clone());
                apply_match(&mut naive, m);
                memo.refresh(&exprs, i, j);
            }
            assert_eq!(exprs, naive);
        }
    }

    #[test]
    fn deterministic_output() {
        let a = synthesize(&[185, 235, 77], Recoding::Csd);
        let b = synthesize(&[185, 235, 77], Recoding::Csd);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_plateaus_with_many_constants_of_fixed_width() {
        // Asymptotic effectiveness: adds per constant falls as the instance
        // grows at fixed (8-bit) width.
        let small: Vec<i64> = (1..=16).map(|k| (k * 37 % 255) + 1).collect();
        let large: Vec<i64> = (1..=128).map(|k| (k * 37 % 255) + 1).collect();
        let s = synthesize(&small, Recoding::Csd);
        let l = synthesize(&large, Recoding::Csd);
        s.verify().unwrap();
        l.verify().unwrap();
        let per_small = s.adds() as f64 / small.len() as f64;
        let per_large = l.adds() as f64 / large.len() as f64;
        assert!(
            per_large < per_small,
            "adds/constant should fall: {per_small} -> {per_large}"
        );
    }

    #[test]
    fn exhaustive_small_verification() {
        // Every pair (a, b) with 1 <= a, b <= 64 synthesizes correctly.
        for a in 1..=64i64 {
            for b in [a + 1, a * 3 % 64 + 1, 64 - a + 1] {
                let sol = synthesize(&[a, b], Recoding::Csd);
                if let Err(e) = sol.verify() {
                    panic!("verify failed for ({a},{b}): {e}\n{sol}");
                }
            }
        }
    }
}

//! Exhaustive single-constant multiplication (SCM) oracle.
//!
//! Breadth-first search over adder graphs: which odd constants are
//! reachable from `x` with `k` additions/subtractions of shifted,
//! previously computed values? Classic results say every constant below
//! 2¹² needs at most 4 adds; this module computes the exact minimum for
//! small constants and serves as a test oracle for the CSD and pairwise-
//! matching heuristics (which can never beat it).

use std::collections::HashMap;

/// Maximum magnitude tracked during the search. Optimal adder chains for
/// the ≤ 9-bit targets the oracle serves very rarely route through larger
/// intermediates, and the cap keeps the depth-3 BFS fast.
const VALUE_CAP_BITS: u32 = 13;

/// Exhaustive minimum-adder-count table for single constants.
///
/// # Examples
///
/// ```
/// use lintra_mcm::optimal::ScmOracle;
///
/// let oracle = ScmOracle::new(2);
/// assert_eq!(oracle.min_adds(1), Some(0));
/// assert_eq!(oracle.min_adds(7), Some(1));   // 8 - 1
/// assert_eq!(oracle.min_adds(45), Some(2));  // (1+4)*9 = 5<<3 + 5
/// ```
#[derive(Debug, Clone)]
pub struct ScmOracle {
    /// Minimum adds for each reachable odd positive value.
    table: HashMap<u64, u32>,
    depth: u32,
}

impl ScmOracle {
    /// Builds the oracle by BFS to `max_adds` additions (each level
    /// combines two already-reachable values under arbitrary shifts).
    ///
    /// Values are normalized to odd positives. Depths above 3 get
    /// expensive; 2–3 is plenty for oracle duty.
    ///
    /// # Panics
    ///
    /// Panics if `max_adds > 3` (the search space explodes beyond the
    /// oracle's purpose).
    pub fn new(max_adds: u32) -> ScmOracle {
        assert!(max_adds <= 3, "oracle supports at most 3 adds");
        let cap = 1u64 << VALUE_CAP_BITS;
        let mut table: HashMap<u64, u32> = HashMap::new();
        table.insert(1, 0);
        let mut frontier: Vec<u64> = vec![1];
        for depth in 1..=max_adds {
            let known: Vec<u64> = table.keys().copied().collect();
            let mut next = Vec::new();
            // New value = |a·2^i ± b| (normalizing by oddness covers the
            // remaining shift patterns; one operand can always be taken
            // unshifted after odd-normalization).
            for &f in &frontier {
                for &k in &known {
                    for shift in 0..VALUE_CAP_BITS {
                        let shifted = (f as u128) << shift;
                        if shifted > 2 * cap as u128 {
                            break;
                        }
                        let shifted = shifted as u64;
                        for cand in [shifted + k, shifted.abs_diff(k), k.wrapping_add(shifted)] {
                            let mut v = cand;
                            if v == 0 || v > cap {
                                continue;
                            }
                            v >>= v.trailing_zeros();
                            if let std::collections::hash_map::Entry::Vacant(slot) = table.entry(v)
                            {
                                slot.insert(depth);
                                next.push(v);
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        ScmOracle {
            table,
            depth: max_adds,
        }
    }

    /// Minimum additions to realize `c·x`, or `None` when `c` needs more
    /// than the oracle's depth (or exceeds the value cap).
    pub fn min_adds(&self, c: i64) -> Option<u32> {
        if c == 0 {
            return Some(0);
        }
        let mag = c.unsigned_abs();
        if mag > (1u64 << VALUE_CAP_BITS) {
            return None;
        }
        let odd = mag >> mag.trailing_zeros();
        self.table.get(&odd).copied()
    }

    /// The search depth the oracle was built to.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of distinct odd values reachable within the depth.
    pub fn reachable(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csd::single_constant_cost;
    use crate::Recoding;

    #[test]
    fn depth_zero_and_one_values() {
        let o = ScmOracle::new(1);
        assert_eq!(o.min_adds(1), Some(0));
        assert_eq!(o.min_adds(-8), Some(0));
        assert_eq!(o.min_adds(3), Some(1));
        assert_eq!(o.min_adds(5), Some(1));
        assert_eq!(o.min_adds(7), Some(1));
        assert_eq!(o.min_adds(9), Some(1));
        assert_eq!(o.min_adds(6), Some(1)); // 3 << 1
                                            // 11 needs 2 adds.
        assert_eq!(o.min_adds(11), None);
    }

    #[test]
    fn known_two_add_values() {
        let o = ScmOracle::new(2);
        for &c in &[11i64, 13, 19, 21, 23, 25, 27, 45, 51, 85, 153, 255] {
            assert!(
                o.min_adds(c).map(|d| d <= 2).unwrap_or(false),
                "{c} should need <= 2 adds, got {:?}",
                o.min_adds(c)
            );
        }
        // 1, 3 stay at their shallower depths.
        assert_eq!(o.min_adds(1), Some(0));
        assert_eq!(o.min_adds(3), Some(1));
    }

    #[test]
    fn csd_never_beats_the_oracle() {
        let o = ScmOracle::new(3);
        for c in 1..=512i64 {
            if let Some(opt) = o.min_adds(c) {
                let csd = single_constant_cost(c, Recoding::Csd).adds as u32;
                assert!(csd >= opt, "CSD {csd} beats oracle {opt} for {c}");
            }
        }
    }

    #[test]
    fn oracle_finds_cases_csd_misses() {
        // 45 = 101101 (binary), CSD needs 3 adds; the adder graph
        // (x + x<<2) + (x + x<<2)<<3 needs 2.
        let o = ScmOracle::new(2);
        assert_eq!(o.min_adds(45), Some(2));
        assert_eq!(single_constant_cost(45, Recoding::Csd).adds, 3);
    }

    #[test]
    fn every_8bit_constant_within_three_adds() {
        let o = ScmOracle::new(3);
        for c in 1..=255i64 {
            assert!(
                o.min_adds(c).is_some(),
                "{c} not reachable within 3 adds (reachable set {})",
                o.reachable()
            );
        }
    }
}

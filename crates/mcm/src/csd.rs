//! Signed-digit recoding of integer constants and single-constant
//! decomposition costs.
//!
//! A constant multiplication `c·x` is realized as a sum of signed, shifted
//! copies of `x`: `c·x = Σ σ_k · (x ≪ s_k)` with `σ_k ∈ {+1, −1}`. The
//! digit set comes from either the plain binary expansion of `c` or its
//! canonical signed digit (CSD) recoding, which has the minimum number of
//! nonzero digits and never two adjacent nonzeros.

use crate::{Cost, Recoding};

/// One nonzero signed digit: the term `sign · 2^shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digit {
    /// Bit position (shift amount).
    pub shift: u32,
    /// `true` for a `−1` digit.
    pub neg: bool,
}

impl Digit {
    /// The value `±2^shift` of this digit.
    pub fn value(&self) -> i128 {
        let v = 1i128 << self.shift;
        if self.neg {
            -v
        } else {
            v
        }
    }
}

/// Recodes `c` into nonzero signed digits under the chosen [`Recoding`],
/// sorted by increasing shift. `c = Σ digit.value()` always holds.
///
/// For [`Recoding::Binary`] and negative `c`, the binary digits of `|c|`
/// are used with all signs negated (plain binary has no negative digits).
///
/// # Examples
///
/// ```
/// use lintra_mcm::{csd::recode, Recoding};
///
/// // 7 = 8 - 1 in CSD (2 digits) but 4 + 2 + 1 in binary (3 digits).
/// assert_eq!(recode(7, Recoding::Csd).len(), 2);
/// assert_eq!(recode(7, Recoding::Binary).len(), 3);
/// ```
pub fn recode(c: i64, recoding: Recoding) -> Vec<Digit> {
    match recoding {
        Recoding::Binary => binary_digits(c),
        Recoding::Csd => csd_digits(c),
    }
}

fn binary_digits(c: i64) -> Vec<Digit> {
    let neg = c < 0;
    let mut mag = (c as i128).unsigned_abs();
    let mut out = Vec::new();
    let mut shift = 0;
    while mag != 0 {
        if mag & 1 == 1 {
            out.push(Digit { shift, neg });
        }
        mag >>= 1;
        shift += 1;
    }
    out
}

fn csd_digits(c: i64) -> Vec<Digit> {
    let mut v = c as i128;
    let mut out = Vec::new();
    let mut shift = 0;
    while v != 0 {
        if v & 1 == 1 {
            // d in {-1, +1}: chosen so (v - d) is divisible by 4 when
            // possible, which guarantees no adjacent nonzero digits.
            let d: i128 = 2 - (v & 3);
            out.push(Digit { shift, neg: d < 0 });
            v -= d;
        }
        v >>= 1;
        shift += 1;
    }
    out
}

/// Reconstructs the integer value of a digit set.
pub fn digits_value(digits: &[Digit]) -> i128 {
    digits.iter().map(Digit::value).sum()
}

/// Cost of realizing the *single* product `c·x` from its digit expansion:
/// `n − 1` additions for `n` nonzero digits and one shifter per digit with
/// a nonzero shift. Trivial constants (0, ±1) are free; `±2^k` is one
/// shift.
///
/// # Examples
///
/// ```
/// use lintra_mcm::{csd::single_constant_cost, Recoding};
///
/// assert_eq!(single_constant_cost(0, Recoding::Csd).total(), 0);
/// assert_eq!(single_constant_cost(-1, Recoding::Csd).total(), 0);
/// assert_eq!(single_constant_cost(8, Recoding::Csd).shifts, 1);
/// ```
pub fn single_constant_cost(c: i64, recoding: Recoding) -> Cost {
    let digits = recode(c, recoding);
    if digits.is_empty() {
        return Cost::default();
    }
    Cost {
        adds: digits.len() - 1,
        shifts: digits.iter().filter(|d| d.shift > 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_value(c: i64, r: Recoding) {
        let d = recode(c, r);
        assert_eq!(
            digits_value(&d),
            c as i128,
            "recode({c}, {r:?}) wrong value: {d:?}"
        );
    }

    #[test]
    fn recodings_preserve_value() {
        for c in -1000..=1000 {
            check_value(c, Recoding::Binary);
            check_value(c, Recoding::Csd);
        }
        for &c in &[i64::MAX, i64::MAX - 1, -(1 << 62), 1 << 40] {
            check_value(c, Recoding::Binary);
            check_value(c, Recoding::Csd);
        }
    }

    #[test]
    fn csd_has_no_adjacent_nonzeros() {
        for c in -4096..=4096i64 {
            let d = csd_digits(c);
            for w in d.windows(2) {
                assert!(
                    w[1].shift > w[0].shift + 1,
                    "adjacent digits for {c}: {d:?}"
                );
            }
        }
    }

    #[test]
    fn csd_never_more_digits_than_binary() {
        for c in 0..=4096i64 {
            assert!(
                csd_digits(c).len() <= binary_digits(c).len(),
                "CSD worse than binary for {c}"
            );
        }
    }

    #[test]
    fn known_csd_expansions() {
        // 7 = 8 - 1
        let d = csd_digits(7);
        assert_eq!(
            d,
            vec![
                Digit {
                    shift: 0,
                    neg: true
                },
                Digit {
                    shift: 3,
                    neg: false
                }
            ]
        );
        // 15 = 16 - 1
        assert_eq!(csd_digits(15).len(), 2);
        // 5 = 4 + 1 stays binary
        assert_eq!(csd_digits(5).len(), 2);
    }

    #[test]
    fn paper_example_binary_digit_positions() {
        let d185: Vec<u32> = binary_digits(185).iter().map(|d| d.shift).collect();
        assert_eq!(d185, vec![0, 3, 4, 5, 7]);
        let d235: Vec<u32> = binary_digits(235).iter().map(|d| d.shift).collect();
        assert_eq!(d235, vec![0, 1, 3, 5, 6, 7]);
    }

    #[test]
    fn single_costs() {
        assert_eq!(
            single_constant_cost(0, Recoding::Binary),
            Cost { adds: 0, shifts: 0 }
        );
        assert_eq!(
            single_constant_cost(1, Recoding::Binary),
            Cost { adds: 0, shifts: 0 }
        );
        assert_eq!(
            single_constant_cost(-1, Recoding::Binary),
            Cost { adds: 0, shifts: 0 }
        );
        assert_eq!(
            single_constant_cost(16, Recoding::Binary),
            Cost { adds: 0, shifts: 1 }
        );
        // 185 binary: 5 digits -> 4 adds, 4 shifted digits.
        assert_eq!(
            single_constant_cost(185, Recoding::Binary),
            Cost { adds: 4, shifts: 4 }
        );
        // 235 binary: 6 digits -> 5 adds, 5 shifted digits.
        assert_eq!(
            single_constant_cost(235, Recoding::Binary),
            Cost { adds: 5, shifts: 5 }
        );
    }

    #[test]
    fn negative_binary_digits_all_negative() {
        let d = binary_digits(-5);
        assert!(d.iter().all(|x| x.neg));
        assert_eq!(digits_value(&d), -5);
    }
}

//! Multiple constant multiplication (MCM) by shifts and additions.
//!
//! Implements the §5 building block of the paper: replacing the products of
//! one variable with many constants (`y_k = c_k · x`) by a shared network of
//! shifts and additions, using the **iterative pairwise matching** algorithm
//! of Potkonjak, Srivastava and Chandrakasan (DAC'94, \[Pot94\] in the
//! paper).
//!
//! The crate provides:
//!
//! * [`csd`]: binary and canonical-signed-digit (CSD) recoding of integer
//!   constants, and the cost of decomposing a *single* constant
//!   multiplication into shifts and adds,
//! * [`synthesize`]: the full MCM optimization returning an explicit,
//!   numerically verifiable shift-add plan ([`McmSolution`]),
//! * [`naive_cost`]: the per-constant decomposition baseline the paper
//!   compares against,
//! * [`quantize`]: fixed-point quantization of `f64` coefficients, the
//!   bridge from state-space matrices to integer MCM instances.
//!
//! # The paper's worked example
//!
//! `y₁ = 185·x` and `y₂ = 235·x` cost 9 shifts + 9 additions when
//! decomposed independently (binary recoding); pairwise matching discovers
//! the shared subexpression `y₃ = 169·x = x≪7 + x≪5 + x≪3 + x` and realizes
//! both products with 6 shifts + 6 additions. (Iterating the matching one
//! step further than the paper's illustration shares `33·x = x + x≪5` too
//! and lands at 5 + 5.)
//!
//! ```
//! use lintra_mcm::{naive_cost, synthesize, Recoding};
//!
//! let naive = naive_cost(&[185, 235], Recoding::Binary);
//! assert_eq!((naive.adds, naive.shifts), (9, 9));
//!
//! let sol = synthesize(&[185, 235], Recoding::Binary);
//! assert!(sol.cost().adds <= 6);
//! assert!(sol.cost().shifts <= 6);
//! sol.verify().unwrap();
//! ```

pub mod csd;
pub mod optimal;
mod pairwise;
mod plan;

pub use pairwise::{naive_cost, synthesize};
pub use plan::{Expr, McmSolution, OutputRef, Source, Term, VerifyMcmError};

/// How constants are recoded into signed digits before matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Recoding {
    /// Plain binary expansion (digits in `{0, 1}`); what the paper's §5
    /// example uses.
    Binary,
    /// Canonical signed digit (digits in `{-1, 0, 1}`, no two adjacent
    /// nonzeros); minimal digit count, the default.
    #[default]
    Csd,
}

/// Cost of a shift-add realization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Number of two-operand additions/subtractions.
    pub adds: usize,
    /// Number of (distinct, shareable) constant shifts.
    pub shifts: usize,
}

impl Cost {
    /// Total operation count `adds + shifts`.
    pub fn total(&self) -> usize {
        self.adds + self.shifts
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            adds: self.adds + rhs.adds,
            shifts: self.shifts + rhs.shifts,
        }
    }
}

/// Quantizes a real coefficient to a fixed-point integer with `frac_bits`
/// fractional bits (round to nearest, ties away from zero).
///
/// This is how the workspace turns state-space coefficient matrices into
/// MCM instances: `c ≈ quantize(c, w) / 2^w`.
///
/// # Examples
///
/// ```
/// assert_eq!(lintra_mcm::quantize(0.75, 8), 192);
/// assert_eq!(lintra_mcm::quantize(-1.0, 4), -16);
/// ```
pub fn quantize(c: f64, frac_bits: u32) -> i64 {
    let scaled = c * (1u64 << frac_bits) as f64;
    scaled.round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip_of_dyadic() {
        for &(c, w, q) in &[
            (0.5, 4, 8i64),
            (-0.375, 8, -96),
            (1.0, 12, 4096),
            (0.0, 8, 0),
        ] {
            assert_eq!(quantize(c, w), q, "c={c} w={w}");
            assert!((q as f64 / (1u64 << w) as f64 - c).abs() < 1e-12);
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        // 0.1 * 16 = 1.6 -> 2
        assert_eq!(quantize(0.1, 4), 2);
        // -1.6 -> -2
        assert_eq!(quantize(-0.1, 4), -2);
    }

    #[test]
    fn cost_addition() {
        let a = Cost { adds: 1, shifts: 2 };
        let b = Cost { adds: 3, shifts: 4 };
        assert_eq!(a + b, Cost { adds: 4, shifts: 6 });
        assert_eq!((a + b).total(), 10);
    }
}

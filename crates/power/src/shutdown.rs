//! Shutdown and duty-cycling: the §1/§3 linear knobs.
//!
//! When voltage scaling is not available, surplus throughput can still be
//! converted to power linearly, either by slowing the clock (`f` term of
//! `P = α·C·V²·f`) or by finishing early and gating the clock / supply for
//! the rest of the sample period. This module models both, including an
//! idle overhead factor for imperfect gating (leakage, PLL, retention).

/// How surplus throughput is converted to power when `V` is fixed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdleStrategy {
    /// Reduce the clock so computation exactly fills the sample period.
    SlowClock,
    /// Run at full speed, then gate the clock; gated power is
    /// `idle_fraction` of active power (0 = perfect gating).
    ClockGate {
        /// Relative power while gated, in `[0, 1]`.
        idle_fraction: f64,
    },
    /// Run at full speed, then cut the supply; restart costs
    /// `wakeup_overhead` of a sample period's active energy per sample.
    PowerDown {
        /// Energy overhead per wake-up, as a fraction of one active
        /// sample-period energy.
        wakeup_overhead: f64,
    },
}

/// Relative power (new/old) of an implementation whose work per sample
/// shrank by `speedup ≥ 1`, at a fixed voltage, under the given idle
/// strategy.
///
/// # Panics
///
/// Panics if `speedup < 1` or a strategy parameter is out of range.
pub fn relative_power(speedup: f64, strategy: IdleStrategy) -> f64 {
    assert!(speedup >= 1.0, "speedup must be >= 1, got {speedup}");
    let busy = 1.0 / speedup;
    match strategy {
        IdleStrategy::SlowClock => busy,
        IdleStrategy::ClockGate { idle_fraction } => {
            assert!(
                (0.0..=1.0).contains(&idle_fraction),
                "idle fraction out of range"
            );
            busy + (1.0 - busy) * idle_fraction
        }
        IdleStrategy::PowerDown { wakeup_overhead } => {
            assert!(
                wakeup_overhead >= 0.0,
                "wakeup overhead must be non-negative"
            );
            busy + wakeup_overhead * busy
        }
    }
}

/// The speedup above which powering down (with its wake-up cost) beats
/// clock gating (with its idle leakage); `None` when power-down never
/// wins.
pub fn power_down_break_even(idle_fraction: f64, wakeup_overhead: f64) -> Option<f64> {
    // busy(1 + ovh) < busy + (1-busy)·idle  ⇔  busy·ovh < (1-busy)·idle
    // ⇔ ovh/idle < (1-busy)/busy = speedup - 1.
    if idle_fraction <= 0.0 {
        return None;
    }
    Some(1.0 + wakeup_overhead / idle_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_clock_is_exactly_linear() {
        for &s in &[1.0, 1.6, 2.0, 10.0] {
            assert!((relative_power(s, IdleStrategy::SlowClock) - 1.0 / s).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_iir_example_37_percent() {
        // §3: a x1.6 op reduction gives a power reduction of x1.6 — "37%"
        // — at unchanged voltage.
        let rel = relative_power(1.6, IdleStrategy::SlowClock);
        assert!((rel - 0.625).abs() < 1e-12);
        assert!(((1.0 - rel) * 100.0 - 37.5).abs() < 0.6);
    }

    #[test]
    fn perfect_gating_matches_slow_clock() {
        let s = 2.5;
        let a = relative_power(s, IdleStrategy::SlowClock);
        let b = relative_power(s, IdleStrategy::ClockGate { idle_fraction: 0.0 });
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn leaky_gating_is_worse() {
        let s = 3.0;
        let perfect = relative_power(s, IdleStrategy::ClockGate { idle_fraction: 0.0 });
        let leaky = relative_power(s, IdleStrategy::ClockGate { idle_fraction: 0.2 });
        assert!(leaky > perfect);
        assert!(leaky < 1.0);
    }

    #[test]
    fn power_down_overhead_accounted() {
        let s = 4.0;
        let free = relative_power(
            s,
            IdleStrategy::PowerDown {
                wakeup_overhead: 0.0,
            },
        );
        let costly = relative_power(
            s,
            IdleStrategy::PowerDown {
                wakeup_overhead: 0.5,
            },
        );
        assert!((free - 0.25).abs() < 1e-12);
        assert!((costly - 0.375).abs() < 1e-12);
    }

    #[test]
    fn break_even_threshold() {
        let be = power_down_break_even(0.1, 0.5).unwrap();
        assert!((be - 6.0).abs() < 1e-12);
        // Past the threshold power-down wins; below it gating wins.
        let gate = |s| relative_power(s, IdleStrategy::ClockGate { idle_fraction: 0.1 });
        let down = |s| {
            relative_power(
                s,
                IdleStrategy::PowerDown {
                    wakeup_overhead: 0.5,
                },
            )
        };
        assert!(down(8.0) < gate(8.0));
        assert!(down(4.0) > gate(4.0));
        assert!(power_down_break_even(0.0, 0.5).is_none());
    }
}

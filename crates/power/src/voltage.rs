//! The gate-delay-vs-voltage curve of Fig. 1 and its inversion.

use std::fmt;

/// First-order CMOS gate-delay model `d(V) = k · V / (V − V_t)²`.
///
/// This is the standard long-channel expression behind Fig. 1 of the paper:
/// delay is monotonically decreasing in `V` and blows up as `V → V_t`, which
/// reproduces the figure's ~300× normalized delay near threshold. The model
/// is normalized so that [`VoltageModel::normalized_delay`] is `1.0` at the
/// reference voltage (5.0 V in the paper's figure).
///
/// The default technology ([`VoltageModel::dac96`]) uses `V_t = 0.9 V` and a
/// minimum feasible supply of `1.1 V` — the paper "conservatively assumes
/// that voltage can not be lowered below" a technology floor, and its §4
/// worked example lands at ≈1.7 V for a 3.95× slowdown from 3.0 V, which
/// this parameterization reproduces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageModel {
    vt: f64,
    v_min: f64,
    v_ref: f64,
}

/// Error constructing a [`VoltageModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoltageModelError {
    /// `v_min` must be strictly above the threshold voltage.
    MinBelowThreshold,
    /// The reference voltage must be at least `v_min`.
    RefBelowMin,
    /// All voltages must be finite and positive.
    NonPositive,
}

impl fmt::Display for VoltageModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoltageModelError::MinBelowThreshold => {
                write!(
                    f,
                    "minimum supply voltage must exceed the threshold voltage"
                )
            }
            VoltageModelError::RefBelowMin => {
                write!(
                    f,
                    "reference voltage must be at least the minimum supply voltage"
                )
            }
            VoltageModelError::NonPositive => {
                write!(f, "voltages must be finite and positive")
            }
        }
    }
}

impl std::error::Error for VoltageModelError {}

/// Error from the delay-curve inversion
/// ([`VoltageModel::voltage_for_slowdown`] /
/// [`VoltageModel::scale_for_slowdown`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoltageError {
    /// The starting supply voltage is at or below the threshold voltage,
    /// where the delay model is undefined.
    BelowThreshold {
        /// The offending supply voltage.
        voltage: f64,
        /// The technology threshold voltage.
        vt: f64,
    },
    /// The requested slowdown is not a finite value `>= 1` (this crate only
    /// models slowing gates down, never speeding them up).
    InfeasibleSlowdown {
        /// The offending slowdown factor.
        slowdown: f64,
    },
    /// Bisection failed to invert the delay curve to the requested accuracy
    /// (e.g. the slowdown is so large the delay target overflows).
    NonConvergence {
        /// The requested slowdown factor.
        slowdown: f64,
        /// Number of bisection iterations performed before giving up.
        iterations: u32,
    },
}

impl fmt::Display for VoltageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoltageError::BelowThreshold { voltage, vt } => {
                write!(
                    f,
                    "supply voltage {voltage} V is at or below threshold {vt} V"
                )
            }
            VoltageError::InfeasibleSlowdown { slowdown } => {
                write!(
                    f,
                    "slowdown factor {slowdown} is infeasible (must be finite and >= 1)"
                )
            }
            VoltageError::NonConvergence {
                slowdown,
                iterations,
            } => {
                write!(
                    f,
                    "bisection failed to invert the delay curve for slowdown {slowdown} \
                     after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for VoltageError {}

impl VoltageModel {
    /// Creates a model with threshold `vt`, minimum feasible supply `v_min`,
    /// and normalization reference `v_ref`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < vt < v_min <= v_ref` and all values are
    /// finite.
    pub fn new(vt: f64, v_min: f64, v_ref: f64) -> Result<VoltageModel, VoltageModelError> {
        if !(vt.is_finite() && v_min.is_finite() && v_ref.is_finite()) || vt <= 0.0 {
            return Err(VoltageModelError::NonPositive);
        }
        if v_min <= vt {
            return Err(VoltageModelError::MinBelowThreshold);
        }
        if v_ref < v_min {
            return Err(VoltageModelError::RefBelowMin);
        }
        Ok(VoltageModel { vt, v_min, v_ref })
    }

    /// The technology used throughout the paper's experiments:
    /// `V_t = 0.9 V`, `V_min = 1.1 V`, normalized at `5.0 V`.
    pub fn dac96() -> VoltageModel {
        VoltageModel {
            vt: 0.9,
            v_min: 1.1,
            v_ref: 5.0,
        }
    }

    /// Threshold voltage in volts.
    pub fn vt(&self) -> f64 {
        self.vt
    }

    /// Minimum feasible supply voltage in volts.
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Reference (normalization) voltage in volts.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Un-normalized delay `V / (V − V_t)²`.
    ///
    /// # Panics
    ///
    /// Panics if `v <= vt` (the model is undefined at or below threshold).
    pub fn raw_delay(&self, v: f64) -> f64 {
        assert!(
            v > self.vt,
            "supply voltage {v} must exceed threshold {}",
            self.vt
        );
        let dv = v - self.vt;
        v / (dv * dv)
    }

    /// Gate delay at `v` normalized to the delay at the reference voltage
    /// (the y-axis of Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if `v <= vt`.
    pub fn normalized_delay(&self, v: f64) -> f64 {
        self.raw_delay(v) / self.raw_delay(self.v_ref)
    }

    /// Relative slowdown of gates when moving the supply from `v_from` down
    /// (or up) to `v_to`: `d(v_to) / d(v_from)`.
    ///
    /// # Panics
    ///
    /// Panics if either voltage is at or below threshold.
    pub fn slowdown_between(&self, v_from: f64, v_to: f64) -> f64 {
        self.raw_delay(v_to) / self.raw_delay(v_from)
    }

    /// Finds the supply voltage at which gates are exactly `slowdown` times
    /// slower than at `v_from`, ignoring the technology floor.
    ///
    /// # Errors
    ///
    /// * [`VoltageError::BelowThreshold`] when `v_from <= vt`,
    /// * [`VoltageError::InfeasibleSlowdown`] when `slowdown` is not a
    ///   finite value `>= 1` (this crate only models slowing down),
    /// * [`VoltageError::NonConvergence`] when bisection cannot reach the
    ///   delay target (e.g. the target overflows for an astronomically
    ///   large slowdown).
    pub fn voltage_for_slowdown(&self, v_from: f64, slowdown: f64) -> Result<f64, VoltageError> {
        if !(v_from.is_finite() && v_from > self.vt) {
            return Err(VoltageError::BelowThreshold {
                voltage: v_from,
                vt: self.vt,
            });
        }
        if !(slowdown.is_finite() && slowdown >= 1.0) {
            return Err(VoltageError::InfeasibleSlowdown { slowdown });
        }
        const ITERATIONS: u32 = 200;
        let target = self.raw_delay(v_from) * slowdown;
        if !target.is_finite() {
            return Err(VoltageError::NonConvergence {
                slowdown,
                iterations: 0,
            });
        }
        // d is strictly decreasing on (vt, inf) and d -> inf as v -> vt+,
        // so a solution in (vt, v_from] always exists. Bisect.
        let mut lo = self.vt * (1.0 + 1e-12) + 1e-12;
        let mut hi = v_from;
        if self.raw_delay(hi) >= target {
            return Ok(hi);
        }
        if self.raw_delay(lo) < target {
            // The target lies beyond the steep near-threshold wall the
            // bracket can represent in f64.
            return Err(VoltageError::NonConvergence {
                slowdown,
                iterations: 0,
            });
        }
        for _ in 0..ITERATIONS {
            let mid = 0.5 * (lo + hi);
            if self.raw_delay(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let v = 0.5 * (lo + hi);
        let achieved = self.raw_delay(v) / self.raw_delay(v_from);
        if !achieved.is_finite() || (achieved - slowdown).abs() / slowdown > 1e-6 {
            return Err(VoltageError::NonConvergence {
                slowdown,
                iterations: ITERATIONS,
            });
        }
        Ok(v)
    }

    /// Applies a slowdown budget: chooses the lowest feasible voltage (at or
    /// above `v_min`) at which gates may run `slowdown` times slower, and
    /// returns the full bookkeeping.
    ///
    /// When the exact voltage would fall below `v_min`, the result is
    /// clamped ([`VoltageScaling::clamped`] reports this) and the residual
    /// slowdown is recorded; it still contributes a *linear* power
    /// reduction via frequency reduction or shutdown (§3 of the paper).
    ///
    /// # Errors
    ///
    /// Propagates [`VoltageError`] from the delay-curve inversion. A
    /// bisection failure past the `v_min` clamp is *not* an error: when the
    /// requested slowdown is deeper than the floor allows, the result is
    /// the clamped scaling at `v_min`.
    pub fn scale_for_slowdown(
        &self,
        v_from: f64,
        slowdown: f64,
    ) -> Result<VoltageScaling, VoltageError> {
        let exact = match self.voltage_for_slowdown(v_from, slowdown) {
            Ok(v) => v,
            // The floor would have clamped the answer anyway; degrade to it.
            Err(VoltageError::NonConvergence { .. }) if slowdown.is_finite() => self.v_min,
            Err(e) => return Err(e),
        };
        let voltage = exact.max(self.v_min).min(v_from);
        let slowdown_at_voltage = self.slowdown_between(v_from, voltage).min(slowdown);
        Ok(VoltageScaling {
            v_initial: v_from,
            voltage,
            slowdown_requested: slowdown,
            slowdown_at_voltage,
        })
    }
}

/// The result of trading a throughput surplus for supply-voltage reduction.
///
/// Produced by [`VoltageModel::scale_for_slowdown`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScaling {
    /// Initial supply voltage.
    pub v_initial: f64,
    /// Chosen (possibly clamped) supply voltage.
    pub voltage: f64,
    /// Total clock slowdown harvested from the transformation.
    pub slowdown_requested: f64,
    /// The part of the slowdown absorbed by voltage reduction
    /// (`<= slowdown_requested`; smaller iff clamped at `v_min`).
    pub slowdown_at_voltage: f64,
}

impl VoltageScaling {
    /// Power-reduction factor relative to the original implementation at
    /// `v_initial` delivering the same throughput:
    /// `(V₀/V₁)² · slowdown_requested`.
    ///
    /// The clock frequency always drops by the full requested slowdown (the
    /// workload per sample shrank by that factor); the voltage term captures
    /// whatever part of it the supply could absorb.
    pub fn power_reduction(&self) -> f64 {
        let vr = self.v_initial / self.voltage;
        vr * vr * self.slowdown_requested
    }

    /// The leftover slowdown that could not be converted into voltage
    /// reduction because of the `v_min` clamp (1.0 when unclamped). This
    /// part only earns a linear reduction (lower `f` or shutdown).
    pub fn residual_slowdown(&self) -> f64 {
        self.slowdown_requested / self.slowdown_at_voltage
    }

    /// `true` when the technology floor limited the voltage reduction.
    pub fn clamped(&self) -> bool {
        self.residual_slowdown() > 1.0 + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_normalized_at_reference() {
        let m = VoltageModel::dac96();
        assert!((m.normalized_delay(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_monotone_decreasing() {
        let m = VoltageModel::dac96();
        let mut prev = f64::INFINITY;
        let mut v = 1.0;
        while v <= 5.0 {
            let d = m.normalized_delay(v);
            assert!(d < prev, "delay not decreasing at {v}");
            prev = d;
            v += 0.05;
        }
    }

    #[test]
    fn near_threshold_blowup_matches_fig1_scale() {
        // Fig. 1's y-axis reaches ~300x near the voltage floor.
        let m = VoltageModel::dac96();
        let d = m.normalized_delay(1.0);
        assert!(d > 100.0 && d < 1000.0, "got {d}");
    }

    #[test]
    fn voltage_for_slowdown_inverts_delay() {
        let m = VoltageModel::dac96();
        for &s in &[1.0, 1.5, 2.0, 3.95, 10.0] {
            let v = m.voltage_for_slowdown(3.3, s).unwrap();
            let achieved = m.slowdown_between(3.3, v);
            assert!((achieved - s).abs() / s < 1e-9, "s={s} achieved={achieved}");
        }
    }

    #[test]
    fn paper_section4_worked_example_voltage() {
        // §4: two processors on the 6-unfolded dense P=Q=1, R=5 system earn
        // a 2 * S_max(1) ≈ 3.95x slowdown from 3.0 V; the paper reads ≈1.7 V
        // off its Fig. 1.
        let m = VoltageModel::dac96();
        let v = m.voltage_for_slowdown(3.0, 3.95).unwrap();
        assert!((v - 1.7).abs() < 0.1, "expected about 1.7 V, got {v}");
    }

    #[test]
    fn scaling_clamps_at_v_min() {
        let m = VoltageModel::dac96();
        let s = m.scale_for_slowdown(3.3, 1e6).unwrap();
        assert_eq!(s.voltage, m.v_min());
        assert!(s.clamped());
        assert!(s.residual_slowdown() > 1.0);
        // Linear residual still counts in the reduction factor.
        let expect = (3.3 / 1.1_f64).powi(2) * 1e6;
        assert!((s.power_reduction() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn unit_slowdown_is_identity() {
        let m = VoltageModel::dac96();
        let s = m.scale_for_slowdown(3.3, 1.0).unwrap();
        assert_eq!(s.voltage, 3.3);
        assert!(!s.clamped());
        assert!((s.power_reduction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_beats_linear_when_unclamped() {
        let m = VoltageModel::dac96();
        let s = m.scale_for_slowdown(5.0, 2.0).unwrap();
        assert!(!s.clamped());
        assert!(s.power_reduction() > 2.0);
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(
            VoltageModel::new(1.0, 0.9, 5.0).unwrap_err(),
            VoltageModelError::MinBelowThreshold
        );
        assert_eq!(
            VoltageModel::new(0.9, 1.1, 1.0).unwrap_err(),
            VoltageModelError::RefBelowMin
        );
        assert_eq!(
            VoltageModel::new(-1.0, 1.1, 5.0).unwrap_err(),
            VoltageModelError::NonPositive
        );
        assert!(VoltageModel::new(0.9, 1.1, 5.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "must exceed threshold")]
    fn delay_below_threshold_panics() {
        let _ = VoltageModel::dac96().raw_delay(0.5);
    }

    #[test]
    fn inversion_below_threshold_is_typed_error() {
        let m = VoltageModel::dac96();
        assert!(matches!(
            m.voltage_for_slowdown(0.5, 2.0),
            Err(VoltageError::BelowThreshold { .. })
        ));
        assert!(matches!(
            m.scale_for_slowdown(0.5, 2.0),
            Err(VoltageError::BelowThreshold { .. })
        ));
    }

    #[test]
    fn speedup_request_is_infeasible() {
        let m = VoltageModel::dac96();
        for s in [0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                m.voltage_for_slowdown(3.3, s),
                Err(VoltageError::InfeasibleSlowdown { .. })
            ));
        }
    }

    #[test]
    fn overflowing_target_reports_non_convergence_but_scaling_clamps() {
        let m = VoltageModel::dac96();
        // raw_delay(3.3) * 1e308 overflows: bisection cannot represent the
        // target, so the raw inversion fails ...
        let err = m.voltage_for_slowdown(3.3, 1e308).unwrap_err();
        assert!(matches!(err, VoltageError::NonConvergence { .. }));
        // ... but the clamped scaling degrades gracefully to v_min.
        let s = m.scale_for_slowdown(3.3, 1e308).unwrap();
        assert_eq!(s.voltage, m.v_min());
        assert!(s.clamped());
    }
}

//! The `C·V²` energy model as a [`CostModel`].
//!
//! [`EnergyCost`] prices a DFG (or an operation census) in joules per
//! sample at a fixed supply voltage, delegating the census arithmetic to
//! [`EnergyModel::energy_per_sample`] so the numbers are bit-identical to
//! the pre-trait ASIC accounting (Table 4). The parity-freeze tests in
//! `tests/egraph_differential.rs` pin this down per suite design.

use crate::energy::{EnergyBreakdown, EnergyModel, OpEnergy};
use lintra_dfg::{CostModel, Dfg, NodeKind, OpCounts};

/// Joules per sample at a fixed supply voltage — the paper's `E = C·V²`
/// per-operation model over a DFG.
///
/// [`OpCounts::delays`] are priced as clocked registers; [`NodeKind::Neg`]
/// folds into the consuming adder and costs nothing, mirroring
/// [`lintra_dfg::OpTiming::of`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCost {
    /// Per-operation switched capacitances.
    pub model: EnergyModel,
    /// Supply voltage the graph runs at.
    pub voltage: f64,
}

impl EnergyCost {
    /// Full per-class energy accounting for a census (the [`CostModel`]
    /// methods collapse this to its total).
    pub fn breakdown(&self, counts: &OpCounts) -> EnergyBreakdown {
        self.model.energy_per_sample(
            counts.adds,
            counts.muls,
            counts.shifts,
            counts.delays,
            self.voltage,
        )
    }
}

impl CostModel for EnergyCost {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn node_cost(&self, kind: &NodeKind) -> f64 {
        let op = match kind {
            NodeKind::Add | NodeKind::Sub => OpEnergy::Add,
            NodeKind::MulConst(_) => OpEnergy::Mult,
            NodeKind::Shift(_) => OpEnergy::Shift,
            NodeKind::Delay => OpEnergy::Register,
            _ => return 0.0,
        };
        self.model.energy_of(op, self.voltage)
    }

    fn census_cost(&self, counts: &OpCounts) -> f64 {
        self.breakdown(counts).total_j()
    }

    fn graph_cost(&self, g: &Dfg) -> f64 {
        self.census_cost(&g.op_counts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_cost_is_bit_identical_to_energy_per_sample() {
        let model = EnergyModel::asic_16bit();
        for v in [1.1, 3.3, 5.0] {
            let cost = EnergyCost { model, voltage: v };
            for (adds, muls, shifts, delays) in
                [(0u64, 0u64, 0u64, 0u64), (10, 10, 0, 5), (41, 0, 33, 7)]
            {
                let counts = OpCounts {
                    adds,
                    muls,
                    shifts,
                    delays,
                    negs: 3,
                };
                let legacy = model.energy_per_sample(adds, muls, shifts, delays, v);
                assert_eq!(cost.breakdown(&counts), legacy);
                assert_eq!(cost.census_cost(&counts), legacy.total_j());
            }
        }
    }

    #[test]
    fn node_costs_follow_the_class_energies() {
        let model = EnergyModel::asic_16bit();
        let cost = EnergyCost {
            model,
            voltage: 3.3,
        };
        assert_eq!(
            cost.node_cost(&NodeKind::Add),
            model.energy_of(OpEnergy::Add, 3.3)
        );
        assert_eq!(
            cost.node_cost(&NodeKind::Sub),
            model.energy_of(OpEnergy::Add, 3.3)
        );
        assert_eq!(
            cost.node_cost(&NodeKind::MulConst(0.7)),
            model.energy_of(OpEnergy::Mult, 3.3)
        );
        assert_eq!(
            cost.node_cost(&NodeKind::Shift(-2)),
            model.energy_of(OpEnergy::Shift, 3.3)
        );
        assert_eq!(
            cost.node_cost(&NodeKind::Delay),
            model.energy_of(OpEnergy::Register, 3.3)
        );
        assert_eq!(cost.node_cost(&NodeKind::Neg), 0.0);
        assert_eq!(cost.node_cost(&NodeKind::Const(1.0)), 0.0);
    }

    #[test]
    fn sixteen_to_one_multiplier_ratio_survives_the_trait() {
        let cost = EnergyCost {
            model: EnergyModel::asic_16bit(),
            voltage: 1.1,
        };
        let mul = cost.node_cost(&NodeKind::MulConst(0.3));
        let add = cost.node_cost(&NodeKind::Add);
        assert!((mul / add - 16.0).abs() < 1e-12);
    }
}

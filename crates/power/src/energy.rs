//! Per-operation energy model for the ASIC experiments (Table 4).
//!
//! The paper argues from `P = α·C_L·V²·f`; at the behavioural level this
//! becomes an *energy per executed operation* of `E_op = C_op·V²` with an
//! effective switched capacitance per operation class. A 16×16 array
//! multiplier is modelled as 16 adder-equivalents, a hardwired ASIC shift is
//! nearly free (routing capacitance only), and a pipeline/state register
//! costs a fraction of an adder.

use std::fmt;

/// Operation classes that consume energy in a datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpEnergy {
    /// Two-operand addition or subtraction.
    Add,
    /// Multiplication of a variable by a constant (full array multiplier).
    Mult,
    /// Constant shift (hardwired wiring on an ASIC).
    Shift,
    /// A register (algorithmic delay or pipeline stage) clocked once.
    Register,
}

/// Effective switched capacitance per operation class, in farads, plus the
/// resulting energy accounting.
///
/// # Examples
///
/// ```
/// use lintra_power::EnergyModel;
///
/// let asic = EnergyModel::asic_16bit();
/// let e0 = asic.energy_per_sample(10, 10, 0, 5, 5.0);
/// let e1 = asic.energy_per_sample(40, 0, 30, 5, 1.1);
/// // Shift-add at low voltage beats multipliers at 5 V.
/// assert!(e1.total_nj() < e0.total_nj());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Capacitance switched by one addition, farads.
    pub c_add: f64,
    /// Capacitance switched by one constant multiplication, farads.
    pub c_mult: f64,
    /// Capacitance switched by one constant shift, farads.
    pub c_shift: f64,
    /// Capacitance switched by clocking one word register, farads.
    pub c_register: f64,
}

impl EnergyModel {
    /// 16-bit custom-datapath model: `C_add = 5 pF`, multiplier = 16 adder
    /// equivalents, shift ≈ wiring only, register = half an adder.
    pub fn asic_16bit() -> EnergyModel {
        let c_add = 5e-12;
        EnergyModel {
            c_add,
            c_mult: 16.0 * c_add,
            c_shift: 0.05 * c_add,
            c_register: 0.5 * c_add,
        }
    }

    /// Programmable-processor model: every instruction switches roughly the
    /// same capacitance (the Tiwari et al. correlation of power with
    /// instruction count cited in §4), `C_instr = 80 pF` per instruction.
    pub fn processor_uniform() -> EnergyModel {
        let c = 80e-12;
        EnergyModel {
            c_add: c,
            c_mult: c,
            c_shift: c,
            c_register: 0.0,
        }
    }

    /// Capacitance for an operation class.
    pub fn capacitance(&self, op: OpEnergy) -> f64 {
        match op {
            OpEnergy::Add => self.c_add,
            OpEnergy::Mult => self.c_mult,
            OpEnergy::Shift => self.c_shift,
            OpEnergy::Register => self.c_register,
        }
    }

    /// Energy in joules of one operation at supply voltage `v`.
    pub fn energy_of(&self, op: OpEnergy, v: f64) -> f64 {
        self.capacitance(op) * v * v
    }

    /// Energy accounting for one processed sample given per-sample operation
    /// counts at supply voltage `v`.
    pub fn energy_per_sample(
        &self,
        adds: u64,
        mults: u64,
        shifts: u64,
        registers: u64,
        v: f64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            adds_j: adds as f64 * self.energy_of(OpEnergy::Add, v),
            mults_j: mults as f64 * self.energy_of(OpEnergy::Mult, v),
            shifts_j: shifts as f64 * self.energy_of(OpEnergy::Shift, v),
            registers_j: registers as f64 * self.energy_of(OpEnergy::Register, v),
            voltage: v,
        }
    }
}

/// Energy per processed sample, split by operation class (joules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy spent in additions.
    pub adds_j: f64,
    /// Energy spent in constant multiplications.
    pub mults_j: f64,
    /// Energy spent in shifts.
    pub shifts_j: f64,
    /// Energy spent clocking registers.
    pub registers_j: f64,
    /// Supply voltage the breakdown was computed at.
    pub voltage: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.adds_j + self.mults_j + self.shifts_j + self.registers_j
    }

    /// Total energy in nanojoules (the unit of Table 4).
    pub fn total_nj(&self) -> f64 {
        self.total_j() * 1e9
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} nJ/sample @ {:.2} V (add {:.2}, mult {:.2}, shift {:.2}, reg {:.2})",
            self.total_nj(),
            self.voltage,
            self.adds_j * 1e9,
            self.mults_j * 1e9,
            self.shifts_j * 1e9,
            self.registers_j * 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_is_sixteen_adders() {
        let m = EnergyModel::asic_16bit();
        assert!((m.c_mult / m.c_add - 16.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_quadratically_with_voltage() {
        let m = EnergyModel::asic_16bit();
        let e5 = m.energy_of(OpEnergy::Add, 5.0);
        let e25 = m.energy_of(OpEnergy::Add, 2.5);
        assert!((e5 / e25 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums() {
        let m = EnergyModel::asic_16bit();
        let b = m.energy_per_sample(2, 1, 4, 3, 3.0);
        let manual = 2.0 * m.energy_of(OpEnergy::Add, 3.0)
            + m.energy_of(OpEnergy::Mult, 3.0)
            + 4.0 * m.energy_of(OpEnergy::Shift, 3.0)
            + 3.0 * m.energy_of(OpEnergy::Register, 3.0);
        assert!((b.total_j() - manual).abs() < 1e-24);
        assert!((b.total_nj() - manual * 1e9).abs() < 1e-12);
    }

    #[test]
    fn uniform_processor_ignores_op_mix() {
        let m = EnergyModel::processor_uniform();
        let a = m.energy_per_sample(10, 0, 0, 0, 3.3).total_j();
        let b = m.energy_per_sample(0, 10, 0, 0, 3.3).total_j();
        assert!((a - b).abs() < 1e-24);
    }

    #[test]
    fn shifts_much_cheaper_than_mults() {
        let m = EnergyModel::asic_16bit();
        assert!(m.c_shift * 100.0 < m.c_mult);
    }

    #[test]
    fn display_mentions_unit() {
        let m = EnergyModel::asic_16bit();
        let s = m.energy_per_sample(1, 1, 1, 1, 5.0).to_string();
        assert!(s.contains("nJ/sample"));
    }
}

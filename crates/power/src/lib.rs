//! CMOS voltage/delay and power/energy models.
//!
//! This crate implements the power background of §1 of the paper:
//!
//! * the switching-power law `P = α·C_L·V_dd²·f` ([`switching_power`]),
//! * the normalized gate-delay-vs-voltage curve of Fig. 1
//!   ([`VoltageModel::normalized_delay`], first-order long-channel model
//!   `d(V) ∝ V / (V − V_t)²`),
//! * its inversion ([`VoltageModel::voltage_for_slowdown`]): given a clock
//!   slowdown budget earned by a transformation, find the lowest feasible
//!   supply voltage, clamped at the technology minimum,
//! * the voltage-scaling bookkeeping used by all three optimization
//!   strategies ([`VoltageScaling`]), and
//! * a per-operation energy model ([`EnergyModel`]) used for the ASIC
//!   experiments of Table 4, exposed to optimizers and the e-graph
//!   extractor through the unified [`lintra_dfg::CostModel`] trait as
//!   [`EnergyCost`].
//!
//! # Examples
//!
//! ```
//! use lintra_power::VoltageModel;
//!
//! # fn main() -> Result<(), lintra_power::VoltageError> {
//! let tech = VoltageModel::dac96();
//! // A 2x reduction in operations per sample lets the clock run 2x slower;
//! // find the voltage where gates are exactly 2x slower than at 3.3 V.
//! let scaled = tech.scale_for_slowdown(3.3, 2.0)?;
//! assert!(scaled.voltage < 3.3 && scaled.voltage >= tech.v_min());
//! assert!(scaled.power_reduction() > 2.0); // quadratic beats linear
//! # Ok(())
//! # }
//! ```

mod cost;
mod energy;
pub mod shutdown;
mod voltage;

pub use cost::EnergyCost;
pub use energy::{EnergyBreakdown, EnergyModel, OpEnergy};
pub use shutdown::{power_down_break_even, relative_power, IdleStrategy};
pub use voltage::{VoltageError, VoltageModel, VoltageModelError, VoltageScaling};

/// Average switching power `P = α·C_L·V_dd²·f` (EQ 1 of the paper).
///
/// * `alpha` — switching activity (probability of a 0→1 transition/cycle),
/// * `c_load` — load capacitance in farads,
/// * `vdd` — supply voltage in volts,
/// * `freq` — clock frequency in hertz.
///
/// Returns watts.
///
/// # Examples
///
/// ```
/// let p = lintra_power::switching_power(0.5, 1e-12, 3.3, 100e6);
/// assert!((p - 0.5 * 1e-12 * 3.3 * 3.3 * 100e6).abs() < 1e-18);
/// ```
pub fn switching_power(alpha: f64, c_load: f64, vdd: f64, freq: f64) -> f64 {
    alpha * c_load * vdd * vdd * freq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switching_power_is_quadratic_in_voltage() {
        let p1 = switching_power(0.5, 1e-12, 2.0, 1e6);
        let p2 = switching_power(0.5, 1e-12, 4.0, 1e6);
        assert!((p2 / p1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn switching_power_is_linear_in_frequency() {
        let p1 = switching_power(0.5, 1e-12, 3.0, 1e6);
        let p2 = switching_power(0.5, 1e-12, 3.0, 3e6);
        assert!((p2 / p1 - 3.0).abs() < 1e-12);
    }
}

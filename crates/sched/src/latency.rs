//! Latency analysis of batch (unfolded) computations: block processing vs
//! on-arrival processing.
//!
//! §2 of the paper notes that an unfolded system can be organized either as
//! *block processing* (Roberts & Mullis: wait until all `i+1` input samples
//! of the batch have arrived, then compute) or *on-arrival processing*
//! (Srivastava & Potkonjak, EDAC'94: start each sub-computation as soon as
//! its data exists). Throughput is the same; latency is not. This module
//! measures both on an actual dataflow graph with unbounded resources (the
//! dataflow limit).

use lintra_dfg::{Dfg, NodeKind, OpTiming};

/// When the samples of a batch become available to the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchArrival {
    /// All inputs of the batch are buffered first; computation starts when
    /// the *last* sample arrives.
    Block,
    /// Sample `k` is usable at time `k·T`.
    OnArrival,
}

/// Per-output completion times and latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// `(sample, channel, completion_time)` for every output, in graph
    /// order.
    pub completions: Vec<(usize, usize, f64)>,
    /// Worst latency over outputs: completion − arrival of the matching
    /// input sample (`j·T`).
    pub max_latency: f64,
    /// Mean latency over outputs.
    pub avg_latency: f64,
}

/// Computes output completion times of one batch iteration under the given
/// arrival discipline, with unlimited functional units (the dataflow
/// bound). `sample_period` is the input inter-arrival time `T`; state is
/// available at time 0.
pub fn batch_latency(
    g: &Dfg,
    timing: &OpTiming,
    sample_period: f64,
    mode: BatchArrival,
) -> LatencyReport {
    let last_sample = g
        .iter()
        .filter_map(|(_, n)| match n.kind {
            NodeKind::Input { sample, .. } => Some(sample),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let arrival = |sample: usize| match mode {
        BatchArrival::Block => last_sample as f64 * sample_period,
        BatchArrival::OnArrival => sample as f64 * sample_period,
    };

    let mut finish = vec![0.0_f64; g.len()];
    let mut completions = Vec::new();
    for (id, n) in g.iter() {
        let ready = n.preds.iter().map(|p| finish[p.0]).fold(0.0, f64::max);
        finish[id.0] = match n.kind {
            NodeKind::Input { sample, .. } => arrival(sample),
            NodeKind::StateIn { .. } | NodeKind::Const(_) => 0.0,
            _ => ready + timing.of(&n.kind),
        };
        if let NodeKind::Output { sample, channel } = n.kind {
            completions.push((sample, channel, finish[id.0]));
        }
    }

    let latencies: Vec<f64> = completions
        .iter()
        .map(|&(s, _, t)| t - s as f64 * sample_period)
        .collect();
    let max_latency = latencies.iter().copied().fold(0.0, f64::max);
    let avg_latency = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LatencyReport {
        completions,
        max_latency,
        avg_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_dfg::build;
    use lintra_linsys::{unfold, StateSpace};
    use lintra_matrix::Matrix;

    fn sys() -> StateSpace {
        let f = |i: usize, j: usize| 0.23 + 0.013 * i as f64 + 0.007 * j as f64;
        StateSpace::new(
            Matrix::from_fn(3, 3, f).scale(0.25),
            Matrix::from_fn(3, 1, f),
            Matrix::from_fn(1, 3, f),
            Matrix::from_fn(1, 1, f),
        )
        .unwrap()
    }

    fn timing() -> OpTiming {
        OpTiming {
            t_mul: 2.0,
            t_add: 1.0,
            t_shift: 0.0,
        }
    }

    #[test]
    fn on_arrival_never_slower_than_block() {
        let g = build::from_unfolded(&unfold(&sys(), 4).unwrap()).unwrap();
        let t = timing();
        let block = batch_latency(&g, &t, 10.0, BatchArrival::Block);
        let onarr = batch_latency(&g, &t, 10.0, BatchArrival::OnArrival);
        assert_eq!(block.completions.len(), onarr.completions.len());
        for (b, o) in block.completions.iter().zip(&onarr.completions) {
            assert!(o.2 <= b.2 + 1e-9, "on-arrival slower for output {:?}", b);
        }
        assert!(onarr.max_latency <= block.max_latency);
        assert!(onarr.avg_latency < block.avg_latency);
    }

    #[test]
    fn identical_for_unit_batch() {
        let g = build::from_state_space(&sys()).unwrap();
        let t = timing();
        let block = batch_latency(&g, &t, 10.0, BatchArrival::Block);
        let onarr = batch_latency(&g, &t, 10.0, BatchArrival::OnArrival);
        assert_eq!(block, onarr);
    }

    #[test]
    fn block_latency_dominated_by_buffering() {
        // With a long sample period, block latency for sample 0 is at
        // least (n-1)*T: it waits for the whole batch.
        let g = build::from_unfolded(&unfold(&sys(), 3).unwrap()).unwrap();
        let t = timing();
        let period = 100.0;
        let block = batch_latency(&g, &t, period, BatchArrival::Block);
        let y0 = block
            .completions
            .iter()
            .find(|&&(s, c, _)| s == 0 && c == 0)
            .expect("output present");
        assert!(y0.2 >= 3.0 * period, "y0 completes at {}", y0.2);
        // On arrival, the first output only needs the first input.
        let onarr = batch_latency(&g, &t, period, BatchArrival::OnArrival);
        let y0 = onarr
            .completions
            .iter()
            .find(|&&(s, c, _)| s == 0 && c == 0)
            .expect("output present");
        assert!(y0.2 < period, "on-arrival y0 completes at {}", y0.2);
    }

    #[test]
    fn completion_count_matches_batch() {
        let g = build::from_unfolded(&unfold(&sys(), 5).unwrap()).unwrap();
        let rep = batch_latency(&g, &timing(), 1.0, BatchArrival::OnArrival);
        assert_eq!(rep.completions.len(), 6);
    }
}

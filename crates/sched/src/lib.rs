//! Resource-constrained scheduling of linear-computation dataflow graphs.
//!
//! §4 of the paper trades extra processors for voltage: the key quantity is
//! `S_max(N, i)`, the throughput improvement of `N` processors running the
//! `i`-times unfolded computation relative to one processor running the
//! original. Rather than trusting the paper's "intricate algebraic
//! manipulation", this crate *measures* it: the unfolded CDFG is list
//! scheduled onto `N` homogeneous processors (unit-cycle ops, zero
//! communication cost — the paper's §4 simplifying assumptions are
//! explicit parameters here) and the schedule lengths are compared.
//!
//! * [`ProcessorModel`] — per-instruction cycle costs of the programmable
//!   processor,
//! * [`list_schedule`] — critical-path-priority list scheduling,
//! * [`Schedule`] — validated result with makespan and a correctness
//!   checker,
//! * [`speedup_curve`] — `S(N)` for a graph over a processor range.
//!
//! # Examples
//!
//! ```
//! use lintra_dfg::{build, OpTiming};
//! use lintra_linsys::{unfold, StateSpace};
//! use lintra_matrix::Matrix;
//! use lintra_sched::{list_schedule, ProcessorModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = StateSpace::new(
//!     Matrix::from_rows(&[&[0.5, 0.25], &[0.3, 0.4]]),
//!     Matrix::from_rows(&[&[0.7], &[0.2]]),
//!     Matrix::from_rows(&[&[0.9, 0.8]]),
//!     Matrix::from_rows(&[&[0.6]]),
//! )?;
//! let g = build::from_unfolded(&unfold(&sys, 3)?)?;
//! let m = ProcessorModel::unit();
//! let s1 = list_schedule(&g, 1, &m)?;
//! let s2 = list_schedule(&g, 2, &m)?;
//! assert!(s2.length <= s1.length);
//! s2.validate(&g, &m).unwrap();
//! # Ok(())
//! # }
//! ```

pub mod fds;
pub mod latency;

use lintra_dfg::{Dfg, NodeId, NodeKind};
use std::fmt;

/// Per-instruction cycle costs of a programmable processor.
///
/// The paper's §4 assumption (iv) is `mul = add = 1` cycle
/// ([`ProcessorModel::unit`]); §3 allows them to differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorModel {
    /// Cycles per constant multiplication.
    pub cycles_mul: u64,
    /// Cycles per addition/subtraction.
    pub cycles_add: u64,
    /// Cycles per shift instruction.
    pub cycles_shift: u64,
}

impl ProcessorModel {
    /// Every instruction takes one cycle (§4 assumption iv).
    pub fn unit() -> ProcessorModel {
        ProcessorModel {
            cycles_mul: 1,
            cycles_add: 1,
            cycles_shift: 1,
        }
    }

    /// A DSP-flavoured model: two-cycle multiplies.
    pub fn dsp() -> ProcessorModel {
        ProcessorModel {
            cycles_mul: 2,
            cycles_add: 1,
            cycles_shift: 1,
        }
    }

    /// Latency of a node; `0` for non-operations.
    pub fn latency(&self, kind: &NodeKind) -> u64 {
        match kind {
            NodeKind::Add | NodeKind::Sub => self.cycles_add,
            NodeKind::MulConst(_) => self.cycles_mul,
            NodeKind::Shift(_) => self.cycles_shift,
            _ => 0,
        }
    }

    /// Total work (cycles) of a graph = single-processor schedule length.
    pub fn total_work(&self, g: &Dfg) -> u64 {
        g.iter().map(|(_, n)| self.latency(&n.kind)).sum()
    }
}

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The scheduled node.
    pub node: NodeId,
    /// Start cycle.
    pub start: u64,
    /// Processor index.
    pub processor: usize,
}

/// A complete schedule produced by [`list_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Makespan in cycles.
    pub length: u64,
    /// Number of processors used.
    pub processors: usize,
    /// Placement of every operation node.
    pub slots: Vec<Slot>,
}

/// Error from [`list_schedule`] and [`speedup_curve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// Scheduling was requested onto zero processors (resource
    /// starvation): no operation could ever be placed.
    NoProcessors,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoProcessors => {
                write!(f, "scheduling requires at least one processor")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Error from [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateScheduleError {
    /// Two operations overlap on one processor.
    ResourceConflict {
        /// The processor with the conflict.
        processor: usize,
        /// The two conflicting nodes.
        nodes: (usize, usize),
    },
    /// An operation starts before a predecessor finishes.
    DependencyViolation {
        /// The too-early node.
        node: usize,
        /// The unfinished predecessor.
        pred: usize,
    },
    /// An operation node was never scheduled.
    Unscheduled {
        /// The missing node.
        node: usize,
    },
}

impl fmt::Display for ValidateScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateScheduleError::ResourceConflict { processor, nodes } => {
                write!(
                    f,
                    "nodes {} and {} overlap on processor {processor}",
                    nodes.0, nodes.1
                )
            }
            ValidateScheduleError::DependencyViolation { node, pred } => {
                write!(f, "node {node} starts before predecessor {pred} finishes")
            }
            ValidateScheduleError::Unscheduled { node } => {
                write!(f, "operation node {node} missing from schedule")
            }
        }
    }
}

impl std::error::Error for ValidateScheduleError {}

impl Schedule {
    /// Checks resource and dependency feasibility against the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, g: &Dfg, model: &ProcessorModel) -> Result<(), ValidateScheduleError> {
        // Completion time of every node (non-ops complete with their preds).
        let mut finish = vec![0u64; g.len()];
        let mut start_of = vec![None::<u64>; g.len()];
        for s in &self.slots {
            start_of[s.node.0] = Some(s.start);
        }
        for (id, n) in g.iter() {
            let ready = n.preds.iter().map(|p| finish[p.0]).max().unwrap_or(0);
            if n.kind.is_operation() {
                let start =
                    start_of[id.0].ok_or(ValidateScheduleError::Unscheduled { node: id.0 })?;
                if start < ready {
                    // `ready` is the max predecessor finish, so a late
                    // predecessor must exist; fall back to the node itself
                    // rather than asserting the invariant.
                    let pred = n
                        .preds
                        .iter()
                        .find(|p| finish[p.0] > start)
                        .map(|p| p.0)
                        .unwrap_or(id.0);
                    return Err(ValidateScheduleError::DependencyViolation { node: id.0, pred });
                }
                finish[id.0] = start + model.latency(&n.kind);
            } else {
                finish[id.0] = ready;
            }
        }
        // Resource conflicts.
        let mut by_proc: Vec<Vec<&Slot>> = vec![Vec::new(); self.processors];
        for s in &self.slots {
            by_proc[s.processor].push(s);
        }
        for (p, slots) in by_proc.iter().enumerate() {
            let mut sorted = slots.clone();
            sorted.sort_by_key(|s| s.start);
            for w in sorted.windows(2) {
                let end = w[0].start + model.latency(&g.node(w[0].node).kind);
                if w[1].start < end {
                    return Err(ValidateScheduleError::ResourceConflict {
                        processor: p,
                        nodes: (w[0].node.0, w[1].node.0),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Critical-path-priority list scheduling of `g` onto `n_processors`
/// homogeneous processors (zero communication cost).
///
/// # Errors
///
/// Returns [`ScheduleError::NoProcessors`] when `n_processors == 0`.
pub fn list_schedule(
    g: &Dfg,
    n_processors: usize,
    model: &ProcessorModel,
) -> Result<Schedule, ScheduleError> {
    if n_processors == 0 {
        return Err(ScheduleError::NoProcessors);
    }

    // Priority: longest remaining path (including own latency).
    let mut priority = vec![0u64; g.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); g.len()];
    for (id, n) in g.iter() {
        for p in &n.preds {
            succs[p.0].push(id.0);
        }
    }
    for i in (0..g.len()).rev() {
        let own = model.latency(&g.node(NodeId(i)).kind);
        let down = succs[i].iter().map(|&s| priority[s]).max().unwrap_or(0);
        priority[i] = own + down;
    }

    // Dependency bookkeeping: ops become ready when all preds are finished.
    let mut unfinished_preds = vec![0usize; g.len()];
    for (id, n) in g.iter() {
        // Count only predecessors that take time or are themselves waiting:
        // conservatively count all; non-ops finish when their preds do.
        unfinished_preds[id.0] = n.preds.len();
    }

    let mut finish_time = vec![0u64; g.len()];
    let mut finished = vec![false; g.len()];
    let mut ready: Vec<usize> = Vec::new();
    let mut slots = Vec::new();

    // Seed with sources; propagate through non-op nodes immediately.
    let mut resolve_queue: Vec<usize> =
        (0..g.len()).filter(|&i| unfinished_preds[i] == 0).collect();
    let mut proc_free = vec![0u64; n_processors];
    let mut pending: Vec<(u64, usize)> = Vec::new(); // (finish, node)

    // Helper: mark node finished at time t, release successors.
    fn finish_node(
        i: usize,
        t: u64,
        succs: &[Vec<usize>],
        unfinished_preds: &mut [usize],
        finish_time: &mut [u64],
        finished: &mut [bool],
        resolve_queue: &mut Vec<usize>,
    ) {
        finished[i] = true;
        finish_time[i] = t;
        for &s in &succs[i] {
            unfinished_preds[s] -= 1;
            if unfinished_preds[s] == 0 {
                resolve_queue.push(s);
            }
        }
    }

    let mut now = 0u64;
    loop {
        // Resolve all zero-latency nodes whose preds are done.
        while let Some(i) = resolve_queue.pop() {
            let n = g.node(NodeId(i));
            let ready_at = n.preds.iter().map(|p| finish_time[p.0]).max().unwrap_or(0);
            if n.kind.is_operation() {
                ready.push(i);
                // Stash readiness time in finish_time until scheduled.
                finish_time[i] = ready_at;
            } else {
                finish_node(
                    i,
                    ready_at,
                    &succs,
                    &mut unfinished_preds,
                    &mut finish_time,
                    &mut finished,
                    &mut resolve_queue,
                );
            }
        }

        if ready.is_empty() && pending.is_empty() {
            break;
        }

        // Schedule ready ops (whose data is available by `now`) onto free
        // processors, highest priority first.
        ready.sort_by_key(|&i| std::cmp::Reverse(priority[i]));
        let mut still_ready = Vec::new();
        for &i in ready.iter() {
            let data_ready = finish_time[i] <= now;
            let proc = (0..n_processors).find(|&p| proc_free[p] <= now);
            match (data_ready, proc) {
                (true, Some(p)) => {
                    let lat = model.latency(&g.node(NodeId(i)).kind);
                    slots.push(Slot {
                        node: NodeId(i),
                        start: now,
                        processor: p,
                    });
                    proc_free[p] = now + lat;
                    pending.push((now + lat, i));
                }
                _ => still_ready.push(i),
            }
        }
        ready = still_ready;

        // Advance time to the next completion (or next cycle if nothing is
        // in flight but data isn't ready yet — cannot happen with integer
        // readiness times, but guard anyway).
        if let Some(&(t, _)) = pending.iter().min_by_key(|&&(t, _)| t) {
            now = now.max(t);
            let (done, rest): (Vec<_>, Vec<_>) = pending.into_iter().partition(|&(t, _)| t <= now);
            pending = rest;
            for (t, i) in done {
                finish_node(
                    i,
                    t,
                    &succs,
                    &mut unfinished_preds,
                    &mut finish_time,
                    &mut finished,
                    &mut resolve_queue,
                );
            }
        } else if !ready.is_empty() {
            now += 1;
        }
    }

    let length = slots
        .iter()
        .map(|s| s.start + model.latency(&g.node(s.node).kind))
        .max()
        .unwrap_or(0);
    Ok(Schedule {
        length,
        processors: n_processors,
        slots,
    })
}

/// Schedule lengths and speedups for `1..=max_processors`.
///
/// Returns `(lengths, speedups)` where `speedups[n-1] =
/// lengths[0] / lengths[n-1]`.
///
/// # Errors
///
/// Propagates [`ScheduleError`] from the underlying schedules.
pub fn speedup_curve(
    g: &Dfg,
    max_processors: usize,
    model: &ProcessorModel,
) -> Result<(Vec<u64>, Vec<f64>), ScheduleError> {
    let mut lengths: Vec<u64> = Vec::with_capacity(max_processors);
    for n in 1..=max_processors {
        lengths.push(list_schedule(g, n, model)?.length);
    }
    let speedups = lengths
        .iter()
        .map(|&l| lengths[0] as f64 / l as f64)
        .collect();
    Ok((lengths, speedups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_dfg::build;
    use lintra_linsys::{unfold, StateSpace};
    use lintra_matrix::Matrix;

    fn dense(p: usize, q: usize, r: usize) -> StateSpace {
        let f = |i: usize, j: usize| 0.21 + 0.011 * i as f64 + 0.0077 * j as f64;
        StateSpace::new(
            Matrix::from_fn(r, r, f).scale(0.25),
            Matrix::from_fn(r, p, f),
            Matrix::from_fn(q, r, f),
            Matrix::from_fn(q, p, f),
        )
        .unwrap()
    }

    #[test]
    fn single_processor_length_equals_total_work() {
        let g = build::from_state_space(&dense(1, 1, 4)).unwrap();
        let m = ProcessorModel::unit();
        let s = list_schedule(&g, 1, &m).unwrap();
        assert_eq!(s.length, m.total_work(&g));
        s.validate(&g, &m).unwrap();
    }

    #[test]
    fn more_processors_never_hurt() {
        let g = build::from_unfolded(&unfold(&dense(1, 1, 5), 4).unwrap()).unwrap();
        let m = ProcessorModel::unit();
        let (lengths, speedups) = speedup_curve(&g, 8, &m).unwrap();
        for w in lengths.windows(2) {
            assert!(w[1] <= w[0], "lengths {lengths:?}");
        }
        assert!(speedups[7] >= speedups[0]);
    }

    #[test]
    fn schedules_are_valid_for_all_processor_counts() {
        let g = build::from_unfolded(&unfold(&dense(2, 1, 3), 3).unwrap()).unwrap();
        for m in [ProcessorModel::unit(), ProcessorModel::dsp()] {
            for n in 1..=6 {
                let s = list_schedule(&g, n, &m).unwrap();
                s.validate(&g, &m).unwrap_or_else(|e| panic!("n={n}: {e}"));
            }
        }
    }

    #[test]
    fn length_bounded_below_by_work_and_critical_path() {
        let g = build::from_unfolded(&unfold(&dense(1, 1, 4), 5).unwrap()).unwrap();
        let m = ProcessorModel::unit();
        let work = m.total_work(&g);
        for n in 1..=6u64 {
            let s = list_schedule(&g, n as usize, &m).unwrap();
            assert!(s.length >= work.div_ceil(n), "work bound violated at n={n}");
        }
    }

    #[test]
    fn linear_speedup_up_to_r_processors() {
        // The paper's §4 claim: S(N, i_opt) is (at least nearly) linear for
        // N <= R on unfolded dense computations.
        let r = 4;
        let sys = dense(1, 1, r);
        let g = build::from_unfolded(&unfold(&sys, 5).unwrap()).unwrap();
        let m = ProcessorModel::unit();
        let (_, speedups) = speedup_curve(&g, r, &m).unwrap();
        for (idx, &s) in speedups.iter().enumerate() {
            let n = (idx + 1) as f64;
            assert!(
                s >= 0.9 * n,
                "speedup at N={n} is {s}, expected near-linear ({speedups:?})"
            );
        }
    }

    #[test]
    fn unbounded_processors_hit_critical_path() {
        let sys = dense(1, 1, 3);
        let g = build::from_state_space(&sys).unwrap();
        let m = ProcessorModel::unit();
        let s = list_schedule(&g, 64, &m).unwrap();
        // With unlimited resources the makespan is the graph depth in
        // cycles: mul (1) + tree adds.
        let t = lintra_dfg::OpTiming {
            t_mul: 1.0,
            t_add: 1.0,
            t_shift: 1.0,
        };
        assert_eq!(s.length as f64, g.critical_path(&t));
    }

    #[test]
    fn dsp_model_weights_multiplies() {
        let g = build::from_state_space(&dense(1, 1, 2)).unwrap();
        let unit = list_schedule(&g, 1, &ProcessorModel::unit())
            .unwrap()
            .length;
        let dsp = list_schedule(&g, 1, &ProcessorModel::dsp()).unwrap().length;
        let muls = g.op_counts().muls;
        assert_eq!(dsp, unit + muls);
    }

    #[test]
    fn zero_processors_is_a_typed_error() {
        let g = build::from_state_space(&dense(1, 1, 2)).unwrap();
        let m = ProcessorModel::unit();
        assert_eq!(
            list_schedule(&g, 0, &m).unwrap_err(),
            ScheduleError::NoProcessors
        );
        assert!(speedup_curve(&g, 0, &m).unwrap().0.is_empty());
    }

    #[test]
    fn validator_catches_conflicts() {
        let g = build::from_state_space(&dense(1, 1, 2)).unwrap();
        let m = ProcessorModel::unit();
        let mut s = list_schedule(&g, 2, &m).unwrap();
        // Force two ops onto processor 0 at the same start.
        if s.slots.len() >= 2 {
            let start = s.slots[0].start;
            s.slots[1].start = start;
            s.slots[1].processor = s.slots[0].processor;
            assert!(s.validate(&g, &m).is_err());
        }
    }
}

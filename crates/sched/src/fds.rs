//! Force-directed scheduling (Paulin & Knight): time-constrained
//! scheduling that minimizes functional-unit usage.
//!
//! The §4 list scheduler answers "how fast with N processors?"; this module
//! answers the dual high-level-synthesis question the paper's ASIC flow
//! implies: "how little hardware for a given latency?". Operations are
//! typed (multiplier vs ALU), every operation gets a mobility interval
//! `[ASAP, ALAP]` under the latency constraint, and assignments are chosen
//! one at a time to flatten the expected-concurrency *distribution graphs*
//! (minimum-force rule).

use crate::ProcessorModel;
use lintra_dfg::{Dfg, NodeKind};
use std::fmt;

/// Functional-unit classes for typed resource counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// Array multiplier.
    Multiplier,
    /// Adder/subtractor/shifter ALU.
    Alu,
}

/// Classifies an operation node; `None` for non-operations.
pub fn unit_class(kind: &NodeKind) -> Option<UnitClass> {
    match kind {
        NodeKind::MulConst(_) => Some(UnitClass::Multiplier),
        NodeKind::Add | NodeKind::Sub | NodeKind::Shift(_) => Some(UnitClass::Alu),
        _ => None,
    }
}

/// Error from [`force_directed_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdsError {
    /// The latency constraint is below the critical path.
    Infeasible {
        /// Requested latency in cycles.
        latency: u64,
        /// Minimum feasible latency (critical path).
        critical_path: u64,
    },
}

impl fmt::Display for FdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdsError::Infeasible {
                latency,
                critical_path,
            } => write!(
                f,
                "latency {latency} is below the critical path {critical_path}"
            ),
        }
    }
}

impl std::error::Error for FdsError {}

/// A time-constrained schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FdsSchedule {
    /// Start cycle per node (`None` for non-operations).
    pub start: Vec<Option<u64>>,
    /// Latency constraint the schedule meets.
    pub latency: u64,
    /// Multipliers needed (peak concurrent use).
    pub multipliers: usize,
    /// ALUs needed (peak concurrent use).
    pub alus: usize,
}

impl FdsSchedule {
    /// Validates precedence feasibility against the graph.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, g: &Dfg, model: &ProcessorModel) -> Result<(), String> {
        let mut finish = vec![0u64; g.len()];
        for (id, n) in g.iter() {
            let ready = n.preds.iter().map(|p| finish[p.0]).max().unwrap_or(0);
            match (n.kind.is_operation(), self.start[id.0]) {
                (true, Some(s)) => {
                    if s < ready {
                        return Err(format!("node {} starts {s} before ready {ready}", id.0));
                    }
                    finish[id.0] = s + model.latency(&n.kind);
                    if finish[id.0] > self.latency {
                        return Err(format!("node {} finishes past the latency bound", id.0));
                    }
                }
                (true, None) => return Err(format!("operation {} unscheduled", id.0)),
                (false, _) => finish[id.0] = ready,
            }
        }
        Ok(())
    }
}

/// ASAP start times (operations only), with op latencies from `model`.
fn asap_times(g: &Dfg, model: &ProcessorModel) -> (Vec<u64>, u64) {
    let mut finish = vec![0u64; g.len()];
    let mut start = vec![0u64; g.len()];
    let mut makespan = 0;
    for (id, n) in g.iter() {
        let ready = n.preds.iter().map(|p| finish[p.0]).max().unwrap_or(0);
        start[id.0] = ready;
        finish[id.0] = ready + model.latency(&n.kind);
        makespan = makespan.max(finish[id.0]);
    }
    (start, makespan)
}

/// ALAP start times for a given latency bound.
fn alap_times(g: &Dfg, model: &ProcessorModel, latency: u64) -> Vec<u64> {
    let n = g.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in g.iter() {
        for p in &node.preds {
            succs[p.0].push(id.0);
        }
    }
    // Latest finish allowed per node, then start = finish - latency.
    let mut lf = vec![latency; n];
    let mut start = vec![0u64; n];
    for i in (0..n).rev() {
        let node = g.node(lintra_dfg::NodeId(i));
        let own = model.latency(&node.kind);
        for &s in &succs[i] {
            let s_node = g.node(lintra_dfg::NodeId(s));
            let s_start = lf[s] - model.latency(&s_node.kind);
            lf[i] = lf[i].min(s_start);
        }
        start[i] = lf[i].saturating_sub(own);
    }
    start
}

/// Force-directed scheduling under a latency constraint (in cycles of the
/// given processor model).
///
/// # Errors
///
/// Returns [`FdsError::Infeasible`] when `latency` is below the graph's
/// critical path.
pub fn force_directed_schedule(
    g: &Dfg,
    model: &ProcessorModel,
    latency: u64,
) -> Result<FdsSchedule, FdsError> {
    let (asap, critical_path) = asap_times(g, model);
    if latency < critical_path {
        return Err(FdsError::Infeasible {
            latency,
            critical_path,
        });
    }
    let alap = alap_times(g, model, latency);

    let n = g.len();
    let mut lo = asap.clone();
    let mut hi = alap.clone();
    let mut fixed: Vec<Option<u64>> = vec![None; n];

    let ops: Vec<usize> = g
        .iter()
        .filter(|(_, node)| node.kind.is_operation())
        .map(|(id, _)| id.0)
        .collect();

    // Distribution graph: expected concurrency per (class, cycle).
    let lat_usize = latency as usize;
    let horizon = lat_usize.max(1);
    let dg = |class: UnitClass, lo: &[u64], hi: &[u64], g: &Dfg, model: &ProcessorModel| {
        let mut d = vec![0.0_f64; horizon];
        for &i in &ops {
            let node = g.node(lintra_dfg::NodeId(i));
            if unit_class(&node.kind) != Some(class) {
                continue;
            }
            let l = model.latency(&node.kind).max(1);
            let width = (hi[i] - lo[i] + 1) as f64;
            for s in lo[i]..=hi[i] {
                for c in s..s + l {
                    if (c as usize) < horizon {
                        d[c as usize] += 1.0 / width;
                    }
                }
            }
        }
        d
    };

    loop {
        // Most constrained unscheduled op first (smallest mobility).
        let next = ops
            .iter()
            .copied()
            .filter(|&i| fixed[i].is_none())
            .min_by_key(|&i| (hi[i] - lo[i], i));
        let Some(i) = next else { break };
        let node = g.node(lintra_dfg::NodeId(i));
        // `ops` only contains operation nodes, which always classify.
        let Some(class) = unit_class(&node.kind) else {
            continue;
        };
        let l = model.latency(&node.kind).max(1);

        // Pick the start time with the lowest self force.
        let d = dg(class, &lo, &hi, g, model);
        let width = (hi[i] - lo[i] + 1) as f64;
        let mut best_t = lo[i];
        let mut best_force = f64::INFINITY;
        for t in lo[i]..=hi[i] {
            // Force of committing to t: added load at [t, t+l) minus the
            // average load the op already contributed across its window.
            let mut force = 0.0;
            for c in t..t + l {
                if (c as usize) < horizon {
                    force += d[c as usize] - 1.0 / width;
                }
            }
            if force < best_force - 1e-12 {
                best_force = force;
                best_t = t;
            }
        }

        fixed[i] = Some(best_t);
        lo[i] = best_t;
        hi[i] = best_t;

        // Propagate the tightened interval (forward and backward).
        propagate(g, model, &mut lo, &mut hi);
    }

    // Peak typed usage.
    let mut mult_use = vec![0usize; horizon];
    let mut alu_use = vec![0usize; horizon];
    for &i in &ops {
        let node = g.node(lintra_dfg::NodeId(i));
        let l = model.latency(&node.kind).max(1);
        // The loop above fixes every op; an unfixed op contributes nothing.
        let (Some(s), Some(class)) = (fixed[i], unit_class(&node.kind)) else {
            continue;
        };
        for c in s..s + l {
            if (c as usize) < horizon {
                match class {
                    UnitClass::Multiplier => mult_use[c as usize] += 1,
                    UnitClass::Alu => alu_use[c as usize] += 1,
                }
            }
        }
    }
    let start = (0..n)
        .map(|i| {
            if g.node(lintra_dfg::NodeId(i)).kind.is_operation() {
                fixed[i]
            } else {
                None
            }
        })
        .collect();
    Ok(FdsSchedule {
        start,
        latency,
        multipliers: mult_use.into_iter().max().unwrap_or(0),
        alus: alu_use.into_iter().max().unwrap_or(0),
    })
}

/// Restores interval consistency after fixing one op: every op must start
/// after its predecessors can finish and early enough for its successors.
fn propagate(g: &Dfg, model: &ProcessorModel, lo: &mut [u64], hi: &mut [u64]) {
    // Forward: lo[i] >= max(lo[pred] + latency(pred)).
    for (id, n) in g.iter() {
        for p in &n.preds {
            let pl = model.latency(&g.node(*p).kind);
            let bound = lo[p.0] + pl;
            if lo[id.0] < bound {
                lo[id.0] = bound;
            }
        }
    }
    // Backward: hi[p] + latency(p) <= hi[i] for each edge p -> i... i.e.
    // hi[p] <= hi[i] - latency(p).
    let ids: Vec<usize> = (0..g.len()).rev().collect();
    for i in ids {
        let n = g.node(lintra_dfg::NodeId(i));
        for p in &n.preds {
            let pl = model.latency(&g.node(*p).kind);
            let bound = hi[i].saturating_sub(pl);
            if hi[p.0] > bound {
                hi[p.0] = bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_dfg::build;
    use lintra_linsys::{unfold, StateSpace};
    use lintra_matrix::Matrix;

    fn dense(r: usize) -> StateSpace {
        let f = |i: usize, j: usize| 0.31 + 0.011 * i as f64 + 0.0073 * j as f64;
        StateSpace::new(
            Matrix::from_fn(r, r, f).scale(0.25),
            Matrix::from_fn(r, 1, f),
            Matrix::from_fn(1, r, f),
            Matrix::from_fn(1, 1, f),
        )
        .unwrap()
    }

    #[test]
    fn infeasible_latency_rejected() {
        let g = build::from_state_space(&dense(3)).unwrap();
        let m = ProcessorModel::unit();
        let err = force_directed_schedule(&g, &m, 1).unwrap_err();
        assert!(matches!(err, FdsError::Infeasible { .. }));
    }

    #[test]
    fn schedules_are_valid_at_various_latencies() {
        let g = build::from_state_space(&dense(4)).unwrap();
        let m = ProcessorModel::unit();
        let (_, cp) = asap_times(&g, &m);
        for slack in [0u64, 2, 5, 10] {
            let s = force_directed_schedule(&g, &m, cp + slack).unwrap();
            s.validate(&g, &m)
                .unwrap_or_else(|e| panic!("slack {slack}: {e}"));
        }
    }

    #[test]
    fn more_latency_never_needs_more_hardware() {
        let g = build::from_unfolded(&unfold(&dense(3), 2).unwrap()).unwrap();
        let m = ProcessorModel::unit();
        let (_, cp) = asap_times(&g, &m);
        let tight = force_directed_schedule(&g, &m, cp).unwrap();
        let loose = force_directed_schedule(&g, &m, 2 * cp).unwrap();
        assert!(loose.multipliers <= tight.multipliers);
        assert!(loose.alus <= tight.alus);
    }

    #[test]
    fn fds_beats_asap_resource_usage() {
        // ASAP piles every multiplication into the first cycle; FDS with
        // slack spreads them out.
        let g = build::from_state_space(&dense(5)).unwrap();
        let m = ProcessorModel::unit();
        let (asap, cp) = asap_times(&g, &m);
        // ASAP peak multiplier usage.
        let mut usage = std::collections::HashMap::new();
        for (id, n) in g.iter() {
            if matches!(n.kind, NodeKind::MulConst(_)) {
                *usage.entry(asap[id.0]).or_insert(0usize) += 1;
            }
        }
        let asap_peak = usage.values().copied().max().unwrap_or(0);
        let fds = force_directed_schedule(&g, &m, 2 * cp).unwrap();
        assert!(
            fds.multipliers < asap_peak,
            "fds {} vs asap {asap_peak}",
            fds.multipliers
        );
    }

    #[test]
    fn resource_usage_meets_work_lower_bound() {
        let g = build::from_state_space(&dense(4)).unwrap();
        let m = ProcessorModel::unit();
        let (_, cp) = asap_times(&g, &m);
        let latency = cp + 4;
        let s = force_directed_schedule(&g, &m, latency).unwrap();
        let muls = g.op_counts().muls;
        let bound = muls.div_ceil(latency) as usize;
        assert!(s.multipliers >= bound);
    }

    #[test]
    fn dsp_model_multicycle_multiplies_fit() {
        let g = build::from_state_space(&dense(3)).unwrap();
        let m = ProcessorModel::dsp();
        let (_, cp) = asap_times(&g, &m);
        let s = force_directed_schedule(&g, &m, cp + 3).unwrap();
        s.validate(&g, &m).unwrap();
        assert!(s.multipliers >= 1);
    }

    /// Peak concurrent unit usage recomputed from the start times — the
    /// oracle the reported `multipliers`/`alus` fields are checked
    /// against.
    fn peak_usage(g: &Dfg, m: &ProcessorModel, s: &FdsSchedule) -> (usize, usize) {
        let mut mul = std::collections::HashMap::new();
        let mut alu = std::collections::HashMap::new();
        for (id, n) in g.iter() {
            let Some(start) = s.start[id.0] else { continue };
            let per_cycle = match unit_class(&n.kind) {
                Some(UnitClass::Multiplier) => &mut mul,
                Some(UnitClass::Alu) => &mut alu,
                None => continue,
            };
            for c in start..start + m.latency(&n.kind) {
                *per_cycle.entry(c).or_insert(0usize) += 1;
            }
        }
        (
            mul.values().copied().max().unwrap_or(0),
            alu.values().copied().max().unwrap_or(0),
        )
    }

    #[test]
    fn concurrent_invocations_stay_valid_and_deterministic() {
        // The sweep engine runs FDS on shared graphs from several worker
        // threads at once. The scheduler holds no global state, so every
        // concurrent result must (a) validate, (b) report resource peaks
        // that match a recount from its own start times, and (c) be
        // identical across threads and to the single-threaded baseline.
        let g = build::from_unfolded(&unfold(&dense(4), 3).unwrap()).unwrap();
        let m = ProcessorModel::unit();
        let (_, cp) = asap_times(&g, &m);
        let latencies: Vec<u64> = (0..8).map(|k| cp + k).collect();

        let baseline: Vec<FdsSchedule> = latencies
            .iter()
            .map(|&l| force_directed_schedule(&g, &m, l).unwrap())
            .collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (g, m, latencies) = (&g, &m, &latencies);
                    scope.spawn(move || {
                        latencies
                            .iter()
                            .map(|&l| force_directed_schedule(g, m, l).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                let got = h.join().expect("scheduler thread must not panic");
                assert_eq!(got, baseline, "concurrent schedule diverged");
                for (s, &l) in got.iter().zip(&latencies) {
                    s.validate(&g, &m)
                        .unwrap_or_else(|e| panic!("latency {l}: {e}"));
                    let (mul, alu) = peak_usage(&g, &m, s);
                    assert_eq!((s.multipliers, s.alus), (mul, alu), "latency {l} peaks");
                }
            }
        });
    }
}

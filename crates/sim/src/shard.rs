//! Sharded-cluster simulation: a deterministic, single-threaded model
//! of the `lintra route` front end over M replicated shard groups.
//!
//! The router model is *not* a reimplementation of the routing math —
//! it runs the real [`ShardRing`], the real [`RetryBudget`] arithmetic,
//! and the real [`routing_key`] precedence, while the shard groups are
//! the same [`SimNode`] replication model the cluster simulation
//! drives. What this harness adds is the failure surface the threaded
//! router cannot schedule deterministically: a shard blackout racing a
//! hedge, a retry landing during a failover, the budget draining while
//! a breaker is half-open.
//!
//! Machine-checked invariants, audited after **every** event:
//!
//! - **R1 (partial degradation)**: while one shard is blacked out,
//!   every request whose key routes to a *healthy* shard still settles
//!   before the heal barrier — an outage never spreads across the ring.
//! - **R2 (retry budget)**: total retry + hedge volume never exceeds
//!   the budget bound `cap + requests × ratio`, even during a blackout
//!   when every attempt is failing. [`RouterSimBug::UnboundedRetries`]
//!   re-introduces the retry-storm bug this invariant exists to catch.
//! - **R3 (no double execution)**: a journaled `request_id` is never
//!   executed twice — not by a hedge, not by a duplicate — on any node
//!   of its group, except across an explicit failover replay (the
//!   documented at-least-once caveat the real cluster shares).
//! - **R4 (re-convergence)**: once faults stop, every shard group ends
//!   with exactly one unfenced primary, every key — including the
//!   blacked-out shard's and the post-heal probes — settles, and
//!   settled keys answer byte-identically across retries.
//!
//! A run is a pure function of `(seed, ShardSimConfig)`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use lintra::matrix::rng::SplitMix64;
use lintra::ErrorClass;
use lintra_bench::wire::{WireFailure, WireOp, WireRequest, WireResponse};
use lintra_serve::replicate::{ReplMsg, Role};
use lintra_serve::router::{routing_key, RetryBudget, ShardRing};

use crate::cluster::{NodeTimer, Out, SimNode};
use crate::SimBug;

/// Sentinel incarnation for deliveries to the router or a client
/// (neither crashes, so the staleness check never fires for them).
const CLIENT_INC: u64 = u64::MAX;

/// Hard ceiling on processed events: a scheduling bug must fail the
/// run, not hang the test suite.
const MAX_EVENTS: u64 = 2_000_000;

/// Stop collecting after this many violations; one broken invariant
/// tends to echo.
const MAX_VIOLATIONS: usize = 32;

/// Consecutive attempt failures before a shard's breaker opens.
const BREAKER_THRESHOLD: u64 = 3;

/// Deliberately re-introducible router bugs; each must be caught by an
/// invariant under a checked-in regression seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterSimBug {
    /// The faithful router model.
    #[default]
    None,
    /// A router with no backpressure: retries and hedges never consult
    /// the retry budget and the breaker never opens, so a dead shard
    /// turns every timeout into a retry storm — the amplification
    /// failure invariant R2 exists to catch.
    UnboundedRetries,
}

/// The scripted outage for one run. Faults land at 1/8 of the run and
/// heal at the 3/5 barrier, after which full convergence is demanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardScenario {
    /// No faults: a smoke run over the happy path.
    #[default]
    None,
    /// Kill one shard group's primary. The follower must promote, the
    /// router must converge onto it, and *every* key — this group's
    /// included — must settle before the heal barrier (R1 with an
    /// empty affected set).
    PrimaryCrash {
        /// Group index, wrapped modulo the group count.
        group: usize,
    },
    /// Kill every replica of one shard group. Its keys degrade to
    /// `RES-SHARD-DOWN` while other shards keep serving (R1), and they
    /// settle after the heal (R4).
    Blackout {
        /// Group index, wrapped modulo the group count.
        group: usize,
    },
}

/// Everything that parameterizes a sharded run. All times are virtual
/// milliseconds.
#[derive(Debug, Clone)]
pub struct ShardSimConfig {
    /// Shard groups on the ring.
    pub groups: usize,
    /// Replicas per group; node 0 starts as the group's primary.
    pub nodes_per_group: usize,
    /// Concurrent clients, all talking to the router.
    pub clients: usize,
    /// Keyed requests each client works through.
    pub requests_per_client: usize,
    /// Total virtual run length.
    pub sim_ms: u64,
    /// Node housekeeping cadence.
    pub tick_ms: u64,
    /// Follower silence tolerance before arbitration.
    pub grace_ms: u64,
    /// Virtual cost of executing one request.
    pub exec_ms: u64,
    /// Base one-way message latency.
    pub net_ms: u64,
    /// Additional random per-message latency (uniform, exclusive).
    pub jitter_ms: u64,
    /// Message loss rate, per mille, until the heal barrier.
    pub drop_permille: u64,
    /// Client patience before re-sending the current key.
    pub client_timeout_ms: u64,
    /// Router patience per forwarded attempt.
    pub router_timeout_ms: u64,
    /// Hedge delay (the real router derives this from its P99 tracker;
    /// the sim pins it so runs are comparable across seeds).
    pub hedge_ms: u64,
    /// Router health-probe cadence (`ReplMsg::Status` per endpoint; a
    /// `primary` reply re-aims the shard cursor, like the real prober).
    pub probe_ms: u64,
    /// How long an open shard breaker blocks before admitting a probe.
    pub breaker_cooldown_ms: u64,
    /// Retry budget deposit per request, in milli-tokens (100 = 10%).
    pub retry_ratio_milli: u64,
    /// Retry budget bank cap, in whole retries.
    pub retry_cap: u64,
    /// Per-request retry ceiling (budget permitting).
    pub max_retries: u64,
    /// Virtual vnodes per shard on the ring.
    pub vnodes: usize,
    /// The scripted outage.
    pub scenario: ShardScenario,
    /// The injected router bug, if any.
    pub bug: RouterSimBug,
}

impl Default for ShardSimConfig {
    fn default() -> ShardSimConfig {
        ShardSimConfig {
            groups: 3,
            nodes_per_group: 2,
            clients: 3,
            requests_per_client: 4,
            sim_ms: 8000,
            tick_ms: 50,
            grace_ms: 300,
            exec_ms: 40,
            net_ms: 5,
            jitter_ms: 10,
            drop_permille: 10,
            client_timeout_ms: 400,
            router_timeout_ms: 250,
            hedge_ms: 120,
            probe_ms: 250,
            breaker_cooldown_ms: 500,
            retry_ratio_milli: 100,
            retry_cap: 8,
            max_retries: 2,
            vnodes: 16,
            scenario: ShardScenario::None,
            bug: RouterSimBug::None,
        }
    }
}

/// What one sharded run produced. Bit-reproducible from
/// `(seed, config)`, trace lines included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Events processed.
    pub events: u64,
    /// Terminal responses clients received.
    pub answered: u64,
    /// Distinct `request_id`s settled.
    pub settled: u64,
    /// Requests the router admitted (deposits into the budget).
    pub requests: u64,
    /// Requests forwarded to a terminal backend answer.
    pub forwarded: u64,
    /// Retries the router issued (withdrawals from the budget).
    pub retries: u64,
    /// Hedged duplicates the router issued (also budget withdrawals).
    pub hedges: u64,
    /// Requests shed with `RES-RETRY-BUDGET`.
    pub shed: u64,
    /// Requests answered `RES-SHARD-DOWN` (breaker or exhausted walk).
    pub shard_down: u64,
    /// Follower promotions across all groups.
    pub promotions: u64,
    /// Fencing transitions across all groups.
    pub fences: u64,
    /// Invariant violations, in detection order. Empty means PASS.
    pub violations: Vec<String>,
    /// Compact fault/role/violation schedule with virtual timestamps.
    pub trace: Vec<String>,
}

impl ShardSimReport {
    /// True when every invariant held for the whole run.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The failure artifact: seed plus the compact schedule trace.
    pub fn repro(&self) -> String {
        let mut out = format!(
            "shard sim seed {} ({} events, {} retries, {} hedges, {} shed, {} shard-down)\n",
            self.seed, self.events, self.retries, self.hedges, self.shed, self.shard_down
        );
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        for v in &self.violations {
            out.push_str("VIOLATION ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// Runs one sharded simulation to completion under virtual time.
pub fn run_shard_sim(seed: u64, config: &ShardSimConfig) -> ShardSimReport {
    let mut h = ShardHarness::new(seed, config);
    h.setup();
    h.run_loop();
    h.report()
}

#[derive(Debug)]
enum Ev {
    NodeTick {
        node: usize,
        inc: u64,
    },
    NodeTimer {
        node: usize,
        inc: u64,
        timer: NodeTimer,
    },
    Deliver {
        from: String,
        to: String,
        to_inc: u64,
        line: String,
    },
    /// Client resend of its current key (timeout or shed backoff).
    ClientRetry {
        client: usize,
        token: u64,
    },
    /// A forwarded attempt went unanswered.
    RouterTimeout {
        id: u64,
        token: u64,
    },
    /// The hedge delay elapsed with no answer yet.
    RouterHedge {
        id: u64,
    },
    /// Backoff after `RES-DUPLICATE-REQUEST`: re-ask; the journal will
    /// serve the settled answer byte-identically.
    RouterAskAgain {
        id: u64,
        token: u64,
    },
    /// The router's periodic health probe of every shard endpoint.
    RouterProbe,
    Fault(FaultEv),
    End,
}

#[derive(Debug, Clone)]
enum FaultEv {
    Crash(usize),
    HealAll,
}

struct Scheduled {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One simulated client: works through its keys in order, but rotates
/// a key to the back of the queue when the router reports its shard
/// degraded — other work continues while one shard is down.
struct ShardClient {
    name: String,
    queue: Vec<String>,
    token: u64,
    waiting: bool,
}

/// One in-flight request inside the router model.
struct Pending {
    id: u64,
    /// The wire envelope id responses correlate on (clients set it to
    /// their idempotency key, like the real client does).
    rid: String,
    line: String,
    client: String,
    group: usize,
    /// Endpoint offset past the group cursor for the current copy.
    walk: usize,
    /// Redirect hops within the current attempt (capped at group size).
    redirects: usize,
    retries: u64,
    hedged: bool,
    /// Attempt guard: stale timeouts carry an older token.
    token: u64,
}

/// Per-group breaker state, the sim's equivalent of the real router's
/// per-shard [`CircuitBreaker`](lintra_serve::CircuitBreaker).
#[derive(Clone, Copy, Default)]
struct GroupHealth {
    consec_fail: u64,
    open_until: u64,
}

struct Stats {
    requests: u64,
    forwarded: u64,
    retries: u64,
    hedges: u64,
    shed: u64,
    shard_down: u64,
}

struct ShardHarness<'a> {
    cfg: &'a ShardSimConfig,
    seed: u64,
    groups: usize,
    npg: usize,
    nodes: Vec<SimNode>,
    node_addrs: Vec<String>,
    clients: Vec<ShardClient>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: u64,
    rng: SplitMix64,
    drop_permille: u64,
    ring: ShardRing,
    budget: RetryBudget,
    budget_cap_milli: u64,
    cursors: Vec<usize>,
    health: Vec<GroupHealth>,
    pending: Vec<Pending>,
    next_id: u64,
    next_token: u64,
    stats: Stats,
    /// First terminal response line per rid: the byte-identity oracle.
    settled: HashMap<String, String>,
    answered: u64,
    /// Every key any client will ever work through (probes included).
    all_work: Vec<String>,
    /// Groups the scenario takes down wholesale (R1 exempts their keys
    /// from the settle-by-heal demand).
    affected: HashSet<usize>,
    violations: Vec<String>,
    seen_violations: HashSet<String>,
    trace: Vec<String>,
    events: u64,
}

impl<'a> ShardHarness<'a> {
    fn new(seed: u64, cfg: &'a ShardSimConfig) -> ShardHarness<'a> {
        let groups = cfg.groups.max(1);
        let npg = cfg.nodes_per_group.max(1);
        let mut nodes = Vec::with_capacity(groups * npg);
        let mut node_addrs = Vec::with_capacity(groups * npg);
        for g in 0..groups {
            let cluster: Vec<String> = (0..npg).map(|i| format!("s{g}n{i}")).collect();
            for i in 0..npg {
                let replica_of = (i != 0).then(|| cluster[0].clone());
                nodes.push(SimNode::new(i, cluster.clone(), replica_of));
            }
            node_addrs.extend(cluster);
        }
        let clients: Vec<ShardClient> = (0..cfg.clients)
            .map(|i| ShardClient {
                name: format!("c{i}"),
                queue: (0..cfg.requests_per_client)
                    .map(|j| format!("c{i}-r{j}"))
                    .collect(),
                token: 0,
                waiting: false,
            })
            .collect();
        let all_work = clients.iter().flat_map(|c| c.queue.clone()).collect();
        let affected = match cfg.scenario {
            ShardScenario::Blackout { group } => HashSet::from([group % groups]),
            _ => HashSet::new(),
        };
        ShardHarness {
            cfg,
            seed,
            groups,
            npg,
            nodes,
            node_addrs,
            clients,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            rng: SplitMix64::new(seed ^ 0x5AA2_D0E5_EED1),
            drop_permille: cfg.drop_permille,
            ring: ShardRing::new(groups, cfg.vnodes),
            budget: RetryBudget::new(cfg.retry_ratio_milli, cfg.retry_cap),
            budget_cap_milli: (cfg.retry_cap.saturating_mul(1000)).max(1000),
            cursors: vec![0; groups],
            health: vec![GroupHealth::default(); groups],
            pending: Vec::new(),
            next_id: 0,
            next_token: 0,
            stats: Stats {
                requests: 0,
                forwarded: 0,
                retries: 0,
                hedges: 0,
                shed: 0,
                shard_down: 0,
            },
            settled: HashMap::new(),
            answered: 0,
            all_work,
            affected,
            violations: Vec::new(),
            seen_violations: HashSet::new(),
            trace: Vec::new(),
            events: 0,
        }
    }

    fn setup(&mut self) {
        for i in 0..self.nodes.len() {
            let inc = self.nodes[i].incarnation;
            self.schedule(self.cfg.tick_ms + i as u64, Ev::NodeTick { node: i, inc });
        }
        for ci in 0..self.clients.len() {
            self.client_send(ci);
        }
        self.schedule(self.cfg.probe_ms / 2, Ev::RouterProbe);
        let start = self.cfg.sim_ms / 8;
        let heal = self.cfg.sim_ms * 3 / 5;
        match self.cfg.scenario {
            ShardScenario::None => {}
            ShardScenario::PrimaryCrash { group } => {
                let g = group % self.groups;
                self.schedule(start, Ev::Fault(FaultEv::Crash(g * self.npg)));
            }
            ShardScenario::Blackout { group } => {
                let g = group % self.groups;
                for i in 0..self.npg {
                    self.schedule(start, Ev::Fault(FaultEv::Crash(g * self.npg + i)));
                }
            }
        }
        self.schedule(heal, Ev::Fault(FaultEv::HealAll));
        self.schedule(self.cfg.sim_ms, Ev::End);
    }

    fn run_loop(&mut self) {
        while let Some(Reverse(s)) = self.queue.pop() {
            self.now = s.at;
            self.events += 1;
            let is_end = matches!(s.ev, Ev::End);
            self.handle(s.ev);
            self.check_invariants();
            if is_end || self.violations.len() >= MAX_VIOLATIONS {
                break;
            }
            if self.events >= MAX_EVENTS {
                self.violate("harness: event budget exhausted (runaway schedule)".to_string());
                break;
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::NodeTick { node, inc } => {
                if self.nodes[node].up && self.nodes[node].incarnation == inc {
                    let outs =
                        self.nodes[node].on_tick(self.now, self.cfg.grace_ms, self.cfg.tick_ms * 2);
                    self.process_outs(node, outs);
                    self.schedule(self.now + self.cfg.tick_ms, Ev::NodeTick { node, inc });
                }
            }
            Ev::NodeTimer { node, inc, timer } => {
                if self.nodes[node].up && self.nodes[node].incarnation == inc {
                    let mut outs = Vec::new();
                    match timer {
                        NodeTimer::Exec { rid, reply_to } => {
                            self.nodes[node].on_exec(
                                &rid,
                                &reply_to,
                                self.now,
                                self.cfg.exec_ms,
                                &mut outs,
                            );
                        }
                        NodeTimer::ArbDecide { round } => {
                            self.nodes[node].on_arb_decide(
                                round,
                                self.now,
                                self.cfg.exec_ms,
                                SimBug::None,
                                &mut outs,
                            );
                        }
                    }
                    self.process_outs(node, outs);
                }
            }
            Ev::Deliver {
                from,
                to,
                to_inc,
                line,
            } => {
                if to == "router" {
                    if self.node_index(&from).is_some() {
                        if let Some(ReplMsg::StatusReply { role, .. }) = ReplMsg::parse(&line) {
                            self.router_on_probe_reply(&from, &role);
                        } else {
                            self.router_on_response(&line);
                        }
                    } else if let Some(ci) = self.client_index(&from) {
                        self.router_on_request(ci, &line);
                    }
                } else if let Some(ni) = self.node_index(&to) {
                    if !self.nodes[ni].up || self.nodes[ni].incarnation != to_inc {
                        return; // the connection died with the process
                    }
                    let outs = self.nodes[ni].on_line(
                        &from,
                        &line,
                        self.now,
                        self.cfg.exec_ms,
                        SimBug::None,
                    );
                    self.process_outs(ni, outs);
                } else if let Some(ci) = self.client_index(&to) {
                    self.client_on_line(ci, &line);
                }
            }
            Ev::ClientRetry { client, token } => {
                if self.clients[client].waiting && self.clients[client].token == token {
                    self.client_send(client);
                }
            }
            Ev::RouterTimeout { id, token } => {
                if let Some(idx) = self
                    .pending
                    .iter()
                    .position(|p| p.id == id && p.token == token)
                {
                    self.attempt_failed(idx);
                }
            }
            Ev::RouterHedge { id } => self.maybe_hedge(id),
            Ev::RouterAskAgain { id, token } => {
                if let Some(idx) = self
                    .pending
                    .iter()
                    .position(|p| p.id == id && p.token == token)
                {
                    self.forward(idx);
                }
            }
            Ev::RouterProbe => {
                let probe = ReplMsg::Status.render_line().trim_end().to_string();
                for addr in self.node_addrs.clone() {
                    self.route("router", &addr, &probe);
                }
                self.schedule(self.now + self.cfg.probe_ms, Ev::RouterProbe);
            }
            Ev::Fault(f) => self.handle_fault(f),
            Ev::End => self.check_end(),
        }
    }

    // ---- the router model -------------------------------------------

    /// A probe answered: a serving primary re-aims the shard cursor and
    /// counts as a breaker success, exactly like the real prober — so a
    /// failover converges without sacrificing a live request.
    fn router_on_probe_reply(&mut self, from: &str, role: &str) {
        let Some(ni) = self.node_index(from) else {
            return;
        };
        if role == "primary" {
            let (g, i) = (ni / self.npg, ni % self.npg);
            self.cursors[g] = i;
            self.health[g].consec_fail = 0;
        }
    }

    fn router_on_request(&mut self, ci: usize, line: &str) {
        let client = self.clients[ci].name.clone();
        let req = match WireRequest::parse(line) {
            Ok(req) => req,
            Err(e) => {
                let resp = WireResponse::err(
                    "",
                    failure(ErrorClass::Validation, "VAL-MALFORMED-REQUEST", e),
                );
                self.reply_to_client(&client, &resp.render_line());
                return;
            }
        };
        self.stats.requests += 1;
        self.budget.on_request();
        let key = routing_key(&req);
        let Some(group) = self.ring.shard_of(&key) else {
            let resp = WireResponse::err(
                req.id,
                failure(ErrorClass::Validation, "VAL-CONFIG", "empty shard ring"),
            );
            self.reply_to_client(&client, &resp.render_line());
            return;
        };
        // A resend of a key the router is already working on attaches
        // to the existing slot instead of double-forwarding (the real
        // router serves each connection independently; the journal
        // dedups — here one reply to the one client suffices).
        if let Some(p) = self.pending.iter_mut().find(|p| p.rid == req.id) {
            p.client = client;
            return;
        }
        // Breaker admit: an open shard fast-fails its keys while other
        // shards keep serving — the graceful-degradation contract.
        let h = self.health[group];
        if self.cfg.bug != RouterSimBug::UnboundedRetries
            && h.consec_fail >= BREAKER_THRESHOLD
            && self.now < h.open_until
        {
            self.stats.shard_down += 1;
            let retry_in = h.open_until - self.now;
            let resp = WireResponse::err(
                req.id,
                failure(
                    ErrorClass::Resource,
                    "RES-SHARD-DOWN",
                    format!(
                        "shard {group} is unreachable; next probe in {retry_in} ms — \
                         other shards keep serving"
                    ),
                ),
            );
            self.reply_to_client(&client, &resp.render_line());
            return;
        }
        self.next_id += 1;
        self.pending.push(Pending {
            id: self.next_id,
            rid: req.id.clone(),
            line: line.trim_end().to_string(),
            client,
            group,
            walk: 0,
            redirects: 0,
            retries: 0,
            hedged: false,
            token: 0,
        });
        let idx = self.pending.len() - 1;
        self.forward(idx);
        if self.npg > 1 && req.request_id.is_some() {
            // Hedging is keyed-requests-only, like the real router.
            let id = self.next_id;
            self.schedule(self.now + self.cfg.hedge_ms, Ev::RouterHedge { id });
        }
    }

    /// Sends the current copy of slot `idx` to its next endpoint and
    /// arms the attempt timeout.
    fn forward(&mut self, idx: usize) {
        self.next_token += 1;
        let p = &mut self.pending[idx];
        p.token = self.next_token;
        let endpoint = self.node_addrs
            [p.group * self.npg + (self.cursors[p.group] + p.walk) % self.npg]
            .clone();
        let (id, token, line) = (p.id, p.token, p.line.clone());
        self.route("router", &endpoint, &line);
        self.schedule(
            self.now + self.cfg.router_timeout_ms,
            Ev::RouterTimeout { id, token },
        );
    }

    fn router_on_response(&mut self, line: &str) {
        let Ok(resp) = WireResponse::parse(line) else {
            return;
        };
        let Some(idx) = self.pending.iter().position(|p| p.rid == resp.id) else {
            return; // a straggler for a settled slot (hedge loser)
        };
        let terminal = match &resp.outcome {
            Ok(_) => true,
            Err(f) => f.class == ErrorClass::Numerical,
        };
        if terminal {
            let p = self.pending.swap_remove(idx);
            self.health[p.group].consec_fail = 0;
            self.cursors[p.group] = (self.cursors[p.group] + p.walk) % self.npg;
            self.stats.forwarded += 1;
            self.reply_to_client(&p.client, line);
            return;
        }
        let code = match &resp.outcome {
            Err(f) => f.code.clone(),
            Ok(_) => String::new(),
        };
        match code.as_str() {
            // Redirects name the wrong server: walk the shard's
            // endpoint list without charging the budget, exactly like
            // the real `walk_shard`.
            "RES-NOT-PRIMARY" | "RES-STALE-EPOCH" => {
                let p = &mut self.pending[idx];
                p.walk += 1;
                p.redirects += 1;
                if p.redirects >= self.npg {
                    p.redirects = 0;
                    self.attempt_failed(idx);
                } else {
                    self.forward(idx);
                }
            }
            // Our other copy (or an earlier attempt) is executing
            // there: wait out the execution, then re-ask — the journal
            // serves the settled answer byte-identically.
            "RES-DUPLICATE-REQUEST" => {
                let (id, token) = (self.pending[idx].id, self.pending[idx].token);
                self.schedule(
                    self.now + self.cfg.exec_ms * 2,
                    Ev::RouterAskAgain { id, token },
                );
            }
            _ => self.attempt_failed(idx),
        }
    }

    /// One forwarded attempt failed (timeout, exhausted redirect walk,
    /// or a non-terminal error): feed the breaker, then retry under the
    /// budget, shed, or give up on the shard.
    fn attempt_failed(&mut self, idx: usize) {
        let group = self.pending[idx].group;
        self.health[group].consec_fail += 1;
        if self.health[group].consec_fail >= BREAKER_THRESHOLD {
            self.health[group].open_until = self.now + self.cfg.breaker_cooldown_ms;
        }
        let can_retry = self.pending[idx].retries < self.cfg.max_retries;
        let budget_ok = self.cfg.bug == RouterSimBug::UnboundedRetries
            || (can_retry && self.budget.try_retry());
        if can_retry && budget_ok {
            self.stats.retries += 1;
            let p = &mut self.pending[idx];
            p.retries += 1;
            p.walk += 1;
            p.redirects = 0;
            self.forward(idx);
            return;
        }
        let p = self.pending.swap_remove(idx);
        let (code, message) = if can_retry {
            self.stats.shed += 1;
            (
                "RES-RETRY-BUDGET",
                format!("retry budget exhausted routing `{}`; backing off", p.rid),
            )
        } else {
            self.stats.shard_down += 1;
            (
                "RES-SHARD-DOWN",
                format!("no replica of shard {group} answered for `{}`", p.rid),
            )
        };
        let resp = WireResponse::err(p.rid, failure(ErrorClass::Resource, code, message));
        self.reply_to_client(&p.client, &resp.render_line());
    }

    /// The hedge delay elapsed: if the slot is still unanswered and the
    /// budget allows, race a duplicate copy against the first.
    fn maybe_hedge(&mut self, id: u64) {
        let Some(idx) = self.pending.iter().position(|p| p.id == id) else {
            return;
        };
        if self.pending[idx].hedged {
            return;
        }
        let budget_ok = self.cfg.bug == RouterSimBug::UnboundedRetries || self.budget.try_retry();
        if !budget_ok {
            return; // an empty budget skips the hedge, never the original
        }
        self.stats.hedges += 1;
        let p = &mut self.pending[idx];
        p.hedged = true;
        let offset = p.walk + 1;
        let endpoint = self.node_addrs
            [p.group * self.npg + (self.cursors[p.group] + offset) % self.npg]
            .clone();
        let line = p.line.clone();
        self.route("router", &endpoint, &line);
    }

    fn reply_to_client(&mut self, client: &str, line: &str) {
        let line = line.trim_end().to_string();
        self.route("router", client, &line);
    }

    // ---- clients ----------------------------------------------------

    fn client_send(&mut self, ci: usize) {
        let c = &mut self.clients[ci];
        let Some(rid) = c.queue.first().cloned() else {
            c.waiting = false;
            return;
        };
        c.token += 1;
        c.waiting = true;
        let token = c.token;
        let from = c.name.clone();
        let line = WireRequest::new(rid.clone(), WireOp::Ping)
            .with_request_id(rid)
            .render_line()
            .trim_end()
            .to_string();
        self.route(&from, "router", &line);
        self.schedule(
            self.now + self.cfg.client_timeout_ms,
            Ev::ClientRetry { client: ci, token },
        );
    }

    fn client_on_line(&mut self, ci: usize, line: &str) {
        let Ok(resp) = WireResponse::parse(line) else {
            return;
        };
        let terminal = match &resp.outcome {
            Ok(_) => true,
            Err(f) => f.class == ErrorClass::Numerical,
        };
        if terminal {
            // The byte-identity oracle holds for every terminal answer,
            // current or straggler.
            let got = line.trim_end().to_string();
            match self.settled.get(&resp.id) {
                Some(prev) if *prev != got => {
                    let prev = prev.clone();
                    self.violate(format!(
                        "invariant R4: `{}` answered differently across retries \
                         (first `{prev}`, then `{got}`)",
                        resp.id
                    ));
                }
                Some(_) => {}
                None => {
                    self.settled.insert(resp.id.clone(), got);
                }
            }
            self.answered += 1;
        }
        let c = &self.clients[ci];
        if !c.waiting || c.queue.first() != Some(&resp.id) {
            return; // a straggler for an earlier key
        }
        if terminal {
            self.clients[ci].queue.remove(0);
            self.client_send(ci);
            return;
        }
        let code = match &resp.outcome {
            Err(f) => f.code.clone(),
            Ok(_) => String::new(),
        };
        match code.as_str() {
            // The router says this key's shard is degraded: rotate the
            // key to the back and keep working the rest of the queue —
            // one dead shard must not stall the client's other work.
            "RES-SHARD-DOWN" | "RES-RETRY-BUDGET" => {
                let c = &mut self.clients[ci];
                if c.queue.len() > 1 {
                    let rid = c.queue.remove(0);
                    c.queue.push(rid);
                }
                c.token += 1;
                let token = c.token;
                self.schedule(
                    self.now + self.cfg.client_timeout_ms / 2,
                    Ev::ClientRetry { client: ci, token },
                );
            }
            _ => {
                let c = &mut self.clients[ci];
                c.token += 1;
                let token = c.token;
                self.schedule(
                    self.now + self.cfg.client_timeout_ms / 2,
                    Ev::ClientRetry { client: ci, token },
                );
            }
        }
    }

    // ---- faults and invariants --------------------------------------

    fn handle_fault(&mut self, f: FaultEv) {
        match f {
            FaultEv::Crash(i) => {
                if self.nodes[i].up {
                    self.nodes[i].crash();
                    self.trace.push(format!(
                        "t={}ms fault: crash {}",
                        self.now, self.nodes[i].addr
                    ));
                }
            }
            FaultEv::HealAll => {
                self.drop_permille = 0;
                self.trace.push(format!(
                    "t={}ms fault: heal-all (crashed replicas restart, loss off)",
                    self.now
                ));
                // R1, checked at the barrier: every key owned by a
                // healthy shard settled while the outage was live.
                let work = self.all_work.clone();
                for rid in work {
                    let owner = self.ring.shard_of(&rid);
                    let exempt = owner.is_some_and(|g| self.affected.contains(&g));
                    if !exempt && !self.settled.contains_key(&rid) {
                        self.violate(format!(
                            "invariant R1: healthy-shard request `{rid}` (shard {owner:?}) \
                             did not settle during the outage window"
                        ));
                    }
                }
                for i in 0..self.nodes.len() {
                    if !self.nodes[i].up {
                        let mut outs = Vec::new();
                        self.nodes[i].restart(self.now, self.cfg.exec_ms, &mut outs);
                        self.process_outs(i, outs);
                        let inc = self.nodes[i].incarnation;
                        self.schedule(self.now + self.cfg.tick_ms, Ev::NodeTick { node: i, inc });
                    }
                }
                // Convergence probes: every client completes one more
                // keyed request before the run ends (R4).
                for ci in 0..self.clients.len() {
                    let probe = format!("probe-{}", self.clients[ci].name);
                    self.all_work.push(probe.clone());
                    self.clients[ci].queue.push(probe);
                    if !self.clients[ci].waiting {
                        self.client_send(ci);
                    }
                }
            }
        }
    }

    fn check_end(&mut self) {
        for g in 0..self.groups {
            let primaries = self
                .nodes
                .iter()
                .skip(g * self.npg)
                .take(self.npg)
                .filter(|n| n.up && n.role == Role::Primary && !n.epoch_state.fenced)
                .count();
            if primaries != 1 {
                self.violate(format!(
                    "invariant R4: shard {g} ended with {primaries} unfenced primaries \
                     (want exactly 1)"
                ));
            }
            // R3: a rid executes at most once inside its group unless
            // an explicit failover replayed it.
            let promotions: u64 = self
                .nodes
                .iter()
                .skip(g * self.npg)
                .take(self.npg)
                .map(|n| n.promotions)
                .sum();
            let mut execs: HashMap<String, u64> = HashMap::new();
            for n in self.nodes.iter().skip(g * self.npg).take(self.npg) {
                for (rid, count) in &n.exec_count {
                    *execs.entry(rid.clone()).or_insert(0) += count;
                }
            }
            let mut over: Vec<(String, u64)> = execs.into_iter().filter(|(_, c)| *c > 1).collect();
            over.sort_unstable();
            for (rid, count) in over {
                if promotions == 0 {
                    self.violate(format!(
                        "invariant R3: `{rid}` executed {count} times on shard {g} \
                         with no failover to explain the replay"
                    ));
                }
            }
        }
        let pending: Vec<String> = self
            .all_work
            .iter()
            .filter(|rid| !self.settled.contains_key(*rid))
            .cloned()
            .collect();
        for rid in pending {
            self.violate(format!(
                "invariant R4: request `{rid}` never settled within {} virtual ms",
                self.cfg.sim_ms
            ));
        }
    }

    /// R2 (checked after every event) plus the per-group split-brain
    /// and frozen-journal checks the cluster harness runs.
    fn check_invariants(&mut self) {
        let spent = (self.stats.retries + self.stats.hedges).saturating_mul(1000);
        let bound = self.budget_cap_milli.saturating_add(
            self.stats
                .requests
                .saturating_mul(self.cfg.retry_ratio_milli),
        );
        if spent > bound {
            self.violate(format!(
                "invariant R2: retry volume exceeded the budget bound \
                 ({} retries + {} hedges = {spent} milli-tokens > cap {} + {} requests × {})",
                self.stats.retries,
                self.stats.hedges,
                self.budget_cap_milli,
                self.stats.requests,
                self.cfg.retry_ratio_milli
            ));
        }
        for g in 0..self.groups {
            let mut epochs: Vec<u64> = Vec::new();
            for n in self.nodes.iter().skip(g * self.npg).take(self.npg) {
                if n.up && n.role == Role::Primary && !n.epoch_state.fenced {
                    if epochs.contains(&n.epoch()) {
                        self.violate(format!(
                            "invariant R4: two unfenced primaries on shard {g} share epoch {}",
                            n.epoch()
                        ));
                        break;
                    }
                    epochs.push(n.epoch());
                }
            }
        }
        let mut frozen_grew = Vec::new();
        for n in &self.nodes {
            if let Some(frozen) = n.frozen_len {
                if n.journal.len() != frozen {
                    frozen_grew.push(format!(
                        "invariant R4: fenced/diverged {} journal changed \
                         ({} records frozen, now {})",
                        n.addr,
                        frozen,
                        n.journal.len()
                    ));
                }
            }
        }
        for v in frozen_grew {
            self.violate(v);
        }
    }

    // ---- plumbing ---------------------------------------------------

    fn process_outs(&mut self, ni: usize, outs: Vec<Out>) {
        let from = self.nodes[ni].addr.clone();
        for out in outs {
            match out {
                Out::Send { to, line } => self.route(&from, &to, &line),
                Out::Timer { delay_ms, timer } => {
                    let inc = self.nodes[ni].incarnation;
                    self.schedule(
                        self.now + delay_ms.max(1),
                        Ev::NodeTimer {
                            node: ni,
                            inc,
                            timer,
                        },
                    );
                }
                Out::Trace(t) => self.trace.push(t),
                Out::Violation(v) => self.violate(format!("invariant R3: {v}")),
            }
        }
    }

    /// Puts one line on the wire: loss and jitter apply to every link
    /// until the heal barrier.
    fn route(&mut self, from: &str, to: &str, line: &str) {
        if self.drop_permille > 0 && self.rng.next_u64() % 1000 < self.drop_permille {
            return;
        }
        let delay = self.cfg.net_ms + self.rng.next_u64() % self.cfg.jitter_ms.max(1);
        let to_inc = self
            .node_index(to)
            .map_or(CLIENT_INC, |i| self.nodes[i].incarnation);
        self.schedule(
            self.now + delay,
            Ev::Deliver {
                from: from.to_string(),
                to: to.to_string(),
                to_inc,
                line: line.to_string(),
            },
        );
    }

    fn violate(&mut self, v: String) {
        if self.seen_violations.insert(v.clone()) {
            self.trace.push(format!("t={}ms VIOLATION {v}", self.now));
            self.violations.push(v);
        }
    }

    fn schedule(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq: self.seq,
            ev,
        }));
    }

    fn node_index(&self, addr: &str) -> Option<usize> {
        self.node_addrs.iter().position(|a| a == addr)
    }

    fn client_index(&self, name: &str) -> Option<usize> {
        self.clients.iter().position(|c| c.name == name)
    }

    fn report(self) -> ShardSimReport {
        ShardSimReport {
            seed: self.seed,
            events: self.events,
            answered: self.answered,
            settled: self.settled.len() as u64,
            requests: self.stats.requests,
            forwarded: self.stats.forwarded,
            retries: self.stats.retries,
            hedges: self.stats.hedges,
            shed: self.stats.shed,
            shard_down: self.stats.shard_down,
            promotions: self.nodes.iter().map(|n| n.promotions).sum(),
            fences: self.nodes.iter().map(|n| n.fences).sum(),
            violations: self.violations,
            trace: self.trace,
        }
    }
}

fn failure(class: ErrorClass, code: &str, message: impl Into<String>) -> WireFailure {
    WireFailure {
        class,
        code: code.to_string(),
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fault_free_run_settles_everything() {
        let report = run_shard_sim(3, &ShardSimConfig::default());
        assert!(report.passed(), "{}", report.repro());
        assert_eq!(report.settled, 3 * 4 + 3, "work + probes");
        assert!(report.forwarded > 0);
    }

    #[test]
    fn shard_reports_are_bit_reproducible() {
        let config = ShardSimConfig {
            scenario: ShardScenario::Blackout { group: 1 },
            ..ShardSimConfig::default()
        };
        let a = run_shard_sim(9, &config);
        let b = run_shard_sim(9, &config);
        assert_eq!(a, b);
    }
}

//! `lintra-sim` — deterministic simulation testing for the replicated
//! `lintra-serve` cluster.
//!
//! The replication protocol's hardest bugs live in interleavings real
//! integration tests cannot schedule: a promotion racing a delayed
//! heartbeat, a retry landing on a fenced ex-primary mid-partition, an
//! ack crossing a crash. This crate runs an N-node cluster plus clients
//! **in one process, single-threaded, under virtual time**, with every
//! source of nondeterminism — message delay, reordering, duplication,
//! loss, partitions (full, asymmetric, partial), node crashes and
//! restarts, per-node clock skew — drawn from one seeded
//! [`SplitMix64`](lintra::matrix::rng::SplitMix64) stream. A run is a
//! pure function of `(seed, config)`: the same seed replays the same
//! fault schedule, event for event, which turns any failure into a
//! one-line repro (`lintra sim --seed N --trace`).
//!
//! Two layers:
//!
//! - [`vclock`]: simulated implementations of the `lintra-serve`
//!   seams — [`SimClock`] (a virtual [`lintra_serve::Clock`] whose
//!   `sleep` advances a counter) and [`ScriptedNet`] (an in-memory
//!   [`lintra_serve::Transport`]). These run the *real*
//!   [`lintra_serve::Client`] against scripted endpoints with zero real
//!   sleeping.
//! - [`run_sim`]: the discrete-event cluster simulation. Nodes are a
//!   faithful single-threaded model of the serve replication state
//!   machine — real wire codecs, real journal records and CRCs, real
//!   [`promotion_epoch`](lintra_serve::promotion_epoch) arithmetic,
//!   real restart semantics — driven through seeded fault swarms while
//!   the harness machine-checks five invariants after every event (one
//!   unfenced primary per epoch; acked prefixes byte-identical; settled
//!   `request_id`s answered byte-identically with zero recompute;
//!   fenced/diverged journals frozen; bounded re-convergence after
//!   faults stop).
//!
//! [`SimBug`] can re-introduce a known-fatal bug (colliding promotion
//! epochs) to prove the invariant checks have teeth; the checked-in
//! regression seed in `tests/sim.rs` catches it every time.
//!
//! A third layer, [`run_shard_sim`], extends the model to a *sharded*
//! cluster: M replicated shard groups behind a deterministic model of
//! the `lintra route` front end, built on the real
//! [`ShardRing`](lintra_serve::ShardRing) /
//! [`RetryBudget`](lintra_serve::RetryBudget) arithmetic, with its own
//! invariants (partial degradation, bounded retry volume, no double
//! execution, re-convergence) and its own injectable bug
//! ([`RouterSimBug::UnboundedRetries`]).

pub mod vclock;

mod cluster;
mod harness;
mod shard;

pub use shard::{run_shard_sim, RouterSimBug, ShardScenario, ShardSimConfig, ShardSimReport};
pub use vclock::{Reply, ScriptedNet, SimClock};

/// Deliberately re-introducible bugs: each one must be caught by an
/// invariant under at least one checked-in regression seed, proving the
/// harness detects the class of failure it claims to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBug {
    /// No injected bug: the faithful protocol model.
    #[default]
    None,
    /// Promote to `observed + 1` instead of the collision-free
    /// stride/slot epoch: two partitioned followers can then promote
    /// into the *same* epoch — the split-brain invariant 1 exists to
    /// catch.
    CollidingPromotionEpoch,
}

/// One scripted fault, pinned to a virtual-time instant via
/// [`SimConfig::scripted`]. Node indices wrap modulo the cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scripted {
    /// Kill the node: volatile state lost, journal and epoch survive.
    Crash(usize),
    /// Bring a crashed node back (no-op if it is up).
    Restart(usize),
    /// Sever one direction: messages `from → to` are dropped.
    CutOneWay(usize, usize),
    /// Sever both directions between two nodes.
    CutBoth(usize, usize),
}

/// Everything that parameterizes a run. A report is a pure function of
/// `(seed, SimConfig)`; all times are virtual milliseconds.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster size; node 0 starts as the configured primary, the rest
    /// as its followers.
    pub nodes: usize,
    /// Concurrent clients walking the endpoint list.
    pub clients: usize,
    /// Keyed requests each client works through.
    pub requests_per_client: usize,
    /// Total virtual run length. Faults stop at 3/5 of it; the cluster
    /// must re-converge and settle everything in the remainder.
    pub sim_ms: u64,
    /// Node housekeeping cadence (heartbeats, guard probes, resync).
    pub tick_ms: u64,
    /// Silence a follower tolerates before arbitrating a failover.
    pub grace_ms: u64,
    /// Virtual cost of executing one request.
    pub exec_ms: u64,
    /// Base one-way message latency.
    pub net_ms: u64,
    /// Additional random per-message latency (uniform, exclusive).
    pub jitter_ms: u64,
    /// Message loss rate, per mille, until faults stop.
    pub drop_permille: u64,
    /// Message duplication rate, per mille, until faults stop.
    pub dup_permille: u64,
    /// Randomized crash/restart pairs (when [`SimConfig::auto_faults`]).
    pub crash_faults: usize,
    /// Randomized partitions: full, asymmetric, or partial, at random.
    pub partition_faults: usize,
    /// Client patience before walking to the next endpoint.
    pub client_timeout_ms: u64,
    /// Scale each node's timers by a random factor in 0.8x–1.2x.
    pub skew: bool,
    /// Generate the seeded fault schedule (off for scripted-only runs).
    pub auto_faults: bool,
    /// Additional scripted faults at fixed virtual times.
    pub scripted: Vec<(u64, Scripted)>,
    /// The injected bug, if any.
    pub bug: SimBug,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            nodes: 3,
            clients: 2,
            requests_per_client: 6,
            sim_ms: 8000,
            tick_ms: 50,
            grace_ms: 300,
            exec_ms: 40,
            net_ms: 5,
            jitter_ms: 15,
            drop_permille: 20,
            dup_permille: 10,
            crash_faults: 2,
            partition_faults: 2,
            client_timeout_ms: 500,
            skew: true,
            auto_faults: true,
            scripted: Vec::new(),
            bug: SimBug::None,
        }
    }
}

/// What one run produced. Byte-for-byte reproducible from
/// `(seed, config)`: two runs with the same inputs yield identical
/// reports, trace lines included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Events processed.
    pub events: u64,
    /// Terminal responses clients received (including dedup re-serves).
    pub answered: u64,
    /// Distinct `request_id`s settled.
    pub settled: u64,
    /// Retries served from journals with zero recompute.
    pub deduped: u64,
    /// Follower promotions.
    pub promotions: u64,
    /// Fencing transitions.
    pub fences: u64,
    /// Up, unfenced primaries when the run ended (1 on a passing run).
    pub final_primaries: usize,
    /// Invariant violations, in detection order. Empty means PASS.
    pub violations: Vec<String>,
    /// Compact fault/role/violation schedule with virtual timestamps —
    /// the repro artifact a failing seed prints.
    pub trace: Vec<String>,
}

impl SimReport {
    /// True when every invariant held for the whole run.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The failure artifact: seed plus the compact fault-schedule
    /// trace, ready to paste into a bug report.
    pub fn repro(&self) -> String {
        let mut out = format!(
            "sim seed {} ({} events, {} promotions, {} fences)\n",
            self.seed, self.events, self.promotions, self.fences
        );
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        for v in &self.violations {
            out.push_str("VIOLATION ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// Runs one simulation to completion under virtual time. Wall-clock
/// cost is milliseconds; virtual coverage is [`SimConfig::sim_ms`].
pub fn run_sim(seed: u64, config: &SimConfig) -> SimReport {
    harness::run(seed, config)
}

/// Runs `count` consecutive seeds starting at `first`, returning every
/// report (the swarm primitive; callers apply wall-clock budgets).
pub fn run_seed_range(first: u64, count: u64, config: &SimConfig) -> Vec<SimReport> {
    (first..first.saturating_add(count))
        .map(|seed| run_sim(seed, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_single_seed_passes() {
        let report = run_sim(42, &SimConfig::default());
        assert!(report.passed(), "{}", report.repro());
        assert_eq!(report.final_primaries, 1);
        assert!(report.settled > 0, "clients settled nothing");
    }

    #[test]
    fn reports_are_bit_reproducible() {
        let config = SimConfig::default();
        let a = run_sim(7, &config);
        let b = run_sim(7, &config);
        assert_eq!(a, b);
    }
}

//! The simulation harness: one binary heap of timestamped events drives
//! N simulated nodes and M clients through a seeded fault schedule —
//! partitions (full, asymmetric, partial), message loss, duplication
//! and jitter, node crashes and restarts, per-node clock skew — and
//! machine-checks the cluster's invariants after **every** event:
//!
//! 1. at most one unfenced primary per epoch;
//! 2. every acked journal prefix is byte-identical to the journal of
//!    the primary it was acked to;
//! 3. a settled `request_id` is answered byte-identically with zero
//!    recompute, forever (checked both in-node and across the wire);
//! 4. a fenced or diverged journal never grows;
//! 5. once faults stop, the cluster re-converges to exactly one
//!    unfenced primary and every request — including post-heal probes —
//!    settles within the run's virtual-time bound.
//!
//! Everything is a pure function of `(seed, config)`: events are
//! ordered by `(virtual time, insertion seq)`, all randomness comes
//! from one `SplitMix64` consumed in event order, and no hash-map
//! iteration order ever reaches the event queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use lintra::matrix::rng::SplitMix64;
use lintra::ErrorClass;
use lintra_bench::wire::{WireOp, WireRequest, WireResponse};
use lintra_serve::replicate::{ReplMsg, Role};

use crate::cluster::{NodeTimer, Out, SimNode};
use crate::{Scripted, SimConfig, SimReport};

/// Sentinel incarnation for deliveries addressed to clients (clients
/// never crash, so the check never fires for them).
const CLIENT_INC: u64 = u64::MAX;

/// Hard ceiling on processed events: a scheduling bug must fail the
/// run, not hang the test suite.
const MAX_EVENTS: u64 = 2_000_000;

/// Stop collecting after this many violations; one broken invariant
/// tends to echo.
const MAX_VIOLATIONS: usize = 32;

#[derive(Debug)]
enum Ev {
    NodeTick {
        node: usize,
        inc: u64,
    },
    NodeTimer {
        node: usize,
        inc: u64,
        timer: NodeTimer,
    },
    Deliver {
        from: String,
        to: String,
        to_inc: u64,
        line: String,
    },
    ClientTimeout {
        client: usize,
        token: u64,
    },
    ClientRetry {
        client: usize,
        token: u64,
    },
    Fault(FaultEv),
    End,
}

#[derive(Debug, Clone)]
enum FaultEv {
    Crash(usize),
    Restart(usize),
    /// Directed link cut: messages `from → to` are dropped.
    Cut(String, String),
    Uncut(String, String),
    /// Faults stop: clear every cut, zero loss/duplication, restart
    /// every crashed node, and issue the convergence probes.
    HealAll,
}

struct Scheduled {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One simulated client: walks the endpoint list on refusals and
/// timeouts, retries its idempotency key across failovers, and
/// deliberately re-sends settled keys to exercise the dedup path.
struct SimClient {
    name: String,
    cursor: usize,
    work: Vec<String>,
    idx: usize,
    /// The settled-key duplicate probe for the current rid was sent.
    dup_done: bool,
    /// Attempt guard: stale timeouts/retries carry an older token.
    token: u64,
    waiting: bool,
}

pub(crate) struct Harness<'a> {
    cfg: &'a SimConfig,
    seed: u64,
    nodes: Vec<SimNode>,
    node_addrs: Vec<String>,
    clients: Vec<SimClient>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: u64,
    rng: SplitMix64,
    cuts: HashSet<(String, String)>,
    drop_permille: u64,
    dup_permille: u64,
    /// First terminal response line per rid: the byte-identity oracle.
    settled: HashMap<String, String>,
    violations: Vec<String>,
    seen_violations: HashSet<String>,
    trace: Vec<String>,
    events: u64,
    answered: u64,
    faults_end: u64,
    final_primaries: usize,
}

pub(crate) fn run(seed: u64, cfg: &SimConfig) -> SimReport {
    let mut h = Harness::new(seed, cfg);
    h.setup();
    h.run_loop();
    h.report()
}

impl<'a> Harness<'a> {
    fn new(seed: u64, cfg: &'a SimConfig) -> Harness<'a> {
        let n = cfg.nodes.max(1);
        let node_addrs: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        let nodes = (0..n)
            .map(|i| {
                let replica_of = (i != 0).then(|| node_addrs[0].clone());
                SimNode::new(i, node_addrs.clone(), replica_of)
            })
            .collect();
        let clients = (0..cfg.clients)
            .map(|i| SimClient {
                name: format!("c{i}"),
                cursor: 0,
                work: (0..cfg.requests_per_client)
                    .map(|j| format!("c{i}-r{j}"))
                    .collect(),
                idx: 0,
                dup_done: false,
                token: 0,
                waiting: false,
            })
            .collect();
        Harness {
            cfg,
            seed,
            nodes,
            node_addrs,
            clients,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            rng: SplitMix64::new(seed ^ 0x5EED_0F5E_ED00),
            cuts: HashSet::new(),
            drop_permille: cfg.drop_permille,
            dup_permille: cfg.dup_permille,
            settled: HashMap::new(),
            violations: Vec::new(),
            seen_violations: HashSet::new(),
            trace: Vec::new(),
            events: 0,
            answered: 0,
            faults_end: (cfg.sim_ms * 3 / 5).max(1),
            final_primaries: 0,
        }
    }

    fn setup(&mut self) {
        if self.cfg.skew {
            for node in &mut self.nodes {
                // Timers on this node run 0.8x–1.2x real rate.
                node.skew_num = 8 + self.rng.next_u64() % 5;
            }
        }
        self.plan_faults();
        for i in 0..self.nodes.len() {
            let at = self.tick_delay(i) + i as u64; // staggered first ticks
            let inc = self.nodes[i].incarnation;
            self.schedule(at, Ev::NodeTick { node: i, inc });
        }
        for ci in 0..self.clients.len() {
            self.client_send(ci);
        }
        self.schedule(self.cfg.sim_ms, Ev::End);
    }

    /// Seeds the fault schedule: randomized crashes and partitions when
    /// `auto_faults` is on, plus any scripted faults, plus the heal
    /// barrier at 3/5 of the run after which convergence is demanded.
    fn plan_faults(&mut self) {
        let end = self.faults_end;
        let lo = self.cfg.sim_ms / 8;
        let span = end.saturating_sub(lo).max(1);
        let n = self.nodes.len();
        if self.cfg.auto_faults {
            for _ in 0..self.cfg.crash_faults {
                let t = lo + self.rng.next_u64() % span;
                let i = (self.rng.next_u64() % n as u64) as usize;
                let dur = self.cfg.sim_ms / 10 + self.rng.next_u64() % (self.cfg.sim_ms / 5).max(1);
                self.schedule(t, Ev::Fault(FaultEv::Crash(i)));
                self.schedule((t + dur).min(end - 1), Ev::Fault(FaultEv::Restart(i)));
            }
            for _ in 0..self.cfg.partition_faults {
                let t = lo + self.rng.next_u64() % span;
                let dur = self.cfg.sim_ms / 10 + self.rng.next_u64() % (self.cfg.sim_ms / 5).max(1);
                let until = (t + dur).min(end - 1);
                let a = (self.rng.next_u64() % n as u64) as usize;
                let b = (a + 1 + (self.rng.next_u64() % (n as u64 - 1).max(1)) as usize) % n;
                let kind = self.rng.next_u64() % 3;
                let mut links: Vec<(String, String)> = Vec::new();
                match kind {
                    // Full isolation: node `a` loses both directions.
                    0 => {
                        for p in 0..n {
                            if p != a {
                                links
                                    .push((self.node_addrs[a].clone(), self.node_addrs[p].clone()));
                                links
                                    .push((self.node_addrs[p].clone(), self.node_addrs[a].clone()));
                            }
                        }
                    }
                    // Asymmetric: `a` can send but hears nothing back.
                    1 => {
                        for p in 0..n {
                            if p != a {
                                links
                                    .push((self.node_addrs[p].clone(), self.node_addrs[a].clone()));
                            }
                        }
                    }
                    // Partial: one pair severed both ways.
                    _ => {
                        links.push((self.node_addrs[a].clone(), self.node_addrs[b].clone()));
                        links.push((self.node_addrs[b].clone(), self.node_addrs[a].clone()));
                    }
                }
                for (x, y) in links {
                    self.schedule(t, Ev::Fault(FaultEv::Cut(x.clone(), y.clone())));
                    self.schedule(until, Ev::Fault(FaultEv::Uncut(x, y)));
                }
            }
        }
        let scripted = self.cfg.scripted.clone();
        for (t, s) in scripted {
            let t = t.min(end.saturating_sub(1));
            match s {
                Scripted::Crash(i) => self.schedule(t, Ev::Fault(FaultEv::Crash(i % n))),
                Scripted::Restart(i) => self.schedule(t, Ev::Fault(FaultEv::Restart(i % n))),
                Scripted::CutOneWay(a, b) => {
                    let (a, b) = (
                        self.node_addrs[a % n].clone(),
                        self.node_addrs[b % n].clone(),
                    );
                    self.schedule(t, Ev::Fault(FaultEv::Cut(a, b)));
                }
                Scripted::CutBoth(a, b) => {
                    let (a, b) = (
                        self.node_addrs[a % n].clone(),
                        self.node_addrs[b % n].clone(),
                    );
                    self.schedule(t, Ev::Fault(FaultEv::Cut(a.clone(), b.clone())));
                    self.schedule(t, Ev::Fault(FaultEv::Cut(b, a)));
                }
            }
        }
        self.schedule(end, Ev::Fault(FaultEv::HealAll));
    }

    fn run_loop(&mut self) {
        while let Some(Reverse(s)) = self.queue.pop() {
            self.now = s.at;
            self.events += 1;
            let is_end = matches!(s.ev, Ev::End);
            self.handle(s.ev);
            self.check_invariants();
            if is_end || self.violations.len() >= MAX_VIOLATIONS {
                break;
            }
            if self.events >= MAX_EVENTS {
                self.violate("harness: event budget exhausted (runaway schedule)".to_string());
                break;
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::NodeTick { node, inc } => {
                if self.nodes[node].up && self.nodes[node].incarnation == inc {
                    let outs =
                        self.nodes[node].on_tick(self.now, self.cfg.grace_ms, self.cfg.tick_ms * 2);
                    self.process_outs(node, outs);
                    let at = self.now + self.tick_delay(node);
                    self.schedule(at, Ev::NodeTick { node, inc });
                }
            }
            Ev::NodeTimer { node, inc, timer } => {
                if self.nodes[node].up && self.nodes[node].incarnation == inc {
                    let mut outs = Vec::new();
                    match timer {
                        NodeTimer::Exec { rid, reply_to } => {
                            self.nodes[node].on_exec(
                                &rid,
                                &reply_to,
                                self.now,
                                self.cfg.exec_ms,
                                &mut outs,
                            );
                        }
                        NodeTimer::ArbDecide { round } => {
                            self.nodes[node].on_arb_decide(
                                round,
                                self.now,
                                self.cfg.exec_ms,
                                self.cfg.bug,
                                &mut outs,
                            );
                        }
                    }
                    self.process_outs(node, outs);
                }
            }
            Ev::Deliver {
                from,
                to,
                to_inc,
                line,
            } => {
                if let Some(ni) = self.node_index(&to) {
                    // The partition also swallows frames already in
                    // flight when it lands.
                    if self.cuts.contains(&(from.clone(), to.clone())) {
                        return;
                    }
                    if !self.nodes[ni].up || self.nodes[ni].incarnation != to_inc {
                        return; // the connection died with the process
                    }
                    let outs = self.nodes[ni].on_line(
                        &from,
                        &line,
                        self.now,
                        self.cfg.exec_ms,
                        self.cfg.bug,
                    );
                    self.process_outs(ni, outs);
                } else if let Some(ci) = self.client_index(&to) {
                    self.client_on_line(ci, &line);
                }
            }
            Ev::ClientTimeout { client, token } => {
                if self.clients[client].waiting && self.clients[client].token == token {
                    // No answer within the budget: walk to the next
                    // endpoint and retry the same idempotency key.
                    self.clients[client].cursor += 1;
                    self.client_send(client);
                }
            }
            Ev::ClientRetry { client, token } => {
                if self.clients[client].waiting && self.clients[client].token == token {
                    self.client_send(client);
                }
            }
            Ev::Fault(f) => self.handle_fault(f),
            Ev::End => {
                self.final_primaries = self
                    .nodes
                    .iter()
                    .filter(|n| n.up && n.role == Role::Primary && !n.epoch_state.fenced)
                    .count();
                if self.final_primaries != 1 {
                    self.violate(format!(
                        "invariant 5: {} unfenced primaries at end of run (want exactly 1)",
                        self.final_primaries
                    ));
                }
                let pending: Vec<String> = self
                    .clients
                    .iter()
                    .flat_map(|c| c.work.iter())
                    .filter(|rid| !self.settled.contains_key(*rid))
                    .cloned()
                    .collect();
                for rid in pending {
                    self.violate(format!(
                        "invariant 5: request `{rid}` never settled within {} virtual ms",
                        self.cfg.sim_ms
                    ));
                }
            }
        }
    }

    fn handle_fault(&mut self, f: FaultEv) {
        match f {
            FaultEv::Crash(i) => {
                if self.nodes[i].up {
                    self.nodes[i].crash();
                    let t = format!("t={}ms fault: crash {}", self.now, self.nodes[i].addr);
                    self.trace.push(t);
                }
            }
            FaultEv::Restart(i) => self.restart_node(i),
            FaultEv::Cut(a, b) => {
                if self.cuts.insert((a.clone(), b.clone())) {
                    self.trace
                        .push(format!("t={}ms fault: cut {a}->{b}", self.now));
                }
            }
            FaultEv::Uncut(a, b) => {
                if self.cuts.remove(&(a.clone(), b.clone())) {
                    self.trace
                        .push(format!("t={}ms fault: heal {a}->{b}", self.now));
                }
            }
            FaultEv::HealAll => {
                self.cuts.clear();
                self.drop_permille = 0;
                self.dup_permille = 0;
                self.trace.push(format!(
                    "t={}ms fault: heal-all (partitions cleared, loss/dup off)",
                    self.now
                ));
                for i in 0..self.nodes.len() {
                    if !self.nodes[i].up {
                        self.restart_node(i);
                    }
                }
                // Convergence probes: every client must complete one
                // more keyed request before the run ends (invariant 5).
                for ci in 0..self.clients.len() {
                    let probe = format!("probe-{}", self.clients[ci].name);
                    self.clients[ci].work.push(probe);
                    if !self.clients[ci].waiting {
                        self.client_send(ci);
                    }
                }
            }
        }
    }

    fn restart_node(&mut self, i: usize) {
        if self.nodes[i].up {
            return;
        }
        let mut outs = Vec::new();
        self.nodes[i].restart(self.now, self.cfg.exec_ms, &mut outs);
        self.process_outs(i, outs);
        let inc = self.nodes[i].incarnation;
        let at = self.now + self.tick_delay(i);
        self.schedule(at, Ev::NodeTick { node: i, inc });
    }

    fn process_outs(&mut self, ni: usize, outs: Vec<Out>) {
        let from = self.nodes[ni].addr.clone();
        for out in outs {
            match out {
                Out::Send { to, line } => self.route(&from, &to, &line),
                Out::Timer { delay_ms, timer } => {
                    let d = (delay_ms * self.nodes[ni].skew_num / 10).max(1);
                    let inc = self.nodes[ni].incarnation;
                    self.schedule(
                        self.now + d,
                        Ev::NodeTimer {
                            node: ni,
                            inc,
                            timer,
                        },
                    );
                }
                Out::Trace(t) => self.trace.push(t),
                Out::Violation(v) => self.violate(format!("invariant 3: {v}")),
            }
        }
    }

    /// Puts one line on the wire: applies partitions, loss, duplication
    /// and jitter, captures the receiving incarnation — and intercepts
    /// follower acks to machine-check invariant 2 at the source.
    fn route(&mut self, from: &str, to: &str, line: &str) {
        if self.node_index(from).is_some() && self.node_index(to).is_some() {
            if let Some(ReplMsg::Ack { seq }) = ReplMsg::parse(line) {
                self.check_acked_prefix(from, to, seq);
            }
            if self.cuts.contains(&(from.to_string(), to.to_string())) {
                return;
            }
        }
        if self.chance(self.drop_permille) {
            return;
        }
        let delay = self.cfg.net_ms + self.rng.next_u64() % self.cfg.jitter_ms.max(1);
        let to_inc = self
            .node_index(to)
            .map_or(CLIENT_INC, |i| self.nodes[i].incarnation);
        let dup = self.chance(self.dup_permille);
        self.schedule(
            self.now + delay,
            Ev::Deliver {
                from: from.to_string(),
                to: to.to_string(),
                to_inc,
                line: line.to_string(),
            },
        );
        if dup {
            self.schedule(
                self.now + delay + self.cfg.net_ms.max(1),
                Ev::Deliver {
                    from: from.to_string(),
                    to: to.to_string(),
                    to_inc,
                    line: line.to_string(),
                },
            );
        }
    }

    /// Invariant 2: when a follower acks `seq` records to a primary,
    /// both journals must hold byte-identical records up to `seq`.
    fn check_acked_prefix(&mut self, follower: &str, primary: &str, seq: u64) {
        let (Some(fi), Some(pi)) = (self.node_index(follower), self.node_index(primary)) else {
            return;
        };
        let seq = usize::try_from(seq).unwrap_or(usize::MAX);
        let ok = match (
            self.nodes[fi].journal.get(..seq),
            self.nodes[pi].journal.get(..seq),
        ) {
            (Some(f), Some(p)) => f == p,
            _ => false,
        };
        if !ok {
            self.violate(format!(
                "invariant 2: {follower} acked seq {seq} but its journal prefix is not \
                 byte-identical to {primary}'s"
            ));
        }
    }

    fn client_send(&mut self, ci: usize) {
        let c = &mut self.clients[ci];
        if c.idx >= c.work.len() {
            c.waiting = false;
            return;
        }
        let rid = c.work[c.idx].clone();
        c.token += 1;
        c.waiting = true;
        let token = c.token;
        let endpoint = self.node_addrs[c.cursor % self.node_addrs.len()].clone();
        let from = c.name.clone();
        let line = WireRequest::new(rid.clone(), WireOp::Ping)
            .with_request_id(rid)
            .render_line()
            .trim_end()
            .to_string();
        self.route(&from, &endpoint, &line);
        self.schedule(
            self.now + self.cfg.client_timeout_ms,
            Ev::ClientTimeout { client: ci, token },
        );
    }

    fn client_on_line(&mut self, ci: usize, line: &str) {
        let Ok(resp) = WireResponse::parse(line) else {
            return;
        };
        let c = &self.clients[ci];
        if !c.waiting || c.idx >= c.work.len() {
            return;
        }
        let rid = c.work[c.idx].clone();
        if resp.id != rid {
            return; // a straggler for an earlier key
        }
        let terminal = match &resp.outcome {
            Ok(_) => true,
            // The simulated optimizer fails deterministically for some
            // keys; those settle as journaled `Fail` records and serve
            // retries like successes do.
            Err(f) => f.class == ErrorClass::Numerical,
        };
        if terminal {
            let got = line.trim_end().to_string();
            match self.settled.get(&rid) {
                Some(prev) if *prev != got => {
                    let prev = prev.clone();
                    self.violate(format!(
                        "invariant 3: `{rid}` answered differently across retries \
                         (first `{prev}`, then `{got}`)"
                    ));
                }
                Some(_) => {}
                None => {
                    self.settled.insert(rid.clone(), got);
                }
            }
            self.answered += 1;
            let c = &mut self.clients[ci];
            if !c.dup_done && c.idx.is_multiple_of(2) {
                // Dedup teeth: immediately re-send the settled key; the
                // answer must come back byte-identical (and, on any node
                // that holds the record, with zero recompute).
                c.dup_done = true;
            } else {
                c.dup_done = false;
                c.idx += 1;
            }
            self.client_send(ci);
            return;
        }
        let code = match &resp.outcome {
            Err(f) => f.code.clone(),
            Ok(_) => String::new(),
        };
        match code.as_str() {
            // Refusals that name the wrong server: walk on immediately.
            "RES-NOT-PRIMARY" | "RES-STALE-EPOCH" => {
                self.clients[ci].cursor += 1;
                self.client_send(ci);
            }
            // Our own earlier attempt is still executing there: give it
            // time to settle, then retry the same key (dedup answers).
            "RES-DUPLICATE-REQUEST" => {
                let token = self.clients[ci].token;
                self.schedule(
                    self.now + self.cfg.exec_ms * 2,
                    Ev::ClientRetry { client: ci, token },
                );
            }
            _ => {
                self.clients[ci].cursor += 1;
                self.client_send(ci);
            }
        }
    }

    /// Invariants 1 and 4, re-checked after every event.
    fn check_invariants(&mut self) {
        let mut primary_epochs: Vec<u64> = Vec::new();
        let mut dup_epoch = None;
        let mut frozen_grew = Vec::new();
        for node in &self.nodes {
            if node.up && node.role == Role::Primary && !node.epoch_state.fenced {
                if primary_epochs.contains(&node.epoch()) {
                    dup_epoch = Some(node.epoch());
                }
                primary_epochs.push(node.epoch());
            }
            if let Some(frozen) = node.frozen_len {
                if node.journal.len() != frozen {
                    frozen_grew.push(format!(
                        "invariant 4: fenced/diverged {} journal changed \
                         ({} records frozen, now {})",
                        node.addr,
                        frozen,
                        node.journal.len()
                    ));
                }
            }
        }
        if let Some(epoch) = dup_epoch {
            self.violate(format!(
                "invariant 1: two unfenced primaries share epoch {epoch}"
            ));
        }
        for v in frozen_grew {
            self.violate(v);
        }
    }

    /// Records a violation once (invariant checks re-fire every event).
    fn violate(&mut self, v: String) {
        if self.seen_violations.insert(v.clone()) {
            self.trace.push(format!("t={}ms VIOLATION {v}", self.now));
            self.violations.push(v);
        }
    }

    fn chance(&mut self, permille: u64) -> bool {
        permille > 0 && self.rng.next_u64() % 1000 < permille
    }

    fn tick_delay(&self, node: usize) -> u64 {
        (self.cfg.tick_ms * self.nodes[node].skew_num / 10).max(1)
    }

    fn schedule(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq: self.seq,
            ev,
        }));
    }

    fn node_index(&self, addr: &str) -> Option<usize> {
        self.node_addrs.iter().position(|a| a == addr)
    }

    fn client_index(&self, name: &str) -> Option<usize> {
        self.clients.iter().position(|c| c.name == name)
    }

    fn report(self) -> SimReport {
        SimReport {
            seed: self.seed,
            events: self.events,
            answered: self.answered,
            settled: self.settled.len() as u64,
            deduped: self.nodes.iter().map(|n| n.deduped).sum(),
            promotions: self.nodes.iter().map(|n| n.promotions).sum(),
            fences: self.nodes.iter().map(|n| n.fences).sum(),
            final_primaries: self.final_primaries,
            violations: self.violations,
            trace: self.trace,
        }
    }
}

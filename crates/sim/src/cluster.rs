//! The simulated cluster node: a single-threaded, event-driven
//! re-implementation of the `lintra-serve` replication state machine
//! over the simulator's message-passing network.
//!
//! The node is a *model*, but not a toy: every wire line it sends or
//! receives goes through the real codecs ([`ReplMsg`], [`WireRequest`],
//! [`WireResponse`]), journals are real [`JournalRecord`] vectors
//! checksummed with the real [`prefix_crc`], promotion epochs come from
//! the real [`promotion_epoch`] arithmetic, and restart semantics mirror
//! `ReplState::new` (journal and epoch state are durable; everything
//! else is lost with the incarnation). What the model elides is the
//! thread-per-connection plumbing — replaced by the event queue — and
//! the optimizer itself, replaced by a deterministic pure function of
//! the request so response byte-identity is checkable structurally.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use lintra::engine::snapshot::crc32;
use lintra::matrix::rng::SplitMix64;
use lintra::ErrorClass;
use lintra_bench::json::Json;
use lintra_bench::wire::{WireFailure, WireRequest, WireResponse};
use lintra_serve::journal::{fold_records, payload_bytes, CompletedMap, JournalRecord, RecordKind};
use lintra_serve::replicate::{prefix_crc, promotion_epoch, EpochState, ReplMsg, Role};

use crate::SimBug;

/// Side effects a node handler asks the harness to perform.
#[derive(Debug)]
pub(crate) enum Out {
    /// Send one wire line to an address (node or client).
    Send { to: String, line: String },
    /// Arm a timer against this node's current incarnation.
    Timer { delay_ms: u64, timer: NodeTimer },
    /// Append a line to the run trace.
    Trace(String),
    /// Report an invariant violation observed inside the node.
    Violation(String),
}

/// Node-owned timers; all carry the incarnation that armed them, so a
/// crash invalidates them wholesale.
#[derive(Debug, Clone)]
pub(crate) enum NodeTimer {
    /// A journaled request finishes executing.
    Exec { rid: String, reply_to: String },
    /// Arbitration window closed: decide on the collected replies.
    ArbDecide { round: u64 },
}

/// One simulated server.
pub(crate) struct SimNode {
    pub addr: String,
    /// Full cluster address list (self included) — the promotion stride.
    pub cluster: Vec<String>,
    /// The primary this node was *configured* to replicate from
    /// (restart semantics depend on it, exactly like `--replica-of`).
    pub replica_of: Option<String>,
    pub nonce: u64,

    // --- durable state: survives crash/restart ---
    pub journal: Vec<JournalRecord>,
    pub epoch_state: EpochState,

    // --- volatile state: lost with the incarnation ---
    pub up: bool,
    pub incarnation: u64,
    pub role: Role,
    /// Whom this follower currently follows (may differ from
    /// `replica_of` after adopting a promoted peer).
    pub primary: Option<String>,
    pub former_primary: Option<String>,
    pub completed: CompletedMap,
    pub inflight: HashSet<String>,
    /// Follower: the stream is live (hello accepted, records flowing).
    pub synced: bool,
    pub last_contact_ms: u64,
    /// Primary: follower streams as (addr, next cursor). Vec keeps the
    /// iteration order deterministic.
    pub streams: Vec<(String, u64)>,
    pub arb: Option<ArbState>,
    pub arb_round: u64,
    /// Times each rid was actually executed on this node (invariant 3).
    pub exec_count: HashMap<String, u64>,
    /// Journal length at the moment of fencing/divergence: the frozen
    /// floor invariant 4 is checked against.
    pub frozen_len: Option<usize>,
    pub diverged: bool,
    /// Timer skew: every delay is scaled by `skew_num / 10`.
    pub skew_num: u64,
    pub promotions: u64,
    pub fences: u64,
    pub deduped: u64,
}

/// Replies collected during one arbitration window.
pub(crate) struct ArbState {
    pub round: u64,
    /// `(peer addr, role label, epoch, seq, nonce)` in arrival order.
    pub replies: Vec<(String, String, u64, u64, u64)>,
}

impl SimNode {
    pub(crate) fn new(index: usize, cluster: Vec<String>, replica_of: Option<String>) -> SimNode {
        let addr = cluster
            .get(index)
            .cloned()
            .unwrap_or_else(|| format!("n{index}"));
        let role = if replica_of.is_some() {
            Role::Follower
        } else {
            Role::Primary
        };
        SimNode {
            addr,
            primary: replica_of.clone(),
            replica_of,
            cluster,
            nonce: index as u64 + 1,
            journal: Vec::new(),
            epoch_state: EpochState {
                epoch: 1,
                fenced: false,
            },
            up: true,
            incarnation: 0,
            role,
            former_primary: None,
            completed: CompletedMap::new(),
            inflight: HashSet::new(),
            synced: false,
            last_contact_ms: 0,
            streams: Vec::new(),
            arb: None,
            arb_round: 0,
            exec_count: HashMap::new(),
            frozen_len: None,
            diverged: false,
            skew_num: 10,
            promotions: 0,
            fences: 0,
            deduped: 0,
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch_state.epoch
    }

    fn adopt_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch_state.epoch {
            self.epoch_state.epoch = epoch; // durable, like store_epoch
        }
    }

    fn fence(&mut self, superseded_by: u64, now_ms: u64, outs: &mut Vec<Out>) {
        self.epoch_state = EpochState {
            epoch: superseded_by.max(self.epoch_state.epoch),
            fenced: true,
        };
        self.role = Role::Fenced;
        self.primary = None;
        self.streams.clear();
        self.arb = None;
        self.frozen_len = Some(self.journal.len());
        self.fences += 1;
        outs.push(Out::Trace(format!(
            "t={now_ms}ms {}: fenced by epoch {superseded_by}",
            self.addr
        )));
    }

    /// Crash: volatile state is gone; journal and epoch file persist.
    pub(crate) fn crash(&mut self) {
        self.up = false;
        self.incarnation += 1;
    }

    /// Restart, mirroring `ReplState::new`: a configured `--replica-of`
    /// rejoin clears a persisted fence; a fenced standalone stays
    /// fenced; an unfenced standalone comes back as primary and replays
    /// its admitted-but-unsettled records before serving.
    pub(crate) fn restart(&mut self, now_ms: u64, exec_ms: u64, outs: &mut Vec<Out>) {
        self.up = true;
        self.incarnation += 1;
        let (completed, incomplete) = fold_records(&self.journal);
        self.completed = completed;
        self.inflight = HashSet::new();
        self.streams = Vec::new();
        self.arb = None;
        self.synced = false;
        self.last_contact_ms = now_ms;
        self.former_primary = None;
        self.diverged = false; // volatile, like the real AtomicBool
        match (&self.replica_of, self.epoch_state.fenced) {
            (Some(primary), fenced) => {
                if fenced {
                    self.epoch_state.fenced = false; // operator-chosen rejoin
                }
                self.frozen_len = None;
                self.role = Role::Follower;
                self.primary = Some(primary.clone());
            }
            (None, true) => {
                self.role = Role::Fenced;
                self.frozen_len = Some(self.journal.len());
            }
            (None, false) => {
                self.role = Role::Primary;
                self.frozen_len = None;
                // Startup replay: settle every admitted-but-unfinished
                // key so retries dedup instead of recomputing.
                for (rid, line) in incomplete {
                    self.execute(&rid, &line, now_ms, exec_ms, None, outs);
                }
            }
        }
        outs.push(Out::Trace(format!(
            "t={now_ms}ms {}: restarted as {} (epoch {})",
            self.addr,
            self.role.label(),
            self.epoch()
        )));
    }

    /// The periodic tick: follower liveness and resync, primary heartbeat
    /// and guard probing. Returns the side effects; the harness
    /// reschedules the tick itself.
    pub(crate) fn on_tick(&mut self, now_ms: u64, grace_ms: u64, peer_timeout_ms: u64) -> Vec<Out> {
        let mut outs = Vec::new();
        if !self.up {
            return outs;
        }
        match self.role {
            Role::Follower if !self.diverged => {
                if !self.synced {
                    if let Some(primary) = self.primary.clone() {
                        outs.push(Out::Send {
                            to: primary,
                            line: self.hello_line(),
                        });
                    }
                }
                if now_ms.saturating_sub(self.last_contact_ms) > grace_ms && self.arb.is_none() {
                    self.arb_round += 1;
                    self.arb = Some(ArbState {
                        round: self.arb_round,
                        replies: Vec::new(),
                    });
                    for peer in self.peers() {
                        outs.push(Out::Send {
                            to: peer,
                            line: ReplMsg::Status.render_line().trim_end().to_string(),
                        });
                    }
                    outs.push(Out::Timer {
                        delay_ms: peer_timeout_ms,
                        timer: NodeTimer::ArbDecide {
                            round: self.arb_round,
                        },
                    });
                }
            }
            Role::Primary => {
                let epoch = self.epoch();
                let seq = self.journal.len() as u64;
                for (addr, cursor) in self.streams.clone() {
                    self.pump_stream(&addr, cursor, &mut outs);
                    outs.push(Out::Send {
                        to: addr,
                        line: ReplMsg::Hb { epoch, seq }
                            .render_line()
                            .trim_end()
                            .to_string(),
                    });
                }
                // The guard: probe peers for a higher epoch, and keep a
                // fencing hello aimed at the deposed primary.
                for peer in self.peers() {
                    outs.push(Out::Send {
                        to: peer,
                        line: ReplMsg::Status.render_line().trim_end().to_string(),
                    });
                }
                if let Some(former) = self.former_primary.clone() {
                    outs.push(Out::Send {
                        to: former,
                        line: self.hello_line(),
                    });
                }
            }
            _ => {}
        }
        outs
    }

    /// One wire line arrives from `from`.
    pub(crate) fn on_line(
        &mut self,
        from: &str,
        line: &str,
        now_ms: u64,
        exec_ms: u64,
        bug: SimBug,
    ) -> Vec<Out> {
        let mut outs = Vec::new();
        if !self.up {
            return outs;
        }
        if let Some(msg) = ReplMsg::parse(line) {
            self.on_repl(from, msg, now_ms, bug, &mut outs);
        } else {
            self.on_request(from, line, now_ms, exec_ms, &mut outs);
        }
        outs
    }

    fn on_repl(&mut self, from: &str, msg: ReplMsg, now_ms: u64, bug: SimBug, outs: &mut Vec<Out>) {
        match msg {
            ReplMsg::Hello {
                epoch, have, pcrc, ..
            } => self.on_hello(from, epoch, have, pcrc, now_ms, outs),
            ReplMsg::Rec {
                epoch,
                seq,
                crc,
                kind,
                rid,
                line,
            } => self.on_rec(from, epoch, seq, crc, kind, &rid, &line, now_ms, outs),
            ReplMsg::Hb { epoch, seq } => self.on_hb(from, epoch, seq, now_ms, outs),
            ReplMsg::Ack { .. } => {} // observability only, like the real primary
            ReplMsg::Err { code, epoch } => self.on_peer_err(&code, epoch, now_ms, outs),
            ReplMsg::Status => {
                outs.push(Out::Send {
                    to: from.to_string(),
                    line: ReplMsg::StatusReply {
                        role: self.role.label().to_string(),
                        epoch: self.epoch(),
                        seq: self.journal.len() as u64,
                        answered: self.completed.len() as u64,
                        nonce: self.nonce,
                        primary: self.primary.clone(),
                    }
                    .render_line()
                    .trim_end()
                    .to_string(),
                });
            }
            ReplMsg::StatusReply {
                role,
                epoch,
                seq,
                nonce,
                ..
            } => self.on_status_reply(from, &role, epoch, seq, nonce, now_ms, bug, outs),
        }
    }

    /// Hello handling, mirroring `stream_to_follower`: a higher-epoch
    /// hello fences us on sight; otherwise only a primary streams, and
    /// only to a follower whose journal is a verified prefix of ours.
    fn on_hello(
        &mut self,
        from: &str,
        hello_epoch: u64,
        have: u64,
        pcrc: u32,
        now_ms: u64,
        outs: &mut Vec<Out>,
    ) {
        if hello_epoch > self.epoch() {
            self.fence(hello_epoch, now_ms, outs);
            outs.push(self.err_to(from, "RES-STALE-EPOCH"));
            return;
        }
        match self.role {
            Role::Primary => {}
            Role::Fenced => {
                outs.push(self.err_to(from, "RES-STALE-EPOCH"));
                return;
            }
            _ => {
                outs.push(self.err_to(from, "RES-NOT-PRIMARY"));
                return;
            }
        }
        let prefix_ok = usize::try_from(have)
            .ok()
            .and_then(|have| self.journal.get(..have))
            .is_some_and(|prefix| prefix_crc(prefix) == pcrc);
        if !prefix_ok {
            outs.push(self.err_to(from, "IO-REPL-CORRUPT"));
            return;
        }
        self.streams.retain(|(addr, _)| addr != from);
        self.streams.push((from.to_string(), have));
        self.pump_stream(from, have, outs);
        outs.push(Out::Send {
            to: from.to_string(),
            line: ReplMsg::Hb {
                epoch: self.epoch(),
                seq: self.journal.len() as u64,
            }
            .render_line()
            .trim_end()
            .to_string(),
        });
    }

    /// Streams every journal record past `cursor` to one follower.
    fn pump_stream(&mut self, to: &str, cursor: u64, outs: &mut Vec<Out>) {
        let epoch = self.epoch();
        let from_idx = usize::try_from(cursor).unwrap_or(usize::MAX);
        let records: Vec<JournalRecord> = self
            .journal
            .get(from_idx..)
            .map(<[_]>::to_vec)
            .unwrap_or_default();
        let mut seq = cursor;
        for rec in records {
            seq += 1;
            let crc = crc32(&payload_bytes(rec.kind, &rec.rid, &rec.line));
            outs.push(Out::Send {
                to: to.to_string(),
                line: ReplMsg::Rec {
                    epoch,
                    seq,
                    crc,
                    kind: rec.kind,
                    rid: rec.rid,
                    line: rec.line,
                }
                .render_line()
                .trim_end()
                .to_string(),
            });
        }
        for (addr, c) in &mut self.streams {
            if addr == to {
                *c = (*c).max(seq);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_rec(
        &mut self,
        from: &str,
        epoch: u64,
        seq: u64,
        crc: u32,
        kind: RecordKind,
        rid: &str,
        line: &str,
        now_ms: u64,
        outs: &mut Vec<Out>,
    ) {
        if self.role != Role::Follower || self.diverged {
            return; // only a live follower consumes a stream
        }
        if epoch < self.epoch() {
            outs.push(self.err_to(from, "RES-STALE-EPOCH"));
            self.synced = false;
            return;
        }
        self.adopt_epoch(epoch);
        self.last_contact_ms = now_ms;
        self.synced = true;
        let have = self.journal.len() as u64;
        if seq <= have {
            outs.push(Out::Send {
                to: from.to_string(),
                line: ReplMsg::Ack { seq: have }
                    .render_line()
                    .trim_end()
                    .to_string(),
            });
            return;
        }
        if seq != have + 1 {
            // A gap: the stream lost sync (dropped message); re-hello.
            self.synced = false;
            return;
        }
        if crc32(&payload_bytes(kind, rid, line)) != crc {
            outs.push(self.err_to(from, "IO-REPL-CORRUPT"));
            self.synced = false;
            return;
        }
        self.journal.push(JournalRecord {
            kind,
            rid: rid.to_string(),
            line: line.to_string(),
        });
        if kind.serves_retries() || kind == RecordKind::Abort {
            self.completed
                .insert(rid.to_string(), (kind, line.to_string()));
        }
        outs.push(Out::Send {
            to: from.to_string(),
            line: ReplMsg::Ack { seq }.render_line().trim_end().to_string(),
        });
    }

    fn on_hb(&mut self, from: &str, epoch: u64, seq: u64, now_ms: u64, outs: &mut Vec<Out>) {
        if self.role != Role::Follower || self.diverged {
            return;
        }
        if epoch < self.epoch() {
            outs.push(self.err_to(from, "RES-STALE-EPOCH"));
            self.synced = false;
            return;
        }
        self.adopt_epoch(epoch);
        self.last_contact_ms = now_ms;
        if seq > self.journal.len() as u64 {
            // The heartbeat proves records we never saw: resync.
            self.synced = false;
        } else {
            self.synced = true;
        }
    }

    /// A peer refused us. Mirrors `follow_stream`'s `StreamEnd`
    /// mapping: stale → arbitrate at the next tick (grace is up),
    /// corrupt → diverged, parked forever.
    fn on_peer_err(&mut self, code: &str, epoch: u64, now_ms: u64, outs: &mut Vec<Out>) {
        if self.role != Role::Follower {
            return;
        }
        self.adopt_epoch(epoch);
        match code {
            "RES-STALE-EPOCH" => {
                // The dialed primary is provably deposed: stop counting
                // its silence as liveness so arbitration starts now.
                self.synced = false;
                self.last_contact_ms = 0;
            }
            "IO-REPL-CORRUPT" => {
                self.diverged = true;
                self.synced = false;
                self.frozen_len = Some(self.journal.len());
                outs.push(Out::Trace(format!(
                    "t={now_ms}ms {}: journal diverged (IO-REPL-CORRUPT); parked read-only",
                    self.addr
                )));
            }
            _ => {
                self.synced = false;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_status_reply(
        &mut self,
        from: &str,
        role: &str,
        epoch: u64,
        seq: u64,
        nonce: u64,
        now_ms: u64,
        _bug: SimBug,
        outs: &mut Vec<Out>,
    ) {
        if nonce == self.nonce {
            return; // talking to ourselves through an alias
        }
        if let Some(arb) = &mut self.arb {
            arb.replies
                .push((from.to_string(), role.to_string(), epoch, seq, nonce));
            return;
        }
        if self.role == Role::Primary {
            // The guard: a higher epoch anywhere — or an equal-epoch
            // primary with a lexicographically smaller address — wins.
            let superseded = epoch > self.epoch()
                || (epoch == self.epoch() && role == "primary" && from < self.addr.as_str());
            if superseded {
                self.fence(epoch, now_ms, outs);
            }
        }
    }

    /// The arbitration window closed: follow a live primary, defer to a
    /// better-acked peer, or promote.
    pub(crate) fn on_arb_decide(
        &mut self,
        round: u64,
        now_ms: u64,
        exec_ms: u64,
        bug: SimBug,
        outs: &mut Vec<Out>,
    ) {
        let Some(arb) = self.arb.take() else { return };
        if arb.round != round || self.role != Role::Follower || self.diverged {
            return;
        }
        let my_epoch = self.epoch();
        let my_seq = self.journal.len() as u64;
        let mut max_epoch = my_epoch;
        let mut defer = false;
        for (peer, role, epoch, seq, _) in &arb.replies {
            max_epoch = max_epoch.max(*epoch);
            if role == "primary" && *epoch >= my_epoch {
                self.primary = Some(peer.clone());
                self.synced = false;
                self.last_contact_ms = now_ms;
                outs.push(Out::Trace(format!(
                    "t={now_ms}ms {}: adopting promoted primary {peer} (epoch {epoch})",
                    self.addr
                )));
                return;
            }
            if role != "fenced"
                && (*seq > my_seq || (*seq == my_seq && peer.as_str() < self.addr.as_str()))
            {
                defer = true;
            }
        }
        if defer {
            return; // grace is still expired: the next tick re-arbitrates
        }
        self.promote(max_epoch, now_ms, exec_ms, bug, outs);
    }

    fn promote(
        &mut self,
        observed: u64,
        now_ms: u64,
        exec_ms: u64,
        bug: SimBug,
        outs: &mut Vec<Out>,
    ) {
        let observed = observed.max(self.epoch());
        let new_epoch = match bug {
            // The injected fencing bug: pick observed + 1 like a naive
            // implementation would, so two partitioned followers can
            // promote into the *same* epoch.
            SimBug::CollidingPromotionEpoch => observed + 1,
            SimBug::None => promotion_epoch(observed, &self.cluster, &self.addr),
        };
        self.epoch_state = EpochState {
            epoch: new_epoch,
            fenced: false,
        };
        self.former_primary = self.primary.take();
        self.role = Role::Primary;
        self.streams.clear();
        self.promotions += 1;
        outs.push(Out::Trace(format!(
            "t={now_ms}ms {}: promoted to epoch {new_epoch}",
            self.addr
        )));
        // Replay admitted-but-unsettled records so every key the old
        // primary acked is settled here before the first client lands.
        let (_, incomplete) = fold_records(&self.journal);
        for (rid, line) in incomplete {
            self.execute(&rid, &line, now_ms, exec_ms, None, outs);
        }
    }

    /// A client request line (the real wire schema).
    fn on_request(
        &mut self,
        from: &str,
        line: &str,
        now_ms: u64,
        exec_ms: u64,
        outs: &mut Vec<Out>,
    ) {
        let req = match WireRequest::parse(line) {
            Ok(req) => req,
            Err(e) => {
                outs.push(self.respond(
                    from,
                    &WireResponse::err(
                        "",
                        failure(ErrorClass::Validation, "VAL-MALFORMED-REQUEST", e),
                    ),
                ));
                return;
            }
        };
        match self.role {
            Role::Fenced => {
                outs.push(self.respond(
                    from,
                    &WireResponse::err(
                        req.id,
                        failure(
                            ErrorClass::Resource,
                            "RES-STALE-EPOCH",
                            format!("this server was deposed at epoch {}", self.epoch()),
                        ),
                    ),
                ));
                return;
            }
            Role::Follower | Role::Promoting => {
                outs.push(self.respond(
                    from,
                    &WireResponse::err(
                        req.id,
                        failure(
                            ErrorClass::Resource,
                            "RES-NOT-PRIMARY",
                            "this server is a replica; ask the primary",
                        ),
                    ),
                ));
                return;
            }
            Role::Primary => {}
        }
        let Some(rid) = req.request_id.clone() else {
            // Unkeyed requests answer immediately (ping-like).
            outs.push(self.respond(from, &WireResponse::ok(req.id, Json::obj([]))));
            return;
        };
        if let Some((kind, stored)) = self.completed.get(&rid) {
            if kind.serves_retries() {
                // Byte-identical journal-served retry, zero recompute.
                self.deduped += 1;
                let stored = stored.clone();
                if let Ok(mut resp) = WireResponse::parse(&stored) {
                    resp.id = req.id.clone();
                    outs.push(self.respond(from, &resp));
                } else {
                    outs.push(self.respond(
                        from,
                        &WireResponse::err(
                            req.id,
                            failure(
                                ErrorClass::Io,
                                "IO-FAILURE",
                                "journaled response unreadable",
                            ),
                        ),
                    ));
                }
                return;
            }
        }
        if self.inflight.contains(&rid) {
            outs.push(self.respond(
                from,
                &WireResponse::err(
                    req.id,
                    failure(
                        ErrorClass::Resource,
                        "RES-DUPLICATE-REQUEST",
                        format!("request_id `{rid}` is already executing"),
                    ),
                ),
            ));
            return;
        }
        // Admit: journal (fsync) before execution, replicate, execute.
        self.append(RecordKind::Admit, &rid, line.trim_end(), outs);
        self.inflight.insert(rid.clone());
        outs.push(Out::Timer {
            delay_ms: exec_ms,
            timer: NodeTimer::Exec {
                rid,
                reply_to: from.to_string(),
            },
        });
        let _ = now_ms;
    }

    /// The execution timer fired: settle the admitted request.
    pub(crate) fn on_exec(
        &mut self,
        rid: &str,
        reply_to: &str,
        now_ms: u64,
        exec_ms: u64,
        outs: &mut Vec<Out>,
    ) {
        if self.role != Role::Primary {
            // Deposed mid-execution: the admit stays unsettled in our
            // journal; whoever promoted replays it.
            self.inflight.remove(rid);
            return;
        }
        let line = self
            .journal
            .iter()
            .rev()
            .find(|r| r.kind == RecordKind::Admit && r.rid == rid)
            .map(|r| r.line.clone())
            .unwrap_or_default();
        self.execute(rid, &line, now_ms, exec_ms, Some(reply_to), outs);
    }

    /// Executes one admitted request: deterministic compute, Done/Fail
    /// journal record, dedup-map publish, reply (when a client is still
    /// attached). The `exec_count` bump is what invariant 3 audits.
    fn execute(
        &mut self,
        rid: &str,
        line: &str,
        _now_ms: u64,
        _exec_ms: u64,
        reply_to: Option<&str>,
        outs: &mut Vec<Out>,
    ) {
        if let Some((kind, _)) = self.completed.get(rid) {
            if kind.serves_retries() {
                outs.push(Out::Violation(format!(
                    "{}: recomputed settled request_id `{rid}`",
                    self.addr
                )));
            }
        }
        *self.exec_count.entry(rid.to_string()).or_insert(0) += 1;
        self.inflight.remove(rid);
        let resp = compute_response(rid, line);
        let resp_line = resp.render_line().trim_end().to_string();
        let kind = if resp.outcome.is_ok() {
            RecordKind::Done
        } else {
            RecordKind::Fail
        };
        self.append(kind, rid, &resp_line, outs);
        self.completed
            .insert(rid.to_string(), (kind, resp_line.clone()));
        if let Some(to) = reply_to {
            outs.push(Out::Send {
                to: to.to_string(),
                line: resp_line,
            });
        }
    }

    /// Appends one record to the journal and streams it to every
    /// follower immediately (the real primary's publish + notify path).
    fn append(&mut self, kind: RecordKind, rid: &str, line: &str, outs: &mut Vec<Out>) {
        self.journal.push(JournalRecord {
            kind,
            rid: rid.to_string(),
            line: line.to_string(),
        });
        let epoch = self.epoch();
        let seq = self.journal.len() as u64;
        let crc = crc32(&payload_bytes(kind, rid, line));
        let streams: Vec<String> = self
            .streams
            .iter()
            .filter(|(_, cursor)| *cursor == seq - 1)
            .map(|(addr, _)| addr.clone())
            .collect();
        for addr in streams {
            outs.push(Out::Send {
                to: addr.clone(),
                line: ReplMsg::Rec {
                    epoch,
                    seq,
                    crc,
                    kind,
                    rid: rid.to_string(),
                    line: line.to_string(),
                }
                .render_line()
                .trim_end()
                .to_string(),
            });
            for (a, c) in &mut self.streams {
                if *a == addr {
                    *c = seq;
                }
            }
        }
    }

    fn peers(&self) -> Vec<String> {
        self.cluster
            .iter()
            .filter(|a| **a != self.addr)
            .cloned()
            .collect()
    }

    fn hello_line(&self) -> String {
        ReplMsg::Hello {
            epoch: self.epoch(),
            have: self.journal.len() as u64,
            pcrc: prefix_crc(&self.journal),
            from: self.addr.clone(),
        }
        .render_line()
        .trim_end()
        .to_string()
    }

    fn err_to(&self, to: &str, code: &str) -> Out {
        Out::Send {
            to: to.to_string(),
            line: ReplMsg::Err {
                code: code.to_string(),
                epoch: self.epoch(),
            }
            .render_line()
            .trim_end()
            .to_string(),
        }
    }

    fn respond(&self, to: &str, resp: &WireResponse) -> Out {
        Out::Send {
            to: to.to_string(),
            line: resp.render_line().trim_end().to_string(),
        }
    }
}

fn failure(class: ErrorClass, code: &str, message: impl Into<String>) -> WireFailure {
    WireFailure {
        class,
        code: code.to_string(),
        message: message.into(),
    }
}

/// The simulated optimizer: a pure function of the request key, so a
/// replay or a recompute on another node produces byte-identical output
/// — which is exactly what lets the harness check response identity
/// structurally while `exec_count` separately proves zero recompute.
/// One in seven keys fails deterministically (a classified `Fail`
/// completion), so the retry-serving path covers failures too.
pub(crate) fn compute_response(rid: &str, line: &str) -> WireResponse {
    let mut hasher = DefaultHasher::new();
    rid.hash(&mut hasher);
    line.hash(&mut hasher);
    let mut rng = SplitMix64::new(hasher.finish());
    let value = rng.next_u64() & ((1 << 53) - 1);
    if value.is_multiple_of(7) {
        WireResponse::err(
            rid,
            failure(
                ErrorClass::Numerical,
                "NUM-NONFINITE",
                format!("simulated deterministic failure for `{rid}`"),
            ),
        )
    } else {
        WireResponse::ok(rid, Json::obj([("sim_result", Json::Num(value as f64))]))
    }
}

//! Simulated implementations of the `lintra-serve` seams: a virtual
//! [`Clock`] whose `sleep` advances a counter instead of blocking, and a
//! scripted in-memory [`Transport`] that answers wire lines without a
//! socket. Together they run the *real* [`lintra_serve::Client`] —
//! retries, backoff, endpoint walk and all — single-threadedly under
//! virtual time: a test that would spend seconds sleeping finishes in
//! microseconds and is bit-reproducible.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lintra_serve::clock::Clock;
use lintra_serve::transport::{Acceptor, Conn, NetError, Transport};

/// Virtual monotonic time: a nanosecond counter that only moves when
/// someone sleeps on it (or advances it explicitly). Shared between the
/// code under test and the harness via `Arc`.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Moves virtual time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        // Sleeping IS advancing: the sleeper is the only runnable work.
        self.advance(d);
    }
}

/// What a scripted endpoint does with one received line.
pub enum Reply {
    /// Answer with this line (newline appended) after the given virtual
    /// delay.
    LineAfter(String, Duration),
    /// Swallow the line; the caller's read budget will expire.
    Silence,
    /// Close the connection without answering.
    Close,
}

type Responder = Box<dyn FnMut(&str) -> Reply + Send>;

#[derive(Default)]
struct NetInner {
    servers: HashMap<String, Responder>,
    /// Virtual cost of a refused/accepted connect and of delivery.
    latency: Duration,
}

/// A scripted in-memory network implementing the serve [`Transport`].
/// Endpoints are registered with [`ScriptedNet::serve`]; everything else
/// refuses connections like a dead port.
#[derive(Clone)]
pub struct ScriptedNet {
    clock: Arc<SimClock>,
    inner: Arc<Mutex<NetInner>>,
}

impl std::fmt::Debug for ScriptedNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedNet").finish_non_exhaustive()
    }
}

impl ScriptedNet {
    /// An empty network on the given clock with a 1 ms hop latency.
    pub fn new(clock: Arc<SimClock>) -> ScriptedNet {
        ScriptedNet {
            clock,
            inner: Arc::new(Mutex::new(NetInner {
                servers: HashMap::new(),
                latency: Duration::from_millis(1),
            })),
        }
    }

    /// Registers (or replaces) the responder behind `addr`.
    pub fn serve(
        &self,
        addr: impl Into<String>,
        responder: impl FnMut(&str) -> Reply + Send + 'static,
    ) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.servers.insert(addr.into(), Box::new(responder));
        }
    }

    /// Removes the endpoint; subsequent connects are refused.
    pub fn kill(&self, addr: &str) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.servers.remove(addr);
        }
    }
}

impl Transport for ScriptedNet {
    fn connect(&self, addr: &str, _timeout: Duration) -> Result<Box<dyn Conn>, NetError> {
        let (known, latency) = match self.inner.lock() {
            Ok(inner) => (inner.servers.contains_key(addr), inner.latency),
            Err(_) => return Err(NetError::Failed("scripted net poisoned".to_string())),
        };
        // Even a refused connect costs a round trip of virtual time.
        self.clock.advance(latency);
        if !known {
            return Err(NetError::Failed(format!("connecting to {addr}: refused")));
        }
        Ok(Box::new(ScriptedConn {
            addr: addr.to_string(),
            clock: Arc::clone(&self.clock),
            inner: Arc::clone(&self.inner),
            inbox: VecDeque::new(),
            partial: Vec::new(),
            closed_at: None,
        }))
    }

    fn bind(&self, _addr: &str) -> Result<Box<dyn Acceptor>, NetError> {
        Err(NetError::Failed(
            "the scripted net drives clients only; it does not bind listeners".to_string(),
        ))
    }
}

struct ScriptedConn {
    addr: String,
    clock: Arc<SimClock>,
    inner: Arc<Mutex<NetInner>>,
    /// Queued response bytes with the virtual instant they become
    /// readable.
    inbox: VecDeque<(Duration, Vec<u8>)>,
    /// Unterminated tail of sent bytes, waiting for its newline.
    partial: Vec<u8>,
    /// Set once the scripted peer closed; reads past the queue EOF.
    closed_at: Option<Duration>,
}

impl Conn for ScriptedConn {
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        if self.closed_at.is_some() {
            return Err(NetError::Closed);
        }
        self.partial.extend_from_slice(bytes);
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line).trim_end().to_string();
            let mut inner = self
                .inner
                .lock()
                .map_err(|_| NetError::Failed("scripted net poisoned".to_string()))?;
            let latency = inner.latency;
            let now = self.clock.now();
            match inner.servers.get_mut(&self.addr) {
                None => return Err(NetError::Closed), // endpoint died mid-conversation
                Some(responder) => match responder(&line) {
                    Reply::LineAfter(mut text, after) => {
                        text.push('\n');
                        self.inbox
                            .push_back((now + latency + after, text.into_bytes()));
                    }
                    Reply::Silence => {}
                    Reply::Close => self.closed_at = Some(now + latency),
                },
            }
        }
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        let now = self.clock.now();
        let deadline = now + timeout;
        if let Some((ready, _)) = self.inbox.front() {
            let ready = *ready;
            if ready <= deadline {
                if ready > now {
                    self.clock.advance(ready - now);
                }
                let (_, bytes) = match self.inbox.pop_front() {
                    Some(entry) => entry,
                    None => return Err(NetError::Timeout),
                };
                let n = bytes.len().min(buf.len());
                buf[..n].copy_from_slice(&bytes[..n]);
                if n < bytes.len() {
                    self.inbox.push_front((ready, bytes[n..].to_vec()));
                }
                return Ok(n);
            }
        }
        if let Some(closed) = self.closed_at {
            if closed <= deadline {
                if closed > now {
                    self.clock.advance(closed - now);
                }
                return Err(NetError::Closed);
            }
        }
        self.clock.advance(timeout);
        Err(NetError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_on_sleep() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_secs(3600));
        assert_eq!(clock.now(), Duration::from_secs(3600));
    }

    #[test]
    fn scripted_net_round_trips_and_refuses_unknown_endpoints() {
        let clock = SimClock::new();
        let net = ScriptedNet::new(Arc::clone(&clock));
        net.serve("alpha:1", |line| {
            Reply::LineAfter(format!("echo {line}"), Duration::from_millis(5))
        });
        let mut conn = net
            .connect("alpha:1", Duration::from_secs(1))
            .expect("registered endpoint accepts");
        conn.send(b"hello\n").expect("send");
        let mut buf = [0u8; 64];
        let n = conn.recv(&mut buf, Duration::from_secs(1)).expect("reply");
        assert_eq!(&buf[..n], b"echo hello\n");
        assert!(net.connect("dead:1", Duration::from_secs(1)).is_err());
    }
}

//! The `lintra-serve` TCP server.
//!
//! Transport: newline-delimited JSON over TCP (see
//! [`lintra_bench::wire`]), one thread per connection, requests handled
//! inline on the connection thread with sweeps fanned out through the
//! shared engine [`ThreadPool`]. Robustness machinery, outermost first:
//!
//! 1. **Malformed input** never crosses the parse boundary: any
//!    unparseable or invalid request line is answered with a
//!    `VAL-MALFORMED-REQUEST` failure and the connection stays usable.
//! 2. **Admission control**: at most [`ServerConfig::max_inflight`]
//!    requests execute at once; excess load is *shed* immediately with
//!    `RES-OVERLOAD` (never queued unboundedly, so latency stays bounded
//!    under overload).
//! 3. **Deadlines**: every request gets a [`CancelToken`] fixed at
//!    admission ([`WireRequest::deadline_ms`] or the server default).
//!    Sweeps observe it between points, so an expired request returns
//!    `RES-DEADLINE` within one sweep point of its budget — the "2× the
//!    deadline" service guarantee.
//! 4. **Watchdog**: a sweep point exceeding
//!    [`ServerConfig::stall_budget`] is flagged `RES-WORKER-STALL`
//!    rather than trusted.
//! 5. **Circuit breaker**: consecutive engine worker panics open the
//!    breaker ([`crate::breaker`]); requests are rejected with
//!    `RES-CIRCUIT-OPEN` until a cooldown and a successful probe.
//! 6. **Graceful drain**: [`ServerHandle::shutdown`] stops accepting,
//!    answers new requests with `RES-SHUTDOWN`, lets every in-flight
//!    request finish and its response flush, then joins all threads.
//!
//! Chaos testing: a server started with [`ServerConfig::chaos`] honors
//! the request's `fault` member (`slow-worker`, `slow-sweep`,
//! `worker-panic`, `conn-drop`) so the full failure matrix can be driven
//! deterministically from a test. Production servers reject the member
//! with `VAL-CONFIG`.
//!
//! # Durability
//!
//! A server started with [`ServerConfig::journal_dir`] is *durable*:
//!
//! * every request carrying a `lintra-wire/v2` `request_id` is appended
//!   to a write-ahead journal and **fsync'd before execution begins**
//!   ([`crate::journal`]);
//! * completions are journaled too, so a retry of a settled key is
//!   answered with the journaled, bit-identical result — zero sweep
//!   recompute ([`ServerStats::deduped`]) — while the *same* key
//!   arriving twice concurrently is rejected with
//!   `RES-DUPLICATE-REQUEST`;
//! * on restart, admitted-but-unfinished requests are re-executed
//!   before the listener opens ([`ServerStats::replayed`],
//!   [`RecoveryReport`]);
//! * sweep caches are checkpointed to crash-safe snapshots
//!   ([`lintra::engine::snapshot`]) and reloaded on restart; a corrupt
//!   snapshot or journal is quarantined (`IO-SNAPSHOT-CORRUPT` /
//!   `IO-JOURNAL-CORRUPT`) — the server always starts.
//!
//! # Replication
//!
//! A durable server can replicate ([`crate::replicate`]): started with
//! [`ServerConfig::replica_of`] it is a *follower* — it streams the
//! primary's journal into its own (fsync-before-ack), keeps caches warm,
//! answers pings and replication status queries, rejects compute with
//! `RES-NOT-PRIMARY`, and promotes itself (new epoch, snapshot install,
//! replay of unsettled records) when the primary stays silent past
//! [`ServerConfig::failover_grace`]. A deposed primary is *fenced*: once
//! a higher epoch exists, every request it receives — pings included —
//! is refused with `RES-STALE-EPOCH`.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use lintra::engine::{
    snapshot, CacheStats, CancelReason, CancelToken, EngineError, SweepCache, SweepCtl, ThreadPool,
};
use lintra::linsys::count::{op_count, TrivialityRule};
use lintra::opt::multi::ProcessorSelection;
use lintra::opt::{asic, multi, saturate, single, Strategy, TechConfig};
use lintra::suite::by_name;
use lintra::{ErrorClass, LintraError};
use lintra_bench::json::Json;
use lintra_bench::render::{render_table2, render_table3, render_table4};
use lintra_bench::wire::{WireFailure, WireOp, WireRequest, WireResponse};
use lintra_bench::{table2_rows_par, table3_rows_par, table4_rows_par};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::clock::{Clock, SystemClock};
use crate::journal::{Journal, JournalRecord, RecordKind, SNAPSHOT_DIR};
use crate::replicate::{self, ReplChaos, ReplMsg, ReplState, Role};
use crate::signal;
use crate::transport::{Acceptor, Conn, NetError, TcpTransport, Transport};

/// How often blocked reads and the accept loop re-check the drain flag.
const POLL: Duration = Duration::from_millis(20);

/// The fault names a chaos server honors.
const KNOWN_FAULTS: [&str; 4] = ["slow-worker", "slow-sweep", "worker-panic", "conn-drop"];

/// Server tuning; [`ServerConfig::default`] is production-shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Admission bound: requests executing at once before load is shed
    /// with `RES-OVERLOAD`.
    pub max_inflight: usize,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline: Duration,
    /// Ceiling on client-requested deadlines (a client cannot pin a
    /// worker for longer than this).
    pub max_deadline: Duration,
    /// Watchdog budget per sweep point (`RES-WORKER-STALL` beyond it).
    pub stall_budget: Duration,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Engine worker threads (`None` = `LINTRA_JOBS` / auto-detect).
    pub jobs: Option<usize>,
    /// Honor the wire `fault` member (chaos testing only).
    pub chaos: bool,
    /// Per-point delay injected by the `slow-sweep` fault (and the sleep
    /// used by `slow-worker`, which sleeps `3 × stall_budget`).
    pub chaos_point_delay: Duration,
    /// Durability directory (`None` = stateless). When set, the server
    /// keeps a write-ahead request journal (`journal.log`) and cache
    /// snapshots (`snapshots/*.snap`) here, replays unfinished work on
    /// startup, and answers retried `request_id`s from the journal.
    pub journal_dir: Option<PathBuf>,
    /// Size-capped journal rotation: when `Some(t)`, an append that
    /// leaves `journal.log` above `t` bytes compacts settled records
    /// into a `journal.seg-N` segment and truncates the live log.
    /// Requires [`ServerConfig::journal_dir`] and is incompatible with
    /// replication — followers mirror the primary's journal *file*
    /// byte-for-byte, and rotation rewrites it.
    pub journal_rotate_bytes: Option<u64>,
    /// Replicate from this primary (`host:port`). Requires
    /// [`ServerConfig::journal_dir`]; the server starts as a follower.
    pub replica_of: Option<String>,
    /// Peer replica addresses consulted during failover arbitration and
    /// watched for higher epochs (a primary self-fences when a peer
    /// reports one). Requires [`ServerConfig::journal_dir`].
    pub peers: Vec<String>,
    /// Where the epoch file lives (`None` = the journal directory).
    pub epoch_dir: Option<PathBuf>,
    /// How long a follower tolerates primary silence before arbitrating
    /// a failover.
    pub failover_grace: Duration,
    /// Primary→follower heartbeat interval while the stream is idle.
    pub heartbeat: Duration,
    /// Deterministic replication-fault injection (tests only).
    pub repl_chaos: Option<ReplChaos>,
    /// Time source: every `now`/`sleep`/deadline in the server goes
    /// through this seam so the simulator can substitute virtual time.
    pub clock: Arc<dyn Clock>,
    /// Network: every connect/accept/read/write goes through this seam
    /// so the simulator can substitute an in-memory network.
    pub transport: Arc<dyn Transport>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 32,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(300),
            stall_budget: Duration::from_secs(10),
            breaker: BreakerConfig::default(),
            jobs: None,
            chaos: false,
            chaos_point_delay: Duration::from_millis(20),
            journal_dir: None,
            journal_rotate_bytes: None,
            replica_of: None,
            peers: Vec::new(),
            epoch_dir: None,
            failover_grace: Duration::from_secs(2),
            heartbeat: Duration::from_millis(250),
            repl_chaos: None,
            clock: Arc::new(SystemClock::new()),
            transport: Arc::new(TcpTransport),
        }
    }
}

/// Monotonic counters, readable at any time and returned by
/// [`ServerHandle::shutdown`] as the drain report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered with a result.
    pub requests_ok: u64,
    /// Requests answered with a classified failure.
    pub requests_failed: u64,
    /// Requests shed with `RES-OVERLOAD`.
    pub shed: u64,
    /// Retried `request_id`s answered from the journal (zero recompute).
    pub deduped: u64,
    /// Journaled requests re-executed during startup recovery.
    pub replayed: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    connections: AtomicU64,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    shed: AtomicU64,
    deduped: AtomicU64,
    pub(crate) replayed: AtomicU64,
}

/// What startup recovery found in the durability directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Settled keys loaded from the journal (servable to retries).
    pub answered: usize,
    /// Admitted-but-unfinished requests re-executed before the listener
    /// opened.
    pub replayed: usize,
    /// True when a torn journal tail was truncated away (the normal
    /// `kill -9` artifact; not corruption).
    pub torn_tail: bool,
    /// Where a corrupt journal was moved, if one was found
    /// (`IO-JOURNAL-CORRUPT`).
    pub journal_quarantined: Option<PathBuf>,
    /// Cache snapshots loaded and warm.
    pub snapshots_loaded: usize,
    /// Corrupt cache snapshots quarantined (`IO-SNAPSHOT-CORRUPT`).
    pub snapshots_quarantined: usize,
}

/// Idempotency state guarded by one lock: the journal's append handle,
/// the settled-key map, and the keys currently executing.
pub(crate) struct Durability {
    pub(crate) journal: Journal,
    /// Settled keys → (how they settled, the exact response line).
    pub(crate) completed: HashMap<String, (RecordKind, String)>,
    /// Keys admitted but not yet settled (concurrent duplicates are
    /// rejected with `RES-DUPLICATE-REQUEST`).
    inflight_ids: HashSet<String>,
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pool: ThreadPool,
    breaker: CircuitBreaker,
    inflight: AtomicUsize,
    pub(crate) draining: AtomicBool,
    pub(crate) stats: Counters,
    /// Shared per-design sweep caches: repeated sweeps reuse the
    /// incremental-unfold chain, and durable servers snapshot them.
    pub(crate) caches: Mutex<HashMap<String, SweepCache>>,
    /// `Some` iff [`ServerConfig::journal_dir`] was set.
    pub(crate) durability: Option<Mutex<Durability>>,
    /// Replication state (`Some` iff durable — every durable server can
    /// stream to followers; only configured followers dial out).
    pub(crate) repl: Option<Arc<ReplState>>,
    /// Feed of acked sweep admits for the follower's cache warmer.
    pub(crate) warm_tx: Option<std::sync::mpsc::Sender<(String, u32)>>,
}

/// A replicated server's role, epoch, and progress — the operator's view
/// ([`ServerHandle::role_info`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleInfo {
    /// Role label: `primary`, `follower`, `promoting`, or `fenced`.
    pub role: &'static str,
    /// Current epoch (term).
    pub epoch: u64,
    /// Journal records held (the replication sequence number).
    pub seq: u64,
    /// The primary a follower replicates from, if any.
    pub primary: Option<String>,
    /// The higher epoch that fenced this server, if fenced.
    pub fenced_by: Option<u64>,
    /// Requests replayed during a promotion on this process.
    pub promoted_replayed: u64,
    /// True when this follower's journal was proven to have diverged
    /// from its primary's (`IO-REPL-CORRUPT` at hello): replication
    /// stopped and it will never promote; wipe and re-seed.
    pub diverged: bool,
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// initiates a drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    recovery: Option<RecoveryReport>,
    repl_threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.stats;
        ServerStats {
            connections: c.connections.load(Ordering::SeqCst),
            requests_ok: c.requests_ok.load(Ordering::SeqCst),
            requests_failed: c.requests_failed.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            deduped: c.deduped.load(Ordering::SeqCst),
            replayed: c.replayed.load(Ordering::SeqCst),
        }
    }

    /// What startup recovery found (`None` on a stateless server).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Replication role, epoch, and progress (`None` on a stateless
    /// server — replication requires durability).
    pub fn role_info(&self) -> Option<RoleInfo> {
        let repl = self.shared.repl.as_ref()?;
        let rs = repl.role_state();
        let fenced_by = repl.fenced_by.load(Ordering::SeqCst);
        Some(RoleInfo {
            role: rs.role.label(),
            epoch: repl.epoch(),
            seq: repl.seq(),
            primary: rs.primary,
            fenced_by: (fenced_by != 0).then_some(fenced_by),
            promoted_replayed: repl.promoted_replayed.load(Ordering::SeqCst),
            diverged: repl.diverged(),
        })
    }

    /// Aggregate hit/miss counters across the shared sweep caches —
    /// the crash gate's "zero recompute" witness: a dedup-served retry
    /// adds no misses here.
    pub fn cache_stats(&self) -> CacheStats {
        let caches = lock_unpoisoned(&self.shared.caches);
        caches.values().fold(CacheStats::default(), |acc, c| {
            let s = c.stats();
            CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            }
        })
    }

    /// Graceful drain: stop accepting, answer new requests with
    /// `RES-SHUTDOWN`, let every in-flight request finish and flush its
    /// response, join all threads. Returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Wake any idle follower streams so they observe the drain.
        if let Some(repl) = &self.shared.repl {
            repl.log_grew.notify_all();
        }
        for h in std::mem::take(&mut self.repl_threads) {
            let _ = h.join();
        }
        let handles = {
            let mut conns = lock_unpoisoned(&self.conns);
            std::mem::take(&mut *conns)
        };
        for h in handles {
            let _ = h.join();
        }
        // Checkpoint the warm caches so the next start resumes them.
        persist_snapshots(&self.shared);
        self.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Idempotent: makes a forgotten handle wind its threads down on
        // their next poll instead of leaking them hot.
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Binds and starts serving in background threads.
///
/// A durable server ([`ServerConfig::journal_dir`]) recovers *before*
/// the listener opens: the journal is scanned (torn tail truncated,
/// corruption quarantined), snapshots are loaded (corruption
/// quarantined), and admitted-but-unfinished requests are re-executed —
/// so the first client to connect sees a consistent service.
///
/// # Errors
///
/// Returns an `IO-FAILURE` error when the bind fails (or the durability
/// directory is unusable) and a `VAL-CONFIG` error for an invalid
/// worker-count configuration (explicit `Some(0)` or a garbage
/// `LINTRA_JOBS`). Damaged journal or snapshot *content* never fails
/// startup — it is quarantined and reported in [`RecoveryReport`].
pub fn start(config: ServerConfig) -> Result<ServerHandle, LintraError> {
    if (config.replica_of.is_some() || !config.peers.is_empty()) && config.journal_dir.is_none() {
        return Err(LintraError::new(
            ErrorClass::Validation,
            "VAL-CONFIG",
            "replication requires durability: set journal_dir alongside replica_of/peers",
        ));
    }
    if config.journal_rotate_bytes.is_some() {
        if config.journal_dir.is_none() {
            return Err(LintraError::new(
                ErrorClass::Validation,
                "VAL-CONFIG",
                "journal rotation requires durability: set journal_dir",
            ));
        }
        if config.replica_of.is_some() || !config.peers.is_empty() {
            return Err(LintraError::new(
                ErrorClass::Validation,
                "VAL-CONFIG",
                "journal rotation is incompatible with replication: followers mirror \
                 the primary's journal byte-for-byte and rotation rewrites it",
            ));
        }
    }
    let pool = match config.jobs {
        Some(0) => {
            return Err(LintraError::new(
                ErrorClass::Validation,
                "VAL-CONFIG",
                "server worker count must be at least 1",
            ))
        }
        Some(n) => ThreadPool::new(n),
        None => ThreadPool::from_env().map_err(LintraError::from)?,
    };

    // Recover durable state before anything can observe the server.
    let mut recovery = None;
    let mut durability = None;
    let mut repl = None;
    let mut caches: HashMap<String, SweepCache> = HashMap::new();
    let mut incomplete: Vec<(String, String)> = Vec::new();
    if let Some(dir) = &config.journal_dir {
        let (journal, rec) =
            Journal::open_dir_with(dir, config.journal_rotate_bytes).map_err(LintraError::from)?;
        let mut report = RecoveryReport {
            answered: rec.completed.len(),
            torn_tail: rec.torn_tail,
            journal_quarantined: rec.quarantined,
            ..RecoveryReport::default()
        };
        load_snapshots(&dir.join(SNAPSHOT_DIR), &mut caches, &mut report)
            .map_err(LintraError::from)?;
        incomplete = rec.incomplete;
        recovery = Some(report);
        let epoch_dir = config.epoch_dir.as_ref().unwrap_or(dir);
        std::fs::create_dir_all(epoch_dir).map_err(LintraError::from)?;
        // A corrupt epoch file is a startup error: silently resetting
        // it to epoch 1 could revive a fenced primary at a stale term.
        repl = Some(Arc::new(
            ReplState::new(
                epoch_dir.join(replicate::EPOCH_FILE),
                config.replica_of.clone(),
                rec.records,
                config.clock.as_ref(),
            )
            .map_err(|e| LintraError::from(e).context("loading the replication epoch file"))?,
        ));
        durability = Some(Mutex::new(Durability {
            journal,
            completed: rec.completed,
            inflight_ids: HashSet::new(),
        }));
    }
    let is_follower = config.replica_of.is_some();

    let listener = config
        .transport
        .bind(config.addr.as_str())
        .map_err(|e| LintraError::new(ErrorClass::Io, "IO-FAILURE", e.to_string()))?;
    let addr: SocketAddr = listener.local_addr().parse().map_err(|_| {
        LintraError::new(
            ErrorClass::Io,
            "IO-FAILURE",
            format!(
                "transport reported an unparseable address {}",
                listener.local_addr()
            ),
        )
    })?;
    if let Some(repl) = &repl {
        *lock_unpoisoned(&repl.self_addr) = addr.to_string();
    }

    let spawn_warmer = is_follower;
    let (warm_tx, warm_rx) = if spawn_warmer {
        let (tx, rx) = std::sync::mpsc::channel();
        (Some(tx), Some(rx))
    } else {
        (None, None)
    };

    let shared = Arc::new(Shared {
        breaker: CircuitBreaker::new(config.breaker),
        config,
        pool,
        inflight: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        stats: Counters::default(),
        caches: Mutex::new(caches),
        durability,
        repl,
        warm_tx,
    });

    // Replay unfinished admissions synchronously: each settles with a
    // journaled completion, so a retry of its key dedups instead of
    // recomputing. A follower skips this — its unsettled records replay
    // at promotion, when it becomes the one answering for them. A
    // shutdown signal aborts the replay at the next record boundary.
    let mut replayed = 0usize;
    if !is_follower {
        for (rid, line) in incomplete {
            if signal::shutdown_requested() {
                break;
            }
            replay_request(&shared, &rid, &line);
            shared.stats.replayed.fetch_add(1, Ordering::SeqCst);
            replayed += 1;
        }
    }
    if let Some(report) = recovery.as_mut() {
        report.replayed = replayed;
    }

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        thread::spawn(move || accept_loop(&shared, listener, &conns))
    };

    let mut repl_threads = Vec::new();
    if is_follower {
        let sh = Arc::clone(&shared);
        repl_threads.push(thread::spawn(move || replicate::follower_loop(sh)));
        if let Some(rx) = warm_rx {
            let sh = Arc::clone(&shared);
            repl_threads.push(thread::spawn(move || replicate::warm_loop(&sh, &rx)));
        }
    } else if shared.repl.is_some() && !shared.config.peers.is_empty() {
        let sh = Arc::clone(&shared);
        repl_threads.push(thread::spawn(move || replicate::guard_loop(&sh)));
    }

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        conns,
        recovery,
        repl_threads,
    })
}

/// Loads every `*.snap` in `dir` into `caches` via the engine's shared
/// install path ([`snapshot::install_dir`] — also used at promotion); a
/// snapshot that fails its checksum or invariants is quarantined, never
/// trusted and never fatal.
fn load_snapshots(
    dir: &std::path::Path,
    caches: &mut HashMap<String, SweepCache>,
    report: &mut RecoveryReport,
) -> Result<(), std::io::Error> {
    let installed = snapshot::install_dir(dir, caches)?;
    report.snapshots_loaded += installed.loaded;
    report.snapshots_quarantined += installed.quarantined;
    Ok(())
}

/// Appends one record to the in-memory replication log and wakes idle
/// follower streams. Called with the durability lock held, right after
/// the matching journal append succeeded, so the log mirrors the journal
/// byte-for-byte and in order.
fn publish_record(shared: &Shared, kind: RecordKind, rid: &str, line: &str) {
    let Some(repl) = &shared.repl else { return };
    let mut log = lock_unpoisoned(&repl.log);
    log.push(JournalRecord {
        kind,
        rid: rid.to_string(),
        line: line.trim_end_matches('\n').to_string(),
    });
    repl.log_grew.notify_all();
}

/// Re-executes one journaled-but-unfinished request at startup and
/// journals its completion. The original client is gone; what matters
/// is that the key settles so retries are answered from the journal.
pub(crate) fn replay_request(shared: &Arc<Shared>, rid: &str, line: &str) {
    let resp = match WireRequest::parse(line) {
        Ok(req) => {
            let budget = req
                .deadline_ms
                .map(Duration::from_millis)
                .unwrap_or(shared.config.default_deadline)
                .min(shared.config.max_deadline);
            let token = CancelToken::with_deadline(budget);
            match execute(shared, &req, &token) {
                Ok(result) => WireResponse::ok(req.id, result),
                Err(e) => WireResponse::err(req.id, failure_of(&e)),
            }
        }
        // A journaled line that no longer parses settles as a
        // deterministic validation failure (it would never succeed).
        Err(reason) => WireResponse::err(
            "",
            WireFailure {
                class: ErrorClass::Validation,
                code: "VAL-MALFORMED-REQUEST".to_string(),
                message: format!("journaled request no longer parses: {reason}"),
            },
        ),
    };
    settle(shared, rid, &resp);
}

/// How a completed attempt is recorded: deterministic outcomes serve
/// retries; resource/I-O outcomes settle the admit but let retries
/// recompute.
fn completion_kind(resp: &WireResponse) -> RecordKind {
    match &resp.outcome {
        Ok(_) => RecordKind::Done,
        Err(f) => match f.class {
            ErrorClass::Validation | ErrorClass::Numerical | ErrorClass::Convergence => {
                RecordKind::Fail
            }
            ErrorClass::Resource | ErrorClass::Io => RecordKind::Abort,
        },
    }
}

/// Journals a completion and publishes it to the dedup map. Append
/// errors are tolerated: the admit record alone means a crash replays
/// the request, which is the safe direction.
fn settle(shared: &Arc<Shared>, rid: &str, resp: &WireResponse) {
    let Some(dur) = &shared.durability else {
        return;
    };
    let kind = completion_kind(resp);
    let line = resp.render_line();
    let trimmed = line.trim_end().to_string();
    let mut d = lock_unpoisoned(dur);
    d.inflight_ids.remove(rid);
    if d.journal.append(kind, rid, &trimmed).is_ok() {
        publish_record(shared, kind, rid, &trimmed);
    }
    d.completed.insert(rid.to_string(), (kind, trimmed));
}

/// Best-effort checkpoint of every warm sweep cache into the durability
/// directory (atomic write-rename per design). Snapshots are an
/// optimization: a failed save costs recompute, never correctness.
pub(crate) fn persist_snapshots(shared: &Arc<Shared>) {
    let Some(dir) = &shared.config.journal_dir else {
        return;
    };
    let snap_dir = dir.join(SNAPSHOT_DIR);
    if std::fs::create_dir_all(&snap_dir).is_err() {
        return;
    }
    let caches = lock_unpoisoned(&shared.caches);
    for (design, cache) in caches.iter() {
        let _ = snapshot::save(cache, &snap_dir.join(format!("{design}.snap")));
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    mut listener: Box<dyn Acceptor>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(conn)) => {
                shared.stats.connections.fetch_add(1, Ordering::SeqCst);
                let sh = Arc::clone(shared);
                let handle = thread::spawn(move || connection_loop(&sh, conn));
                let mut guard = lock_unpoisoned(conns);
                // Reap finished connection threads so a long-lived server
                // does not accumulate handles without bound.
                let (done, live): (Vec<_>, Vec<_>) = std::mem::take(&mut *guard)
                    .into_iter()
                    .partition(JoinHandle::is_finished);
                *guard = live;
                guard.push(handle);
                drop(guard);
                for h in done {
                    let _ = h.join();
                }
            }
            // Nothing to accept, or a transient listener error — either
            // way, back off one poll tick and re-check drain.
            Ok(None) | Err(_) => shared.config.clock.sleep(POLL),
        }
    }
}

/// What to do with one request line.
enum LineOutcome {
    Respond(WireResponse),
    /// Close the connection without responding (`conn-drop` chaos).
    Drop,
}

fn connection_loop(shared: &Arc<Shared>, mut conn: Box<dyn Conn>) {
    let clock = shared.config.clock.as_ref();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Slow-loris guard: the moment a partial frame starts accumulating,
    // the sender is on the clock. A connection holding an unfinished
    // line past the default deadline is answered `RES-DEADLINE` and
    // closed, so it cannot pin this handler thread indefinitely. Idle
    // connections (empty buffer) stay open.
    let mut partial_since: Option<Duration> = None;
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim_end();
            // Replication messages share the listener with client
            // traffic; a `"repl"`-keyed line never reaches handle_line.
            // Status is answered even without replication configured —
            // health probers (the sharded router's, an operator's) must
            // be able to ask a standalone server who it is, and the
            // reply's `stateless` role is how they learn it serves.
            if let Some(msg) = ReplMsg::parse(line) {
                match msg {
                    ReplMsg::Status => {
                        let reply = status_reply(shared);
                        if conn.send(reply.render_line().as_bytes()).is_err() {
                            return;
                        }
                        continue;
                    }
                    ReplMsg::Hello {
                        epoch,
                        have,
                        pcrc,
                        from,
                    } if shared.repl.is_some() => {
                        // The connection becomes a follower stream.
                        replicate::stream_to_follower(shared, conn, epoch, have, pcrc, from);
                        return;
                    }
                    // Anything else arriving cold — or a follower
                    // handshake aimed at an unreplicated server — is a
                    // protocol violation: close.
                    _ => return,
                }
            }
            match handle_line(shared, line) {
                LineOutcome::Drop => return,
                LineOutcome::Respond(resp) => {
                    if conn.send(resp.render_line().as_bytes()).is_err() {
                        return;
                    }
                }
            }
        }
        if shared.draining.load(Ordering::SeqCst) {
            // Idle (or fully-answered) connection during a drain: close.
            // In-flight requests never reach here — they are executing
            // inside handle_line above and flush their response first.
            return;
        }
        // Frame-size guard, the slow loris's fast sibling: a sender that
        // streams past MAX_FRAME_BYTES without ever producing a newline
        // is answered VAL-FRAME-TOO-LARGE and closed before its frame
        // can grow the buffer without bound.
        if buf.len() > crate::transport::MAX_FRAME_BYTES {
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            let resp = WireResponse::err(
                "",
                WireFailure {
                    class: ErrorClass::Validation,
                    code: "VAL-FRAME-TOO-LARGE".to_string(),
                    message: format!(
                        "request frame exceeds {} bytes without a newline; closing the connection",
                        crate::transport::MAX_FRAME_BYTES
                    ),
                },
            );
            let _ = conn.send(resp.render_line().as_bytes());
            return;
        }
        match (buf.is_empty(), partial_since) {
            (true, _) => partial_since = None,
            (false, None) => partial_since = Some(clock.now()),
            (false, Some(since)) => {
                if clock.now().saturating_sub(since) > shared.config.default_deadline {
                    let resp = WireResponse::err(
                        "",
                        WireFailure {
                            class: ErrorClass::Resource,
                            code: "RES-DEADLINE".to_string(),
                            message: format!(
                                "request frame incomplete after {} ms; closing the connection",
                                shared.config.default_deadline.as_millis()
                            ),
                        },
                    );
                    let _ = conn.send(resp.render_line().as_bytes());
                    return;
                }
            }
        }
        match conn.recv(&mut chunk, POLL) {
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(NetError::Timeout) => {}
            // EOF — client gone (possibly mid-line; drop the partial) —
            // or a torn link: either way the conversation is over.
            Err(_) => return,
        }
    }
}

/// Renders this server's replication status (role, epoch, sequence,
/// answered keys) for a `{"repl":"status"}` query.
fn status_reply(shared: &Arc<Shared>) -> ReplMsg {
    let answered = shared
        .durability
        .as_ref()
        .map(|d| lock_unpoisoned(d).completed.len() as u64)
        .unwrap_or(0);
    match &shared.repl {
        Some(repl) => {
            let rs = repl.role_state();
            ReplMsg::StatusReply {
                role: rs.role.label().to_string(),
                epoch: repl.epoch(),
                seq: repl.seq(),
                answered,
                nonce: repl.nonce,
                primary: rs.primary,
            }
        }
        None => ReplMsg::StatusReply {
            role: "stateless".to_string(),
            epoch: 0,
            seq: 0,
            answered,
            nonce: 0,
            primary: None,
        },
    }
}

fn failure_of(e: &LintraError) -> WireFailure {
    // The wire form re-renders the `error[CODE] class:` prefix on the
    // client side, so carry only the bare message + flattened context.
    let mut message = e.message().to_string();
    for frame in e.context_frames() {
        message.push_str("; while ");
        message.push_str(frame);
    }
    WireFailure {
        class: e.class(),
        code: e.code().to_string(),
        message,
    }
}

fn reject(id: &str, class: ErrorClass, code: &str, message: impl Into<String>) -> LineOutcome {
    LineOutcome::Respond(WireResponse::err(
        id,
        WireFailure {
            class,
            code: code.to_string(),
            message: message.into(),
        },
    ))
}

/// Decrements the in-flight gauge on scope exit, even on panic.
struct Permit<'g> {
    gauge: &'g AtomicUsize,
}

impl<'g> Permit<'g> {
    fn try_acquire(gauge: &'g AtomicUsize, cap: usize) -> Option<Permit<'g>> {
        gauge
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cap).then_some(n + 1)
            })
            .ok()
            .map(|_| Permit { gauge })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str) -> LineOutcome {
    let req = match WireRequest::parse(line) {
        Ok(req) => req,
        Err(reason) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            // Best-effort id echo so pipelined clients can correlate.
            let id = Json::parse(line)
                .ok()
                .and_then(|doc| doc.get("id").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_default();
            return reject(
                &id,
                ErrorClass::Validation,
                "VAL-MALFORMED-REQUEST",
                format!("malformed request: {reason}"),
            );
        }
    };

    // Version negotiation: a frame declaring a version this build does
    // not speak is a *configuration* disagreement (VAL-CONFIG), answered
    // with the right correlation id — never misread as a v1/v2 frame.
    if let Err(reason) = req.check_version() {
        shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
        return reject(&req.id, ErrorClass::Validation, "VAL-CONFIG", reason);
    }

    // Replication role gate. A fenced server refuses everything — pings
    // included — so nothing keeps trusting a deposed primary. A
    // follower answers pings (health) but sends compute to the primary.
    if let Some(repl) = &shared.repl {
        let rs = repl.role_state();
        match rs.role {
            Role::Fenced => {
                shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
                let by = repl.fenced_by.load(Ordering::SeqCst);
                let epoch = repl.epoch();
                // After a restart the superseded epoch is no longer
                // known — the epoch file only carries the superseding
                // one — so name just the fence in that case.
                let message = if epoch < by {
                    format!(
                        "epoch {epoch} was superseded by epoch {by}; this server is \
                         fenced — talk to the current primary"
                    )
                } else {
                    format!(
                        "this server is durably fenced as of epoch {by} — talk to the \
                         current primary, or rejoin it with --replica-of"
                    )
                };
                return reject(&req.id, ErrorClass::Resource, "RES-STALE-EPOCH", message);
            }
            Role::Follower | Role::Promoting if !matches!(req.op, WireOp::Ping) => {
                shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
                let hint = rs
                    .primary
                    .map(|p| format!("; the primary is {p}"))
                    .unwrap_or_default();
                return reject(
                    &req.id,
                    ErrorClass::Resource,
                    "RES-NOT-PRIMARY",
                    format!(
                        "this server is a {} replica and does not accept compute \
                         requests{hint}",
                        rs.role.label()
                    ),
                );
            }
            _ => {}
        }
    }

    // Chaos gate: reject typos always, reject injection on production
    // servers, honor conn-drop by closing without a response.
    if let Some(fault) = req.fault.as_deref() {
        if !KNOWN_FAULTS.contains(&fault) {
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            return reject(
                &req.id,
                ErrorClass::Validation,
                "VAL-CONFIG",
                format!(
                    "unknown fault `{fault}`; known: {}",
                    KNOWN_FAULTS.join(", ")
                ),
            );
        }
        if !shared.config.chaos {
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            return reject(
                &req.id,
                ErrorClass::Validation,
                "VAL-CONFIG",
                "fault injection is disabled on this server (start with chaos enabled)",
            );
        }
        if fault == "conn-drop" {
            return LineOutcome::Drop;
        }
    }

    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
        return reject(
            &req.id,
            ErrorClass::Resource,
            "RES-SHUTDOWN",
            "server is draining and no longer accepts work",
        );
    }

    // Liveness probe: outside admission control and the breaker, so
    // health checks keep answering under overload or an open circuit.
    if matches!(req.op, WireOp::Ping) {
        shared.stats.requests_ok.fetch_add(1, Ordering::SeqCst);
        return LineOutcome::Respond(WireResponse::ok(
            req.id,
            Json::obj([("pong", Json::Bool(true))]),
        ));
    }

    // Admission control: shed, never queue.
    let Some(_permit) = Permit::try_acquire(&shared.inflight, shared.config.max_inflight) else {
        shared.stats.shed.fetch_add(1, Ordering::SeqCst);
        return reject(
            &req.id,
            ErrorClass::Resource,
            "RES-OVERLOAD",
            format!(
                "admission queue full ({} requests in flight); shed — retry with backoff",
                shared.config.max_inflight
            ),
        );
    };

    // Circuit breaker around the engine.
    if let Err(retry_in) = shared.breaker.admit(shared.config.clock.now()) {
        shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
        return reject(
            &req.id,
            ErrorClass::Resource,
            "RES-CIRCUIT-OPEN",
            format!(
                "circuit open after consecutive worker panics; retry in ~{} ms",
                retry_in.as_millis().max(1)
            ),
        );
    }

    // Durable idempotency (keyed requests on a durable server only):
    // a settled key answers from the journal bit-identically with zero
    // recompute; a key still executing is rejected; a fresh key is
    // journaled and fsync'd *before* execution begins, so a crash
    // between here and the response replays it on restart.
    let mut journaled = false;
    if let (Some(dur), Some(rid)) = (&shared.durability, req.request_id.as_deref()) {
        let mut d = lock_unpoisoned(dur);
        if let Some((kind, stored)) = d.completed.get(rid) {
            if kind.serves_retries() {
                let stored = stored.clone();
                drop(d);
                shared.stats.deduped.fetch_add(1, Ordering::SeqCst);
                return match WireResponse::parse(&stored) {
                    Ok(mut resp) => {
                        // The result bytes are the journaled bytes; only
                        // the correlation id echoes the retry's.
                        resp.id = req.id.clone();
                        if resp.outcome.is_ok() {
                            shared.stats.requests_ok.fetch_add(1, Ordering::SeqCst);
                        } else {
                            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
                        }
                        LineOutcome::Respond(resp)
                    }
                    Err(e) => {
                        shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
                        reject(
                            &req.id,
                            ErrorClass::Io,
                            "IO-FAILURE",
                            format!("journaled response for request_id `{rid}` is unreadable: {e}"),
                        )
                    }
                };
            }
            // An aborted attempt (resource/I-O) settles the admit but
            // earns the retry a fresh execution: fall through.
        }
        if !d.inflight_ids.insert(rid.to_string()) {
            drop(d);
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            return reject(
                &req.id,
                ErrorClass::Resource,
                "RES-DUPLICATE-REQUEST",
                format!("request_id `{rid}` is already executing; await its outcome, then retry"),
            );
        }
        if let Err(e) = d.journal.append(RecordKind::Admit, rid, line) {
            d.inflight_ids.remove(rid);
            drop(d);
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            return reject(
                &req.id,
                ErrorClass::Io,
                "IO-FAILURE",
                format!("write-ahead journal append failed: {e}"),
            );
        }
        publish_record(shared, RecordKind::Admit, rid, line);
        journaled = true;
    }

    // Deadline fixed at admission; observed between sweep points.
    let budget = req
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.config.default_deadline)
        .min(shared.config.max_deadline);
    let token = CancelToken::with_deadline(budget);

    let outcome = execute(shared, &req, &token);
    // Only engine worker panics feed the breaker; every other outcome
    // (success, deadline, validation error) proves the engine itself is
    // healthy and resets the streak.
    if matches!(&outcome, Err(e) if e.code() == "RES-WORKER-PANIC") {
        shared.breaker.record_failure(shared.config.clock.now());
    } else {
        shared.breaker.record_success();
    }

    let resp = match outcome {
        Ok(result) => {
            shared.stats.requests_ok.fetch_add(1, Ordering::SeqCst);
            WireResponse::ok(req.id.clone(), result)
        }
        Err(e) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::SeqCst);
            WireResponse::err(req.id.clone(), failure_of(&e))
        }
    };
    if journaled {
        if let Some(rid) = req.request_id.as_deref() {
            settle(shared, rid, &resp);
        }
    }
    LineOutcome::Respond(resp)
}

/// Injected misbehavior for one sweep point (chaos servers only).
fn chaos_delay(fault: Option<&str>, point: usize, target: usize, cfg: &ServerConfig) {
    match fault {
        Some("slow-sweep") => cfg.clock.sleep(cfg.chaos_point_delay),
        Some("slow-worker") if point == target => cfg.clock.sleep(cfg.stall_budget * 3),
        Some("worker-panic") if point == target => {
            panic!("injected worker panic (chaos fault, sweep point {point})")
        }
        _ => {}
    }
}

/// Turns a retired token into the engine error the pool would produce,
/// for code paths (like `tables`) that check the token between coarse
/// stages rather than through `map_ctl`.
fn token_error(reason: CancelReason, stage: usize) -> LintraError {
    LintraError::from(match reason {
        CancelReason::Cancelled => EngineError::Cancelled { task: stage },
        CancelReason::DeadlineExpired => EngineError::DeadlineExpired { task: stage },
    })
}

fn config_error(message: impl Into<String>) -> LintraError {
    LintraError::new(ErrorClass::Validation, "VAL-CONFIG", message)
}

fn checked_v0(v0: f64) -> Result<f64, LintraError> {
    if v0.is_finite() && v0 > 0.0 {
        Ok(v0)
    } else {
        Err(config_error(format!(
            "v0 must be a positive voltage, got {v0}"
        )))
    }
}

fn execute(
    shared: &Arc<Shared>,
    req: &WireRequest,
    token: &CancelToken,
) -> Result<Json, LintraError> {
    let cfg = &shared.config;
    let fault = req.fault.as_deref();
    let ctl = SweepCtl {
        token: Some(token),
        stall_budget: Some(cfg.stall_budget),
    };
    match &req.op {
        WireOp::Ping => Ok(Json::obj([("pong", Json::Bool(true))])), // handled earlier; kept total
        WireOp::Optimize {
            design,
            strategy,
            v0,
            processors,
        } => {
            let strategy = Strategy::parse(strategy).map_err(LintraError::from)?;
            let d = by_name(design)
                .ok_or_else(|| config_error(format!("unknown design `{design}`")))?;
            let v0 = checked_v0(*v0)?;
            let tech = TechConfig::dac96(v0);
            let processors = *processors;
            // One sweep point through the pool: panics become
            // RES-WORKER-PANIC, stalls RES-WORKER-STALL, an
            // already-expired deadline RES-DEADLINE — uniformly with the
            // sweep paths.
            let results = shared.pool.map_ctl(
                vec![()],
                |()| {
                    chaos_delay(fault, 0, 0, cfg);
                    match strategy {
                        Strategy::Single => single::optimize(&d.system, &tech).map(|r| {
                            Json::obj([
                                ("strategy", Json::Str("single".to_string())),
                                ("design", Json::Str(d.name.to_string())),
                                ("unfolding", Json::Num(r.real.unfolding as f64)),
                                ("speedup", Json::Num(r.real.speedup)),
                                ("voltage", Json::Num(r.real.scaling.voltage)),
                                ("power_reduction", Json::Num(r.real.power_reduction())),
                                ("diagnostics", Json::Num(r.diagnostics.len() as f64)),
                            ])
                        }),
                        Strategy::Multi => {
                            let selection = match processors {
                                Some(n) => ProcessorSelection::SearchBest { max: n },
                                None => ProcessorSelection::StatesCount,
                            };
                            multi::optimize(&d.system, &tech, selection).map(|r| {
                                Json::obj([
                                    ("strategy", Json::Str("multi".to_string())),
                                    ("design", Json::Str(d.name.to_string())),
                                    ("processors", Json::Num(r.processors as f64)),
                                    ("unfolding", Json::Num(r.unfolding as f64)),
                                    ("speedup", Json::Num(r.speedup)),
                                    ("voltage", Json::Num(r.scaling.voltage)),
                                    ("power_reduction", Json::Num(r.power_reduction())),
                                    ("diagnostics", Json::Num(r.diagnostics.len() as f64)),
                                ])
                            })
                        }
                        Strategy::Asic => {
                            asic::optimize(&d.system, &tech, &asic::AsicConfig::default()).map(
                                |r| {
                                    Json::obj([
                                        ("strategy", Json::Str("asic".to_string())),
                                        ("design", Json::Str(d.name.to_string())),
                                        ("unfolding", Json::Num(f64::from(r.unfolding))),
                                        ("voltage", Json::Num(r.voltage)),
                                        ("muls_removed", Json::Num(r.mcm.muls_removed as f64)),
                                        ("improvement", Json::Num(r.improvement())),
                                        ("diagnostics", Json::Num(r.diagnostics.len() as f64)),
                                    ])
                                },
                            )
                        }
                        Strategy::Egraph => saturate::optimize(
                            &d.system,
                            &tech,
                            &saturate::SaturateConfig::default(),
                        )
                        .map(|r| {
                            Json::obj([
                                ("strategy", Json::Str("egraph".to_string())),
                                ("design", Json::Str(d.name.to_string())),
                                ("unfolding", Json::Num(f64::from(r.unfolding))),
                                ("voltage", Json::Num(r.voltage)),
                                ("improvement", Json::Num(r.improvement())),
                                ("vs_script", Json::Num(r.vs_script())),
                                ("saturated", Json::Bool(r.stats.saturated())),
                                ("diagnostics", Json::Num(r.diagnostics.len() as f64)),
                            ])
                        }),
                    }
                },
                ctl,
            );
            let point = results
                .into_iter()
                .next()
                .ok_or_else(|| config_error("engine returned no result for a one-point sweep"))?;
            point.map_err(LintraError::from)?.map_err(LintraError::from)
        }
        WireOp::Sweep { design, max_i } => {
            let d = by_name(design)
                .ok_or_else(|| config_error(format!("unknown design `{design}`")))?;
            // Chaos target: a deterministic mid-sweep point, so injected
            // stalls/panics land after some healthy points completed.
            let target = (*max_i as usize) / 2;
            let points: Vec<u32> = (0..=*max_i).collect();
            let results = shared.pool.map_ctl(
                points,
                |i| {
                    // Chaos faults fire BEFORE the cache lock: a stalled
                    // point never blocks siblings out of the cache, and
                    // an injected panic never lands while the cache is
                    // mid-update. Cached unfolds are bit-identical to
                    // from-scratch `unfold` (the cache's contract), so
                    // rerouting the sweep changes no response bytes.
                    chaos_delay(fault, i as usize, target, cfg);
                    let mut caches = lock_unpoisoned(&shared.caches);
                    let cache = caches
                        .entry(d.name.to_string())
                        .or_insert_with(|| SweepCache::new(&d.system));
                    cache.unfolded(i).map(|u| {
                        let c = op_count(&u.system, TrivialityRule::ZeroOne);
                        let n = f64::from(i + 1);
                        (i, c.muls as f64 / n, c.adds as f64 / n)
                    })
                },
                ctl,
            );
            let mut rows = Vec::with_capacity(results.len());
            for point in results {
                let (i, muls, adds) = point
                    .map_err(LintraError::from)?
                    .map_err(|e| LintraError::from(e).context(format!("sweeping {design}")))?;
                rows.push(Json::Arr(vec![
                    Json::Num(f64::from(i)),
                    Json::Num(muls),
                    Json::Num(adds),
                ]));
            }
            // A durable server checkpoints the freshly-warmed cache so a
            // crash-restart resumes it instead of recomputing the chain.
            if cfg.journal_dir.is_some() {
                persist_snapshots(shared);
            }
            Ok(Json::obj([
                ("design", Json::Str(d.name.to_string())),
                ("rows", Json::Arr(rows)),
            ]))
        }
        WireOp::Tables { v0 } => {
            let v0 = checked_v0(*v0)?;
            // Tables run through the parallel engine internally; the
            // deadline is observed between the three table stages.
            let live = |stage: usize| match token.reason() {
                Some(reason) => Err(token_error(reason, stage)),
                None => Ok(()),
            };
            live(0)?;
            let t2 = table2_rows_par(v0, &shared.pool)?;
            live(1)?;
            let t3 = table3_rows_par(v0, &shared.pool)?;
            live(2)?;
            let t4 = table4_rows_par(v0, &shared.pool)?;
            Ok(Json::obj([
                ("table2", Json::Str(render_table2(&t2, v0, false))),
                ("table3", Json::Str(render_table3(&t3, v0))),
                ("table4", Json::Str(render_table4(&t4, v0))),
            ]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// In-process config shaped for fast unit checks.
    fn test_config() -> ServerConfig {
        ServerConfig {
            jobs: Some(2),
            default_deadline: Duration::from_secs(5),
            stall_budget: Duration::from_millis(200),
            ..ServerConfig::default()
        }
    }

    fn raw_round_trip(addr: SocketAddr, line: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(line.as_bytes()).expect("write");
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match s.read(&mut byte) {
                Ok(0) => break,
                Ok(_) if byte[0] == b'\n' => break,
                Ok(_) => buf.push(byte[0]),
                Err(e) => panic!("read: {e}"),
            }
        }
        String::from_utf8(buf).expect("utf8 response")
    }

    #[test]
    fn ping_round_trips_over_tcp() {
        let handle = start(test_config()).expect("server starts");
        let resp = raw_round_trip(handle.addr(), "{\"id\":\"p1\",\"op\":\"ping\"}\n");
        let resp = WireResponse::parse(&resp).expect("valid response");
        assert_eq!(resp.id, "p1");
        let result = resp.outcome.expect("pong");
        assert_eq!(result.get("pong"), Some(&Json::Bool(true)));
        let stats = handle.shutdown();
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn zero_jobs_is_a_config_error() {
        let err = start(ServerConfig {
            jobs: Some(0),
            ..ServerConfig::default()
        })
        .expect_err("zero workers rejected");
        assert_eq!(err.code(), "VAL-CONFIG");
        assert_eq!(err.class(), ErrorClass::Validation);
    }

    #[test]
    fn unknown_design_and_strategy_are_config_errors() {
        let handle = start(test_config()).expect("server starts");
        let resp = raw_round_trip(
            handle.addr(),
            "{\"id\":\"a\",\"op\":\"optimize\",\"design\":\"nonesuch\"}\n",
        );
        let resp = WireResponse::parse(&resp).expect("valid response");
        let failure = resp.outcome.expect_err("unknown design fails");
        assert_eq!(failure.code, "VAL-CONFIG");

        let resp = raw_round_trip(
            handle.addr(),
            "{\"id\":\"b\",\"op\":\"optimize\",\"design\":\"chemical\",\"strategy\":\"dual\"}\n",
        );
        let resp = WireResponse::parse(&resp).expect("valid response");
        let failure = resp.outcome.expect_err("unknown strategy fails");
        assert_eq!(failure.code, "VAL-CONFIG");
        assert!(
            failure.message.contains("single, multi, asic"),
            "{}",
            failure.message
        );
        handle.shutdown();
    }

    #[test]
    fn fault_member_is_rejected_without_chaos_mode() {
        let handle = start(test_config()).expect("server starts");
        let resp = raw_round_trip(
            handle.addr(),
            "{\"id\":\"f\",\"op\":\"ping\",\"fault\":\"worker-panic\"}\n",
        );
        let resp = WireResponse::parse(&resp).expect("valid response");
        let failure = resp.outcome.expect_err("fault injection disabled");
        assert_eq!(failure.code, "VAL-CONFIG");
        assert!(failure.message.contains("disabled"), "{}", failure.message);
        handle.shutdown();
    }
}

//! `lintra-serve` — a fault-tolerant optimization service.
//!
//! Turns the unfold → Horner → MCM pipeline into a long-running TCP
//! service speaking newline-delimited JSON (the
//! [`lintra_bench::wire`] schema), with the robustness machinery a
//! service needs and a library client that matches it:
//!
//! | layer | mechanism | diagnostic at the client |
//! |---|---|---|
//! | parse | strict wire validation | `VAL-MALFORMED-REQUEST` |
//! | admission | bounded in-flight gauge, load shedding | `RES-OVERLOAD` |
//! | execution | per-request deadline token, observed between sweep points | `RES-DEADLINE` |
//! | execution | per-point stall watchdog | `RES-WORKER-STALL` |
//! | execution | per-point panic isolation (engine) | `RES-WORKER-PANIC` |
//! | engine | circuit breaker on consecutive panics | `RES-CIRCUIT-OPEN` |
//! | lifecycle | graceful drain on shutdown/SIGTERM | `RES-SHUTDOWN` |
//! | durability | write-ahead journal + idempotency keys | `RES-DUPLICATE-REQUEST` |
//! | durability | quarantine of damaged journal / snapshots | `IO-JOURNAL-CORRUPT`, `IO-SNAPSHOT-CORRUPT` |
//! | replication | WAL shipping, epoch fencing, automatic failover | `RES-NOT-PRIMARY`, `RES-STALE-EPOCH`, `IO-REPL-CORRUPT` |
//!
//! With [`ServerConfig::journal_dir`] set, the server also survives
//! `kill -9`: requests are fsynced to a write-ahead journal before
//! execution, sweep caches are snapshotted crash-safely, and on restart
//! orphaned requests replay while completed `request_id`s are answered
//! from the journal byte-identically ([`server::RecoveryReport`]). See
//! [`journal`] for the record format and damage taxonomy.
//!
//! A durable server can also *replicate*: a follower started with
//! [`ServerConfig::replica_of`] streams the primary's journal into its
//! own (CRC-verified, fsync-before-ack), promotes itself with a higher
//! collision-free epoch when the primary goes silent, and durably
//! fences the deposed primary — no two servers ever serve the same
//! epoch, divergent journals are refused at resync, and any duel
//! resolves to the strictly higher epoch — while [`Client`] walks an
//! ordered endpoint list and carries its idempotency key across the
//! failover, so retries of settled work are answered byte-identically
//! with zero recompute. See [`replicate`] for the protocol and its
//! partition caveat.
//!
//! Every failure crosses the wire with the same class/code taxonomy local
//! [`lintra::LintraError`]s carry, so the CLI maps remote failures to the
//! identical exit codes (validation 2, numerical 3, resource 4,
//! convergence 5, I/O 6).
//!
//! # Quickstart
//!
//! ```
//! use lintra_bench::wire::{WireOp, WireRequest};
//! use lintra_serve::{start, Client, ServerConfig};
//!
//! let server = start(ServerConfig {
//!     jobs: Some(2),
//!     ..ServerConfig::default()
//! })
//! .expect("bind");
//! let client = Client::new(server.addr().to_string());
//! let resp = client
//!     .request(&WireRequest::new("hello", WireOp::Ping))
//!     .expect("server is up");
//! assert!(resp.outcome.is_ok());
//! let stats = server.shutdown(); // graceful drain
//! assert_eq!(stats.requests_ok, 1);
//! ```

pub mod breaker;
pub mod client;
pub mod clock;
pub mod journal;
pub mod replicate;
pub mod router;
pub mod server;
pub mod signal;
pub mod transport;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use client::{Client, ClientError, RetryPolicy};
pub use clock::{Clock, SystemClock};
pub use journal::{Journal, JournalRecovery, RecordKind, ScanOutcome};
pub use replicate::{
    epoch_stride_slot, load_epoch_state, prefix_crc, promotion_epoch, query_status,
    query_status_via, store_epoch, store_epoch_state, EpochState, ReplChaos, ReplMsg, Role,
    StatusView,
};
pub use router::{
    fnv1a64, routing_key, start_router, LatencyTracker, RetryBudget, RouterConfig, RouterHandle,
    ShardRing,
};
pub use server::{start, RecoveryReport, RoleInfo, ServerConfig, ServerHandle, ServerStats};
pub use transport::{
    read_line, Acceptor, Conn, NetError, TcpTransport, Transport, MAX_FRAME_BYTES,
};

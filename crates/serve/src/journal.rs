//! Write-ahead request journal: the durability half of idempotency.
//!
//! A durable server (one started with a journal directory) appends a
//! record to `journal.log` *and fsyncs it* before acknowledging any
//! keyed request, then appends a completion record when the answer is
//! known. The file is append-only; each record is self-checking:
//!
//! ```text
//! [u32 len LE][u32 crc32 LE][payload: compact JSON, `len` bytes]
//! ```
//!
//! `crc32` covers the payload bytes (the same IEEE polynomial the cache
//! snapshots use, [`lintra::engine::snapshot::crc32`]). The payload is
//! one of four record kinds keyed by the request's idempotency key:
//!
//! * `admit` — the full request line, journaled before execution;
//! * `done` — the full success response line; retries of this key are
//!   answered from the journal, bit-identically, with zero recompute;
//! * `fail` — a deterministic failure (validation, numerical,
//!   convergence): re-running would fail identically, so retries are
//!   answered from the journal too;
//! * `abort` — a non-deterministic failure (resource, I/O): the attempt
//!   is complete but a retry deserves a fresh execution.
//!
//! # Torn writes vs corruption
//!
//! A crash can tear the last record mid-write. [`scan`] distinguishes
//! the two failure shapes the ISSUE's crash gate exercises:
//!
//! * a record whose declared length runs past end-of-file is a **torn
//!   tail** — the expected artifact of `kill -9` between `write` and
//!   `fsync`. Recovery truncates to the last complete record and the
//!   journal stays in service ([`ScanOutcome::TornTail`]);
//! * a record that is fully present but fails its CRC (or carries an
//!   undecodable payload) is **corruption** — the file can no longer be
//!   trusted, so the whole journal is quarantined under a
//!   `journal.log.quarantined-N` name and the server starts with a
//!   fresh one, surfacing `IO-JOURNAL-CORRUPT`
//!   ([`ScanOutcome::Corrupt`]). Never a panic, never silent reuse.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use lintra::engine::snapshot::{crc32, quarantine};
use lintra_bench::json::Json;

/// File name of the write-ahead journal inside the durability directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// Prefix of rotated journal segments (`journal.seg-N`). Segments are
/// written whole (tmp + fsync + rename), so unlike the live log a
/// damaged segment is always corruption, never a torn tail.
pub const SEGMENT_PREFIX: &str = "journal.seg-";

/// Directory name for cache snapshots inside the durability directory.
pub const SNAPSHOT_DIR: &str = "snapshots";

/// Ceiling on one record's payload, bytes. Journal payloads are request
/// or response lines; anything larger than this is not one of ours, so
/// the scanner classifies it as corruption instead of allocating.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// What a journal record witnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Request admitted (journaled before execution began).
    Admit,
    /// Request completed successfully; `line` is the response.
    Done,
    /// Request completed with a deterministic failure; `line` is the
    /// response. Retries are served from the journal.
    Fail,
    /// Request attempt ended with a non-deterministic failure
    /// (resource/I/O). The admit is settled but retries recompute.
    Abort,
}

impl RecordKind {
    /// The wire tag stored in the record payload.
    pub fn tag(self) -> &'static str {
        match self {
            RecordKind::Admit => "admit",
            RecordKind::Done => "done",
            RecordKind::Fail => "fail",
            RecordKind::Abort => "abort",
        }
    }

    /// Inverse of [`RecordKind::tag`]; `None` for an unknown tag.
    pub fn from_tag(tag: &str) -> Option<RecordKind> {
        match tag {
            "admit" => Some(RecordKind::Admit),
            "done" => Some(RecordKind::Done),
            "fail" => Some(RecordKind::Fail),
            "abort" => Some(RecordKind::Abort),
            _ => None,
        }
    }

    /// True for the completion kinds a retry may be answered from.
    pub fn serves_retries(self) -> bool {
        matches!(self, RecordKind::Done | RecordKind::Fail)
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// What this record witnesses.
    pub kind: RecordKind,
    /// The request's idempotency key.
    pub rid: String,
    /// The journaled wire line: the request line for [`RecordKind::Admit`],
    /// the response line otherwise.
    pub line: String,
}

/// How a journal scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Every byte accounted for.
    Clean,
    /// The final record was torn mid-write; bytes before `valid_len`
    /// decoded cleanly and the tail should be truncated away.
    TornTail {
        /// Offset of the last byte worth keeping.
        valid_len: u64,
    },
    /// A fully-present record failed its checksum or would not decode:
    /// the file is untrustworthy and must be quarantined.
    Corrupt {
        /// Offset of the offending record's length prefix.
        offset: u64,
        /// Human-readable description of the first violation.
        detail: String,
    },
}

/// Decodes journal bytes into records, classifying any damage.
///
/// Total: never panics, for arbitrary input. Records before the first
/// damaged byte always decode (the valid-prefix property the journal
/// property sweep asserts).
pub fn scan(bytes: &[u8]) -> (Vec<JournalRecord>, ScanOutcome) {
    let mut records = Vec::new();
    let mut pos: usize = 0;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            // A header torn mid-write: not enough bytes to even state a
            // length. Normal kill-9 artifact.
            return (
                records,
                ScanOutcome::TornTail {
                    valid_len: pos as u64,
                },
            );
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let stored_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            // A length this absurd cannot come from a torn append of one
            // of our records; the header itself is damaged.
            return (
                records,
                ScanOutcome::Corrupt {
                    offset: pos as u64,
                    detail: format!(
                        "record length {len} exceeds the {MAX_RECORD_LEN}-byte ceiling"
                    ),
                },
            );
        }
        if rest.len() < 8 + len {
            // The payload ran past end-of-file: torn tail.
            return (
                records,
                ScanOutcome::TornTail {
                    valid_len: pos as u64,
                },
            );
        }
        let payload = &rest[8..8 + len];
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            return (records, ScanOutcome::Corrupt {
                offset: pos as u64,
                detail: format!(
                    "record checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
                ),
            });
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(detail) => {
                return (
                    records,
                    ScanOutcome::Corrupt {
                        offset: pos as u64,
                        detail,
                    },
                );
            }
        }
        pos += 8 + len;
    }
    (records, ScanOutcome::Clean)
}

fn decode_payload(payload: &[u8]) -> Result<JournalRecord, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let doc = Json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    let tag = doc
        .get("t")
        .and_then(Json::as_str)
        .ok_or("payload lacks a string \"t\" tag")?;
    let kind = RecordKind::from_tag(tag).ok_or_else(|| format!("unknown record tag \"{tag}\""))?;
    let rid = doc
        .get("rid")
        .and_then(Json::as_str)
        .ok_or("payload lacks a string \"rid\"")?
        .to_string();
    let line = doc
        .get("line")
        .and_then(Json::as_str)
        .ok_or("payload lacks a string \"line\"")?
        .to_string();
    Ok(JournalRecord { kind, rid, line })
}

/// The canonical payload bytes of one record — exactly what the CRC in
/// the on-disk framing covers. Replication ships `(kind, rid, line)`
/// plus this CRC; the follower re-encodes with this same function, so a
/// matching checksum guarantees its journal file is byte-identical to
/// the primary's.
pub fn payload_bytes(kind: RecordKind, rid: &str, line: &str) -> Vec<u8> {
    Json::obj([
        ("t", Json::Str(kind.tag().to_string())),
        ("rid", Json::Str(rid.to_string())),
        ("line", Json::Str(line.trim_end_matches('\n').to_string())),
    ])
    .render_compact()
    .into_bytes()
}

/// Encodes one record in the on-disk framing (header + JSON payload).
pub fn encode_record(kind: RecordKind, rid: &str, line: &str) -> Vec<u8> {
    let payload = payload_bytes(kind, rid, line);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The dedup map: settled `request_id` → the kind that settled it and
/// the exact response line a retry is answered with.
pub type CompletedMap = HashMap<String, (RecordKind, String)>;

/// Folds a record sequence into the dedup map and the ordered list of
/// admitted-but-unsettled requests — the one replay policy shared by
/// startup recovery and follower promotion.
pub fn fold_records(records: &[JournalRecord]) -> (CompletedMap, Vec<(String, String)>) {
    let mut completed: CompletedMap = HashMap::new();
    let mut admitted: Vec<(String, String)> = Vec::new();
    for r in records {
        match r.kind {
            RecordKind::Admit => {
                if !completed.contains_key(&r.rid) && !admitted.iter().any(|(rid, _)| *rid == r.rid)
                {
                    admitted.push((r.rid.clone(), r.line.clone()));
                }
            }
            kind => {
                admitted.retain(|(rid, _)| *rid != r.rid);
                completed.insert(r.rid.clone(), (kind, r.line.clone()));
            }
        }
    }
    (completed, admitted)
}

/// Folds a record stream down to the records that still matter, in an
/// order [`fold_records`] maps to the identical `(completed, admitted)`
/// state: every settled key's final completion record (sorted by key,
/// for determinism), then every admitted-but-unsettled request in its
/// original admission order. This is the payload of a rotated segment.
pub fn compact_records(records: &[JournalRecord]) -> Vec<JournalRecord> {
    let (completed, admitted) = fold_records(records);
    let mut keys: Vec<&String> = completed.keys().collect();
    keys.sort();
    let mut out = Vec::with_capacity(completed.len() + admitted.len());
    for rid in keys {
        if let Some((kind, line)) = completed.get(rid) {
            out.push(JournalRecord {
                kind: *kind,
                rid: rid.clone(),
                line: line.clone(),
            });
        }
    }
    for (rid, line) in &admitted {
        out.push(JournalRecord {
            kind: RecordKind::Admit,
            rid: rid.clone(),
            line: line.clone(),
        });
    }
    out
}

/// Rotated segments inside `dir`, sorted by index (replay order).
fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>, std::io::Error> {
    let mut segs = Vec::new();
    if dir.exists() {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(idx) = name.strip_prefix(SEGMENT_PREFIX) {
                if let Ok(n) = idx.parse::<u64>() {
                    segs.push((n, entry.path()));
                }
            }
        }
    }
    segs.sort_by_key(|(n, _)| *n);
    Ok(segs)
}

/// What replaying the journal found at startup.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// Keys with a settled outcome. `Done`/`Fail` keys carry the exact
    /// response line a retry is answered with; `Abort` keys are settled
    /// but retries recompute.
    pub completed: HashMap<String, (RecordKind, String)>,
    /// Admitted-but-unfinished request lines, in admission order — the
    /// server re-executes these before accepting new work.
    pub incomplete: Vec<(String, String)>,
    /// Where a corrupt journal was moved, if one was found.
    pub quarantined: Option<PathBuf>,
    /// True when a torn tail was truncated away (normal crash artifact).
    pub torn_tail: bool,
    /// Every surviving record in journal order — the seed of the
    /// replication log (sequence number = index + 1). Empty when the
    /// journal was quarantined: a file that lied once contributes
    /// nothing, to replicas included.
    pub records: Vec<JournalRecord>,
}

/// The append side of the write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    dir: PathBuf,
    /// Bytes currently in the live log (mirrors the file length; the
    /// file is opened append-only and only this struct writes it).
    live_len: u64,
    /// When `Some(t)`, an append that leaves the live log above `t`
    /// bytes triggers compaction into a rotated segment.
    rotate_bytes: Option<u64>,
}

impl Journal {
    /// Opens (creating if needed) the journal inside `dir`, replaying
    /// whatever survives there. Rotation stays off; see
    /// [`Journal::open_dir_with`].
    ///
    /// A torn tail is truncated in place; a corrupt file is renamed to
    /// a `journal.log.quarantined-N` sibling and a fresh journal is
    /// started — the caller reports `IO-JOURNAL-CORRUPT` but keeps
    /// serving.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (unreadable directory, failed rename)
    /// error out; damaged journal *content* never does.
    pub fn open_dir(dir: &Path) -> Result<(Journal, JournalRecovery), std::io::Error> {
        Journal::open_dir_with(dir, None)
    }

    /// [`Journal::open_dir`] with size-capped rotation: when
    /// `rotate_bytes` is `Some(t)`, an append that leaves the live log
    /// above `t` bytes compacts the whole logical stream (settled
    /// completions plus unsettled admits, see [`compact_records`]) into
    /// a `journal.seg-N` segment and truncates the live log.
    ///
    /// Recovery always replays existing segments in index order before
    /// the live log, whether or not rotation is enabled for this open —
    /// a journal rotated once stays recoverable forever. A crash
    /// between the segment rename and the live-log truncation leaves
    /// records present in both; replaying them twice folds to the same
    /// state (completions supersede, duplicate admits dedup), so the
    /// overlap is harmless.
    ///
    /// Segments are written whole, so *any* damage to one (tear or
    /// checksum) is corruption: the full set — every segment and the
    /// live log — is quarantined together and the journal starts
    /// fresh. A partial set that lied once proves nothing about the
    /// rest.
    ///
    /// # Errors
    ///
    /// Same contract as [`Journal::open_dir`].
    pub fn open_dir_with(
        dir: &Path,
        rotate_bytes: Option<u64>,
    ) -> Result<(Journal, JournalRecovery), std::io::Error> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut recovery = JournalRecovery::default();
        let mut records = Vec::new();
        let mut damaged = false;
        let segments = segment_paths(dir)?;
        for (_, seg_path) in &segments {
            let mut bytes = Vec::new();
            File::open(seg_path)?.read_to_end(&mut bytes)?;
            let (scanned, outcome) = scan(&bytes);
            if outcome == ScanOutcome::Clean {
                records.extend(scanned);
            } else {
                damaged = true;
                break;
            }
        }
        if !damaged && path.exists() {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let (scanned, outcome) = scan(&bytes);
            match outcome {
                ScanOutcome::Clean => records.extend(scanned),
                ScanOutcome::TornTail { valid_len } => {
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(valid_len)?;
                    f.sync_all()?;
                    recovery.torn_tail = true;
                    records.extend(scanned);
                }
                ScanOutcome::Corrupt { .. } => damaged = true,
            }
        }
        if damaged {
            // The records decoded before the damage are NOT reused: a
            // set of files that lied once is not trusted to have told
            // the truth elsewhere. Quarantine every piece together.
            records.clear();
            let mut first = None;
            for (_, seg_path) in &segments {
                if seg_path.exists() {
                    let q = quarantine(seg_path)?;
                    first.get_or_insert(q);
                }
            }
            if path.exists() {
                let q = quarantine(&path)?;
                first.get_or_insert(q);
            }
            recovery.quarantined = first;
        }
        let (completed, admitted) = fold_records(&records);
        recovery.completed = completed;
        recovery.incomplete = admitted;
        recovery.records = records;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let live_len = file.metadata()?.len();
        Ok((
            Journal {
                file,
                path,
                dir: dir.to_path_buf(),
                live_len,
                rotate_bytes,
            },
            recovery,
        ))
    }

    /// Path of the live journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs it — the record is durable when
    /// this returns. Called *before* the response leaves the server.
    /// May rotate afterwards when a size cap is configured; the record
    /// is durable either way.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write/fsync failure; the caller maps
    /// it to `IO-FAILURE`.
    pub fn append(
        &mut self,
        kind: RecordKind,
        rid: &str,
        line: &str,
    ) -> Result<(), std::io::Error> {
        let encoded = encode_record(kind, rid, line);
        self.file.write_all(&encoded)?;
        self.file.sync_data()?;
        self.live_len += encoded.len() as u64;
        if let Some(cap) = self.rotate_bytes {
            if self.live_len > cap {
                self.rotate()?;
            }
        }
        Ok(())
    }

    /// Compacts the full logical stream into a fresh `journal.seg-N`
    /// and truncates the live log. Ordered for crash safety: the new
    /// segment is durable (tmp + fsync + rename) before a single old
    /// byte is touched, so every intermediate state replays to the
    /// same fold.
    fn rotate(&mut self) -> Result<(), std::io::Error> {
        let segments = segment_paths(&self.dir)?;
        let mut records = Vec::new();
        for (_, seg_path) in &segments {
            let mut bytes = Vec::new();
            File::open(seg_path)?.read_to_end(&mut bytes)?;
            let (scanned, outcome) = scan(&bytes);
            if outcome != ScanOutcome::Clean {
                // Damage since open: refuse to compact what we cannot
                // trust. The live log keeps growing; recovery's
                // quarantine policy owns this case.
                return Ok(());
            }
            records.extend(scanned);
        }
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        let (scanned, outcome) = scan(&bytes);
        if outcome != ScanOutcome::Clean {
            return Ok(());
        }
        records.extend(scanned);

        let next_idx = segments.last().map_or(1, |(n, _)| n + 1);
        let mut payload = Vec::new();
        for r in compact_records(&records) {
            payload.extend_from_slice(&encode_record(r.kind, &r.rid, &r.line));
        }
        let seg_path = self.dir.join(format!("{SEGMENT_PREFIX}{next_idx}"));
        let tmp_path = self.dir.join(format!("{SEGMENT_PREFIX}{next_idx}.tmp"));
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&payload)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &seg_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // The segment is durable; everything it subsumes can go.
        self.file.set_len(0)?;
        self.file.sync_all()?;
        self.live_len = 0;
        for (_, old) in &segments {
            let _ = std::fs::remove_file(old);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_bytes(pairs: &[(RecordKind, &str, &str)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (kind, rid, line) in pairs {
            out.extend_from_slice(&encode_record(*kind, rid, line));
        }
        out
    }

    #[test]
    fn scan_round_trips_encoded_records() {
        let bytes = record_bytes(&[
            (RecordKind::Admit, "k1", "{\"id\":\"a\",\"op\":\"ping\"}"),
            (RecordKind::Done, "k1", "{\"id\":\"a\",\"ok\":true}"),
            (RecordKind::Abort, "k2", "{\"id\":\"b\",\"ok\":false}"),
        ]);
        let (records, outcome) = scan(&bytes);
        assert_eq!(outcome, ScanOutcome::Clean);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, RecordKind::Admit);
        assert_eq!(records[0].rid, "k1");
        assert_eq!(records[1].line, "{\"id\":\"a\",\"ok\":true}");
        assert_eq!(records[2].kind, RecordKind::Abort);
    }

    #[test]
    fn every_truncation_is_a_torn_tail_preserving_the_valid_prefix() {
        let bytes = record_bytes(&[
            (RecordKind::Admit, "k1", "line-one"),
            (RecordKind::Done, "k1", "line-two"),
        ]);
        let first_len = encode_record(RecordKind::Admit, "k1", "line-one").len();
        let boundaries = [0, first_len, bytes.len()];
        for cut in 0..=bytes.len() {
            let (records, outcome) = scan(&bytes[..cut]);
            // The valid prefix always decodes: every record whose bytes
            // fully survive the cut is returned.
            let whole = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(records.len(), whole, "cut {cut}");
            match outcome {
                ScanOutcome::Clean => {
                    assert!(boundaries.contains(&cut), "cut {cut} cannot be clean");
                }
                ScanOutcome::TornTail { valid_len } => {
                    assert!(
                        !boundaries.contains(&cut),
                        "boundary cut {cut} is not a tear"
                    );
                    assert_eq!(valid_len, boundaries[whole] as u64, "cut {cut}");
                }
                ScanOutcome::Corrupt { .. } => panic!("truncation at {cut} must not be corruption"),
            }
        }
    }

    #[test]
    fn a_flipped_payload_bit_is_corruption_not_a_torn_tail() {
        let bytes = record_bytes(&[(RecordKind::Admit, "k1", "payload-under-test")]);
        for byte in 8..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[byte] ^= 1 << bit;
                let (records, outcome) = scan(&damaged);
                assert!(records.is_empty(), "byte {byte} bit {bit}");
                assert!(
                    matches!(outcome, ScanOutcome::Corrupt { .. }),
                    "byte {byte} bit {bit}: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn an_absurd_length_prefix_is_corruption() {
        let mut bytes = vec![0u8; 8];
        bytes[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let (records, outcome) = scan(&bytes);
        assert!(records.is_empty());
        assert!(matches!(outcome, ScanOutcome::Corrupt { .. }));
    }

    #[test]
    #[allow(clippy::expect_used)]
    fn open_dir_truncates_torn_tails_and_keeps_serving() {
        let dir = std::env::temp_dir().join(format!("lintra-journal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut j, _) = Journal::open_dir(&dir).expect("open");
            j.append(RecordKind::Admit, "k1", "req-1").expect("append");
            j.append(RecordKind::Done, "k1", "resp-1").expect("append");
        }
        // Tear the tail: drop the last 3 bytes of the done record.
        let path = dir.join(JOURNAL_FILE);
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open rw");
        f.set_len(len - 3).expect("truncate");
        drop(f);

        let (mut j, recovery) = Journal::open_dir(&dir).expect("reopen");
        assert!(recovery.torn_tail, "tear must be detected");
        assert!(recovery.quarantined.is_none(), "a tear is not corruption");
        assert_eq!(
            recovery.incomplete,
            vec![("k1".to_string(), "req-1".to_string())]
        );
        // The journal is still appendable and the tear healed.
        j.append(RecordKind::Done, "k1", "resp-1b").expect("append");
        let (_, recovery) = Journal::open_dir(&dir).expect("third open");
        assert_eq!(
            recovery.completed.get("k1"),
            Some(&(RecordKind::Done, "resp-1b".to_string()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(clippy::expect_used)]
    fn open_dir_quarantines_corruption_and_starts_fresh() {
        let dir =
            std::env::temp_dir().join(format!("lintra-journal-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut j, _) = Journal::open_dir(&dir).expect("open");
            j.append(RecordKind::Admit, "k1", "req-1").expect("append");
            j.append(RecordKind::Done, "k1", "resp-1").expect("append");
        }
        // Flip one bit inside the last record's payload: the record is
        // fully present, so this must read as corruption, not a tear.
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        let target = bytes.len() - 4;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write damage");

        let (_, recovery) = Journal::open_dir(&dir).expect("reopen");
        let quarantined = recovery.quarantined.expect("must quarantine");
        assert!(quarantined.exists());
        assert!(
            recovery.completed.is_empty() && recovery.incomplete.is_empty(),
            "a quarantined journal contributes nothing"
        );
        // The fresh journal starts empty and usable.
        let (mut j, _) = Journal::open_dir(&dir).expect("third open");
        j.append(RecordKind::Admit, "k9", "req-9").expect("append");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn seg_indices(dir: &Path) -> Vec<u64> {
        segment_paths(dir)
            .unwrap_or_default()
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }

    #[test]
    fn compaction_is_fold_equivalent() {
        let records = vec![
            JournalRecord {
                kind: RecordKind::Admit,
                rid: "b".into(),
                line: "req-b".into(),
            },
            JournalRecord {
                kind: RecordKind::Admit,
                rid: "a".into(),
                line: "req-a".into(),
            },
            JournalRecord {
                kind: RecordKind::Done,
                rid: "b".into(),
                line: "resp-b".into(),
            },
            JournalRecord {
                kind: RecordKind::Admit,
                rid: "c".into(),
                line: "req-c".into(),
            },
            JournalRecord {
                kind: RecordKind::Abort,
                rid: "c".into(),
                line: "resp-c".into(),
            },
            JournalRecord {
                kind: RecordKind::Admit,
                rid: "c".into(),
                line: "req-c2".into(),
            },
        ];
        let compacted = compact_records(&records);
        assert_eq!(fold_records(&compacted), fold_records(&records));
        // Settled keys keep exactly one record each; 'a' stays admitted.
        assert!(compacted.len() < records.len());
    }

    #[test]
    #[allow(clippy::expect_used)]
    fn rotation_compacts_settled_work_and_recovery_replays_segments() {
        let dir =
            std::env::temp_dir().join(format!("lintra-journal-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut j, _) = Journal::open_dir_with(&dir, Some(256)).expect("open");
            for i in 0..32 {
                let rid = format!("k{i:02}");
                j.append(RecordKind::Admit, &rid, &format!("req-{rid}"))
                    .expect("admit");
                j.append(RecordKind::Done, &rid, &format!("resp-{rid}"))
                    .expect("done");
            }
            // One key left unsettled across rotations.
            j.append(RecordKind::Admit, "open-key", "req-open")
                .expect("admit open");
        }
        let segs = seg_indices(&dir);
        assert_eq!(segs.len(), 1, "old segments must be reaped: {segs:?}");
        let live_len = std::fs::metadata(dir.join(JOURNAL_FILE))
            .expect("meta")
            .len();
        assert!(live_len < 512, "live log must have been truncated");

        let (_, rec) = Journal::open_dir(&dir).expect("reopen");
        assert_eq!(rec.completed.len(), 32, "every settled key survives");
        assert_eq!(
            rec.completed.get("k07"),
            Some(&(RecordKind::Done, "resp-k07".to_string()))
        );
        assert_eq!(
            rec.incomplete,
            vec![("open-key".to_string(), "req-open".to_string())]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(clippy::expect_used)]
    fn an_orphaned_overlapping_segment_still_folds_correctly() {
        // Simulate a crash between segment rename and live-log
        // truncation: the same records live in both places.
        let dir =
            std::env::temp_dir().join(format!("lintra-journal-overlap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut j, _) = Journal::open_dir(&dir).expect("open");
            j.append(RecordKind::Admit, "k1", "req-1").expect("a");
            j.append(RecordKind::Done, "k1", "resp-1").expect("d");
            j.append(RecordKind::Admit, "k2", "req-2").expect("a2");
        }
        let live = std::fs::read(dir.join(JOURNAL_FILE)).expect("read");
        std::fs::write(dir.join(format!("{SEGMENT_PREFIX}1")), &live).expect("seed segment");

        let (_, rec) = Journal::open_dir(&dir).expect("reopen");
        assert_eq!(
            rec.completed.get("k1"),
            Some(&(RecordKind::Done, "resp-1".to_string()))
        );
        assert_eq!(
            rec.incomplete,
            vec![("k2".to_string(), "req-2".to_string())],
            "the duplicate admit must fold away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(clippy::expect_used)]
    fn a_damaged_segment_quarantines_the_whole_set() {
        let dir =
            std::env::temp_dir().join(format!("lintra-journal-segcorrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut j, _) = Journal::open_dir_with(&dir, Some(64)).expect("open");
            for i in 0..8 {
                j.append(RecordKind::Done, &format!("k{i}"), "resp")
                    .expect("append");
            }
        }
        let seg = dir.join(format!(
            "{SEGMENT_PREFIX}{}",
            seg_indices(&dir).last().expect("a segment exists")
        ));
        let mut bytes = std::fs::read(&seg).expect("read seg");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&seg, &bytes).expect("damage");

        let (_, rec) = Journal::open_dir(&dir).expect("reopen");
        assert!(rec.quarantined.is_some(), "segment damage must quarantine");
        assert!(
            rec.completed.is_empty() && rec.records.is_empty(),
            "a quarantined set contributes nothing"
        );
        assert!(seg_indices(&dir).is_empty(), "no segment may survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completion_precedence_matches_the_dedup_policy() {
        let bytes = record_bytes(&[
            (RecordKind::Admit, "done-key", "r1"),
            (RecordKind::Admit, "abort-key", "r2"),
            (RecordKind::Admit, "open-key", "r3"),
            (RecordKind::Done, "done-key", "resp-ok"),
            (RecordKind::Abort, "abort-key", "resp-abort"),
        ]);
        let (records, outcome) = scan(&bytes);
        assert_eq!(outcome, ScanOutcome::Clean);
        assert_eq!(records.len(), 5);
        assert!(RecordKind::Done.serves_retries());
        assert!(RecordKind::Fail.serves_retries());
        assert!(!RecordKind::Abort.serves_retries());
        assert!(!RecordKind::Admit.serves_retries());
    }
}

//! A circuit breaker around the optimization engine.
//!
//! Worker panics are supposed to be isolated events — the pool catches
//! them per sweep point and the sibling points survive. But *consecutive*
//! panics across requests mean something systemic (a poisoned cache, a
//! pathological input class being replayed, a miscompiled kernel), and
//! re-running the engine just burns cores to produce the same failure.
//! The breaker turns that pattern into fast, explicit rejection:
//!
//! * **Closed** — requests flow; each engine panic increments a
//!   consecutive-failure counter, any other outcome resets it.
//! * **Open** — after [`BreakerConfig::threshold`] consecutive panics,
//!   requests are rejected immediately with `RES-CIRCUIT-OPEN` until
//!   [`BreakerConfig::cooldown`] has elapsed.
//! * **Half-open** — after the cooldown, exactly one probe request is
//!   admitted. Success closes the breaker; failure re-opens it for
//!   another full cooldown. Concurrent requests during the probe are
//!   still rejected, so a recovering engine is never stampeded.

use std::sync::Mutex;
use std::time::Duration;

/// Tuning for [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive engine panics that trip the breaker open.
    pub threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { since: Duration },
    HalfOpen,
}

/// See the module docs for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panic while holding this one-word lock leaves no invariant to
        // protect; keep serving with the last-written state.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Asks to run one request through the engine. `now` is the
    /// caller's [`crate::Clock::now`] reading — time flows through the
    /// clock seam so the simulator can drive the breaker virtually.
    ///
    /// # Errors
    ///
    /// Returns the time left until the next probe when the breaker is
    /// open (zero when a half-open probe is already in flight).
    pub fn admit(&self, now: Duration) -> Result<(), Duration> {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => Ok(()),
            State::HalfOpen => Err(Duration::ZERO),
            State::Open { since } => {
                let waited = now.saturating_sub(since);
                if waited >= self.config.cooldown {
                    // This caller becomes the probe.
                    *state = State::HalfOpen;
                    Ok(())
                } else {
                    Err(self.config.cooldown - waited)
                }
            }
        }
    }

    /// Reports a non-panicking engine outcome (success *or* a classified
    /// error like a deadline): resets the failure streak, closes a
    /// half-open breaker.
    pub fn record_success(&self) {
        *self.lock() = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// Reports an engine worker panic at the caller's clock reading.
    pub fn record_failure(&self, now: Duration) {
        let mut state = self.lock();
        *state = match *state {
            State::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.threshold {
                    State::Open { since: now }
                } else {
                    State::Closed {
                        consecutive_failures: n,
                    }
                }
            }
            // A failed probe (or a straggler failing while open) re-arms
            // the full cooldown.
            State::HalfOpen | State::Open { .. } => State::Open { since: now },
        };
    }

    /// `"closed"`, `"open"`, or `"half-open"` — for logs and stats.
    pub fn state_label(&self) -> &'static str {
        match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = breaker(3, 1000);
        b.record_failure(at(0));
        b.record_failure(at(1));
        assert!(b.admit(at(2)).is_ok());
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn success_resets_the_streak() {
        let b = breaker(2, 1000);
        b.record_failure(at(0));
        b.record_success();
        b.record_failure(at(1));
        assert!(
            b.admit(at(2)).is_ok(),
            "streak was reset, one failure is below threshold"
        );
    }

    #[test]
    fn opens_at_threshold_and_reports_retry_delay() {
        let b = breaker(2, 1000);
        b.record_failure(at(0));
        b.record_failure(at(0));
        assert_eq!(b.state_label(), "open");
        let retry_in = b.admit(at(100)).expect_err("open breaker rejects");
        assert_eq!(retry_in, Duration::from_millis(900));
    }

    #[test]
    fn cooldown_elapsing_on_the_virtual_clock_admits_one_probe() {
        let b = breaker(1, 1000);
        b.record_failure(at(500));
        assert!(b.admit(at(1499)).is_err(), "1 ms early is still open");
        assert!(b.admit(at(1500)).is_ok(), "cooldown elapsed: probe");
        assert_eq!(b.state_label(), "half-open");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = breaker(1, 0);
        b.record_failure(at(0));
        assert!(
            b.admit(at(0)).is_ok(),
            "zero cooldown: immediately half-open"
        );
        assert_eq!(b.state_label(), "half-open");
        assert!(b.admit(at(0)).is_err(), "only one probe at a time");
        b.record_success();
        assert_eq!(b.state_label(), "closed");
        assert!(b.admit(at(0)).is_ok());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = breaker(1, 0);
        b.record_failure(at(0));
        assert!(b.admit(at(0)).is_ok());
        b.record_failure(at(0));
        // Cooldown is zero, so it goes straight back to a probe slot; the
        // point is that the state passed through Open again.
        assert_eq!(b.state_label(), "open");
    }
}

//! `lintra-client`: the resilient counterpart of the server.
//!
//! One call, [`Client::request`], hides the transport failure modes a
//! misbehaving network (or a chaos-injected server) produces:
//!
//! * **Retry with exponential backoff and jitter** — connect failures,
//!   dropped connections, and unparseable responses are retried up to
//!   [`RetryPolicy::max_attempts`] times, sleeping
//!   `min(base·2ᵏ, max) · uniform[0.5, 1.0)` between attempts. The
//!   jitter stream is seeded ([`RetryPolicy::seed`] mixed with the
//!   request id), so a test replay produces identical pacing.
//! * **Overload is retryable** — a `RES-OVERLOAD` shed is the server
//!   telling the client "back off and come back"; with
//!   [`RetryPolicy::retry_overload`] (the default) the client does
//!   exactly that, and only surfaces the failure once attempts are
//!   exhausted.
//! * **Deadline awareness** — a request carrying `deadline_ms` waits at
//!   most twice that (the server's documented bound) plus a grace period
//!   for the response before declaring the attempt dead.
//!
//! * **Failover awareness** — a client may carry an ordered list of
//!   [`Client::endpoints`] (`"host:a,host:b"`). Within each attempt the
//!   endpoints are walked in order, advancing — without sleeping — past
//!   dead servers and past authoritative `RES-NOT-PRIMARY` /
//!   `RES-STALE-EPOCH` redirects, so a request lands on whichever
//!   replica is currently primary. The walk position is remembered
//!   across attempts of one call, and the idempotency key
//!   (`request_id`) rides along unchanged, so a retry that lands on a
//!   freshly promoted follower is answered from its replicated journal
//!   byte-identically.
//! * **Fail fast when the deadline is hopeless** — when the next backoff
//!   sleep could not possibly leave room for a response within the
//!   request's own budget, the client returns
//!   [`ClientError::DeadlineExhausted`] (`RES-DEADLINE`) immediately
//!   instead of sleeping past the point of no return.
//!
//! Classified failure responses other than overload and the failover
//! redirects (`RES-DEADLINE`, `VAL-CONFIG`, …) are *not* retried: the
//! server answered authoritatively, and the caller decides what to do
//! with the verdict.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use lintra::matrix::rng::SplitMix64;
use lintra::ErrorClass;
use lintra_bench::wire::{WireRequest, WireResponse};

use crate::clock::{Clock, SystemClock};
use crate::transport::{NetError, TcpTransport, Transport};

/// Retry tuning; the default is three attempts with 50 ms → 2 s backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Also retry `RES-OVERLOAD` sheds (server asked for backoff).
    pub retry_overload: bool,
    /// Jitter seed, mixed with the request id per call.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            retry_overload: true,
            seed: 0x5EED_CAB1E,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry `attempt` (0-based): full
    /// exponential backoff scaled into `[0.5, 1.0)` — the sleep is
    /// always in `[min(base·2ᵃ, max)/2, min(base·2ᵃ, max))`.
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.max_backoff);
        exp.mul_f64(0.5 + rng.next_f64() * 0.5)
    }
}

/// Client-side failure after all resilience was exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No attempt produced a parseable response (connect refused,
    /// connection dropped, response garbage). Retryable by the caller at
    /// a longer horizon.
    Transport {
        /// Attempts made.
        attempts: u32,
        /// Description of the last failure.
        last_error: String,
    },
    /// The request's own deadline budget cannot survive the next backoff
    /// sleep: retrying would only return an answer the caller has
    /// already given up on. Resource-class, kin of the server's
    /// `RES-DEADLINE`.
    DeadlineExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The response budget that ran out.
        budget: Duration,
    },
}

impl ClientError {
    /// Exit code for CLI use: transport failures are I/O-class, an
    /// exhausted deadline is resource-class.
    pub fn exit_code(&self) -> i32 {
        match self {
            ClientError::Transport { .. } => ErrorClass::Io.exit_code(),
            ClientError::DeadlineExhausted { .. } => ErrorClass::Resource.exit_code(),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport {
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "request failed after {attempts} attempt(s): {last_error}"
                )
            }
            ClientError::DeadlineExhausted { attempts, budget } => {
                write!(
                    f,
                    "RES-DEADLINE: response budget of {} ms exhausted after {attempts} attempt(s); \
                     not sleeping past the deadline",
                    budget.as_millis()
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection-per-request TCP client (the server is newline-delimited
/// and stateless per line, so pooling buys nothing a benchmark would
/// notice at this payload size).
#[derive(Debug, Clone)]
pub struct Client {
    /// Ordered server endpoints (`host:port` each). The first is the
    /// preferred server; the rest are failover replicas, walked in order
    /// when the preferred one is dead or answers `RES-NOT-PRIMARY` /
    /// `RES-STALE-EPOCH`.
    pub endpoints: Vec<String>,
    /// Retry/backoff tuning.
    pub policy: RetryPolicy,
    /// Per-attempt TCP connect budget.
    pub connect_timeout: Duration,
    /// Response wait for requests without a `deadline_ms` of their own.
    pub request_timeout: Duration,
    /// Network seam; [`TcpTransport`] by default, swapped for an
    /// in-memory network under simulation.
    pub transport: Arc<dyn Transport>,
    /// Time seam; [`SystemClock`] by default, swapped for virtual time
    /// under simulation.
    pub clock: Arc<dyn Clock>,
}

/// The replication redirects an endpoint walk advances past without
/// sleeping: the server answered, but authoritatively said "not me".
fn is_redirect(resp: &WireResponse) -> bool {
    matches!(
        &resp.outcome,
        Err(f) if f.code == "RES-NOT-PRIMARY" || f.code == "RES-STALE-EPOCH"
    )
}

impl Client {
    /// A client with default resilience tuning. `addr` is one address or
    /// a comma-separated ordered endpoint list (`"host:a,host:b"`).
    pub fn new(addr: impl Into<String>) -> Client {
        let addr = addr.into();
        let endpoints: Vec<String> = addr
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        Client {
            endpoints,
            policy: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(60),
            transport: Arc::new(TcpTransport),
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// A client with explicit retry tuning.
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> Client {
        Client {
            policy,
            ..Client::new(addr)
        }
    }

    /// How long one attempt may wait for the response line: twice the
    /// request's own deadline (the server's bound) plus scheduling grace,
    /// or the client default for deadline-free requests.
    fn response_budget(&self, req: &WireRequest) -> Duration {
        match req.deadline_ms {
            Some(ms) => Duration::from_millis(ms.saturating_mul(2).saturating_add(500)),
            None => self.request_timeout,
        }
    }

    /// Sends one request, retrying transport failures (and optionally
    /// overload sheds) with jittered exponential backoff. With several
    /// [`Client::endpoints`], each attempt walks the list in order,
    /// advancing — without sleeping — past dead endpoints and past
    /// `RES-NOT-PRIMARY` / `RES-STALE-EPOCH` redirects; the walk
    /// position survives across attempts, so once a promoted replica
    /// answers, later attempts go straight to it.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Transport`] when every attempt failed to
    /// produce a parseable response, and
    /// [`ClientError::DeadlineExhausted`] when the next backoff sleep
    /// could not leave room for an answer within the response budget. A
    /// response carrying a classified failure is an `Ok` — inspect
    /// [`WireResponse::outcome`].
    pub fn request(&self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let mut hasher = DefaultHasher::new();
        req.id.hash(&mut hasher);
        let mut rng = SplitMix64::new(self.policy.seed ^ hasher.finish());
        let attempts = self.policy.max_attempts.max(1);
        let budget = self.response_budget(req);
        let started = self.clock.now();
        let mut last_error = "no endpoints configured".to_string();
        let mut cursor = 0usize;
        for attempt in 0..attempts {
            if attempt > 0 {
                let sleep = self.policy.backoff(attempt - 1, &mut rng);
                let elapsed = self.clock.now().saturating_sub(started);
                if elapsed.saturating_add(sleep) >= budget {
                    // Sleeping would run out the caller's own deadline:
                    // fail fast instead of answering after it matters.
                    return Err(ClientError::DeadlineExhausted {
                        attempts: attempt,
                        budget,
                    });
                }
                self.clock.sleep(sleep);
            }
            // Walk the endpoint list at most once per attempt.
            for _ in 0..self.endpoints.len().max(1) {
                let Some(endpoint) = self.endpoints.get(cursor % self.endpoints.len().max(1))
                else {
                    break;
                };
                match self.try_once(endpoint, req, budget) {
                    Ok(resp) if is_redirect(&resp) => {
                        let code = resp
                            .outcome
                            .as_ref()
                            .err()
                            .map(|f| f.code.clone())
                            .unwrap_or_default();
                        last_error = format!("{endpoint} answered {code}");
                        cursor += 1;
                        if self.endpoints.len() <= 1 {
                            // Nowhere else to go: surface the verdict.
                            return Ok(resp);
                        }
                    }
                    Ok(resp) => {
                        let overload_shed = matches!(
                            &resp.outcome,
                            Err(f) if f.code == "RES-OVERLOAD"
                        );
                        if overload_shed && self.policy.retry_overload && attempt + 1 < attempts {
                            last_error = "shed with RES-OVERLOAD".to_string();
                            break;
                        }
                        return Ok(resp);
                    }
                    Err(e) => {
                        last_error = e;
                        cursor += 1;
                    }
                }
            }
            // A full redirect cycle (every endpoint said "not me") falls
            // through to the next attempt: a promotion is likely in
            // flight and finishes during the backoff sleep.
        }
        Err(ClientError::Transport {
            attempts,
            last_error,
        })
    }

    fn try_once(
        &self,
        endpoint: &str,
        req: &WireRequest,
        budget: Duration,
    ) -> Result<WireResponse, String> {
        let mut conn = self
            .transport
            .connect(endpoint, self.connect_timeout)
            .map_err(|e| e.to_string())?;
        conn.send(req.render_line().as_bytes())
            .map_err(|e| format!("sending request: {e}"))?;

        // Read up to the newline under the overall response budget.
        let deadline = self.clock.deadline(budget);
        let mut line: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 1024];
        while !line.contains(&b'\n') {
            let left = deadline.saturating_sub(self.clock.now());
            if left.is_zero() {
                return Err(format!("no response within {} ms", budget.as_millis()));
            }
            match conn.recv(&mut chunk, left) {
                Ok(n) => line.extend_from_slice(&chunk[..n]),
                Err(NetError::Closed) => {
                    return Err("connection closed before a response".to_string())
                }
                Err(NetError::Timeout) => {
                    return Err(format!("no response within {} ms", budget.as_millis()))
                }
                Err(e) => return Err(format!("reading response: {e}")),
            }
        }
        let text = String::from_utf8_lossy(&line);
        let resp = WireResponse::parse(text.trim_end())
            .map_err(|e| format!("unparseable response: {e}"))?;
        if resp.id != req.id {
            return Err(format!(
                "response id `{}` does not match request `{}`",
                resp.id, req.id
            ));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(350),
            ..RetryPolicy::default()
        };
        let mut rng = SplitMix64::new(7);
        let b0 = p.backoff(0, &mut rng);
        let b1 = p.backoff(1, &mut rng);
        let b4 = p.backoff(4, &mut rng);
        assert!(
            b0 >= Duration::from_millis(50) && b0 < Duration::from_millis(100),
            "{b0:?}"
        );
        assert!(
            b1 >= Duration::from_millis(100) && b1 < Duration::from_millis(200),
            "{b1:?}"
        );
        assert!(
            b4 >= Duration::from_millis(175) && b4 < Duration::from_millis(350),
            "{b4:?}"
        );
    }

    #[test]
    fn jitter_is_deterministic_in_the_seed() {
        let p = RetryPolicy::default();
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for attempt in 0..4 {
            assert_eq!(p.backoff(attempt, &mut a), p.backoff(attempt, &mut b));
        }
    }

    #[test]
    fn connect_refused_exhausts_attempts() {
        // Port 1 on localhost is essentially never listening.
        let client = Client {
            policy: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            connect_timeout: Duration::from_millis(200),
            ..Client::new("127.0.0.1:1")
        };
        let req = WireRequest::new("x", lintra_bench::wire::WireOp::Ping);
        let err = client.request(&req).expect_err("nothing listens on port 1");
        match &err {
            ClientError::Transport { attempts, .. } => assert_eq!(*attempts, 2),
            other => panic!("expected a transport failure, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 6);
    }

    #[test]
    fn deadline_requests_get_the_2x_response_budget() {
        let client = Client::new("127.0.0.1:1");
        let mut req = WireRequest::new("x", lintra_bench::wire::WireOp::Ping);
        assert_eq!(client.response_budget(&req), client.request_timeout);
        req.deadline_ms = Some(300);
        assert_eq!(client.response_budget(&req), Duration::from_millis(1100));
    }

    #[test]
    fn endpoint_lists_parse_from_comma_separated_addresses() {
        let client = Client::new(" 127.0.0.1:9001 ,127.0.0.1:9002,, ");
        assert_eq!(
            client.endpoints,
            vec!["127.0.0.1:9001".to_string(), "127.0.0.1:9002".to_string()]
        );
        assert_eq!(Client::new("127.0.0.1:9001").endpoints.len(), 1);
    }

    #[test]
    fn backoff_stays_within_documented_bounds_across_a_seed_sweep() {
        // The contract: every sleep is in [min(base·2ᵃ, max)/2,
        // min(base·2ᵃ, max)). Sweep seeds and attempts to pin it down.
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(40),
            max_backoff: Duration::from_millis(640),
            ..RetryPolicy::default()
        };
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(seed);
            for attempt in 0..8u32 {
                let exp = p
                    .base_backoff
                    .saturating_mul(2u32.saturating_pow(attempt))
                    .min(p.max_backoff);
                let b = p.backoff(attempt, &mut rng);
                assert!(
                    b >= exp / 2 && b < exp,
                    "seed {seed} attempt {attempt}: {b:?} outside [{:?}, {:?})",
                    exp / 2,
                    exp
                );
            }
        }
    }

    #[test]
    fn hopeless_deadlines_fail_fast_instead_of_sleeping() {
        // A dead endpoint plus a backoff far larger than the response
        // budget: the client must return RES-DEADLINE *quickly* rather
        // than sleeping through the whole backoff schedule.
        let client = Client {
            policy: RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_secs(30),
                ..RetryPolicy::default()
            },
            connect_timeout: Duration::from_millis(200),
            ..Client::new("127.0.0.1:1")
        };
        let mut req = WireRequest::new("x", lintra_bench::wire::WireOp::Ping);
        req.deadline_ms = Some(100); // budget: 700 ms ≪ 15 s minimum sleep
        let started = Instant::now();
        let err = client.request(&req).expect_err("nothing listens on port 1");
        let waited = started.elapsed();
        match &err {
            ClientError::DeadlineExhausted { attempts, budget } => {
                assert_eq!(*attempts, 1, "gave up before the second attempt");
                assert_eq!(*budget, Duration::from_millis(700));
            }
            other => panic!("expected DeadlineExhausted, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 4, "deadline exhaustion is resource-class");
        assert!(
            err.to_string().contains("RES-DEADLINE"),
            "display names the diagnostic: {err}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "failed fast, not after the backoff schedule: {waited:?}"
        );
    }
}

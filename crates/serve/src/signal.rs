//! Std-only SIGTERM/SIGINT notification for graceful shutdown.
//!
//! The workspace bans external crates, so instead of `signal-hook` this
//! registers a minimal handler through libc's `signal(2)` (declared by
//! hand — libc itself is already linked by std). The handler does the
//! only async-signal-safe thing possible: it stores into a static
//! `AtomicBool`. The serve loop polls [`shutdown_requested`] and runs the
//! ordinary drain path, so all real work happens outside signal context.
//!
//! On non-Unix targets [`install`] is a no-op and termination falls back
//! to the platform default.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub extern "C" fn mark(_signum: i32) {
        // Only async-signal-safe operation in the process: a relaxed-or-
        // stronger atomic store.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Installs the SIGTERM/SIGINT handler (idempotent; Unix only).
pub fn install() {
    #[cfg(unix)]
    // SAFETY: `signal` is the C standard library function; `mark` is an
    // `extern "C" fn(i32)` performing only an atomic store, which is
    // async-signal-safe. Replacing a handler is process-global but this
    // crate is the only signal user in the workspace.
    unsafe {
        imp::signal(imp::SIGTERM, imp::mark);
        imp::signal(imp::SIGINT, imp::mark);
    }
}

/// `true` once SIGTERM or SIGINT has been delivered (sticky).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Testing hook: simulates signal delivery without raising one.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_sticky_and_observable() {
        install();
        assert!(!shutdown_requested() || cfg!(not(unix)) || shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}

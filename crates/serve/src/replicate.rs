//! Primary→follower WAL shipping, failover, and epoch fencing.
//!
//! A durable server ([`crate::ServerConfig::journal_dir`]) can replicate:
//! the **primary** streams its write-ahead journal records — the same
//! `[u32 len][u32 crc32][JSON]` records `journal.log` holds, framed for
//! transport with a monotonically increasing *epoch* and *sequence
//! number* — to any follower that dials in. A **follower** (started with
//! [`crate::ServerConfig::replica_of`]) connects to its primary, appends
//! each shipped record to its own journal, **CRC-verifies and fsyncs it
//! before acking**, keeps its dedup map and `SweepCache` snapshots warm
//! by replaying acked records, and answers read-only `recover`-style
//! status queries — while rejecting compute requests with
//! `RES-NOT-PRIMARY`.
//!
//! # Transport
//!
//! Replication rides the server's ordinary newline-delimited-JSON TCP
//! listener. A line whose top-level object carries a `"repl"` member is
//! a replication message ([`ReplMsg`]); everything else is a normal wire
//! request. The follower dials the primary and sends
//! `{"repl":"hello","epoch":E,"have":S}`; the primary answers with a
//! stream of `rec` messages from sequence `S+1` (sequence numbers are
//! 1-based journal record indices), interleaving `hb` heartbeats while
//! idle, and reads `ack` messages back on the same socket.
//!
//! Each `rec` carries the CRC32 of the record's canonical payload bytes
//! ([`crate::journal::payload_bytes`]). The follower re-encodes and
//! re-checksums before appending, so an acked follower journal is
//! **byte-identical** to the primary's — a checksum mismatch is
//! `IO-REPL-CORRUPT`: the record is refused and the link torn down to
//! resync from the acked prefix.
//!
//! # Epochs and fencing
//!
//! Every replicated deployment lives in an *epoch* (term), persisted in
//! a small atomically-replaced `epoch` file. All replication messages
//! carry the sender's epoch, and **lower epochs are always refused**:
//!
//! * a follower that observes records from a lower epoch than its own
//!   refuses them (`RES-STALE-EPOCH`) and treats the sender as deposed;
//! * a primary that receives a `hello` carrying a higher epoch knows it
//!   was deposed while away: it **fences itself** — every subsequent
//!   request, pings included, is answered `RES-STALE-EPOCH`;
//! * a server started with [`crate::ServerConfig::peers`] also polls
//!   peer status and self-fences the moment any peer reports a higher
//!   epoch — or a *primary at the same epoch* with a
//!   lexicographically smaller address (the equal-epoch tiebreak; it
//!   can only arise through operator error, because promotion epochs
//!   are collision-free, see below) — so a revived stale primary is
//!   fenced even before the new primary dials it.
//!
//! Fencing is **durable**: [`ReplState::fence`] persists the
//! superseding epoch together with a `fenced` marker, so a fenced
//! server that restarts (without `--replica-of`) comes back fenced
//! instead of re-opening for writes at its stale epoch. An epoch file
//! that exists but does not parse is a **startup error** — silently
//! resetting to epoch 1 could un-fence a deposed primary.
//!
//! # Failure detection and promotion
//!
//! The follower expects a record or heartbeat within
//! [`crate::ServerConfig::failover_grace`]; reconnects use the client's
//! jittered exponential backoff ([`crate::RetryPolicy::backoff`]). When
//! the grace expires, the follower arbitrates: it queries each peer's
//! `(role, epoch, seq)` (skipping any peer whose status nonce proves it
//! is this very server under an alias) and
//!
//! * **adopts** a peer that already promoted (follows it instead),
//! * **defers** to any live peer with more acked records (or, on a tie,
//!   the lexicographically smaller address) — so the *highest-acked*
//!   follower wins and a double promotion resolves deterministically;
//!   each deferral is logged so a perpetual defer loop is visible,
//! * otherwise **promotes**: bumps the epoch past every epoch it has
//!   observed — to the next epoch *congruent to this node's slot* in
//!   the sorted cluster membership (`peers` ∪ self), so two nodes can
//!   never promote to the **same** epoch — persists it, installs cache
//!   snapshots ([`lintra::engine::snapshot::install_dir`]), replays
//!   admitted-but-unsettled journal records, and only then serves as
//!   primary. Retried `request_id`s settled before the failover are
//!   answered from the replicated journal byte-identically, with zero
//!   recompute.
//!
//! Arbitration is quorum-less: an unreachable peer never blocks
//! failover, which is what lets a two-node pair fail over at all. The
//! price is that during a *full partition* both sides of a pair may
//! serve an epoch each (never the same epoch). The duel resolves
//! deterministically the moment connectivity heals — the strictly
//! lower epoch fences — and writes accepted by the losing side are
//! never silently merged: its journal has diverged, which the resync
//! handshake detects (below) and refuses with `IO-REPL-CORRUPT`.
//!
//! # Divergence detection
//!
//! The resync protocol only works when the follower's journal is a
//! strict prefix of the primary's. That is not a matter of trust: the
//! `hello` carries a chained **prefix checksum** over the follower's
//! whole journal, and the primary verifies it against the same prefix
//! of its own log (and that `have` does not exceed its own sequence)
//! before streaming a single record. A mismatch — e.g. a deposed
//! primary with an unreplicated acked suffix restarted with
//! `--replica-of` the new primary — is refused with `IO-REPL-CORRUPT`;
//! the refused follower marks itself *diverged*, stops resyncing, and
//! will never promote. The operator wipes its journal directory and
//! re-seeds it from the live primary.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use lintra::engine::snapshot::{crc32, install_dir};
use lintra::matrix::rng::SplitMix64;
use lintra_bench::json::Json;
use lintra_bench::wire::{WireOp, WireRequest};

use crate::client::RetryPolicy;
use crate::clock::{Clock, SystemClock};
use crate::journal::{fold_records, payload_bytes, JournalRecord, RecordKind, SNAPSHOT_DIR};
use crate::server::{lock_unpoisoned, persist_snapshots, replay_request, Shared};
use crate::signal;
use crate::transport::{read_line, Conn, NetError, TcpTransport, Transport};

/// File name of the persisted epoch inside the epoch directory.
pub const EPOCH_FILE: &str = "epoch";

/// Connect/read budget for one-shot peer queries (status, fence hello).
const PEER_TIMEOUT: Duration = Duration::from_millis(250);

/// How often blocked replication reads re-check for shutdown.
const POLL: Duration = Duration::from_millis(20);

/// What a replicated server currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes, streams its journal to followers.
    Primary,
    /// Replicates from a primary; answers pings and status queries,
    /// rejects compute with `RES-NOT-PRIMARY`.
    Follower,
    /// Mid-promotion: replaying unsettled records before taking writes.
    Promoting,
    /// Deposed: a higher epoch exists; every request is refused with
    /// `RES-STALE-EPOCH`.
    Fenced,
}

impl Role {
    /// Stable lowercase label (wire + logs).
    pub fn label(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Promoting => "promoting",
            Role::Fenced => "fenced",
        }
    }
}

/// Role plus the addresses that parameterize it.
#[derive(Debug, Clone)]
pub struct RoleState {
    /// Current role.
    pub role: Role,
    /// The primary this follower replicates from (follower/promoting).
    pub primary: Option<String>,
}

/// Deterministic replication-fault knobs, for chaos tests only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplChaos {
    /// Primary side: tear the follower link down once, right after this
    /// many records were streamed on one connection
    /// (`Fault::ReplLinkDrop`). The follower must resync from its acked
    /// prefix on reconnect.
    pub drop_link_after: Option<u64>,
    /// Follower side: stall for the given duration before acking the
    /// record at the given sequence number (`Fault::LaggingFollower`).
    /// The primary must keep serving at full speed meanwhile.
    pub lag: Option<(u64, Duration)>,
}

/// Shared replication state of one server (present iff durable).
pub struct ReplState {
    /// This server's own listen address (tiebreaks promotion races).
    pub(crate) self_addr: Mutex<String>,
    /// Current epoch (term). Monotonic; persisted in [`EPOCH_FILE`].
    pub(crate) epoch: AtomicU64,
    /// Where the epoch is persisted.
    pub(crate) epoch_path: PathBuf,
    /// Current role.
    pub(crate) role: Mutex<RoleState>,
    /// In-memory image of the journal, in record order; sequence number
    /// `s` is `log[s - 1]`. Seeded from recovery, appended on every
    /// journal append, streamed to followers.
    pub(crate) log: Mutex<Vec<JournalRecord>>,
    /// Signalled when `log` grows (wakes idle follower streams).
    pub(crate) log_grew: Condvar,
    /// Highest acked sequence per follower address (observability).
    pub(crate) acks: Mutex<HashMap<String, u64>>,
    /// The epoch that superseded ours (0 = not fenced).
    pub(crate) fenced_by: AtomicU64,
    /// Records replayed during promotion.
    pub(crate) promoted_replayed: AtomicU64,
    /// The address of the primary this server was deposed-promoted from
    /// (set at promotion; the guard loop keeps fencing it).
    pub(crate) former_primary: Mutex<Option<String>>,
    /// Replication records refused for a checksum mismatch
    /// (`IO-REPL-CORRUPT`).
    pub(crate) corrupt_refused: AtomicU64,
    /// True once the primary proved this follower's journal is not a
    /// prefix of its own (`IO-REPL-CORRUPT` at hello): replication has
    /// stopped and this server will never promote.
    pub(crate) diverged: AtomicBool,
    /// Random per-process identity carried in status replies, so a
    /// status query that loops back to this very server (hostname vs IP
    /// alias, `0.0.0.0` bind) is recognized as self, not a peer.
    pub(crate) nonce: u64,
    /// Chaos link drops already consumed (each fires once).
    pub(crate) chaos_drops_done: AtomicU64,
}

impl ReplState {
    /// Builds the replication state from the persisted epoch file.
    ///
    /// # Errors
    ///
    /// Propagates [`load_epoch_state`]'s refusal of an unreadable or
    /// unparseable epoch file — silently resetting a corrupt file to
    /// epoch 1 could un-fence a deposed primary, so startup fails
    /// instead.
    pub(crate) fn new(
        epoch_path: PathBuf,
        replica_of: Option<String>,
        records: Vec<JournalRecord>,
        clock: &dyn Clock,
    ) -> Result<ReplState, std::io::Error> {
        let state = load_epoch_state(&epoch_path)?;
        let (role, fenced_by) = match (replica_of, state.fenced) {
            // An explicit `--replica-of` rejoin clears a persisted
            // fence: the operator chose a primary to resync from, and
            // the hello's prefix checksum guards against a divergent
            // journal sneaking back in.
            (Some(primary), fenced) => {
                if fenced {
                    let _ = store_epoch(&epoch_path, state.epoch);
                }
                (
                    RoleState {
                        role: Role::Follower,
                        primary: Some(primary),
                    },
                    0,
                )
            }
            // A fenced server restarted as-is stays fenced: re-opening
            // for writes at a stale epoch would accept (and ack) work
            // the real primary never sees.
            (None, true) => (
                RoleState {
                    role: Role::Fenced,
                    primary: None,
                },
                state.epoch,
            ),
            (None, false) => (
                RoleState {
                    role: Role::Primary,
                    primary: None,
                },
                0,
            ),
        };
        // The nonce only has to distinguish *processes* talking through
        // address aliases. A process-wide counter makes it unique within
        // this process even under a frozen or coarse clock (two ReplStates
        // built in the same tick), the pid separates processes on one
        // host, and the monotonic clock reading separates hosts — no
        // `SystemTime` involved, so simulation runs stay deterministic.
        static NONCE_SEQ: AtomicU64 = AtomicU64::new(0);
        let mut hasher = DefaultHasher::new();
        std::process::id().hash(&mut hasher);
        epoch_path.hash(&mut hasher);
        NONCE_SEQ.fetch_add(1, Ordering::SeqCst).hash(&mut hasher);
        clock.now().hash(&mut hasher);
        Ok(ReplState {
            self_addr: Mutex::new(String::new()),
            epoch: AtomicU64::new(state.epoch),
            epoch_path,
            role: Mutex::new(role),
            log: Mutex::new(records),
            log_grew: Condvar::new(),
            acks: Mutex::new(HashMap::new()),
            fenced_by: AtomicU64::new(fenced_by),
            promoted_replayed: AtomicU64::new(0),
            former_primary: Mutex::new(None),
            corrupt_refused: AtomicU64::new(0),
            diverged: AtomicBool::new(false),
            // JSON numbers are f64: keep the nonce within 2^53 so it
            // round-trips the wire exactly. One SplitMix64 step disperses
            // the hash so counter-adjacent nonces are far apart.
            nonce: SplitMix64::new(hasher.finish()).next_u64() & ((1 << 53) - 1),
            chaos_drops_done: AtomicU64::new(0),
        })
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Current sequence number (= records in the log).
    pub fn seq(&self) -> u64 {
        lock_unpoisoned(&self.log).len() as u64
    }

    /// Snapshot of the current role.
    pub fn role_state(&self) -> RoleState {
        lock_unpoisoned(&self.role).clone()
    }

    pub(crate) fn set_role(&self, role: Role, primary: Option<String>) {
        *lock_unpoisoned(&self.role) = RoleState { role, primary };
    }

    /// Records refused with `IO-REPL-CORRUPT` so far.
    pub fn corrupt_refused(&self) -> u64 {
        self.corrupt_refused.load(Ordering::SeqCst)
    }

    /// True once this follower's journal was proven to have diverged
    /// from its primary's (it will never resync or promote).
    pub fn diverged(&self) -> bool {
        self.diverged.load(Ordering::SeqCst)
    }

    /// Fences this server: a higher epoch exists, so every subsequent
    /// request is answered `RES-STALE-EPOCH`. The fence is persisted
    /// (best-effort) so a restart comes back fenced instead of
    /// re-opening for writes at the stale epoch; the in-memory fence
    /// holds regardless.
    pub(crate) fn fence(&self, superseded_by: u64) {
        let _ = store_epoch_state(
            &self.epoch_path,
            EpochState {
                epoch: superseded_by.max(self.epoch()),
                fenced: true,
            },
        );
        self.fenced_by.store(superseded_by, Ordering::SeqCst);
        self.set_role(Role::Fenced, None);
    }

    /// Adopts a higher epoch observed on the wire, persisting it.
    fn adopt_epoch(&self, epoch: u64) {
        if epoch > self.epoch() {
            let _ = store_epoch(&self.epoch_path, epoch);
            self.epoch.store(epoch, Ordering::SeqCst);
        }
    }
}

// --- epoch persistence ----------------------------------------------------

/// The persisted epoch file content: the term, plus whether this server
/// was fenced in it (`<epoch>\n` or `<epoch> fenced\n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochState {
    /// The epoch (term), at least 1.
    pub epoch: u64,
    /// True when this server was fenced: a restart must come back
    /// fenced, not primary.
    pub fenced: bool,
}

/// Loads the persisted epoch state. A missing file is a fresh
/// deployment (epoch 1, not fenced).
///
/// # Errors
///
/// An epoch file that exists but cannot be read **or parsed** is an
/// error, never a silent reset to epoch 1: a reset could revive a
/// fenced or deposed primary at a stale term and lose acked writes.
pub fn load_epoch_state(path: &Path) -> Result<EpochState, std::io::Error> {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            return Ok(EpochState {
                epoch: 1,
                fenced: false,
            })
        }
        Err(e) => return Err(e),
    };
    let mut tokens = raw.split_whitespace();
    let epoch = tokens
        .next()
        .and_then(|t| t.parse::<u64>().ok())
        .filter(|&e| e >= 1);
    let fenced = match tokens.next() {
        None => Some(false),
        Some("fenced") => Some(true),
        Some(_) => None,
    };
    match (epoch, fenced, tokens.next()) {
        (Some(epoch), Some(fenced), None) => Ok(EpochState { epoch, fenced }),
        _ => Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "epoch file {} is unparseable ({raw:?}); refusing to guess — \
                 restore it or remove it to restart the deployment at epoch 1",
                path.display()
            ),
        )),
    }
}

/// Atomically persists the epoch state (write temp sibling, fsync,
/// rename).
///
/// # Errors
///
/// Propagates the underlying filesystem failure.
pub fn store_epoch_state(path: &Path, state: EpochState) -> Result<(), std::io::Error> {
    let tmp = path.with_extension("tmp");
    let marker = if state.fenced { " fenced" } else { "" };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(format!("{}{marker}\n", state.epoch).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Atomically persists an un-fenced epoch.
///
/// # Errors
///
/// Propagates the underlying filesystem failure.
pub fn store_epoch(path: &Path, epoch: u64) -> Result<(), std::io::Error> {
    store_epoch_state(
        path,
        EpochState {
            epoch,
            fenced: false,
        },
    )
}

// --- wire messages --------------------------------------------------------

/// One replication message (a JSON line with a `"repl"` discriminator).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// Follower → primary: start streaming after `have`.
    Hello {
        /// Sender's epoch.
        epoch: u64,
        /// Records the follower already holds.
        have: u64,
        /// Chained prefix checksum ([`prefix_crc`]) over all `have`
        /// records, so the primary can prove the follower's journal is
        /// a strict prefix of its own before streaming (a mismatch is
        /// divergence: `IO-REPL-CORRUPT`, not resyncable).
        pcrc: u32,
        /// Follower's own listen address (ack bookkeeping).
        from: String,
    },
    /// Primary → follower: one journal record.
    Rec {
        /// Sender's epoch.
        epoch: u64,
        /// 1-based journal position of this record.
        seq: u64,
        /// CRC32 of the record's canonical payload bytes.
        crc: u32,
        /// Record kind.
        kind: RecordKind,
        /// Idempotency key.
        rid: String,
        /// Journaled wire line.
        line: String,
    },
    /// Primary → follower: liveness while idle.
    Hb {
        /// Sender's epoch.
        epoch: u64,
        /// Sender's current sequence number.
        seq: u64,
    },
    /// Follower → primary: records up to `seq` are fsync'd.
    Ack {
        /// Highest durable sequence.
        seq: u64,
    },
    /// Either direction: refusal with a diagnostic code
    /// (`RES-STALE-EPOCH`, `RES-NOT-PRIMARY`, `IO-REPL-CORRUPT`).
    Err {
        /// Diagnostic code.
        code: String,
        /// Sender's epoch.
        epoch: u64,
    },
    /// Read-only status query (any peer).
    Status,
    /// Answer to [`ReplMsg::Status`].
    StatusReply {
        /// Role label ([`Role::label`]).
        role: String,
        /// Current epoch.
        epoch: u64,
        /// Current sequence number.
        seq: u64,
        /// Settled keys servable to retries.
        answered: u64,
        /// The answering process's identity nonce: a querier whose own
        /// nonce matches is talking to itself through an address alias.
        nonce: u64,
        /// The primary a follower replicates from, if any.
        primary: Option<String>,
    },
}

fn num(doc: &Json, key: &str) -> Option<u64> {
    let v = doc.get(key).and_then(Json::as_num)?;
    (v.is_finite() && v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
}

fn text(doc: &Json, key: &str) -> Option<String> {
    doc.get(key).and_then(Json::as_str).map(str::to_string)
}

impl ReplMsg {
    /// Parses a wire line as a replication message. `None` when the line
    /// is not a replication message at all (no `"repl"` member);
    /// `Some(Err)`-like malformed replication frames also return `None`
    /// — the caller treats them as protocol violations and drops the
    /// link.
    pub fn parse(line: &str) -> Option<ReplMsg> {
        let doc = Json::parse(line).ok()?;
        let tag = doc.get("repl").and_then(Json::as_str)?.to_string();
        match tag.as_str() {
            "hello" => Some(ReplMsg::Hello {
                epoch: num(&doc, "epoch")?,
                have: num(&doc, "have")?,
                pcrc: u32::try_from(num(&doc, "pcrc")?).ok()?,
                from: text(&doc, "from").unwrap_or_default(),
            }),
            "rec" => Some(ReplMsg::Rec {
                epoch: num(&doc, "epoch")?,
                seq: num(&doc, "seq")?,
                crc: u32::try_from(num(&doc, "crc")?).ok()?,
                kind: RecordKind::from_tag(&text(&doc, "t")?)?,
                rid: text(&doc, "rid")?,
                line: text(&doc, "line")?,
            }),
            "hb" => Some(ReplMsg::Hb {
                epoch: num(&doc, "epoch")?,
                seq: num(&doc, "seq")?,
            }),
            "ack" => Some(ReplMsg::Ack {
                seq: num(&doc, "seq")?,
            }),
            "err" => Some(ReplMsg::Err {
                code: text(&doc, "code")?,
                epoch: num(&doc, "epoch")?,
            }),
            "status" => Some(ReplMsg::Status),
            "status-reply" => Some(ReplMsg::StatusReply {
                role: text(&doc, "role")?,
                epoch: num(&doc, "epoch")?,
                seq: num(&doc, "seq")?,
                answered: num(&doc, "answered")?,
                nonce: num(&doc, "nonce")?,
                primary: text(&doc, "primary"),
            }),
            _ => None,
        }
    }

    /// Renders the message as one newline-terminated wire line.
    pub fn render_line(&self) -> String {
        let obj = match self {
            ReplMsg::Hello {
                epoch,
                have,
                pcrc,
                from,
            } => Json::obj([
                ("repl", Json::Str("hello".to_string())),
                ("epoch", Json::Num(*epoch as f64)),
                ("have", Json::Num(*have as f64)),
                ("pcrc", Json::Num(f64::from(*pcrc))),
                ("from", Json::Str(from.clone())),
            ]),
            ReplMsg::Rec {
                epoch,
                seq,
                crc,
                kind,
                rid,
                line,
            } => Json::obj([
                ("repl", Json::Str("rec".to_string())),
                ("epoch", Json::Num(*epoch as f64)),
                ("seq", Json::Num(*seq as f64)),
                ("crc", Json::Num(f64::from(*crc))),
                ("t", Json::Str(kind.tag().to_string())),
                ("rid", Json::Str(rid.clone())),
                ("line", Json::Str(line.clone())),
            ]),
            ReplMsg::Hb { epoch, seq } => Json::obj([
                ("repl", Json::Str("hb".to_string())),
                ("epoch", Json::Num(*epoch as f64)),
                ("seq", Json::Num(*seq as f64)),
            ]),
            ReplMsg::Ack { seq } => Json::obj([
                ("repl", Json::Str("ack".to_string())),
                ("seq", Json::Num(*seq as f64)),
            ]),
            ReplMsg::Err { code, epoch } => Json::obj([
                ("repl", Json::Str("err".to_string())),
                ("code", Json::Str(code.clone())),
                ("epoch", Json::Num(*epoch as f64)),
            ]),
            ReplMsg::Status => Json::obj([("repl", Json::Str("status".to_string()))]),
            ReplMsg::StatusReply {
                role,
                epoch,
                seq,
                answered,
                nonce,
                primary,
            } => {
                let mut members = vec![
                    ("repl", Json::Str("status-reply".to_string())),
                    ("role", Json::Str(role.clone())),
                    ("epoch", Json::Num(*epoch as f64)),
                    ("seq", Json::Num(*seq as f64)),
                    ("answered", Json::Num(*answered as f64)),
                    ("nonce", Json::Num(*nonce as f64)),
                ];
                if let Some(p) = primary {
                    members.push(("primary", Json::Str(p.clone())));
                }
                Json::obj(members)
            }
        };
        let mut line = obj.render_compact();
        line.push('\n');
        line
    }
}

/// A peer's answer to a status query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusView {
    /// Role label.
    pub role: String,
    /// Peer's epoch.
    pub epoch: u64,
    /// Peer's sequence number (acked records).
    pub seq: u64,
    /// Settled keys servable to retries.
    pub answered: u64,
    /// The answering process's identity nonce ([`ReplMsg::StatusReply`]).
    pub nonce: u64,
    /// The primary the peer replicates from, if it is a follower.
    pub primary: Option<String>,
}

/// Chained CRC32 over a run of journal records: each record's canonical
/// payload bytes ([`payload_bytes`]) are checksummed together with the
/// accumulator so far, so two journals share a prefix checksum iff they
/// share the prefix byte-for-byte. The empty prefix is 0.
pub fn prefix_crc(records: &[JournalRecord]) -> u32 {
    let mut acc: u32 = 0;
    for rec in records {
        let mut bytes = acc.to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload_bytes(rec.kind, &rec.rid, &rec.line));
        acc = crc32(&bytes);
    }
    acc
}

// --- socket plumbing ------------------------------------------------------

/// One-shot status query against any replicated server over real TCP.
/// `None` when the peer is unreachable, not replicated, or answers
/// garbage. Library-internal paths use [`query_status_via`] so the
/// transport and clock stay injectable.
pub fn query_status(addr: &str, timeout: Duration) -> Option<StatusView> {
    query_status_via(&TcpTransport, &SystemClock::new(), addr, timeout)
}

/// [`query_status`] over an explicit [`Transport`]/[`Clock`] pair.
pub fn query_status_via(
    transport: &dyn Transport,
    clock: &dyn Clock,
    addr: &str,
    timeout: Duration,
) -> Option<StatusView> {
    let mut conn = transport.connect(addr, timeout).ok()?;
    conn.send(ReplMsg::Status.render_line().as_bytes()).ok()?;
    let mut buf = Vec::new();
    let line = read_line(conn.as_mut(), &mut buf, timeout, POLL, clock).ok()??;
    match ReplMsg::parse(&line)? {
        ReplMsg::StatusReply {
            role,
            epoch,
            seq,
            answered,
            nonce,
            primary,
        } => Some(StatusView {
            role,
            epoch,
            seq,
            answered,
            nonce,
            primary,
        }),
        _ => None,
    }
}

// --- primary side: streaming ----------------------------------------------

/// Streams journal records to one follower; runs on the connection
/// thread that received the follower's hello. Returns when the link
/// drops, the server drains, this server stops being primary, or a
/// chaos-configured link drop fires.
pub(crate) fn stream_to_follower(
    shared: &Arc<Shared>,
    mut conn: Box<dyn Conn>,
    hello_epoch: u64,
    mut cursor: u64,
    hello_pcrc: u32,
    peer: String,
) {
    let Some(repl) = &shared.repl else { return };
    let clock = shared.config.clock.as_ref();
    // A hello from a higher epoch means this server was deposed while it
    // was away: fence immediately, refuse the stream.
    if hello_epoch > repl.epoch() {
        repl.fence(hello_epoch);
        let _ = conn.send(
            ReplMsg::Err {
                code: "RES-STALE-EPOCH".to_string(),
                epoch: repl.epoch(),
            }
            .render_line()
            .as_bytes(),
        );
        return;
    }
    match repl.role_state().role {
        Role::Primary => {}
        role => {
            let code = match role {
                Role::Fenced => "RES-STALE-EPOCH",
                _ => "RES-NOT-PRIMARY",
            };
            let _ = conn.send(
                ReplMsg::Err {
                    code: code.to_string(),
                    epoch: repl.epoch(),
                }
                .render_line()
                .as_bytes(),
            );
            return;
        }
    }

    // Resync is only sound when the follower's journal is a strict
    // prefix of ours. Verify, don't assume: a follower claiming more
    // records than we hold, or whose prefix checksum disagrees with the
    // same prefix of our log (a deposed primary with an unreplicated
    // acked suffix, rejoined as a follower), has *diverged* — streaming
    // from `have + 1` would silently leave its journal, dedup map, and
    // retry answers permanently disagreeing with ours.
    let prefix_matches = {
        let log = lock_unpoisoned(&repl.log);
        usize::try_from(cursor)
            .ok()
            .and_then(|have| log.get(..have))
            .is_some_and(|prefix| prefix_crc(prefix) == hello_pcrc)
    };
    if !prefix_matches {
        let _ = conn.send(
            ReplMsg::Err {
                code: "IO-REPL-CORRUPT".to_string(),
                epoch: repl.epoch(),
            }
            .render_line()
            .as_bytes(),
        );
        return;
    }

    let heartbeat = shared.config.heartbeat;
    let chaos_drop = shared
        .config
        .repl_chaos
        .as_ref()
        .and_then(|c| c.drop_link_after);
    let mut sent_on_conn: u64 = 0;
    let mut last_sent = clock.now();
    let mut ackbuf: Vec<u8> = Vec::new();
    loop {
        if shared.draining.load(Ordering::SeqCst) || repl.role_state().role != Role::Primary {
            return;
        }
        // Pick up anything appended past the cursor, waiting briefly for
        // growth so an idle stream doesn't spin.
        let batch: Vec<JournalRecord> = {
            let mut log = lock_unpoisoned(&repl.log);
            if (log.len() as u64) <= cursor {
                let wait = heartbeat.min(Duration::from_millis(100));
                let (guard, _) = repl
                    .log_grew
                    .wait_timeout(log, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                log = guard;
            }
            log.get(cursor as usize..)
                .map(<[_]>::to_vec)
                .unwrap_or_default()
        };
        let epoch = repl.epoch();
        for rec in batch {
            if let Some(n) = chaos_drop {
                if sent_on_conn >= n
                    && repl
                        .chaos_drops_done
                        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    // Injected ReplLinkDrop: tear the link down once.
                    return;
                }
            }
            let seq = cursor + 1;
            let crc = crc32(&payload_bytes(rec.kind, &rec.rid, &rec.line));
            let msg = ReplMsg::Rec {
                epoch,
                seq,
                crc,
                kind: rec.kind,
                rid: rec.rid,
                line: rec.line,
            };
            if conn.send(msg.render_line().as_bytes()).is_err() {
                return;
            }
            cursor = seq;
            sent_on_conn += 1;
            last_sent = clock.now();
        }
        if clock.now().saturating_sub(last_sent) >= heartbeat {
            let msg = ReplMsg::Hb {
                epoch,
                seq: repl.seq(),
            };
            if conn.send(msg.render_line().as_bytes()).is_err() {
                return;
            }
            last_sent = clock.now();
        }
        // Drain acks without blocking the stream.
        let mut chunk = [0u8; 1024];
        match conn.recv(&mut chunk, Duration::from_millis(1)) {
            Ok(n) => {
                ackbuf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = ackbuf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = ackbuf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line);
                    if let Some(ReplMsg::Ack { seq }) = ReplMsg::parse(line.trim_end()) {
                        let mut acks = lock_unpoisoned(&repl.acks);
                        let entry = acks.entry(peer.clone()).or_insert(0);
                        *entry = (*entry).max(seq);
                    }
                }
            }
            Err(NetError::Timeout) => {}
            Err(_) => return,
        }
    }
}

// --- follower side --------------------------------------------------------

/// Why one follower connection ended.
enum StreamEnd {
    /// The link dropped or the primary went silent past the grace.
    Dead,
    /// The dialed server proved it is stale (lower epoch, or it told us
    /// so); failover already happened somewhere — arbitrate immediately.
    Stale,
    /// The dialed server is not (yet) a primary; retry shortly.
    NotYet,
    /// The primary proved our journal is not a prefix of its own
    /// (`IO-REPL-CORRUPT` at hello): stop replicating, never promote.
    Diverged,
    /// This server is draining.
    Draining,
}

/// The follower thread: replicate, detect failure, arbitrate, promote.
/// After a successful promotion it morphs into the guard loop that keeps
/// the deposed primary fenced.
pub(crate) fn follower_loop(shared: Arc<Shared>) {
    let Some(repl) = shared.repl.clone() else {
        return;
    };
    let clock = shared.config.clock.as_ref();
    let transport = shared.config.transport.as_ref();
    let self_addr = lock_unpoisoned(&repl.self_addr).clone();
    let mut hasher = DefaultHasher::new();
    self_addr.hash(&mut hasher);
    let mut rng = SplitMix64::new(0xF0110E5 ^ hasher.finish());
    let grace = shared.config.failover_grace;
    let policy = RetryPolicy {
        max_attempts: u32::MAX,
        base_backoff: Duration::from_millis(25),
        max_backoff: (grace / 4).max(Duration::from_millis(25)),
        retry_overload: false,
        seed: 0,
    };
    let mut attempt: u32 = 0;
    let mut last_contact = clock.now();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let rs = repl.role_state();
        let primary = match (rs.role, rs.primary) {
            (Role::Follower, Some(p)) => p,
            (Role::Primary, _) => break, // promoted: fall through to the guard
            _ => return,
        };
        let end = match transport.connect(&primary, Duration::from_millis(500)) {
            Ok(conn) => {
                attempt = 0;
                follow_stream(&shared, &repl, conn, &self_addr, &mut last_contact)
            }
            Err(_) => StreamEnd::Dead,
        };
        match end {
            StreamEnd::Draining => return,
            StreamEnd::Diverged => {
                // Resyncing would silently fork journals; promotion
                // would serve a history the cluster never agreed on.
                // Park as a read-only follower until the operator wipes
                // this journal directory and re-seeds it.
                repl.diverged.store(true, Ordering::SeqCst);
                eprintln!(
                    "replication: journal diverged from primary {primary} \
                     (IO-REPL-CORRUPT): this follower's journal is not a prefix \
                     of the primary's; replication stopped and promotion \
                     disabled — wipe the journal directory and re-seed"
                );
                return;
            }
            StreamEnd::Stale => {
                // The old primary is provably deposed: arbitrate now.
                if !arbitrate(&shared, &repl, &self_addr, &primary) {
                    return;
                }
                last_contact = clock.now();
            }
            StreamEnd::Dead | StreamEnd::NotYet => {
                if clock.now().saturating_sub(last_contact) > grace {
                    if !arbitrate(&shared, &repl, &self_addr, &primary) {
                        return;
                    }
                    last_contact = clock.now();
                } else {
                    clock.sleep(policy.backoff(attempt.min(16), &mut rng));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }
    guard_loop(&shared);
}

/// One connected stretch of following: hello, then append/ack records
/// until the link ends.
fn follow_stream(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    mut conn: Box<dyn Conn>,
    self_addr: &str,
    last_contact: &mut Duration,
) -> StreamEnd {
    let clock = shared.config.clock.as_ref();
    let hello = {
        let log = lock_unpoisoned(&repl.log);
        ReplMsg::Hello {
            epoch: repl.epoch(),
            have: log.len() as u64,
            pcrc: prefix_crc(&log),
            from: self_addr.to_string(),
        }
    };
    if conn.send(hello.render_line().as_bytes()).is_err() {
        return StreamEnd::Dead;
    }
    *last_contact = clock.now();
    let grace = shared.config.failover_grace;
    let lag = shared.config.repl_chaos.as_ref().and_then(|c| c.lag);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return StreamEnd::Draining;
        }
        if clock.now().saturating_sub(*last_contact) > grace {
            return StreamEnd::Dead;
        }
        let line = match read_line(conn.as_mut(), &mut buf, POLL, POLL, clock) {
            Ok(Some(line)) => line,
            Ok(None) => return StreamEnd::Dead,
            Err(_) => continue, // poll timeout: re-check drain and grace
        };
        match ReplMsg::parse(&line) {
            Some(ReplMsg::Rec {
                epoch,
                seq,
                crc,
                kind,
                rid,
                line,
            }) => {
                if epoch < repl.epoch() {
                    // Records from a lower epoch are refused, always.
                    let _ = conn.send(
                        ReplMsg::Err {
                            code: "RES-STALE-EPOCH".to_string(),
                            epoch: repl.epoch(),
                        }
                        .render_line()
                        .as_bytes(),
                    );
                    return StreamEnd::Stale;
                }
                repl.adopt_epoch(epoch);
                *last_contact = clock.now();
                let have = repl.seq();
                if seq <= have {
                    // Already durable (reconnect overlap): re-ack.
                    let _ = conn.send(ReplMsg::Ack { seq: have }.render_line().as_bytes());
                    continue;
                }
                if seq != have + 1 {
                    // A gap means the stream lost sync; resync fresh.
                    return StreamEnd::Dead;
                }
                if crc32(&payload_bytes(kind, &rid, &line)) != crc {
                    // IO-REPL-CORRUPT: never append a record that fails
                    // its checksum; drop the link and resync.
                    repl.corrupt_refused.fetch_add(1, Ordering::SeqCst);
                    let _ = conn.send(
                        ReplMsg::Err {
                            code: "IO-REPL-CORRUPT".to_string(),
                            epoch: repl.epoch(),
                        }
                        .render_line()
                        .as_bytes(),
                    );
                    return StreamEnd::Dead;
                }
                if !apply_record(shared, repl, kind, &rid, &line) {
                    return StreamEnd::Dead;
                }
                if let Some((lag_seq, delay)) = lag {
                    if seq == lag_seq {
                        // Injected LaggingFollower: stall before the ack.
                        clock.sleep(delay);
                    }
                }
                if conn
                    .send(ReplMsg::Ack { seq }.render_line().as_bytes())
                    .is_err()
                {
                    return StreamEnd::Dead;
                }
            }
            Some(ReplMsg::Hb { epoch, seq: _ }) => {
                if epoch < repl.epoch() {
                    return StreamEnd::Stale;
                }
                repl.adopt_epoch(epoch);
                *last_contact = clock.now();
            }
            Some(ReplMsg::Err { code, epoch }) => {
                repl.adopt_epoch(epoch);
                return match code.as_str() {
                    "RES-STALE-EPOCH" => StreamEnd::Stale,
                    "IO-REPL-CORRUPT" => StreamEnd::Diverged,
                    _ => StreamEnd::NotYet,
                };
            }
            // Anything else on a follower link is a protocol violation.
            _ => return StreamEnd::Dead,
        }
    }
}

/// Appends one verified record to the local journal (fsync'd) and keeps
/// the dedup map and cache warmth current. Returns false on an
/// unappendable journal (the link is torn down; a resync retries).
fn apply_record(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    kind: RecordKind,
    rid: &str,
    line: &str,
) -> bool {
    {
        let Some(dur) = &shared.durability else {
            return false;
        };
        let mut d = lock_unpoisoned(dur);
        if d.journal.append(kind, rid, line).is_err() {
            return false;
        }
        if kind != RecordKind::Admit {
            d.completed
                .insert(rid.to_string(), (kind, line.to_string()));
        }
        let mut log = lock_unpoisoned(&repl.log);
        log.push(JournalRecord {
            kind,
            rid: rid.to_string(),
            line: line.to_string(),
        });
        repl.log_grew.notify_all();
    }
    // Replay acked sweep admits into the local cache so this follower's
    // snapshots stay warm for a future promotion.
    if kind == RecordKind::Admit {
        if let Some(tx) = &shared.warm_tx {
            if let Ok(req) = WireRequest::parse(line) {
                if let WireOp::Sweep { design, max_i } = req.op {
                    let _ = tx.send((design, max_i));
                }
            }
        }
    }
    true
}

/// The cache warmer: replays acked sweep admits into the shared caches
/// off the replication path, checkpointing snapshots as designs warm.
pub(crate) fn warm_loop(shared: &Arc<Shared>, rx: &std::sync::mpsc::Receiver<(String, u32)>) {
    while !shared.draining.load(Ordering::SeqCst) {
        let (design, max_i) = match rx.recv_timeout(POLL * 5) {
            Ok(job) => job,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let Some(d) = lintra::suite::by_name(&design) else {
            continue;
        };
        for i in 0..=max_i {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            let mut caches = lock_unpoisoned(&shared.caches);
            let cache = caches
                .entry(d.name.to_string())
                .or_insert_with(|| lintra::engine::SweepCache::new(&d.system));
            let _ = cache.unfolded(i);
        }
        persist_snapshots(shared);
    }
}

// --- arbitration, promotion, fencing --------------------------------------

/// Decides what to do about a dead (or deposed) primary. Returns `false`
/// when the follower thread should exit (promoted → guard loop runs
/// separately via the caller's break, or fenced).
fn arbitrate(
    shared: &Arc<Shared>,
    repl: &Arc<ReplState>,
    self_addr: &str,
    dead_primary: &str,
) -> bool {
    if repl.diverged() {
        // A diverged journal must never be promoted into the cluster's
        // history (the follower loop also exits on divergence; this is
        // belt and braces).
        return false;
    }
    let clock = shared.config.clock.as_ref();
    let transport = shared.config.transport.as_ref();
    let my_epoch = repl.epoch();
    let my_seq = repl.seq();
    let mut max_epoch = my_epoch;
    let mut defer = false;
    for peer in &shared.config.peers {
        if peer == self_addr {
            continue;
        }
        let Some(st) = query_status_via(transport, clock, peer, PEER_TIMEOUT) else {
            continue; // an unreachable peer never blocks failover
        };
        if st.nonce == repl.nonce {
            // `peer` is this very server under an alias (hostname vs
            // IP, 0.0.0.0 bind): deferring to it would deadlock the
            // failover forever.
            continue;
        }
        max_epoch = max_epoch.max(st.epoch);
        if st.role == "primary" && st.epoch >= my_epoch {
            // Someone already promoted: follow them.
            repl.set_role(Role::Follower, Some(peer.clone()));
            return true;
        }
        if st.role != "fenced"
            && (st.seq > my_seq || (st.seq == my_seq && peer.as_str() < self_addr))
        {
            // A better-acked (or tie-winning) peer exists: defer to it.
            eprintln!(
                "replication: arbitration deferring to {peer} \
                 (peer seq {} epoch {} vs ours seq {my_seq} epoch {my_epoch})",
                st.seq, st.epoch
            );
            defer = true;
        }
    }
    if defer {
        // Wait one beat and re-arbitrate; the deferred-to peer either
        // promotes (we adopt it next round) or dies (we stop deferring).
        clock.sleep(shared.config.heartbeat);
        return true;
    }
    promote(shared, repl, max_epoch, dead_primary);
    true
}

/// This node's collision-free epoch arithmetic: the cluster size
/// (sorted, deduplicated `peers` ∪ self) and this node's index in it.
/// Promotion epochs are chosen congruent to the index, so no two
/// cluster members — even fully partitioned from each other — can ever
/// promote to the *same* epoch; the strictly-higher-epoch fencing paths
/// then resolve any duel deterministically once connectivity heals.
pub fn epoch_stride_slot(peers: &[String], self_addr: &str) -> (u64, u64) {
    let mut cluster: Vec<&str> = peers
        .iter()
        .map(String::as_str)
        .chain([self_addr])
        .collect();
    cluster.sort_unstable();
    cluster.dedup();
    let slot = cluster
        .iter()
        .position(|a| *a == self_addr)
        .unwrap_or_default() as u64;
    (cluster.len() as u64, slot)
}

/// The epoch a node at `self_addr` promotes to after observing
/// `observed` as the highest epoch anywhere: the next epoch past
/// `observed` that lands on this node's slot in the cluster.
/// Collision-free by construction — even two followers partitioned from
/// each other promote to *different* epochs, and the lower one fences
/// once the partition heals.
pub fn promotion_epoch(observed: u64, peers: &[String], self_addr: &str) -> u64 {
    let (stride, slot) = epoch_stride_slot(peers, self_addr);
    let mut new_epoch = observed + 1;
    while new_epoch % stride != slot {
        new_epoch += 1;
    }
    new_epoch
}

/// Promotes this follower: new epoch, snapshot install, replay of
/// unsettled records, then primary duty.
fn promote(shared: &Arc<Shared>, repl: &Arc<ReplState>, observed_epoch: u64, deposed: &str) {
    repl.set_role(Role::Promoting, None);
    let new_epoch = {
        let self_addr = lock_unpoisoned(&repl.self_addr).clone();
        promotion_epoch(
            observed_epoch.max(repl.epoch()),
            &shared.config.peers,
            &self_addr,
        )
    };
    // Best-effort persistence: an unpersistable epoch costs this server a
    // deferral after its next restart, never a split brain (the epoch is
    // still carried on every wire message).
    let _ = store_epoch(&repl.epoch_path, new_epoch);
    repl.epoch.store(new_epoch, Ordering::SeqCst);
    *lock_unpoisoned(&repl.former_primary) = Some(deposed.to_string());

    // Install whatever snapshots exist without clobbering warmer
    // in-memory caches.
    if let Some(dir) = &shared.config.journal_dir {
        let mut fresh = HashMap::new();
        if install_dir(&dir.join(SNAPSHOT_DIR), &mut fresh).is_ok() {
            let mut caches = lock_unpoisoned(&shared.caches);
            for (design, cache) in fresh {
                caches.entry(design).or_insert(cache);
            }
        }
    }

    // Replay admitted-but-unsettled records so every key the old primary
    // acked is settled here before the first client request lands. The
    // log guard is dropped before the durability lock is taken: every
    // other path (publish_record, apply_record) locks durability first
    // and the log second, and holding both here in the opposite order
    // is one refactor away from an ABBA deadlock.
    let records = lock_unpoisoned(&repl.log).clone();
    let (completed, incomplete) = fold_records(&records);
    drop(records);
    if let Some(dur) = &shared.durability {
        lock_unpoisoned(dur).completed = completed;
    }
    for (rid, line) in incomplete {
        if signal::shutdown_requested() {
            break;
        }
        replay_request(shared, &rid, &line);
        shared.stats.replayed.fetch_add(1, Ordering::SeqCst);
        repl.promoted_replayed.fetch_add(1, Ordering::SeqCst);
    }
    persist_snapshots(shared);
    repl.set_role(Role::Primary, None);
}

/// Sends one fencing hello to a possibly-revived deposed primary; its
/// hello handler fences it on sight of our higher epoch. If the reply
/// proves *we* are the stale side, fence ourselves instead.
fn fence_hello(
    transport: &dyn Transport,
    clock: &dyn Clock,
    repl: &Arc<ReplState>,
    target: &str,
    self_addr: &str,
) {
    let Ok(mut conn) = transport.connect(target, PEER_TIMEOUT) else {
        return;
    };
    let hello = {
        let log = lock_unpoisoned(&repl.log);
        ReplMsg::Hello {
            epoch: repl.epoch(),
            have: log.len() as u64,
            pcrc: prefix_crc(&log),
            from: self_addr.to_string(),
        }
    };
    if conn.send(hello.render_line().as_bytes()).is_err() {
        return;
    }
    let mut buf = Vec::new();
    if let Ok(Some(line)) = read_line(conn.as_mut(), &mut buf, PEER_TIMEOUT, POLL, clock) {
        match ReplMsg::parse(&line) {
            Some(ReplMsg::Rec { epoch, .. } | ReplMsg::Hb { epoch, .. })
                if epoch > repl.epoch() =>
            {
                repl.fence(epoch);
            }
            _ => {}
        }
    }
}

/// The standing guard: keeps a deposed primary fenced and self-fences
/// the moment any peer reports a higher epoch — or a primary at the
/// *same* epoch with a lexicographically smaller address (the
/// equal-epoch tiebreak; unreachable among configured peers because
/// promotion epochs are collision-free, but an operator can seed two
/// servers into the same term by hand). Runs on any server with peers
/// configured, and on every promoted follower.
pub(crate) fn guard_loop(shared: &Arc<Shared>) {
    let Some(repl) = &shared.repl else { return };
    let clock = shared.config.clock.as_ref();
    let transport = shared.config.transport.as_ref();
    let self_addr = lock_unpoisoned(&repl.self_addr).clone();
    let interval = shared.config.heartbeat.max(Duration::from_millis(100));
    while !shared.draining.load(Ordering::SeqCst) {
        if repl.role_state().role == Role::Primary {
            let my_epoch = repl.epoch();
            if let Some(former) = lock_unpoisoned(&repl.former_primary).clone() {
                fence_hello(transport, clock, repl, &former, &self_addr);
            }
            for peer in &shared.config.peers {
                if peer == &self_addr {
                    continue;
                }
                let Some(st) = query_status_via(transport, clock, peer, PEER_TIMEOUT) else {
                    continue;
                };
                if st.nonce == repl.nonce {
                    continue; // an alias of this very server
                }
                let superseded = st.epoch > my_epoch
                    || (st.epoch == my_epoch
                        && st.role == "primary"
                        && peer.as_str() < self_addr.as_str());
                if superseded {
                    eprintln!(
                        "replication: peer {peer} holds epoch {} (role {}) \
                         against our epoch {my_epoch}: fencing ourselves",
                        st.epoch, st.role
                    );
                    repl.fence(st.epoch);
                    break;
                }
            }
        }
        clock.sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_messages_round_trip_the_wire() {
        let msgs = [
            ReplMsg::Hello {
                epoch: 3,
                have: 17,
                pcrc: 0x1234_5678,
                from: "127.0.0.1:9000".to_string(),
            },
            ReplMsg::Rec {
                epoch: 2,
                seq: 5,
                crc: 0xDEAD_BEEF,
                kind: RecordKind::Admit,
                rid: "k1".to_string(),
                line: "{\"id\":\"a\",\"op\":\"ping\"}".to_string(),
            },
            ReplMsg::Hb { epoch: 2, seq: 9 },
            ReplMsg::Ack { seq: 5 },
            ReplMsg::Err {
                code: "RES-STALE-EPOCH".to_string(),
                epoch: 4,
            },
            ReplMsg::Status,
            ReplMsg::StatusReply {
                role: "follower".to_string(),
                epoch: 2,
                seq: 5,
                answered: 3,
                nonce: (1 << 53) - 1,
                primary: Some("127.0.0.1:9001".to_string()),
            },
        ];
        for msg in msgs {
            let line = msg.render_line();
            assert!(line.ends_with('\n'));
            let parsed = ReplMsg::parse(line.trim_end()).expect("parses");
            assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn non_repl_lines_are_not_repl_messages() {
        assert_eq!(ReplMsg::parse("{\"id\":\"a\",\"op\":\"ping\"}"), None);
        assert_eq!(ReplMsg::parse("not json"), None);
        assert_eq!(ReplMsg::parse("{\"repl\":\"bogus\"}"), None);
        // Negative / fractional numbers are rejected, not truncated.
        assert_eq!(ReplMsg::parse("{\"repl\":\"ack\",\"seq\":-1}"), None);
        assert_eq!(ReplMsg::parse("{\"repl\":\"ack\",\"seq\":1.5}"), None);
    }

    #[test]
    fn epoch_file_round_trips_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("lintra-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(EPOCH_FILE);
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            load_epoch_state(&path).expect("missing file is fine"),
            EpochState {
                epoch: 1,
                fenced: false
            },
            "missing file is a fresh deployment"
        );
        store_epoch(&path, 7).expect("store");
        assert_eq!(
            load_epoch_state(&path).expect("readable"),
            EpochState {
                epoch: 7,
                fenced: false
            }
        );
        store_epoch_state(
            &path,
            EpochState {
                epoch: 9,
                fenced: true,
            },
        )
        .expect("store fenced");
        assert_eq!(
            load_epoch_state(&path).expect("readable"),
            EpochState {
                epoch: 9,
                fenced: true
            },
            "the fenced marker survives a restart"
        );
        // An existing-but-unparseable file must be an error, never a
        // silent reset to epoch 1 (that could un-fence a deposed
        // primary).
        for garbage in ["garbage", "0", "-3", "7 fenced extra", "7 sideways"] {
            std::fs::write(&path, garbage).expect("write");
            assert!(
                load_epoch_state(&path).is_err(),
                "{garbage:?} must not parse"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefix_crc_distinguishes_divergent_prefixes() {
        let rec = |rid: &str, line: &str| JournalRecord {
            kind: RecordKind::Admit,
            rid: rid.to_string(),
            line: line.to_string(),
        };
        let a = [
            rec("k1", "{\"op\":\"ping\"}"),
            rec("k2", "{\"op\":\"ping\"}"),
        ];
        let b = [
            rec("k1", "{\"op\":\"ping\"}"),
            rec("k2", "{\"op\":\"pong\"}"),
        ];
        assert_eq!(prefix_crc(&[]), 0, "empty prefix is 0");
        let cloned = a.to_vec();
        assert_eq!(prefix_crc(&a), prefix_crc(&cloned));
        assert_eq!(
            prefix_crc(&a[..1]),
            prefix_crc(&b[..1]),
            "identical prefixes agree"
        );
        assert_ne!(prefix_crc(&a), prefix_crc(&b), "divergent tails disagree");
        assert_ne!(
            prefix_crc(&a[..1]),
            prefix_crc(&a),
            "a longer journal has a different checksum"
        );
    }

    #[test]
    fn promotion_epochs_are_collision_free_across_the_cluster() {
        let a = "127.0.0.1:9000".to_string();
        let b = "127.0.0.1:9001".to_string();
        let c = "127.0.0.1:9002".to_string();
        // Each member computes its slot from its own peer list (which
        // omits itself); the cluster view must still agree.
        let view = |self_addr: &str| {
            let peers: Vec<String> = [&a, &b, &c]
                .iter()
                .filter(|p| p.as_str() != self_addr)
                .map(|p| p.to_string())
                .collect();
            epoch_stride_slot(&peers, self_addr)
        };
        let next = |observed: u64, (stride, slot): (u64, u64)| {
            let mut e = observed + 1;
            while e % stride != slot {
                e += 1;
            }
            e
        };
        for observed in 1..20 {
            let picks = [
                next(observed, view(&a)),
                next(observed, view(&b)),
                next(observed, view(&c)),
            ];
            for i in 0..picks.len() {
                for j in i + 1..picks.len() {
                    assert_ne!(
                        picks[i], picks[j],
                        "two members promoted from epoch {observed} to the same epoch"
                    );
                }
            }
            for pick in picks {
                assert!(pick > observed, "promotion must advance the epoch");
            }
        }
        // No peers configured: the classic observed + 1.
        assert_eq!(next(1, epoch_stride_slot(&[], &a)), 2);
        // A self-alias in the peer list only widens the stride.
        let aliased = epoch_stride_slot(&[a.clone(), "0.0.0.0:9000".to_string()], &a);
        assert_eq!(aliased.0, 2);
    }

    #[test]
    fn role_labels_are_stable() {
        assert_eq!(Role::Primary.label(), "primary");
        assert_eq!(Role::Follower.label(), "follower");
        assert_eq!(Role::Promoting.label(), "promoting");
        assert_eq!(Role::Fenced.label(), "fenced");
    }
}

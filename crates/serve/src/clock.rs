//! The `Clock` seam: every point where the serve layer reads time or
//! sleeps goes through this trait, so the same code runs against the
//! real monotonic clock in production and against a virtual clock in
//! the deterministic simulator (`lintra-sim`).
//!
//! Instants are represented as a [`Duration`] since an arbitrary epoch
//! fixed at clock construction — the only operations the serve layer
//! needs are "how long since X" and "has deadline Y passed", both of
//! which subtraction on `Duration`s answers. This keeps the trait
//! object-safe and trivially implementable by a simulated clock that is
//! just a counter.

use std::fmt::Debug;
use std::time::{Duration, Instant};

/// A monotonic time source plus the ability to block on it.
///
/// Production code holds an `Arc<dyn Clock>` ([`SystemClock`] by
/// default); the simulator substitutes a virtual clock whose `now`
/// advances only when the event loop says so and whose `sleep` advances
/// virtual time instead of blocking a thread.
pub trait Clock: Send + Sync + Debug {
    /// Monotonic time since this clock's epoch. Never decreases.
    fn now(&self) -> Duration;

    /// Blocks the calling thread for `d` (a virtual clock advances its
    /// own time instead of blocking).
    fn sleep(&self, d: Duration);

    /// A deadline `budget` from now, comparable against later [`Clock::now`]
    /// readings.
    fn deadline(&self, budget: Duration) -> Duration {
        self.now().saturating_add(budget)
    }

    /// True once `deadline` (an earlier [`Clock::deadline`] result) has
    /// passed.
    fn expired(&self, deadline: Duration) -> bool {
        self.now() >= deadline
    }
}

/// The production clock: `Instant`-backed monotonic time and real
/// `thread::sleep`.
#[derive(Debug, Clone)]
pub struct SystemClock {
    base: Instant,
}

impl SystemClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> SystemClock {
        SystemClock {
            base: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.base.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_deadlines_expire() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a, "monotonic");
        let past = clock.deadline(Duration::ZERO);
        clock.sleep(Duration::from_millis(2));
        assert!(clock.expired(past), "a zero-budget deadline expires");
        let future = clock.deadline(Duration::from_secs(3600));
        assert!(!clock.expired(future), "a distant deadline has not");
    }
}

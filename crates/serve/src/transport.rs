//! The `Transport` seam: every socket the serve layer touches —
//! outbound connects (client requests, replication hellos, status
//! queries) and inbound accepted connections — goes through these
//! traits, so the same protocol code runs over real TCP in production
//! and over an in-memory network in the deterministic simulator
//! (`lintra-sim`).
//!
//! The surface is deliberately narrow: byte streams with explicit,
//! classified errors ([`NetError`]) and per-call read budgets. Framing
//! (newline-delimited JSON) stays in the callers; [`read_line`] is the
//! shared line-assembly helper.

use std::fmt::Debug;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::clock::Clock;

/// Hard ceiling on one newline-delimited frame. A peer that streams
/// more than this without a `\n` is not speaking the protocol; letting
/// [`read_line`] keep buffering would turn one connection into an
/// unbounded allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a transport operation failed — the outcomes protocol code
/// genuinely branches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The wait budget elapsed with nothing to show. Retryable; the
    /// connection itself is still usable.
    Timeout,
    /// The peer closed the stream (clean EOF) or the link is gone
    /// (reset, broken pipe). The connection is dead.
    Closed,
    /// The peer sent more than [`MAX_FRAME_BYTES`] without a newline.
    /// The buffered bytes are poisoned; the caller must answer
    /// `VAL-FRAME-TOO-LARGE` (if it answers at all) and close.
    FrameTooLarge,
    /// Everything else: refused connect, failed resolution, socket
    /// configuration errors. Carries the description.
    Failed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Timeout => write!(f, "timed out"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::FrameTooLarge => {
                write!(f, "frame exceeds {MAX_FRAME_BYTES} bytes without a newline")
            }
            NetError::Failed(detail) => write!(f, "{detail}"),
        }
    }
}

/// One established bidirectional byte stream.
pub trait Conn: Send {
    /// Writes the whole buffer.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the peer is gone, [`NetError::Failed`]
    /// for other socket failures.
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError>;

    /// Reads some bytes, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when nothing arrived within the budget,
    /// [`NetError::Closed`] on EOF, [`NetError::Failed`] otherwise.
    /// Never returns `Ok(0)`.
    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError>;
}

/// A bound listener handing out accepted [`Conn`]s.
pub trait Acceptor: Send {
    /// Accepts one pending connection without blocking; `Ok(None)` when
    /// none is waiting right now (the caller polls).
    ///
    /// # Errors
    ///
    /// [`NetError::Failed`] for listener-level failures; the caller
    /// treats them like an empty poll and retries.
    fn accept(&mut self) -> Result<Option<Box<dyn Conn>>, NetError>;

    /// The bound address (`host:port`), with an OS-assigned port
    /// resolved.
    fn local_addr(&self) -> String;
}

/// The factory: dial out, bind listeners.
pub trait Transport: Send + Sync + Debug {
    /// Connects to `addr` within `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Failed`] describing the resolution or connect
    /// failure.
    fn connect(&self, addr: &str, timeout: Duration) -> Result<Box<dyn Conn>, NetError>;

    /// Binds a listener on `addr` (port `0` lets the OS pick).
    ///
    /// # Errors
    ///
    /// [`NetError::Failed`] describing the bind failure.
    fn bind(&self, addr: &str) -> Result<Box<dyn Acceptor>, NetError>;
}

/// Reads one newline-terminated line from `conn` under `timeout`,
/// buffering partial reads in `buf` across calls. `Ok(None)` is EOF.
/// Reads are sliced into `poll`-sized waits so a caller loop can keep
/// observing shutdown flags between slices.
///
/// # Errors
///
/// [`NetError::Timeout`] when no full line arrived within the budget;
/// [`NetError::FrameTooLarge`] when more than [`MAX_FRAME_BYTES`]
/// accumulated without a newline; [`NetError::Failed`] for socket
/// failures.
pub fn read_line(
    conn: &mut dyn Conn,
    buf: &mut Vec<u8>,
    timeout: Duration,
    poll: Duration,
    clock: &dyn Clock,
) -> Result<Option<String>, NetError> {
    let deadline = clock.deadline(timeout);
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            return Ok(Some(String::from_utf8_lossy(&line).trim_end().to_string()));
        }
        if buf.len() > MAX_FRAME_BYTES {
            return Err(NetError::FrameTooLarge);
        }
        let left = deadline.saturating_sub(clock.now());
        if left.is_zero() {
            return Err(NetError::Timeout);
        }
        let mut chunk = [0u8; 4096];
        match conn.recv(&mut chunk, left.min(poll)) {
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(NetError::Timeout) => {}
            Err(NetError::Closed) => return Ok(None),
            Err(e) => return Err(e),
        }
    }
}

// --- production impls -----------------------------------------------------

/// The production transport: real TCP with `TCP_NODELAY`, non-blocking
/// accept, and per-call read timeouts.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    fn connect(&self, addr: &str, timeout: Duration) -> Result<Box<dyn Conn>, NetError> {
        let sock = addr
            .to_socket_addrs()
            .map_err(|e| NetError::Failed(format!("resolving {addr}: {e}")))?
            .next()
            .ok_or_else(|| NetError::Failed(format!("{addr} resolves to no address")))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)
            .map_err(|e| NetError::Failed(format!("connecting to {sock}: {e}")))?;
        let _ = stream.set_nodelay(true);
        // Bound outbound writes by the same budget: a peer that stops
        // draining its socket errors the send instead of pinning the
        // sender forever (the caller's failure handling reconnects).
        let _ = stream.set_write_timeout(Some(timeout.max(Duration::from_millis(1))));
        Ok(Box::new(TcpConn::new(stream)))
    }

    fn bind(&self, addr: &str) -> Result<Box<dyn Acceptor>, NetError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| NetError::Failed(format!("binding {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Failed(format!("configuring listener: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Failed(format!("resolving bound address: {e}")))?;
        Ok(Box::new(TcpAcceptor {
            listener,
            local: local.to_string(),
        }))
    }
}

struct TcpAcceptor {
    listener: TcpListener,
    local: String,
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self) -> Result<Option<Box<dyn Conn>>, NetError> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is non-blocking; the accepted stream must
                // not inherit that (reads poll on per-call timeouts).
                if stream.set_nonblocking(false).is_err() {
                    return Ok(None);
                }
                let _ = stream.set_nodelay(true);
                Ok(Some(Box::new(TcpConn::new(stream))))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(NetError::Failed(format!("accepting: {e}"))),
        }
    }

    fn local_addr(&self) -> String {
        self.local.clone()
    }
}

/// A [`Conn`] over one `TcpStream`. The read timeout is a socket
/// attribute; it is re-set only when a call's budget differs from the
/// last one, so tight poll loops cost one syscall per read, not two.
struct TcpConn {
    stream: TcpStream,
    read_timeout: Option<Duration>,
}

impl TcpConn {
    fn new(stream: TcpStream) -> TcpConn {
        TcpConn {
            stream,
            read_timeout: None,
        }
    }
}

impl Conn for TcpConn {
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes).map_err(|e| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
                NetError::Closed
            }
            _ => NetError::Failed(format!("sending: {e}")),
        })
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        // A zero socket timeout means "block forever"; clamp up.
        let timeout = timeout.max(Duration::from_millis(1));
        if self.read_timeout != Some(timeout) {
            self.stream
                .set_read_timeout(Some(timeout))
                .map_err(|e| NetError::Failed(format!("configuring socket: {e}")))?;
            self.read_timeout = Some(timeout);
        }
        match self.stream.read(buf) {
            Ok(0) => Err(NetError::Closed),
            Ok(n) => Ok(n),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Err(NetError::Timeout)
            }
            Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset) => Err(NetError::Closed),
            Err(e) => Err(NetError::Failed(format!("reading: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;

    #[test]
    fn tcp_transport_round_trips_a_line_through_a_bound_acceptor() {
        let transport = TcpTransport;
        let mut acceptor = transport.bind("127.0.0.1:0").expect("bind");
        let addr = acceptor.local_addr();
        let mut client = transport
            .connect(&addr, Duration::from_secs(2))
            .expect("connect");
        client.send(b"hello over the seam\n").expect("send");
        let clock = SystemClock::new();
        let deadline = clock.deadline(Duration::from_secs(5));
        let mut server = loop {
            if let Some(conn) = acceptor.accept().expect("accept") {
                break conn;
            }
            assert!(!clock.expired(deadline), "accept timed out");
            clock.sleep(Duration::from_millis(5));
        };
        let mut buf = Vec::new();
        let line = read_line(
            server.as_mut(),
            &mut buf,
            Duration::from_secs(2),
            Duration::from_millis(20),
            &clock,
        )
        .expect("read")
        .expect("not EOF");
        assert_eq!(line, "hello over the seam");
        // Dropping the client surfaces EOF, not an error.
        drop(client);
        let eof = read_line(
            server.as_mut(),
            &mut buf,
            Duration::from_secs(2),
            Duration::from_millis(20),
            &clock,
        )
        .expect("read after close");
        assert_eq!(eof, None);
    }

    #[test]
    fn connect_to_a_dead_port_is_a_classified_failure() {
        match TcpTransport.connect("127.0.0.1:1", Duration::from_millis(200)) {
            Ok(_) => panic!("port 1 refuses"),
            Err(err) => assert!(matches!(err, NetError::Failed(_)), "{err:?}"),
        }
    }

    #[test]
    fn a_newline_free_stream_past_the_cap_is_frame_too_large() {
        struct Firehose;
        impl Conn for Firehose {
            fn send(&mut self, _bytes: &[u8]) -> Result<(), NetError> {
                Ok(())
            }
            fn recv(&mut self, buf: &mut [u8], _timeout: Duration) -> Result<usize, NetError> {
                buf.fill(b'x'); // never a newline
                Ok(buf.len())
            }
        }
        let clock = SystemClock::new();
        let mut buf = Vec::new();
        let err = read_line(
            &mut Firehose,
            &mut buf,
            Duration::from_secs(5),
            Duration::from_millis(20),
            &clock,
        )
        .expect_err("a boundless frame must be rejected");
        assert_eq!(err, NetError::FrameTooLarge);
        // The reject fires just past the cap, not megabytes later.
        assert!(
            buf.len() <= MAX_FRAME_BYTES + 4096,
            "buffered {}",
            buf.len()
        );
    }

    #[test]
    fn read_budget_expiry_is_a_timeout() {
        let transport = TcpTransport;
        let mut acceptor = transport.bind("127.0.0.1:0").expect("bind");
        let addr = acceptor.local_addr();
        let _client = transport
            .connect(&addr, Duration::from_secs(2))
            .expect("connect");
        let clock = SystemClock::new();
        let mut server = loop {
            if let Some(conn) = acceptor.accept().expect("accept") {
                break conn;
            }
            clock.sleep(Duration::from_millis(5));
        };
        let mut buf = Vec::new();
        let err = read_line(
            server.as_mut(),
            &mut buf,
            Duration::from_millis(60),
            Duration::from_millis(20),
            &clock,
        )
        .expect_err("nothing was sent");
        assert_eq!(err, NetError::Timeout);
    }
}

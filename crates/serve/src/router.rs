//! Health-aware consistent-hash routing across replicated shard groups.
//!
//! A router is a thin, stateless tier in front of N *shard groups*,
//! each an independent replicated cluster (a primary plus followers
//! sharing one journal lineage). Requests are sharded by routing key —
//! the idempotency key when one is present, else the design name — on
//! a consistent-hash ring, so a key always lands on the same group and
//! its journaled dedup guarantee keeps holding end to end.
//!
//! Per shard the router keeps exactly the machinery one client keeps
//! for one cluster:
//!
//! * an **endpoint walk cursor** — forwarded requests walk the shard's
//!   replica list past dead endpoints and `RES-NOT-PRIMARY` /
//!   `RES-STALE-EPOCH` redirects, remembering who answered last;
//! * a **circuit breaker** ([`crate::CircuitBreaker`]) fed by both a
//!   background status prober and real forwarding outcomes — a shard
//!   whose breaker is open answers `RES-SHARD-DOWN` *for its keys
//!   only*, while every other shard keeps serving (graceful partial
//!   degradation);
//! * a **latency ring** whose P99 derives the hedging delay.
//!
//! Two cluster-wide guards bound the router's own failure amplification:
//!
//! * a **retry budget** ([`RetryBudget`]): re-walks of a shard's
//!   replica list after a full failure earn no sympathy once retry
//!   volume exceeds ~10% of recent request volume — excess retries are
//!   shed with `RES-RETRY-BUDGET` instead of stampeding a struggling
//!   shard;
//! * **hedged requests**: a keyed request still unanswered after the
//!   shard's P99 latency is raced against the next replica; the first
//!   answer wins. Only *keyed* requests hedge — an unkeyed request has
//!   no journal identity, so its hedge could double-execute. A hedge
//!   that lands while the original still executes is answered
//!   `RES-DUPLICATE-REQUEST` by the journal and is never forwarded as
//!   the winner.
//!
//! The routing core ([`ShardRing`], [`RetryBudget`], [`LatencyTracker`],
//! [`routing_key`]) is pure — no clocks, no sockets — so the
//! deterministic simulator drives the identical arithmetic under
//! virtual time while this module's threaded front end drives it over
//! real TCP.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lintra::{ErrorClass, LintraError};
use lintra_bench::json::Json;
use lintra_bench::wire::{WireFailure, WireRequest, WireResponse};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::clock::{Clock, SystemClock};
use crate::replicate::{query_status_via, ReplMsg};
use crate::transport::{read_line, Conn, NetError, TcpTransport, Transport};

/// Poll slice for reads, matching the server's.
const POLL: Duration = Duration::from_millis(20);

// --- pure routing core ----------------------------------------------------

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// the ring must hash identically in the router, the simulator, and any
/// future external tooling that predicts placements.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // FNV-1a alone avalanches poorly on short, near-identical strings
    // (exactly what vnode labels are): finish with the SplitMix64
    // mixer so ring points spread uniformly.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The request member the ring hashes: the idempotency key when the
/// request carries one (so retries and hedges of one logical request
/// always reach the same journal), else the design name (so one
/// design's cache locality stays on one shard), else the correlation
/// id.
pub fn routing_key(req: &WireRequest) -> String {
    if let Some(rid) = &req.request_id {
        return rid.clone();
    }
    match &req.op {
        lintra_bench::wire::WireOp::Optimize { design, .. }
        | lintra_bench::wire::WireOp::Sweep { design, .. } => design.clone(),
        _ => req.id.clone(),
    }
}

/// A consistent-hash ring over shard indices with virtual nodes.
///
/// Each shard contributes `vnodes` points hashed from
/// `"shard-{g}/vnode-{v}"`; a key belongs to the first point clockwise
/// from its own hash. Adding or removing one shard moves only the keys
/// adjacent to its points — the property that makes resharding an
/// incremental migration instead of a full reshuffle.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// (point, shard index), sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRing {
    /// A ring over `shards` groups with `vnodes` points each. Zero
    /// shards yields an empty ring ([`ShardRing::shard_of`] returns
    /// `None`).
    pub fn new(shards: usize, vnodes: usize) -> ShardRing {
        let mut points = Vec::with_capacity(shards * vnodes);
        for g in 0..shards {
            for v in 0..vnodes.max(1) {
                points.push((fnv1a64(format!("shard-{g}/vnode-{v}").as_bytes()), g));
            }
        }
        points.sort_unstable();
        ShardRing { points, shards }
    }

    /// Number of shard groups on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a key belongs to; `None` only for an empty ring.
    pub fn shard_of(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a64(key.as_bytes());
        let idx = self.points.partition_point(|(p, _)| *p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        Some(shard)
    }
}

/// A volume-coupled retry budget in integer milli-tokens (determinism:
/// no floats, no clocks — the simulator replays it exactly).
///
/// Every first attempt deposits `ratio_milli` (100 = each request earns
/// a tenth of a retry); every retry withdraws 1000. The balance is
/// capped so an idle period cannot bank an unbounded burst. When the
/// balance cannot cover a withdrawal the retry is *shed*: during a
/// blackout, retry volume stays ≤ roughly `ratio_milli`/1000 of recent
/// request volume instead of multiplying it.
#[derive(Debug)]
pub struct RetryBudget {
    ratio_milli: u64,
    cap_milli: u64,
    tokens_milli: u64,
}

impl RetryBudget {
    /// A budget earning `ratio_milli` per request, capped at
    /// `cap_retries` banked retries. Starts full: a cold router can
    /// retry immediately.
    pub fn new(ratio_milli: u64, cap_retries: u64) -> RetryBudget {
        let cap_milli = cap_retries.saturating_mul(1000).max(1000);
        RetryBudget {
            ratio_milli,
            cap_milli,
            tokens_milli: cap_milli,
        }
    }

    /// Deposits one first attempt's earnings.
    pub fn on_request(&mut self) {
        self.tokens_milli = self
            .tokens_milli
            .saturating_add(self.ratio_milli)
            .min(self.cap_milli);
    }

    /// Withdraws one retry; `false` means the budget is exhausted and
    /// the retry must be shed.
    pub fn try_retry(&mut self) -> bool {
        if self.tokens_milli >= 1000 {
            self.tokens_milli -= 1000;
            true
        } else {
            false
        }
    }

    /// Current balance in milli-tokens (status reporting).
    pub fn balance_milli(&self) -> u64 {
        self.tokens_milli
    }
}

/// Fixed-size latency ring; its P99 (max of the window, practically,
/// at this size) derives the hedging delay.
#[derive(Debug)]
pub struct LatencyTracker {
    samples: [u64; 128],
    len: usize,
    pos: usize,
}

impl Default for LatencyTracker {
    fn default() -> LatencyTracker {
        LatencyTracker {
            samples: [0; 128],
            len: 0,
            pos: 0,
        }
    }
}

impl LatencyTracker {
    /// Records one observed response latency.
    pub fn record_ms(&mut self, ms: u64) {
        self.samples[self.pos] = ms;
        self.pos = (self.pos + 1) % self.samples.len();
        self.len = (self.len + 1).min(self.samples.len());
    }

    /// The 99th-percentile latency of the window; `None` before any
    /// sample lands.
    pub fn p99_ms(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut window: Vec<u64> = self.samples[..self.len].to_vec();
        window.sort_unstable();
        let idx = (self.len * 99) / 100;
        Some(window[idx.min(self.len - 1)])
    }

    /// The hedge delay: P99 floored at `min_ms` (a cold tracker hedges
    /// at the floor; hedging *earlier* than the typical tail would
    /// double traffic for no win).
    pub fn hedge_delay_ms(&self, min_ms: u64) -> u64 {
        self.p99_ms().unwrap_or(min_ms).max(min_ms)
    }
}

// --- threaded front end ---------------------------------------------------

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`host:port`; port 0 picks).
    pub addr: String,
    /// One entry per shard group: that group's ordered replica
    /// endpoints (primary first, by convention).
    pub shards: Vec<Vec<String>>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Background status-probe interval.
    pub probe_interval: Duration,
    /// Per-forward TCP connect budget.
    pub connect_timeout: Duration,
    /// Per-forward response wait.
    pub request_timeout: Duration,
    /// Milli-tokens earned per first attempt (100 ⇒ retries ≤ ~10% of
    /// request volume).
    pub retry_ratio_milli: u64,
    /// Banked-retry cap (burst ceiling).
    pub retry_cap: u64,
    /// Re-walks of a shard's replica list after a full failure, per
    /// request (budget permitting).
    pub max_retries: u32,
    /// Hedge keyed requests that outlive the shard's P99.
    pub hedge: bool,
    /// Hedge-delay floor.
    pub hedge_min: Duration,
    /// Per-shard breaker tuning (fed by probes and outcomes).
    pub breaker: BreakerConfig,
    /// Time seam.
    pub clock: Arc<dyn Clock>,
    /// Network seam.
    pub transport: Arc<dyn Transport>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: 16,
            probe_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(60),
            retry_ratio_milli: 100,
            retry_cap: 8,
            max_retries: 2,
            hedge: true,
            hedge_min: Duration::from_millis(50),
            breaker: BreakerConfig::default(),
            clock: Arc::new(SystemClock::new()),
            transport: Arc::new(TcpTransport),
        }
    }
}

/// Monotonic router counters.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Requests received (any kind).
    pub requests: AtomicU64,
    /// Responses forwarded from a shard (success or classified failure).
    pub forwarded: AtomicU64,
    /// Budgeted re-walks after a full shard-walk failure.
    pub retries: AtomicU64,
    /// Retries shed with `RES-RETRY-BUDGET`.
    pub shed_retry_budget: AtomicU64,
    /// Requests answered `RES-SHARD-DOWN`.
    pub shard_down: AtomicU64,
    /// Hedges launched.
    pub hedges: AtomicU64,
    /// Hedges that answered first.
    pub hedge_wins: AtomicU64,
}

/// Per-shard routing state.
#[derive(Debug)]
struct ShardState {
    endpoints: Vec<String>,
    /// Preferred endpoint index (the replica that last answered, or the
    /// primary the prober found).
    cursor: AtomicUsize,
    breaker: CircuitBreaker,
    /// Last probe round found a serving primary (status display; the
    /// breaker is the authority for admission).
    probed_healthy: AtomicBool,
    latency: Mutex<LatencyTracker>,
}

#[derive(Debug)]
struct RouterShared {
    config: RouterConfig,
    ring: ShardRing,
    shards: Vec<ShardState>,
    budget: Mutex<RetryBudget>,
    stats: RouterStats,
    draining: AtomicBool,
    nonce: u64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running router; dropping the handle does not stop it — call
/// [`RouterHandle::shutdown`].
#[derive(Debug)]
pub struct RouterHandle {
    addr: String,
    shared: Arc<RouterShared>,
    accept_thread: Option<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        let s = &self.shared.stats;
        (
            s.requests.load(Ordering::SeqCst),
            s.forwarded.load(Ordering::SeqCst),
            s.retries.load(Ordering::SeqCst),
            s.shed_retry_budget.load(Ordering::SeqCst),
            s.shard_down.load(Ordering::SeqCst),
            s.hedges.load(Ordering::SeqCst),
            s.hedge_wins.load(Ordering::SeqCst),
        )
    }

    /// Stops accepting, joins the service threads.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts the router: binds, spawns the accept loop and the status
/// prober.
///
/// # Errors
///
/// `VAL-CONFIG` for an empty or degenerate shard map, `IO-FAILURE` when
/// the bind fails.
pub fn start_router(config: RouterConfig) -> Result<RouterHandle, LintraError> {
    if config.shards.is_empty() {
        return Err(LintraError::new(
            ErrorClass::Validation,
            "VAL-CONFIG",
            "a router needs at least one shard group (--shards)",
        ));
    }
    if config.shards.iter().any(Vec::is_empty) {
        return Err(LintraError::new(
            ErrorClass::Validation,
            "VAL-CONFIG",
            "every shard group needs at least one endpoint",
        ));
    }
    let ring = ShardRing::new(config.shards.len(), config.vnodes);
    let shards: Vec<ShardState> = config
        .shards
        .iter()
        .map(|endpoints| ShardState {
            endpoints: endpoints.clone(),
            cursor: AtomicUsize::new(0),
            breaker: CircuitBreaker::new(config.breaker),
            probed_healthy: AtomicBool::new(false),
            latency: Mutex::new(LatencyTracker::default()),
        })
        .collect();
    let mut acceptor = config
        .transport
        .bind(config.addr.as_str())
        .map_err(|e| LintraError::new(ErrorClass::Io, "IO-FAILURE", e.to_string()))?;
    let addr = acceptor.local_addr();

    let mut hasher = DefaultHasher::new();
    addr.hash(&mut hasher);
    std::process::id().hash(&mut hasher);
    let shared = Arc::new(RouterShared {
        budget: Mutex::new(RetryBudget::new(config.retry_ratio_milli, config.retry_cap)),
        ring,
        shards,
        stats: RouterStats::default(),
        draining: AtomicBool::new(false),
        nonce: hasher.finish() >> 11, // fits the wire's f64-exact range
        config,
    });

    let probe_shared = Arc::clone(&shared);
    let probe_thread = std::thread::spawn(move || probe_loop(&probe_shared));

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        while !accept_shared.draining.load(Ordering::SeqCst) {
            match acceptor.accept() {
                Ok(Some(conn)) => {
                    let shared = Arc::clone(&accept_shared);
                    conn_threads.push(std::thread::spawn(move || connection_loop(&shared, conn)));
                }
                Ok(None) | Err(_) => accept_shared.config.clock.sleep(POLL),
            }
            conn_threads.retain(|t| !t.is_finished());
        }
        for t in conn_threads {
            let _ = t.join();
        }
    });

    Ok(RouterHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        probe_thread: Some(probe_thread),
    })
}

/// Background health prober: per shard, queries every replica's status
/// and aims the cursor at whichever answers as primary (or stateless —
/// an unreplicated single-node shard is its own primary). A round with
/// no serving replica feeds the breaker a failure, so a dead shard's
/// breaker opens even with zero client traffic; a serving one feeds
/// success, so a healed shard closes it again without sacrificing a
/// live request as the probe.
fn probe_loop(shared: &Arc<RouterShared>) {
    let clock = shared.config.clock.as_ref();
    let transport = shared.config.transport.as_ref();
    while !shared.draining.load(Ordering::SeqCst) {
        for shard in &shared.shards {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            let mut serving = None;
            for (i, endpoint) in shard.endpoints.iter().enumerate() {
                let view =
                    query_status_via(transport, clock, endpoint, shared.config.connect_timeout);
                if let Some(view) = view {
                    if view.role == "primary" || view.role == "stateless" {
                        serving = Some(i);
                        break;
                    }
                }
            }
            match serving {
                Some(i) => {
                    shard.cursor.store(i, Ordering::SeqCst);
                    shard.probed_healthy.store(true, Ordering::SeqCst);
                    shard.breaker.record_success();
                }
                None => {
                    shard.probed_healthy.store(false, Ordering::SeqCst);
                    shard.breaker.record_failure(clock.now());
                }
            }
        }
        clock.sleep(shared.config.probe_interval);
    }
}

fn render_failure(id: &str, class: ErrorClass, code: &str, message: String) -> String {
    WireResponse::err(
        id,
        WireFailure {
            class,
            code: code.to_string(),
            message,
        },
    )
    .render_line()
}

fn connection_loop(shared: &Arc<RouterShared>, mut conn: Box<dyn Conn>) {
    let clock = shared.config.clock.as_ref();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_line(conn.as_mut(), &mut buf, POLL, POLL, clock) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(NetError::Timeout) => continue,
            Err(NetError::FrameTooLarge) => {
                let _ = conn.send(
                    render_failure(
                        "",
                        ErrorClass::Validation,
                        "VAL-FRAME-TOO-LARGE",
                        format!(
                            "request frame exceeds {} bytes without a newline; closing the connection",
                            crate::transport::MAX_FRAME_BYTES
                        ),
                    )
                    .as_bytes(),
                );
                return;
            }
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        // Replication-style status query: identify as a router.
        if let Some(ReplMsg::Status) = ReplMsg::parse(&line) {
            let reply = ReplMsg::StatusReply {
                role: "router".to_string(),
                epoch: 0,
                seq: 0,
                answered: 0,
                nonce: shared.nonce,
                primary: None,
            };
            if conn.send(reply.render_line().as_bytes()).is_err() {
                return;
            }
            continue;
        }
        // Aggregated cluster view for monitoring tools.
        if Json::parse(&line)
            .ok()
            .and_then(|d| d.get("router").and_then(Json::as_str).map(str::to_string))
            .as_deref()
            == Some("status")
        {
            if conn.send(cluster_status_line(shared).as_bytes()).is_err() {
                return;
            }
            continue;
        }
        let response_line = handle_request(shared, &line);
        if conn.send(response_line.as_bytes()).is_err() {
            return;
        }
    }
}

/// The `{"router":"status"}` answer: one JSON line aggregating every
/// shard's health, cursor, breaker state, and P99 alongside the global
/// budget balance and counters.
fn cluster_status_line(shared: &Arc<RouterShared>) -> String {
    let shards: Vec<Json> = shared
        .shards
        .iter()
        .enumerate()
        .map(|(g, s)| {
            let cursor = s.cursor.load(Ordering::SeqCst) % s.endpoints.len().max(1);
            let p99 = lock_unpoisoned(&s.latency).p99_ms();
            Json::obj([
                ("shard", Json::Num(g as f64)),
                (
                    "endpoints",
                    Json::Arr(
                        s.endpoints
                            .iter()
                            .map(|e| Json::Str(e.clone()))
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("preferred", Json::Str(s.endpoints[cursor].clone())),
                ("breaker", Json::Str(s.breaker.state_label().to_string())),
                (
                    "probed_healthy",
                    Json::Bool(s.probed_healthy.load(Ordering::SeqCst)),
                ),
                ("p99_ms", p99.map_or(Json::Null, |ms| Json::Num(ms as f64))),
            ])
        })
        .collect();
    let st = &shared.stats;
    let doc = Json::obj([
        ("router", Json::Str("status-reply".to_string())),
        ("shards", Json::Arr(shards)),
        (
            "retry_budget_milli",
            Json::Num(lock_unpoisoned(&shared.budget).balance_milli() as f64),
        ),
        (
            "requests",
            Json::Num(st.requests.load(Ordering::SeqCst) as f64),
        ),
        (
            "forwarded",
            Json::Num(st.forwarded.load(Ordering::SeqCst) as f64),
        ),
        (
            "retries",
            Json::Num(st.retries.load(Ordering::SeqCst) as f64),
        ),
        (
            "shed_retry_budget",
            Json::Num(st.shed_retry_budget.load(Ordering::SeqCst) as f64),
        ),
        (
            "shard_down",
            Json::Num(st.shard_down.load(Ordering::SeqCst) as f64),
        ),
        ("hedges", Json::Num(st.hedges.load(Ordering::SeqCst) as f64)),
        (
            "hedge_wins",
            Json::Num(st.hedge_wins.load(Ordering::SeqCst) as f64),
        ),
    ]);
    let mut line = doc.render_compact();
    line.push('\n');
    line
}

/// Routes one request line end to end, returning the newline-terminated
/// response line to send (a shard's answer forwarded verbatim, or a
/// router-authored rejection).
fn handle_request(shared: &Arc<RouterShared>, line: &str) -> String {
    shared.stats.requests.fetch_add(1, Ordering::SeqCst);
    let req = match WireRequest::parse(line) {
        Ok(req) => req,
        Err(detail) => {
            return render_failure(
                "",
                ErrorClass::Validation,
                "VAL-MALFORMED-REQUEST",
                format!("router could not parse the request: {detail}"),
            );
        }
    };
    let key = routing_key(&req);
    let Some(shard_idx) = shared.ring.shard_of(&key) else {
        return render_failure(
            &req.id,
            ErrorClass::Validation,
            "VAL-CONFIG",
            "router has no shards on its ring".to_string(),
        );
    };
    let shard = &shared.shards[shard_idx];
    let clock = shared.config.clock.as_ref();

    // Graceful partial degradation: an open breaker rejects this
    // shard's keys immediately — other shards are untouched.
    if let Err(retry_in) = shard.breaker.admit(clock.now()) {
        shared.stats.shard_down.fetch_add(1, Ordering::SeqCst);
        return render_failure(
            &req.id,
            ErrorClass::Resource,
            "RES-SHARD-DOWN",
            format!(
                "shard {shard_idx} (keys like \"{key}\") has no serving replica; \
                 next probe in {} ms — other shards keep serving",
                retry_in.as_millis()
            ),
        );
    }
    lock_unpoisoned(&shared.budget).on_request();

    let started = clock.now();
    let mut walk_result = forward_with_hedge(shared, shard_idx, &req, line);
    let mut retries_used = 0u32;
    while walk_result.is_err() && retries_used < shared.config.max_retries {
        // The whole replica list failed: one more walk is a *retry* and
        // must fit the global budget, or the stampede stops here.
        if !lock_unpoisoned(&shared.budget).try_retry() {
            shared
                .stats
                .shed_retry_budget
                .fetch_add(1, Ordering::SeqCst);
            return render_failure(
                &req.id,
                ErrorClass::Resource,
                "RES-RETRY-BUDGET",
                format!(
                    "retry budget exhausted after {retries_used} retr{} — shedding instead \
                     of stampeding shard {shard_idx}",
                    if retries_used == 1 { "y" } else { "ies" }
                ),
            );
        }
        shared.stats.retries.fetch_add(1, Ordering::SeqCst);
        retries_used += 1;
        clock.sleep(Duration::from_millis(25 * u64::from(retries_used)));
        walk_result = forward_with_hedge(shared, shard_idx, &req, line);
    }
    match walk_result {
        Ok(response_line) => {
            let elapsed = clock.now().saturating_sub(started);
            lock_unpoisoned(&shard.latency).record_ms(elapsed.as_millis() as u64);
            shard.breaker.record_success();
            shared.stats.forwarded.fetch_add(1, Ordering::SeqCst);
            response_line
        }
        Err(last_error) => {
            shard.breaker.record_failure(clock.now());
            shared.stats.shard_down.fetch_add(1, Ordering::SeqCst);
            render_failure(
                &req.id,
                ErrorClass::Resource,
                "RES-SHARD-DOWN",
                format!(
                    "no replica of shard {shard_idx} answered ({last_error}); \
                     other shards keep serving"
                ),
            )
        }
    }
}

/// One walk of a shard's replica list, hedged for keyed requests: if
/// the preferred replica has not answered within the shard's P99, the
/// same line races to the next replica and the first answer wins.
///
/// Hedging is safe *only* because hedged requests carry an idempotency
/// key: whichever copy reaches the journal second is answered
/// `RES-DUPLICATE-REQUEST` (while executing) or byte-identically from
/// the journal (when settled) — never executed twice. A
/// `RES-DUPLICATE-REQUEST` answer is therefore treated as "the other
/// copy is still running", not forwarded as the winner.
fn forward_with_hedge(
    shared: &Arc<RouterShared>,
    shard_idx: usize,
    req: &WireRequest,
    line: &str,
) -> Result<String, String> {
    let shard = &shared.shards[shard_idx];
    let clock = shared.config.clock.as_ref();
    let hedgeable = shared.config.hedge && req.request_id.is_some() && shard.endpoints.len() > 1;
    if !hedgeable {
        return walk_shard(shared, shard_idx, line, 0);
    }

    let hedge_after = Duration::from_millis(
        lock_unpoisoned(&shard.latency).hedge_delay_ms(shared.config.hedge_min.as_millis() as u64),
    );
    let (tx, rx) = mpsc::channel::<(bool, Result<String, String>)>();
    {
        let tx = tx.clone();
        let shared = Arc::clone(shared);
        let line = line.to_string();
        std::thread::spawn(move || {
            let _ = tx.send((false, walk_shard(&shared, shard_idx, &line, 0)));
        });
    }
    let started = clock.now();
    let mut hedged = false;
    let mut outstanding = 1u32;
    // A RES-DUPLICATE-REQUEST line held back while the other copy (the
    // one actually executing) is still in flight.
    let mut duplicate_fallback: Option<String> = None;
    let mut last_error = String::new();
    let overall = shared
        .config
        .request_timeout
        .saturating_add(shared.config.connect_timeout);
    loop {
        match rx.recv_timeout(POLL) {
            Ok((is_hedge, Ok(response))) => {
                outstanding = outstanding.saturating_sub(1);
                let duplicate = WireResponse::parse(response.trim_end()).ok().is_some_and(
                    |r| matches!(&r.outcome, Err(f) if f.code == "RES-DUPLICATE-REQUEST"),
                );
                if duplicate {
                    // The other copy owns the execution; keep waiting
                    // for it. Only when nothing else is coming does the
                    // duplicate verdict reach the client (whose keyed
                    // retry will be served from the journal).
                    if outstanding == 0 {
                        return Ok(response);
                    }
                    duplicate_fallback = Some(response);
                    continue;
                }
                if is_hedge {
                    shared.stats.hedge_wins.fetch_add(1, Ordering::SeqCst);
                }
                return Ok(response);
            }
            Ok((_, Err(e))) => {
                outstanding = outstanding.saturating_sub(1);
                last_error = e;
                if outstanding == 0 {
                    return match duplicate_fallback {
                        Some(dup) => Ok(dup),
                        None => Err(last_error),
                    };
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let waited = clock.now().saturating_sub(started);
                if waited >= overall {
                    return Err(format!(
                        "no replica answered within {} ms",
                        overall.as_millis()
                    ));
                }
                if !hedged && waited >= hedge_after {
                    // P99 exceeded: race the next replica. A hedge is
                    // speculative retry traffic, so it draws from the
                    // same global budget; an empty budget skips the
                    // hedge but never sheds the original.
                    if lock_unpoisoned(&shared.budget).try_retry() {
                        shared.stats.hedges.fetch_add(1, Ordering::SeqCst);
                        launch_hedge(shared, shard_idx, line, &tx);
                        outstanding += 1;
                    }
                    hedged = true;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return match duplicate_fallback {
                    Some(dup) => Ok(dup),
                    None if last_error.is_empty() => {
                        Err("every forwarding thread died".to_string())
                    }
                    None => Err(last_error),
                };
            }
        }
    }
}

fn launch_hedge(
    shared: &Arc<RouterShared>,
    shard_idx: usize,
    line: &str,
    tx: &mpsc::Sender<(bool, Result<String, String>)>,
) {
    let tx = tx.clone();
    let shared = Arc::clone(shared);
    let line = line.to_string();
    std::thread::spawn(move || {
        // Start one past the preferred replica so the hedge explores a
        // different path first (its walk still reaches the primary via
        // redirects if the follower it hits is not serving).
        let _ = tx.send((true, walk_shard(&shared, shard_idx, &line, 1)));
    });
}

/// Walks one shard's replica list once, starting `offset` past the
/// cursor: forwards the raw line, advances past dead endpoints and
/// `RES-NOT-PRIMARY` / `RES-STALE-EPOCH` redirects, and returns the
/// first authoritative response line verbatim (byte-identical
/// passthrough — the router never re-renders a shard's answer).
fn walk_shard(
    shared: &Arc<RouterShared>,
    shard_idx: usize,
    line: &str,
    offset: usize,
) -> Result<String, String> {
    let shard = &shared.shards[shard_idx];
    let n = shard.endpoints.len();
    let mut last_error = "shard has no endpoints".to_string();
    for step in 0..n {
        let at = (shard.cursor.load(Ordering::SeqCst) + offset + step) % n;
        let endpoint = &shard.endpoints[at];
        match forward_once(shared, endpoint, line) {
            Ok(response) => {
                let redirect = WireResponse::parse(response.trim_end())
                    .ok()
                    .is_some_and(|r| {
                        matches!(
                            &r.outcome,
                            Err(f) if f.code == "RES-NOT-PRIMARY" || f.code == "RES-STALE-EPOCH"
                        )
                    });
                if redirect {
                    last_error = format!("{endpoint} is not primary");
                    continue;
                }
                if offset == 0 {
                    // Remember who answered: the next request starts here.
                    shard.cursor.store(at, Ordering::SeqCst);
                }
                return Ok(response);
            }
            Err(e) => {
                // A dead endpoint is skipped without sleeping.
                last_error = format!("{endpoint}: {e}");
            }
        }
    }
    Err(last_error)
}

/// Forwards one raw request line to one endpoint and reads one response
/// line.
fn forward_once(shared: &Arc<RouterShared>, endpoint: &str, line: &str) -> Result<String, String> {
    let clock = shared.config.clock.as_ref();
    let mut conn = shared
        .config
        .transport
        .connect(endpoint, shared.config.connect_timeout)
        .map_err(|e| e.to_string())?;
    let mut framed = line.trim_end().to_string();
    framed.push('\n');
    conn.send(framed.as_bytes())
        .map_err(|e| format!("sending: {e}"))?;
    let mut buf = Vec::new();
    match read_line(
        conn.as_mut(),
        &mut buf,
        shared.config.request_timeout,
        POLL,
        clock,
    ) {
        Ok(Some(mut response)) => {
            response.push('\n');
            Ok(response)
        }
        Ok(None) => Err("connection closed before a response".to_string()),
        Err(e) => Err(format!("reading response: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintra_bench::wire::WireOp;

    #[test]
    fn the_ring_is_deterministic_and_total() {
        let ring = ShardRing::new(3, 16);
        for key in ["a", "chemical", "iir5", "req-42", ""] {
            let a = ring.shard_of(key);
            let b = ring.shard_of(key);
            assert_eq!(a, b, "stable for {key:?}");
            assert!(a.is_some_and(|s| s < 3));
        }
        assert_eq!(ShardRing::new(0, 16).shard_of("x"), None);
    }

    #[test]
    fn every_shard_owns_a_reasonable_key_share() {
        let ring = ShardRing::new(4, 32);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            if let Some(s) = ring.shard_of(&format!("key-{i}")) {
                counts[s] += 1;
            }
        }
        for (g, c) in counts.iter().enumerate() {
            assert!(
                (400..=2200).contains(c),
                "shard {g} owns {c} of 4000 keys — ring is badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_own_keys() {
        let before = ShardRing::new(4, 32);
        let after = ShardRing::new(3, 32);
        let mut moved = 0usize;
        let mut total = 0usize;
        for i in 0..2000 {
            let key = format!("key-{i}");
            let (Some(b), Some(a)) = (before.shard_of(&key), after.shard_of(&key)) else {
                continue;
            };
            total += 1;
            if b < 3 && a != b {
                moved += 1;
            }
        }
        // Consistent hashing: keys on surviving shards overwhelmingly
        // stay put (an ordinary mod-N split would move ~2/3 of them).
        assert!(
            moved * 5 < total,
            "{moved} of {total} surviving-shard keys moved"
        );
    }

    #[test]
    fn routing_keys_prefer_the_idempotency_key() {
        let keyed = WireRequest::new("c1", WireOp::Ping).with_request_id("rid-7");
        assert_eq!(routing_key(&keyed), "rid-7");
        let design = WireRequest::new(
            "c2",
            WireOp::Sweep {
                design: "iir5".to_string(),
                max_i: 4,
            },
        );
        assert_eq!(routing_key(&design), "iir5");
        let bare = WireRequest::new("c3", WireOp::Ping);
        assert_eq!(routing_key(&bare), "c3");
    }

    #[test]
    fn the_retry_budget_caps_retry_volume_at_the_ratio() {
        let mut b = RetryBudget::new(100, 2); // 10%, burst of 2
                                              // Drain the initial burst allowance.
        assert!(b.try_retry());
        assert!(b.try_retry());
        assert!(!b.try_retry(), "burst cap exhausted");
        // 100 requests earn exactly 10 retries at a 10% ratio.
        let mut granted = 0;
        for _ in 0..100 {
            b.on_request();
            if b.try_retry() {
                granted += 1;
            }
        }
        assert_eq!(granted, 10, "retries must track 10% of request volume");
    }

    #[test]
    fn the_budget_banks_at_most_the_cap() {
        let mut b = RetryBudget::new(100, 3);
        for _ in 0..10_000 {
            b.on_request();
        }
        let mut granted = 0;
        while b.try_retry() {
            granted += 1;
        }
        assert_eq!(granted, 3, "an idle hour cannot bank an unbounded burst");
    }

    #[test]
    fn p99_tracks_the_tail_and_floors_the_hedge_delay() {
        let mut t = LatencyTracker::default();
        assert_eq!(t.p99_ms(), None);
        assert_eq!(t.hedge_delay_ms(50), 50, "cold tracker hedges at the floor");
        for _ in 0..99 {
            t.record_ms(10);
        }
        t.record_ms(400);
        let p99 = t.p99_ms().unwrap_or(0);
        assert!(p99 >= 400, "the tail sample dominates P99: {p99}");
        assert_eq!(t.hedge_delay_ms(50), p99);
        let mut fast = LatencyTracker::default();
        fast.record_ms(3);
        assert_eq!(
            fast.hedge_delay_ms(50),
            50,
            "P99 below the floor is floored"
        );
    }

    #[test]
    fn a_router_with_no_shards_is_a_config_error() {
        let err = start_router(RouterConfig::default()).expect_err("no shards");
        assert_eq!(err.code(), "VAL-CONFIG");
        let err = start_router(RouterConfig {
            shards: vec![vec!["127.0.0.1:9001".to_string()], vec![]],
            ..RouterConfig::default()
        })
        .expect_err("empty group");
        assert_eq!(err.code(), "VAL-CONFIG");
    }
}

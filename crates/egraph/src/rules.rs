//! The rewrite-rule library.
//!
//! Rules come in two tiers. **Bit-exact** rules preserve every `f64` bit
//! of every output (up to the `±0.0` identification the property harness
//! applies), so saturation with [`RuleSet::exact`] is a semantics-preserving
//! search. **Value-reassociating / quantizing** rules (associativity,
//! distributivity, multiplier fusion, CSD decomposition) change rounding —
//! they are only sound under the approximate-equivalence contract the §5
//! ASIC script already accepts, and live in [`RuleSet::extended`] /
//! [`RuleSet::asic`].

use crate::graph::{EGraph, ENode, Id, KIND_COUNT};
use lintra_mcm::{quantize, synthesize, McmSolution, OutputRef, Recoding, Source, Term};
use std::collections::HashMap;

/// Reusable child-class snapshots for the rule arms. Rules read one level
/// down (a node plus the nodes of one child class) while mutating the
/// e-graph, so each arm snapshots the child's nodes first; these buffers
/// make that snapshot allocation-free across the whole saturation run.
/// Two buffers because the factoring direction of
/// [`Rule::MulDistribute`] holds both operands' snapshots at once.
#[derive(Debug, Default)]
pub(crate) struct RuleScratch {
    left: Vec<ENode>,
    right: Vec<ENode>,
}

/// Snapshots class `c`'s nodes into `buf` and returns them as a slice the
/// caller can iterate while freely mutating the e-graph.
fn snap<'s>(buf: &'s mut Vec<ENode>, eg: &EGraph, c: Id) -> &'s [ENode] {
    buf.clear();
    buf.extend_from_slice(eg.class_nodes(c));
    buf
}

/// One rewrite rule over the [`ENode`] language.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// `a + b → b + a` (bit-exact).
    AddCommute,
    /// `a − b ↔ a + (−b)` (bit-exact; IEEE negation is a sign flip).
    SubToAddNeg,
    /// `−(−x) → x` (bit-exact).
    NegNeg,
    /// `1·x → x`, `(−1)·x → −x` (bit-exact).
    MulOne,
    /// `(±2^k)·x ↔ ±(x ≪ k)` (bit-exact: both sides multiply by the same
    /// power of two).
    MulPow2,
    /// `(x ≪ j) ≪ k → x ≪ (j+k)` and `x ≪ 0 → x` (bit-exact barring
    /// overflow/subnormal traversal of the intermediate, which validated
    /// filter graphs with small shifts never hit).
    ShiftFuse,
    /// `x + 0 → x` (bit-exact up to `−0.0 + 0.0 = +0.0`).
    AddZero,
    /// `(a + b) + c → a + (b + c)` (reassociates rounding).
    AddAssoc,
    /// `c·(a + b) ↔ c·a + c·b` (reassociates rounding).
    MulDistribute,
    /// `c₁·(c₂·x) → (c₁c₂)·x` (rounds the fused constant).
    MulFuse,
    /// `c·x → shift-add network of round(c·2^w)` — the §5 CSD/MCM
    /// decomposition (quantizing; reuses `lintra_mcm` recoding and carries
    /// the same `round(c·2^w)/2^w` semantics as the MCM pass).
    CsdDecompose {
        /// Fractional bits of the fixed-point quantization.
        frac_bits: u32,
        /// Digit recoding used by the synthesis.
        recoding: Recoding,
    },
    /// Shift-add collection — the MCM-sharing bridge. Any network of
    /// shifts, negations, additions and subtractions over a *single* base
    /// e-class computes a linear function `a·base`; this rule unions every
    /// such class with the canonical `MulConst(a, base)` hub. Coefficients
    /// are accumulated in exact dyadic-rational arithmetic (an `i128`
    /// mantissa and a binary exponent; overflow bails instead of
    /// rounding), so structurally different realizations of the same
    /// multiple — the per-constant CSD chains grown by
    /// [`Rule::CsdDecompose`] and the cross-constant shared networks the
    /// §5 MCM pass emits, under *any* grouping — all collapse onto the
    /// bit-identical hub e-node. That collapse is what makes the fixed
    /// script's shift-add graph *derivable* rather than merely
    /// injectable. (Reassociates rounding: the coefficient is exact, but
    /// the chain's intermediate sums round differently from one fused
    /// multiply.)
    ///
    /// Applied once per saturation sweep as a whole-graph analysis, not
    /// per e-node — see [`RuleSet`]'s sweep hook.
    CollectLinear,
    /// Shared-MCM synthesis — the §5 pass replayed inside the e-graph.
    /// Groups every multiplier e-node by its base e-class, synthesizes one
    /// plan per group over the sorted, deduplicated quantized constants
    /// (the procedure `expand_multiplications` runs over predecessor-node
    /// groups), and emits the plan's shift-add network, unioning each
    /// multiplier class with its network output — so cross-constant
    /// sharing is in the space extraction searches. Grouping by e-class
    /// is *coarser* than the pass's grouping by predecessor node
    /// (hashconsing merges structurally identical predecessors), so the
    /// derived networks need not match the script's chains node-for-node;
    /// [`Rule::CollectLinear`] is what proves the differently-grouped
    /// realizations equal. Group size is capped — saturated e-graphs pile
    /// hub constants onto merged base classes far beyond any source
    /// graph's group, and synthesizing those buys nothing. (Quantizing,
    /// like [`Rule::CsdDecompose`].)
    ///
    /// Applied once per saturation sweep as a whole-graph analysis — see
    /// [`RuleSet`]'s sweep hook.
    McmShare {
        /// Fractional bits of the fixed-point quantization.
        frac_bits: u32,
        /// Digit recoding used by the synthesis.
        recoding: Recoding,
    },
}

impl Rule {
    /// Rule name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::AddCommute => "add-commute",
            Rule::SubToAddNeg => "sub-to-add-neg",
            Rule::NegNeg => "neg-neg",
            Rule::MulOne => "mul-one",
            Rule::MulPow2 => "mul-pow2",
            Rule::ShiftFuse => "shift-fuse",
            Rule::AddZero => "add-zero",
            Rule::AddAssoc => "add-assoc",
            Rule::MulDistribute => "mul-distribute",
            Rule::MulFuse => "mul-fuse",
            Rule::CsdDecompose { .. } => "csd-decompose",
            Rule::CollectLinear => "collect-linear",
            Rule::McmShare { .. } => "mcm-share",
        }
    }

    /// `true` when the rule preserves every output bit (the property
    /// harness only saturates with bit-exact rules).
    pub fn bit_exact(&self) -> bool {
        !matches!(
            self,
            Rule::AddAssoc
                | Rule::MulDistribute
                | Rule::MulFuse
                | Rule::CsdDecompose { .. }
                | Rule::CollectLinear
                | Rule::McmShare { .. }
        )
    }

    /// Bitmask over [`ENode::kind_ordinal`] values this rule can fire on —
    /// the op-kind index the saturation engine consults before dispatching
    /// a `(class, node)` pair to the rule. Whole-graph sweep rules return
    /// zero: they enter through [`RuleSet`]'s sweep hook, never per-node.
    pub(crate) fn kind_mask(&self) -> u16 {
        const ADD: u16 = 1 << 3;
        const SUB: u16 = 1 << 4;
        const MUL: u16 = 1 << 5;
        const SHIFT: u16 = 1 << 6;
        const NEG: u16 = 1 << 7;
        match self {
            Rule::AddCommute | Rule::AddZero | Rule::AddAssoc => ADD,
            Rule::SubToAddNeg => SUB | ADD,
            Rule::NegNeg => NEG,
            Rule::MulOne | Rule::MulFuse | Rule::CsdDecompose { .. } => MUL,
            Rule::MulPow2 => MUL | SHIFT,
            Rule::ShiftFuse => SHIFT,
            Rule::MulDistribute => MUL | ADD,
            Rule::CollectLinear | Rule::McmShare { .. } => 0,
        }
    }

    /// Applies the rule to one `(class, node)` pair, performing any unions
    /// directly. Returns `true` if the e-graph changed (new e-nodes or a
    /// real merge). Callers sweep a snapshot, so `node` may predate recent
    /// merges; everything here re-canonicalizes through the union-find.
    pub(crate) fn apply(
        &self,
        eg: &mut EGraph,
        class: Id,
        node: &ENode,
        scratch: &mut RuleScratch,
    ) -> bool {
        let before = eg.len();
        let mut merged = false;
        match (self, *node) {
            (Rule::AddCommute, ENode::Add(a, b)) => {
                let n = eg.add(ENode::Add(b, a));
                merged = eg.union(class, n);
            }
            (Rule::SubToAddNeg, ENode::Sub(a, b)) => {
                let nb = eg.add(ENode::Neg(b));
                let n = eg.add(ENode::Add(a, nb));
                merged = eg.union(class, n);
            }
            (Rule::SubToAddNeg, ENode::Add(a, b)) => {
                // Reverse direction: a + (−c) → a − c, so extraction can
                // pick the single-op form.
                for &n in snap(&mut scratch.left, eg, b) {
                    if let ENode::Neg(m) = n {
                        let s = eg.add(ENode::Sub(a, m));
                        merged |= eg.union(class, s);
                    }
                }
            }
            (Rule::NegNeg, ENode::Neg(a)) => {
                for &n in snap(&mut scratch.left, eg, a) {
                    if let ENode::Neg(m) = n {
                        merged |= eg.union(class, m);
                    }
                }
            }
            (Rule::MulOne, ENode::MulConst(bits, a)) => {
                let c = f64::from_bits(bits);
                if c == 1.0 {
                    merged = eg.union(class, a);
                } else if c == -1.0 {
                    let n = eg.add(ENode::Neg(a));
                    merged = eg.union(class, n);
                }
            }
            (Rule::MulPow2, ENode::MulConst(bits, a)) => {
                let c = f64::from_bits(bits);
                if let Some(k) = pow2_exponent(c.abs()) {
                    let shifted = eg.add(ENode::Shift(k, a));
                    let n = if c < 0.0 {
                        eg.add(ENode::Neg(shifted))
                    } else {
                        shifted
                    };
                    merged = eg.union(class, n);
                }
            }
            (Rule::MulPow2, ENode::Shift(k, a)) => {
                let c = f64::from(k).exp2();
                if c.is_finite() && c > 0.0 {
                    let n = eg.add(ENode::MulConst(c.to_bits(), a));
                    merged = eg.union(class, n);
                }
            }
            (Rule::ShiftFuse, ENode::Shift(j, a)) => {
                if j == 0 {
                    merged = eg.union(class, a);
                }
                for &n in snap(&mut scratch.left, eg, a) {
                    if let ENode::Shift(k, b) = n {
                        if let Some(s) = j.checked_add(k) {
                            let fused = eg.add(ENode::Shift(s, b));
                            merged |= eg.union(class, fused);
                        }
                    }
                }
            }
            (Rule::AddZero, ENode::Add(a, b)) => {
                if has_zero(eg, b) {
                    merged |= eg.union(class, a);
                }
                if has_zero(eg, a) {
                    merged |= eg.union(class, b);
                }
            }
            (Rule::AddAssoc, ENode::Add(a, b)) => {
                for &n in snap(&mut scratch.left, eg, a) {
                    if let ENode::Add(c, d) = n {
                        let db = eg.add(ENode::Add(d, b));
                        let assoc = eg.add(ENode::Add(c, db));
                        merged |= eg.union(class, assoc);
                    }
                }
            }
            (Rule::MulDistribute, ENode::MulConst(bits, a)) => {
                for &n in snap(&mut scratch.left, eg, a) {
                    if let ENode::Add(x, y) = n {
                        let mx = eg.add(ENode::MulConst(bits, x));
                        let my = eg.add(ENode::MulConst(bits, y));
                        let sum = eg.add(ENode::Add(mx, my));
                        merged |= eg.union(class, sum);
                    }
                }
            }
            (Rule::MulDistribute, ENode::Add(a, b)) => {
                // Factoring direction: c·x + c·y → c·(x + y).
                snap(&mut scratch.left, eg, a);
                snap(&mut scratch.right, eg, b);
                for &ln in &scratch.left {
                    let ENode::MulConst(c1, x) = ln else {
                        continue;
                    };
                    for &rn in &scratch.right {
                        let ENode::MulConst(c2, y) = rn else {
                            continue;
                        };
                        if c1 == c2 {
                            let sum = eg.add(ENode::Add(x, y));
                            let n = eg.add(ENode::MulConst(c1, sum));
                            merged |= eg.union(class, n);
                        }
                    }
                }
            }
            (Rule::MulFuse, ENode::MulConst(bits, a)) => {
                let c1 = f64::from_bits(bits);
                for &n in snap(&mut scratch.left, eg, a) {
                    if let ENode::MulConst(c2bits, b) = n {
                        let p = c1 * f64::from_bits(c2bits);
                        if p.is_finite() {
                            let fusedn = eg.add(ENode::MulConst(p.to_bits(), b));
                            merged |= eg.union(class, fusedn);
                        }
                    }
                }
            }
            (
                Rule::CsdDecompose {
                    frac_bits,
                    recoding,
                },
                ENode::MulConst(bits, a),
            ) => {
                let c = f64::from_bits(bits);
                // ±2^k multipliers that survive quantization exactly are
                // covered by MulOne/MulPow2; decomposing them would only
                // re-derive the same shift. A power of two that the
                // script's fixed-point grid *moves* (rounds to a different
                // value, or to zero) must still be decomposed, or the
                // quantized script realization stays unreachable.
                let dequant = quantize(c, *frac_bits) as f64 * (-f64::from(*frac_bits)).exp2();
                if c.is_finite() && !(pow2_exponent(c.abs()).is_some() && dequant == c) {
                    if let Some(n) = csd_network(eg, a, c, *frac_bits, *recoding) {
                        merged = eg.union(class, n);
                    }
                }
            }
            _ => {}
        }
        merged || eg.len() > before
    }
}

/// An exact dyadic rational `num·2^exp`, the coefficient domain of the
/// linear-form analysis. Chain coefficients are sums of signed powers of
/// two; tracking them as an `i128` mantissa and a binary exponent keeps
/// the accumulation *exact* at any depth — structurally different chains
/// computing the same multiple land on the identical coefficient, which
/// is the whole point of the hub. Overflow (or a coefficient too wide for
/// `f64`) makes the analysis *bail* rather than round: a missed hub is
/// only a missed merge, never a wrong one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Dyadic {
    num: i128,
    exp: i32,
}

impl Dyadic {
    const ONE: Dyadic = Dyadic { num: 1, exp: 0 };

    /// Canonical form: odd mantissa (or `0·2^0`), so equality of values is
    /// equality of representations.
    fn normalized(num: i128, exp: i32) -> Option<Dyadic> {
        if num == 0 {
            return Some(Dyadic { num: 0, exp: 0 });
        }
        let tz = i32::try_from(num.trailing_zeros()).ok()?;
        Some(Dyadic {
            num: num >> tz,
            exp: exp.checked_add(tz)?,
        })
    }

    fn shifted(self, k: i32) -> Option<Dyadic> {
        Some(Dyadic {
            num: self.num,
            exp: self.exp.checked_add(k)?,
        })
    }

    fn neg(self) -> Option<Dyadic> {
        Some(Dyadic {
            num: self.num.checked_neg()?,
            exp: self.exp,
        })
    }

    fn add(self, other: Dyadic) -> Option<Dyadic> {
        let (lo, hi) = if self.exp <= other.exp {
            (self, other)
        } else {
            (other, self)
        };
        let up = u32::try_from(hi.exp - lo.exp).ok()?;
        if up > 126 {
            return None;
        }
        let scaled = hi.num.checked_mul(1i128.checked_shl(up)?)?;
        Dyadic::normalized(lo.num.checked_add(scaled)?, lo.exp)
    }

    fn sub(self, other: Dyadic) -> Option<Dyadic> {
        self.add(other.neg()?)
    }

    /// The coefficient as an `f64`, only when the conversion is *exact*
    /// (mantissa within 53 bits, exponent in normal range).
    fn to_f64_exact(self) -> Option<f64> {
        if self.num == 0 {
            return Some(0.0);
        }
        let num = i64::try_from(self.num).ok()?;
        if num.unsigned_abs() > (1u64 << 53) {
            return None;
        }
        let v = num as f64 * f64::from(self.exp).exp2();
        if v.is_normal() {
            Some(v)
        } else {
            None
        }
    }
}

/// One [`Rule::CollectLinear`] pass over the whole e-graph: a bottom-up
/// linear-form analysis (single shared memo, so the pass is linear in the
/// number of e-nodes), then one `MulConst` hub per discovered `a·base`
/// form. Analysis and mutation are separated so the memo never observes a
/// half-updated union-find.
fn collect_linear_sweep(eg: &mut EGraph) -> bool {
    let before = eg.len();
    let mut memo: HashMap<Id, Option<(Dyadic, Id)>> = HashMap::new();
    let mut plans: Vec<(Id, u64, Id)> = Vec::new();
    for c in eg.class_ids() {
        let mut seen: Vec<(u64, Id)> = Vec::new();
        for node in eg.class_nodes(c) {
            let Some((d, b)) = linear_of_node(eg, node, &mut memo) else {
                continue;
            };
            let Some(a) = d.to_f64_exact() else {
                continue;
            };
            let b = eg.find(b);
            if a == 1.0 && eg.find(c) == b {
                continue; // trivial self-hub: `1·c` in class `c`
            }
            if !seen.contains(&(a.to_bits(), b)) {
                seen.push((a.to_bits(), b));
                plans.push((c, a.to_bits(), b));
            }
        }
    }
    let mut merged = false;
    for (c, bits, b) in plans {
        let hub = eg.add(ENode::MulConst(bits, b));
        merged |= eg.union(c, hub);
    }
    merged || eg.len() > before
}

/// The linear form `a·base` computed by one e-node, when the node is a
/// shift/negation/addition/subtraction whose operands share a base.
/// Returns `None` when the node mixes two bases, sits outside the
/// shift-add fragment entirely, or overflows the exact coefficient
/// arithmetic.
///
/// The descent deliberately does **not** step through `MulConst` nodes:
/// a multiplier's raw constant is not dyadic in general, so folding it
/// into the accumulation would force rounding — and rounding depends on
/// association order, which is exactly what differs between per-constant
/// CSD chains and the script's shared MCM networks. Coefficients built
/// from `1` by shifting, negation, and addition stay in [`Dyadic`] and
/// accumulate exactly, so structurally different chains over the same
/// base land on bit-identical hub constants. (A `MulConst` node needs no
/// plan of its own anyway: the hub it would propose is itself.)
fn linear_of_node(
    eg: &EGraph,
    node: &ENode,
    memo: &mut HashMap<Id, Option<(Dyadic, Id)>>,
) -> Option<(Dyadic, Id)> {
    match *node {
        ENode::Shift(k, c) => {
            let (a, b) = linear_of_class(eg, c, memo);
            Some((a.shifted(k)?, b))
        }
        ENode::Neg(c) => {
            let (a, b) = linear_of_class(eg, c, memo);
            Some((a.neg()?, b))
        }
        ENode::Add(c1, c2) => {
            let (a1, b1) = linear_of_class(eg, c1, memo);
            let (a2, b2) = linear_of_class(eg, c2, memo);
            if b1 == b2 {
                Some((a1.add(a2)?, b1))
            } else {
                None
            }
        }
        ENode::Sub(c1, c2) => {
            let (a1, b1) = linear_of_class(eg, c1, memo);
            let (a2, b2) = linear_of_class(eg, c2, memo);
            if b1 == b2 {
                Some((a1.sub(a2)?, b1))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// A class's linear form: the first representative that decomposes, else
/// `1·itself` (leaves, delays, mixed-base sums, overflowed coefficients,
/// and classes on the current descent path — cycles act as opaque bases).
fn linear_of_class(
    eg: &EGraph,
    c: Id,
    memo: &mut HashMap<Id, Option<(Dyadic, Id)>>,
) -> (Dyadic, Id) {
    let root = eg.find(c);
    if let Some(cached) = memo.get(&root) {
        return cached.unwrap_or((Dyadic::ONE, root));
    }
    memo.insert(root, None);
    let mut found = None;
    for n in eg.class_nodes(root) {
        if let Some(r) = linear_of_node(eg, n, memo) {
            found = Some(r);
            break;
        }
    }
    let res = found.unwrap_or((Dyadic::ONE, root));
    memo.insert(root, Some(res));
    res
}

/// `true` when the class contains a literal zero of either sign.
fn has_zero(eg: &EGraph, a: Id) -> bool {
    eg.class_nodes(a)
        .iter()
        .any(|n| matches!(n, ENode::Const(bits) if f64::from_bits(*bits) == 0.0))
}

/// `Some(k)` when `a == 2^k` exactly (with `a > 0` finite).
fn pow2_exponent(a: f64) -> Option<i32> {
    if !a.is_finite() || a <= 0.0 {
        return None;
    }
    let k = a.log2().round();
    if (-1074.0..=1023.0).contains(&k) && k.exp2() == a {
        Some(k as i32)
    } else {
        None
    }
}

/// Emits the shift-add network for `round(c·2^w)·x ≫ w` into the e-graph,
/// mirroring the MCM pass's `GroupEmitter` chain exactly (so an injected
/// §5 graph hashconses onto the same e-nodes). Returns `None` when the
/// synthesized plan is unevaluable (defensive; a correct plan never is).
fn csd_network(
    eg: &mut EGraph,
    base: Id,
    c: f64,
    frac_bits: u32,
    recoding: Recoding,
) -> Option<Id> {
    let q = quantize(c, frac_bits);
    if q == 0 {
        return Some(eg.add(ENode::Const(0.0f64.to_bits())));
    }
    let plan = synthesize(&[q], recoding);
    let mut em = CsdEmitter::new(plan);
    em.output_node(eg, base, 0, frac_bits)
}

/// One [`Rule::McmShare`] pass over the whole e-graph: the §5 MCM pass's
/// group-synthesize-emit procedure, with e-classes standing in for
/// predecessor nodes. Constants are sorted and deduplicated per group
/// before synthesis — the same canonical order `expand_multiplications`
/// uses — so the plan, and therefore the emitted network *structure*, is
/// identical to the script's, and the script graph's chains hashcons onto
/// the derived ones.
/// Largest constant group [`mcm_share_sweep`] synthesizes a shared plan
/// for — comfortably above any group a suite-scale source graph produces
/// (iir12 unfolded peaks at 58), small enough that hub-inflated merged
/// groups can't stall a sweep.
const MAX_GROUP_CONSTS: usize = 128;

fn mcm_share_sweep(
    eg: &mut EGraph,
    frac_bits: u32,
    recoding: Recoding,
    plans: &mut McmPlanMemo,
) -> bool {
    let before = eg.len();
    // Analysis phase (read-only): group multiplier e-nodes by canonical
    // base class.
    let mut groups: HashMap<Id, Vec<(i64, Id)>> = HashMap::new();
    for c in eg.class_ids() {
        for node in eg.class_nodes(c) {
            if let ENode::MulConst(bits, b) = *node {
                let v = f64::from_bits(bits);
                if v.is_finite() {
                    groups
                        .entry(eg.find(b))
                        .or_default()
                        .push((quantize(v, frac_bits), c));
                }
            }
        }
    }
    let mut groups: Vec<(Id, Vec<(i64, Id)>)> = groups.into_iter().collect();
    groups.sort_unstable_by_key(|(base, _)| *base);
    // Emission phase: one shared plan per group, one output per multiplier.
    let mut merged = false;
    for (base, muls) in groups {
        let mut consts: Vec<i64> = muls.iter().map(|&(q, _)| q).collect();
        consts.sort_unstable();
        consts.dedup();
        // Perf guard: a group this wide never comes from a source graph —
        // the §5 pass's groups are bounded by the state dimension times
        // the unfolding depth. Oversized groups appear only once
        // saturation-created hubs pile extra constants onto a merged base
        // class; synthesizing a shared plan for them is superlinearly
        // expensive and derives nothing the per-group plans and the
        // collect-linear bridge haven't already.
        if consts.len() > MAX_GROUP_CONSTS {
            continue;
        }
        let plan = plans
            .entry((recoding, consts.clone()))
            .or_insert_with(|| synthesize(&consts, recoding))
            .clone();
        let mut em = CsdEmitter::new(plan);
        for (q, class) in muls {
            let Ok(idx) = consts.binary_search(&q) else {
                continue;
            };
            if let Some(out) = em.output_node(eg, base, idx, frac_bits) {
                merged |= eg.union(class, out);
            }
        }
    }
    merged || eg.len() > before
}

/// E-graph twin of the MCM pass's `GroupEmitter`: lazily materialized plan
/// expressions with an in-progress guard instead of a panic on reference
/// cycles.
struct CsdEmitter {
    plan: McmSolution,
    expr_nodes: Vec<Option<Id>>,
    in_progress: Vec<bool>,
}

impl CsdEmitter {
    fn new(plan: McmSolution) -> CsdEmitter {
        CsdEmitter {
            expr_nodes: vec![None; plan.exprs.len()],
            in_progress: vec![false; plan.exprs.len()],
            plan,
        }
    }

    /// Emits `q·base` for the plan's `idx`-th output, folding the plan
    /// shift and the binary-point restore into one `Shift(t.shift − w)` —
    /// the same combined form `GroupEmitter::output_node` produces.
    fn output_node(&mut self, eg: &mut EGraph, base: Id, idx: usize, frac_bits: u32) -> Option<Id> {
        let (_, output) = *self.plan.outputs.get(idx)?;
        match output {
            OutputRef::Zero => Some(eg.add(ENode::Const(0.0f64.to_bits()))),
            OutputRef::Scaled(t) => {
                let src = match t.source {
                    Source::Input => base,
                    Source::Expr(i) => self.expr_node(eg, base, i)?,
                };
                let total_shift = t.shift as i32 - frac_bits as i32;
                let shifted = if total_shift != 0 {
                    eg.add(ENode::Shift(total_shift, src))
                } else {
                    src
                };
                Some(if t.neg {
                    eg.add(ENode::Neg(shifted))
                } else {
                    shifted
                })
            }
        }
    }

    fn term_node(&mut self, eg: &mut EGraph, base: Id, t: &Term) -> Option<(Id, bool)> {
        let src = match t.source {
            Source::Input => base,
            Source::Expr(i) => self.expr_node(eg, base, i)?,
        };
        let shifted = if t.shift != 0 {
            eg.add(ENode::Shift(t.shift as i32, src))
        } else {
            src
        };
        Some((shifted, t.neg))
    }

    fn expr_node(&mut self, eg: &mut EGraph, base: Id, idx: usize) -> Option<Id> {
        if let Some(n) = self.expr_nodes[idx] {
            return Some(n);
        }
        if self.in_progress[idx] {
            return None;
        }
        self.in_progress[idx] = true;
        let terms = self.plan.exprs[idx].terms.clone();
        let mut acc: Option<(Id, bool)> = None;
        for t in &terms {
            let (node, neg) = self.term_node(eg, base, t)?;
            acc = Some(match acc {
                None => (node, neg),
                Some((prev, prev_neg)) => match (prev_neg, neg) {
                    (false, false) => (eg.add(ENode::Add(prev, node)), false),
                    (false, true) => (eg.add(ENode::Sub(prev, node)), false),
                    (true, false) => (eg.add(ENode::Sub(node, prev)), false),
                    (true, true) => (eg.add(ENode::Add(prev, node)), true),
                },
            });
        }
        let (node, neg) = match acc {
            Some(v) => v,
            None => (eg.add(ENode::Const(0.0f64.to_bits())), false),
        };
        let node = if neg { eg.add(ENode::Neg(node)) } else { node };
        self.in_progress[idx] = false;
        self.expr_nodes[idx] = Some(node);
        Some(node)
    }
}

/// An ordered collection of rules applied together during saturation.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// The bit-exact tier: safe for the property harness's bit-identical
    /// simulation check.
    pub fn exact() -> RuleSet {
        RuleSet {
            rules: vec![
                Rule::AddCommute,
                Rule::SubToAddNeg,
                Rule::NegNeg,
                Rule::MulOne,
                Rule::MulPow2,
                Rule::ShiftFuse,
                Rule::AddZero,
            ],
        }
    }

    /// Exact tier plus the value-reassociating rules.
    pub fn extended() -> RuleSet {
        let mut set = RuleSet::exact();
        set.rules.extend([
            Rule::AddAssoc,
            Rule::MulDistribute,
            Rule::MulFuse,
            Rule::CollectLinear,
        ]);
        set
    }

    /// The ASIC search tier: exact rules plus the quantizing CSD
    /// decomposition with the §5 script's fixed-point parameters, the
    /// shared-MCM synthesis, and the shift-add collection bridge that
    /// collapses every chain — per-constant or shared, whatever its
    /// association — onto the same exact-dyadic `MulConst` hub. Together
    /// they make the script's cross-constant networks *derived* rather
    /// than merely injectable.
    pub fn asic(frac_bits: u32, recoding: Recoding) -> RuleSet {
        let mut set = RuleSet::exact();
        set.rules.extend([
            Rule::CsdDecompose {
                frac_bits,
                recoding,
            },
            Rule::McmShare {
                frac_bits,
                recoding,
            },
            Rule::CollectLinear,
        ]);
        set
    }

    /// A single rule in isolation (rule unit tests).
    pub fn single(rule: Rule) -> RuleSet {
        RuleSet { rules: vec![rule] }
    }

    /// The rules, in application order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Rule names, in application order.
    pub fn names(&self) -> Vec<&'static str> {
        self.rules.iter().map(Rule::name).collect()
    }

    /// `true` when every rule in the set is bit-exact.
    pub fn bit_exact(&self) -> bool {
        self.rules.iter().all(Rule::bit_exact)
    }

    /// Per-ordinal rule-index masks: `masks[k]` has bit `i` set when rule
    /// `i` can fire on an e-node whose [`ENode::kind_ordinal`] is `k`.
    /// The saturation engine builds its candidate list through this index
    /// so leaf nodes (inputs, states, constants, delays) are never even
    /// enqueued and each pair only dispatches to rules that can match it.
    pub(crate) fn node_masks(&self) -> [u32; KIND_COUNT] {
        let mut masks = [0u32; KIND_COUNT];
        for (i, rule) in self.rules.iter().enumerate() {
            let km = rule.kind_mask();
            for (ord, slot) in masks.iter_mut().enumerate() {
                if km & (1 << ord) != 0 {
                    *slot |= 1 << i;
                }
            }
        }
        masks
    }

    /// Applies every rule to one pair (the reference engine's path).
    pub(crate) fn apply(
        &self,
        eg: &mut EGraph,
        class: Id,
        node: &ENode,
        scratch: &mut RuleScratch,
    ) -> bool {
        let mut changed = false;
        for rule in &self.rules {
            changed |= rule.apply(eg, class, node, scratch);
        }
        changed
    }

    /// Applies exactly the rules selected by `mask` (bit `i` = rule `i`),
    /// in rule-set order, and returns the mask of rules that changed the
    /// e-graph — the per-rule firing record the backoff scheduler tallies.
    pub(crate) fn apply_masked(
        &self,
        eg: &mut EGraph,
        class: Id,
        node: &ENode,
        mask: u32,
        scratch: &mut RuleScratch,
    ) -> u32 {
        let mut fired = 0u32;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.rules[i].apply(eg, class, node, scratch) {
                fired |= 1 << i;
            }
        }
        fired
    }

    /// Whole-graph rules, run once per saturation sweep (after the
    /// per-node pass). [`Rule::CollectLinear`] lives here because its
    /// bottom-up analysis shares one memo across the whole e-graph;
    /// [`Rule::McmShare`] because MCM grouping is inherently a property
    /// of the whole graph, not of one e-node. `plans` memoizes shared-MCM
    /// syntheses by constant set across the sweeps of one saturation run
    /// (unfolded designs repeat the same constant groups every sample).
    pub(crate) fn sweep(&self, eg: &mut EGraph, plans: &mut McmPlanMemo) -> bool {
        let mut changed = false;
        for rule in &self.rules {
            match rule {
                Rule::CollectLinear => changed |= collect_linear_sweep(eg),
                Rule::McmShare {
                    frac_bits,
                    recoding,
                } => changed |= mcm_share_sweep(eg, *frac_bits, *recoding, plans),
                _ => {}
            }
        }
        changed
    }
}

/// Memoized shared-MCM plans, keyed by the recoding and the sorted,
/// deduplicated quantized constant set — the full input to [`synthesize`].
pub(crate) type McmPlanMemo = HashMap<(Recoding, Vec<i64>), McmSolution>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SaturationBudget;

    fn leaf(eg: &mut EGraph) -> Id {
        eg.add(ENode::Input {
            sample: 0,
            channel: 0,
        })
    }

    fn saturate_single(eg: &mut EGraph, rule: Rule) {
        let stats = eg.saturate(&RuleSet::single(rule), &SaturationBudget::default());
        assert!(stats.saturated(), "{}: {stats}", rule.name());
    }

    #[test]
    fn add_commute_merges_both_orders() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let y = eg.add(ENode::StateIn { index: 0 });
        let ab = eg.add(ENode::Add(x, y));
        let ba = eg.add(ENode::Add(y, x));
        assert_ne!(eg.find(ab), eg.find(ba));
        saturate_single(&mut eg, Rule::AddCommute);
        assert_eq!(eg.find(ab), eg.find(ba));
    }

    #[test]
    fn sub_becomes_add_of_negation_and_back() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let y = eg.add(ENode::StateIn { index: 0 });
        let sub = eg.add(ENode::Sub(x, y));
        let ny = eg.add(ENode::Neg(y));
        let add = eg.add(ENode::Add(x, ny));
        saturate_single(&mut eg, Rule::SubToAddNeg);
        assert_eq!(eg.find(sub), eg.find(add));
    }

    #[test]
    fn double_negation_cancels() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let n = eg.add(ENode::Neg(x));
        let nn = eg.add(ENode::Neg(n));
        saturate_single(&mut eg, Rule::NegNeg);
        assert_eq!(eg.find(nn), eg.find(x));
    }

    #[test]
    fn unit_multipliers_fold() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let one = eg.add(ENode::MulConst(1.0f64.to_bits(), x));
        let neg_one = eg.add(ENode::MulConst((-1.0f64).to_bits(), x));
        let nx = eg.add(ENode::Neg(x));
        saturate_single(&mut eg, Rule::MulOne);
        assert_eq!(eg.find(one), eg.find(x));
        assert_eq!(eg.find(neg_one), eg.find(nx));
    }

    #[test]
    fn power_of_two_multiplier_is_a_shift_both_ways() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let m = eg.add(ENode::MulConst(0.25f64.to_bits(), x));
        let s = eg.add(ENode::Shift(-2, x));
        saturate_single(&mut eg, Rule::MulPow2);
        assert_eq!(eg.find(m), eg.find(s));

        // Negative power of two folds through a negation.
        let m8 = eg.add(ENode::MulConst((-8.0f64).to_bits(), x));
        let s3 = eg.add(ENode::Shift(3, x));
        let ns3 = eg.add(ENode::Neg(s3));
        saturate_single(&mut eg, Rule::MulPow2);
        assert_eq!(eg.find(m8), eg.find(ns3));
    }

    #[test]
    fn non_power_of_two_is_not_a_shift() {
        assert_eq!(pow2_exponent(3.0), None);
        assert_eq!(pow2_exponent(0.75), None);
        assert_eq!(pow2_exponent(0.0), None);
        assert_eq!(pow2_exponent(f64::INFINITY), None);
        assert_eq!(pow2_exponent(4.0), Some(2));
        assert_eq!(pow2_exponent(0.5), Some(-1));
        assert_eq!(pow2_exponent(1.0), Some(0));
    }

    #[test]
    fn shifts_fuse_and_zero_shift_vanishes() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let s2 = eg.add(ENode::Shift(2, x));
        let s2_3 = eg.add(ENode::Shift(3, s2));
        let s5 = eg.add(ENode::Shift(5, x));
        let s0 = eg.add(ENode::Shift(0, x));
        saturate_single(&mut eg, Rule::ShiftFuse);
        assert_eq!(eg.find(s2_3), eg.find(s5));
        assert_eq!(eg.find(s0), eg.find(x));
    }

    #[test]
    fn shift_fuse_overflow_is_skipped_not_panicking() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let a = eg.add(ENode::Shift(i32::MAX, x));
        let b = eg.add(ENode::Shift(1, a));
        saturate_single(&mut eg, Rule::ShiftFuse);
        // No fused node appeared; b is still its own class.
        assert_ne!(eg.find(b), eg.find(a));
    }

    #[test]
    fn adding_zero_is_identity() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let z = eg.add(ENode::Const(0.0f64.to_bits()));
        let xz = eg.add(ENode::Add(x, z));
        let zx = eg.add(ENode::Add(z, x));
        saturate_single(&mut eg, Rule::AddZero);
        assert_eq!(eg.find(xz), eg.find(x));
        assert_eq!(eg.find(zx), eg.find(x));
    }

    #[test]
    fn association_merges_both_trees() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let y = eg.add(ENode::StateIn { index: 0 });
        let z = eg.add(ENode::StateIn { index: 1 });
        let xy = eg.add(ENode::Add(x, y));
        let left = eg.add(ENode::Add(xy, z));
        let yz = eg.add(ENode::Add(y, z));
        let right = eg.add(ENode::Add(x, yz));
        saturate_single(&mut eg, Rule::AddAssoc);
        assert_eq!(eg.find(left), eg.find(right));
    }

    #[test]
    fn distribution_merges_product_of_sum() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let y = eg.add(ENode::StateIn { index: 0 });
        let c = 3.0f64.to_bits();
        let sum = eg.add(ENode::Add(x, y));
        let lhs = eg.add(ENode::MulConst(c, sum));
        let cx = eg.add(ENode::MulConst(c, x));
        let cy = eg.add(ENode::MulConst(c, y));
        let rhs = eg.add(ENode::Add(cx, cy));
        saturate_single(&mut eg, Rule::MulDistribute);
        assert_eq!(eg.find(lhs), eg.find(rhs));
    }

    #[test]
    fn nested_multipliers_fuse() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let inner = eg.add(ENode::MulConst(3.0f64.to_bits(), x));
        let outer = eg.add(ENode::MulConst(5.0f64.to_bits(), inner));
        let fused = eg.add(ENode::MulConst(15.0f64.to_bits(), x));
        saturate_single(&mut eg, Rule::MulFuse);
        assert_eq!(eg.find(outer), eg.find(fused));
    }

    #[test]
    fn csd_decomposition_matches_the_quantized_value() {
        // 0.59375 = 19/32 is exactly representable at 5+ fractional bits,
        // so the decomposed network computes the same value.
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let m = eg.add(ENode::MulConst(0.59375f64.to_bits(), x));
        let rule = Rule::CsdDecompose {
            frac_bits: 8,
            recoding: Recoding::Csd,
        };
        let before = eg.class_nodes(m).len();
        saturate_single(&mut eg, rule);
        assert!(
            eg.class_nodes(m).len() > before,
            "decomposition should add a representative to the multiplier's class"
        );
    }

    #[test]
    fn csd_skips_powers_of_two() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let m = eg.add(ENode::MulConst(0.5f64.to_bits(), x));
        let rule = Rule::CsdDecompose {
            frac_bits: 8,
            recoding: Recoding::Csd,
        };
        let n = eg.len();
        saturate_single(&mut eg, rule);
        assert_eq!(eg.len(), n, "±2^k is MulPow2's job");
        assert_eq!(eg.class_nodes(m).len(), 1);
    }

    #[test]
    fn csd_quantizing_to_zero_folds_to_constant_zero() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let m = eg.add(ENode::MulConst(0.0001f64.to_bits(), x));
        let z = eg.add(ENode::Const(0.0f64.to_bits()));
        let rule = Rule::CsdDecompose {
            frac_bits: 4,
            recoding: Recoding::Csd,
        };
        saturate_single(&mut eg, rule);
        assert_eq!(eg.find(m), eg.find(z));
    }

    #[test]
    fn structurally_different_chains_collapse_onto_one_multiplier_hub() {
        // 5x three ways: (x ≪ 2) + x, (x ≪ 3) − ((x ≪ 1) + x), and the
        // multiplier itself. Linear collection must place all three in
        // one e-class without any explicit union.
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let s2 = eg.add(ENode::Shift(2, x));
        let chain_a = eg.add(ENode::Add(s2, x));
        let s3 = eg.add(ENode::Shift(3, x));
        let s1 = eg.add(ENode::Shift(1, x));
        let three = eg.add(ENode::Add(s1, x));
        let chain_b = eg.add(ENode::Sub(s3, three));
        let hub = eg.add(ENode::MulConst(5.0f64.to_bits(), x));
        assert_ne!(eg.find(chain_a), eg.find(chain_b));
        saturate_single(&mut eg, Rule::CollectLinear);
        assert_eq!(eg.find(chain_a), eg.find(hub));
        assert_eq!(eg.find(chain_b), eg.find(hub));
    }

    #[test]
    fn collection_descends_through_negation_and_nested_chains() {
        // −(((x ≪ 1) + x) ≪ 1) = −6·x: the descent crosses e-class
        // boundaries through the pure shift-add fragment.
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let s1 = eg.add(ENode::Shift(1, x));
        let three = eg.add(ENode::Add(s1, x));
        let doubled = eg.add(ENode::Shift(1, three));
        let n = eg.add(ENode::Neg(doubled));
        let hub = eg.add(ENode::MulConst((-6.0f64).to_bits(), x));
        saturate_single(&mut eg, Rule::CollectLinear);
        assert_eq!(eg.find(n), eg.find(hub));
    }

    #[test]
    fn collection_treats_multipliers_as_opaque_bases() {
        // 2·(0.1·x) must hub as MulConst(2, m), NOT MulConst(0.2, x):
        // folding a multiplier's full-mantissa constant into the
        // accumulation would make the hub constant depend on rounding
        // order, and structurally different chains would stop colliding.
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let m = eg.add(ENode::MulConst(0.1f64.to_bits(), x));
        let s = eg.add(ENode::Shift(1, m));
        saturate_single(&mut eg, Rule::CollectLinear);
        let hub = eg.add(ENode::MulConst(2.0f64.to_bits(), m));
        let folded = eg.add(ENode::MulConst(0.2f64.to_bits(), x));
        eg.rebuild();
        assert_eq!(eg.find(s), eg.find(hub));
        assert_ne!(eg.find(s), eg.find(folded));
    }

    #[test]
    fn mixed_base_sums_are_not_collected() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let y = eg.add(ENode::StateIn { index: 0 });
        let sx = eg.add(ENode::Shift(1, x));
        let sum = eg.add(ENode::Add(sx, y));
        saturate_single(&mut eg, Rule::CollectLinear);
        // The shift itself collects to 2·x, but the mixed-base sum must
        // stay its own class with no multiplier hub.
        assert!(eg
            .class_nodes(sum)
            .iter()
            .all(|n| !matches!(n, ENode::MulConst(..))));
    }

    #[test]
    fn mcm_share_derives_the_pass_network_without_any_union() {
        // Two multipliers over one base: run the real MCM pass on the
        // DFG, then re-derive its network inside the e-graph with one
        // mcm-share sweep. Adding the rewritten graph afterwards must
        // land every root in an already-grown class purely by
        // hashconsing — no explicit union.
        use lintra_dfg::{Dfg, NodeKind};
        use lintra_transform::mcm_pass::{expand_multiplications, McmPassConfig};

        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let m1 = g.push(NodeKind::MulConst(185.0 / 256.0), vec![x]).unwrap();
        let m2 = g.push(NodeKind::MulConst(235.0 / 256.0), vec![x]).unwrap();
        let a = g.push(NodeKind::Add, vec![m1, m2]).unwrap();
        g.push(
            NodeKind::Output {
                sample: 0,
                channel: 0,
            },
            vec![a],
        )
        .unwrap();

        let (shifted, _) = expand_multiplications(
            &g,
            McmPassConfig {
                frac_bits: 8,
                recoding: Recoding::Csd,
            },
        )
        .unwrap();

        let (mut eg, roots) = EGraph::from_dfg(&g).unwrap();
        saturate_single(
            &mut eg,
            Rule::McmShare {
                frac_bits: 8,
                recoding: Recoding::Csd,
            },
        );
        let script_roots = eg.add_dfg(&shifted).unwrap();
        for ((k1, a), (k2, b)) in roots.outputs.iter().zip(&script_roots.outputs) {
            assert_eq!(k1, k2);
            assert_eq!(eg.find(*a), eg.find(*b), "output {k1:?} not derived");
        }
    }

    #[test]
    fn mcm_share_quantizing_to_zero_folds_to_constant_zero() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg);
        let m = eg.add(ENode::MulConst(0.0001f64.to_bits(), x));
        let z = eg.add(ENode::Const(0.0f64.to_bits()));
        saturate_single(
            &mut eg,
            Rule::McmShare {
                frac_bits: 4,
                recoding: Recoding::Csd,
            },
        );
        assert_eq!(eg.find(m), eg.find(z));
    }

    #[test]
    fn tiers_are_labeled_correctly() {
        assert!(RuleSet::exact().bit_exact());
        assert!(!RuleSet::extended().bit_exact());
        assert!(!RuleSet::asic(12, Recoding::Csd).bit_exact());
        assert_eq!(RuleSet::single(Rule::AddCommute).names(), ["add-commute"]);
        assert_eq!(RuleSet::exact().rules().len(), 7);
        assert!(RuleSet::extended().rules().contains(&Rule::CollectLinear));
        assert!(RuleSet::asic(12, Recoding::Csd)
            .rules()
            .contains(&Rule::McmShare {
                frac_bits: 12,
                recoding: Recoding::Csd,
            }));
        assert!(RuleSet::asic(12, Recoding::Csd)
            .rules()
            .contains(&Rule::CollectLinear));
        assert!(!Rule::CollectLinear.bit_exact());
        assert!(!Rule::McmShare {
            frac_bits: 12,
            recoding: Recoding::Csd,
        }
        .bit_exact());
    }
}

//! Equality-saturation search over the `lintra-dfg` node language.
//!
//! The §5 ASIC flow applies one fixed transformation script (unfold →
//! generalized Horner → MCM). This crate replaces the *choice* of
//! realization with a search: an e-graph holds every discovered
//! realization of the same computation at once, rewrite rules grow it to
//! a bounded fixpoint, and a cost model picks the cheapest representative
//! ([Coward et al.]'s datapath-rewriting recipe over this repository's IR).
//!
//! * [`EGraph`] — hashconsed e-nodes ([`ENode`], the DFG node language
//!   with e-class children and bit-stable constants), a union-find over
//!   e-classes, and the congruence-closure [`EGraph::rebuild`].
//! * [`Rule`] / [`RuleSet`] — the rewrite library in two tiers.
//!   [`RuleSet::exact`] rules preserve every `f64` bit (commutativity,
//!   `a−b ↔ a+(−b)`, `−(−x) → x`, `±1`-multiplier folding, power-of-two
//!   multiplier ↔ shift, shift fusion, `x+0 → x`); the extended /
//!   quantizing tiers add value-reassociating rules (associativity,
//!   distributivity, multiplier fusion), the CSD shift-add
//!   decomposition that reuses `lintra-mcm`'s recoding and carries the
//!   same `round(c·2^w)/2^w` semantics as the §5 MCM pass,
//!   [`Rule::McmShare`], which replays the §5 shared-MCM synthesis over
//!   base-class multiplier groups so cross-constant sharing is in the
//!   searched space, and [`Rule::CollectLinear`], which collapses every
//!   shift-add network over a single base onto its canonical multiplier
//!   hub (coefficients tracked in exact dyadic-rational arithmetic) so
//!   independently grown chains (per-constant CSD, cross-constant shared
//!   MCM under any grouping) become provably equal. Whole-graph Horner
//!   restructuring still enters through [`EGraph::add_dfg`] +
//!   [`EGraph::union_roots`].
//! * [`SaturationBudget`] — node/iteration bounds. Saturation never
//!   panics and never hangs: hitting a budget stops the search and leaves
//!   a valid e-graph behind ([`SaturationStats::stop`] says why), so
//!   extraction always returns the best representation found so far.
//! * [`extract`](EGraph::extract) — minimum-cost extraction under any
//!   [`lintra_dfg::CostModel`]; [`EGraph::extract_seeded`] samples
//!   alternative representatives deterministically for the property
//!   harness.
//!
//! # Example
//!
//! ```
//! use lintra_dfg::{Dfg, NodeKind, OpCountCost};
//! use lintra_egraph::{EGraph, RuleSet, SaturationBudget};
//!
//! # fn main() -> Result<(), lintra_egraph::EgraphError> {
//! // y = (x * 1.0) - x  — saturation discovers y = x + (−x) and folds
//! // the unit multiplier away.
//! let mut g = Dfg::new();
//! let x = g.push(NodeKind::Input { sample: 0, channel: 0 }, vec![])?;
//! let m = g.push(NodeKind::MulConst(1.0), vec![x])?;
//! let s = g.push(NodeKind::Sub, vec![m, x])?;
//! g.push(NodeKind::Output { sample: 0, channel: 0 }, vec![s])?;
//!
//! let (mut eg, roots) = EGraph::from_dfg(&g)?;
//! let stats = eg.saturate(&RuleSet::exact(), &SaturationBudget::default());
//! assert!(stats.saturated());
//! let best = eg.extract(&roots, &OpCountCost)?;
//! assert!(best.cost < 2.0); // the unit multiplier is gone
//! # Ok(())
//! # }
//! ```

mod graph;
mod rules;

pub use graph::{EGraph, ENode, EgraphError, Extraction, GraphRoots, Id};
pub use rules::{Rule, RuleSet};

use std::fmt;

/// Bounds on the saturation search. Budgets are a diagnostic surface, not
/// an error surface: exhausting one stops the search gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationBudget {
    /// Cap on e-nodes ever created (hashconsing counts each shape once).
    pub max_enodes: usize,
    /// Cap on rule-application sweeps over the e-graph.
    pub max_iterations: usize,
}

impl Default for SaturationBudget {
    fn default() -> Self {
        SaturationBudget {
            max_enodes: 100_000,
            max_iterations: 8,
        }
    }
}

/// Why saturation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A full sweep applied no new rewrite — the e-graph is saturated.
    Saturated,
    /// The iteration budget ran out before a fixpoint.
    IterationBudget,
    /// The e-node budget ran out mid-sweep.
    NodeBudget,
}

/// Outcome of one [`EGraph::saturate`] run.
///
/// The `*_s` fields break the wall-clock down by engine phase: `match_s`
/// is candidate-list assembly (worklist + kind index), `apply_s` is rule
/// application including the whole-graph sweeps, `rebuild_s` is
/// congruence restoration. They are observability, not results —
/// equality deliberately ignores them so differential tests can compare
/// two runs' *outcomes* without the clock getting a vote.
#[derive(Debug, Clone, Copy)]
pub struct SaturationStats {
    /// Sweeps performed (including the final no-change sweep).
    pub iterations: usize,
    /// E-nodes ever created.
    pub enodes: usize,
    /// Live e-classes after the final rebuild.
    pub classes: usize,
    /// Why the loop ended.
    pub stop: StopReason,
    /// Seconds spent assembling candidate lists (match phase).
    pub match_s: f64,
    /// Seconds spent applying rules, including whole-graph sweeps.
    pub apply_s: f64,
    /// Seconds spent restoring congruence after unions.
    pub rebuild_s: f64,
}

impl SaturationStats {
    /// `true` when the rule set reached its fixpoint within budget.
    pub fn saturated(&self) -> bool {
        self.stop == StopReason::Saturated
    }

    /// Total engine time across all phases, in seconds.
    pub fn total_s(&self) -> f64 {
        self.match_s + self.apply_s + self.rebuild_s
    }
}

impl PartialEq for SaturationStats {
    fn eq(&self, other: &Self) -> bool {
        // Timings excluded: two runs with identical outcomes are equal.
        self.iterations == other.iterations
            && self.enodes == other.enodes
            && self.classes == other.classes
            && self.stop == other.stop
    }
}

impl Eq for SaturationStats {}

impl fmt::Display for SaturationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stop = match self.stop {
            StopReason::Saturated => "saturated",
            StopReason::IterationBudget => "iteration budget exhausted",
            StopReason::NodeBudget => "e-node budget exhausted",
        };
        // Timings are deliberately absent: Display feeds deterministic
        // surfaces (diagnostics, logs compared across runs). The phase
        // breakdown travels through the fields and the bench report.
        write!(
            f,
            "{} iterations, {} e-nodes, {} e-classes ({stop})",
            self.iterations, self.enodes, self.classes
        )
    }
}

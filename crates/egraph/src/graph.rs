//! The e-graph itself: hashconsing, union-find, congruence closure,
//! bounded saturation and cost-based extraction.

use crate::rules::{McmPlanMemo, RuleScratch};
use crate::{RuleSet, SaturationBudget, SaturationStats, StopReason};
use lintra_dfg::{CostModel, Dfg, DfgError, NodeId, NodeKind, OpCountCost};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::time::Instant;

/// Number of distinct [`ENode`] operator kinds ([`ENode::kind_ordinal`]
/// is always below this) — the width of the engine's kind→rule index.
pub(crate) const KIND_COUNT: usize = 9;

/// An e-class reference. Ids are not stable across unions — resolve
/// through [`EGraph::find`] before comparing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub(crate) u32);

impl Id {
    /// The raw index (for diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The DFG node language with e-class children. Constants are stored as
/// `f64` bit patterns so hashing and equality are exact (`-0.0` and `0.0`
/// are distinct shapes, as are distinct NaN payloads — though validated
/// DFGs never contain non-finite constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ENode {
    /// Primary input (sample offset within the batch, channel).
    Input {
        /// Sample offset within the processed batch.
        sample: usize,
        /// Input channel.
        channel: usize,
    },
    /// Previous-iteration state variable.
    StateIn {
        /// State index.
        index: usize,
    },
    /// Literal constant (`f64::to_bits`).
    Const(u64),
    /// Two-operand addition.
    Add(Id, Id),
    /// Two-operand subtraction (`first − second`).
    Sub(Id, Id),
    /// Multiplication by a constant (`f64::to_bits`).
    MulConst(u64, Id),
    /// Multiplication by `2^amount`.
    Shift(i32, Id),
    /// Arithmetic negation.
    Neg(Id),
    /// A register; value passes through.
    Delay(Id),
}

impl ENode {
    /// Child e-classes, in operand order.
    pub(crate) fn children(&self) -> [Option<Id>; 2] {
        match *self {
            ENode::Input { .. } | ENode::StateIn { .. } | ENode::Const(_) => [None, None],
            ENode::Add(a, b) | ENode::Sub(a, b) => [Some(a), Some(b)],
            ENode::MulConst(_, a) | ENode::Shift(_, a) | ENode::Neg(a) | ENode::Delay(a) => {
                [Some(a), None]
            }
        }
    }

    /// The same shape with every child mapped.
    pub(crate) fn map_children(self, f: &mut impl FnMut(Id) -> Id) -> ENode {
        match self {
            ENode::Input { .. } | ENode::StateIn { .. } | ENode::Const(_) => self,
            ENode::Add(a, b) => ENode::Add(f(a), f(b)),
            ENode::Sub(a, b) => ENode::Sub(f(a), f(b)),
            ENode::MulConst(c, a) => ENode::MulConst(c, f(a)),
            ENode::Shift(s, a) => ENode::Shift(s, f(a)),
            ENode::Neg(a) => ENode::Neg(f(a)),
            ENode::Delay(a) => ENode::Delay(f(a)),
        }
    }

    /// Dense ordinal of the node's operator kind — the index into the
    /// saturation engine's kind→rule masks (see [`KIND_COUNT`]).
    pub(crate) fn kind_ordinal(&self) -> usize {
        match self {
            ENode::Input { .. } => 0,
            ENode::StateIn { .. } => 1,
            ENode::Const(_) => 2,
            ENode::Add(..) => 3,
            ENode::Sub(..) => 4,
            ENode::MulConst(..) => 5,
            ENode::Shift(..) => 6,
            ENode::Neg(_) => 7,
            ENode::Delay(_) => 8,
        }
    }

    /// The [`NodeKind`] this e-node extracts to — the bridge to
    /// [`CostModel::node_cost`].
    pub fn to_kind(&self) -> NodeKind {
        match *self {
            ENode::Input { sample, channel } => NodeKind::Input { sample, channel },
            ENode::StateIn { index } => NodeKind::StateIn { index },
            ENode::Const(bits) => NodeKind::Const(f64::from_bits(bits)),
            ENode::Add(..) => NodeKind::Add,
            ENode::Sub(..) => NodeKind::Sub,
            ENode::MulConst(bits, _) => NodeKind::MulConst(f64::from_bits(bits)),
            ENode::Shift(s, _) => NodeKind::Shift(s),
            ENode::Neg(_) => NodeKind::Neg,
            ENode::Delay(_) => NodeKind::Delay,
        }
    }
}

/// Where a DFG's sinks landed in the e-graph: one e-class per output
/// (keyed by `(sample, channel)`) and per next-state variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphRoots {
    /// Output roots, in the source graph's node order.
    pub outputs: Vec<((usize, usize), Id)>,
    /// Next-state roots, in the source graph's node order.
    pub states: Vec<(usize, Id)>,
}

/// Error from e-graph construction or extraction. Saturation itself never
/// errors — budget exhaustion is reported through [`SaturationStats`]; the
/// [`EgraphError::Budget`] variant exists for callers that *require* a
/// saturated result (strict mode).
#[derive(Debug, Clone, PartialEq)]
pub enum EgraphError {
    /// The input DFG failed validation.
    Graph(DfgError),
    /// The input DFG uses a sink node (output/state) as a predecessor.
    UnsupportedGraph {
        /// What was wrong.
        detail: String,
    },
    /// Two graphs asked to be united compute different interfaces
    /// (mismatched output keys or state indices).
    InterfaceMismatch {
        /// What differed.
        detail: String,
    },
    /// A required e-class has no representative grounded in leaves (only
    /// possible on hand-built e-graphs, never on one loaded from a DFG).
    Unextractable {
        /// The offending e-class.
        class: u32,
    },
    /// Saturation stopped on a budget and the caller demanded a fixpoint.
    Budget {
        /// Sweeps performed.
        iterations: usize,
        /// E-nodes created.
        enodes: usize,
    },
}

impl fmt::Display for EgraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EgraphError::Graph(e) => write!(f, "invalid dataflow graph: {e}"),
            EgraphError::UnsupportedGraph { detail } => {
                write!(f, "unsupported dataflow graph: {detail}")
            }
            EgraphError::InterfaceMismatch { detail } => {
                write!(f, "graphs compute different interfaces: {detail}")
            }
            EgraphError::Unextractable { class } => {
                write!(f, "e-class {class} has no extractable representative")
            }
            EgraphError::Budget { iterations, enodes } => {
                write!(
                    f,
                    "equality saturation exhausted its budget after {iterations} iterations \
                     and {enodes} e-nodes without reaching a fixpoint"
                )
            }
        }
    }
}

impl std::error::Error for EgraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EgraphError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for EgraphError {
    fn from(e: DfgError) -> Self {
        EgraphError::Graph(e)
    }
}

/// One extracted realization.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// The extracted graph (validated, simulable).
    pub dfg: Dfg,
    /// Its cost under the extraction's model (true DAG cost — shared
    /// subexpressions counted once).
    pub cost: f64,
}

#[derive(Debug, Clone, Default)]
struct EClass {
    nodes: Vec<ENode>,
    /// E-nodes that reference this class, with the class they live in.
    parents: Vec<(ENode, u32)>,
}

/// A hashconsed e-graph over [`ENode`] with congruence closure.
#[derive(Debug, Clone, Default)]
pub struct EGraph {
    /// Union-find parent pointers; `uf[i] == i` marks a canonical class.
    /// `Cell` so lookups can path-halve behind `&self` — without the
    /// compression, merge cascades leave chains that turn every `find`
    /// into a long walk and large saturations quadratic.
    uf: Vec<std::cell::Cell<u32>>,
    /// Class contents, indexed by canonical id (`None` once merged away).
    classes: Vec<Option<EClass>>,
    /// Canonical e-node → class.
    memo: HashMap<ENode, u32>,
    /// Classes whose contents need re-canonicalization after unions.
    dirty: Vec<u32>,
    /// Parent entries whose keys went stale because a child class merged
    /// away: `(e-node as registered, its class, the surviving child
    /// root)`. Only these need congruence repair — the surviving root's
    /// own parents still canonicalize to themselves, and re-walking them
    /// on every union is what makes merge cascades quadratic.
    pending: Vec<(ENode, u32, u32)>,
}

impl EGraph {
    /// An empty e-graph.
    pub fn new() -> EGraph {
        EGraph::default()
    }

    fn find_u(&self, mut x: u32) -> u32 {
        loop {
            let p = self.uf[x as usize].get();
            if p == x {
                return x;
            }
            // Path halving: point x at its grandparent and step there.
            let gp = self.uf[p as usize].get();
            self.uf[x as usize].set(gp);
            x = gp;
        }
    }

    /// Canonical representative of an e-class.
    pub fn find(&self, id: Id) -> Id {
        Id(self.find_u(id.0))
    }

    fn canon(&self, n: ENode) -> ENode {
        n.map_children(&mut |c| Id(self.find_u(c.0)))
    }

    /// Total e-nodes ever created (the node-budget counter: hashconsing
    /// makes each shape count once).
    pub fn len(&self) -> usize {
        self.uf.len()
    }

    /// `true` before anything was added.
    pub fn is_empty(&self) -> bool {
        self.uf.is_empty()
    }

    /// Live (canonical) e-classes.
    pub fn class_count(&self) -> usize {
        self.classes.iter().filter(|c| c.is_some()).count()
    }

    /// Canonical ids of all live classes, in id order (snapshot).
    pub(crate) fn class_ids(&self) -> Vec<Id> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| Id(i as u32)))
            .collect()
    }

    /// The e-nodes of a class (canonical id assumed; resolves internally).
    pub(crate) fn class_nodes(&self, id: Id) -> &[ENode] {
        match &self.classes[self.find_u(id.0) as usize] {
            Some(c) => &c.nodes,
            None => &[],
        }
    }

    /// Adds an e-node (hashconsed) and returns its class.
    pub fn add(&mut self, node: ENode) -> Id {
        let node = self.canon(node);
        if let Some(&c) = self.memo.get(&node) {
            return Id(self.find_u(c));
        }
        let id = self.uf.len() as u32;
        self.uf.push(std::cell::Cell::new(id));
        self.classes.push(Some(EClass {
            nodes: vec![node],
            parents: Vec::new(),
        }));
        for child in node.children().into_iter().flatten() {
            if let Some(c) = &mut self.classes[child.0 as usize] {
                c.parents.push((node, id));
            }
        }
        self.memo.insert(node, id);
        Id(id)
    }

    /// Merges two e-classes; returns `true` if they were distinct. Call
    /// [`rebuild`](EGraph::rebuild) before relying on congruence again.
    pub fn union(&mut self, a: Id, b: Id) -> bool {
        let a = self.find_u(a.0);
        let b = self.find_u(b.0);
        if a == b {
            return false;
        }
        // The smaller id stays canonical — deterministic across runs.
        let (root, dead) = if a < b { (a, b) } else { (b, a) };
        self.uf[dead as usize].set(root);
        let taken = self.classes[dead as usize].take().unwrap_or_default();
        if let Some(r) = &mut self.classes[root as usize] {
            r.nodes.extend(taken.nodes);
        }
        self.pending
            .extend(taken.parents.into_iter().map(|(n, c)| (n, c, root)));
        self.dirty.push(root);
        true
    }

    /// Restores the congruence invariant after unions: re-canonicalizes
    /// the parents of every touched class and merges classes that became
    /// structurally identical, to a fixpoint.
    pub fn rebuild(&mut self) {
        let _ = self.rebuild_collect();
    }

    /// [`EGraph::rebuild`], additionally returning the canonical ids of
    /// every class whose contents were re-canonicalized (sorted,
    /// deduplicated) — the seed of the saturation engine's dirty-class
    /// worklist.
    fn rebuild_collect(&mut self) -> Vec<u32> {
        // Congruence repair: re-key exactly the parent entries whose child
        // canonicalization changed. An entry is registered with *every*
        // child class at add time, so whichever child merges away carries
        // it here; copies left in other children's lists keep a stale key,
        // which `canon` resolves whenever their turn comes.
        while !self.pending.is_empty() {
            let batch = std::mem::take(&mut self.pending);
            for (pnode, pclass, child) in batch {
                self.memo.remove(&pnode);
                let canon = self.canon(pnode);
                let mut pc = self.find_u(pclass);
                if let Some(&existing) = self.memo.get(&canon) {
                    let ex = self.find_u(existing);
                    if ex != pc {
                        self.union(Id(ex), Id(pc));
                        pc = self.find_u(pc);
                    }
                }
                self.memo.insert(canon, pc);
                // Re-attach to the surviving child root so the entry is
                // found again the next time that class merges.
                let ch = self.find_u(child);
                if let Some(cl) = &mut self.classes[ch as usize] {
                    cl.parents.push((canon, pc));
                }
            }
        }
        // Content pass: canonicalize and dedupe the nodes and parents of
        // every class that absorbed a merge (no new unions can arise).
        let mut touched = std::mem::take(&mut self.dirty);
        for c in &mut touched {
            *c = self.find_u(*c);
        }
        touched.sort_unstable();
        touched.dedup();
        for &c in &touched {
            let Some(cl) = &mut self.classes[c as usize] else {
                continue;
            };
            let nodes = std::mem::take(&mut cl.nodes);
            let parents = std::mem::take(&mut cl.parents);
            let mut canon_nodes: Vec<ENode> = nodes.into_iter().map(|n| self.canon(n)).collect();
            canon_nodes.sort_unstable();
            canon_nodes.dedup();
            let mut canon_parents: Vec<(ENode, u32)> = parents
                .into_iter()
                .map(|(n, c)| (self.canon(n), self.find_u(c)))
                .collect();
            canon_parents.sort_unstable();
            canon_parents.dedup();
            if let Some(cl) = &mut self.classes[c as usize] {
                cl.nodes = canon_nodes;
                cl.parents = canon_parents;
            }
        }
        touched
    }

    /// Loads a DFG into the e-graph (hashconsing against what is already
    /// there) and returns where its sinks landed.
    ///
    /// # Errors
    ///
    /// [`EgraphError::Graph`] when the DFG fails validation and
    /// [`EgraphError::UnsupportedGraph`] when a sink node is used as a
    /// predecessor.
    pub fn add_dfg(&mut self, g: &Dfg) -> Result<GraphRoots, EgraphError> {
        g.validate()?;
        let mut map: Vec<Option<Id>> = vec![None; g.len()];
        let mut roots = GraphRoots {
            outputs: Vec::new(),
            states: Vec::new(),
        };
        for (id, n) in g.iter() {
            let child = |k: usize| -> Result<Id, EgraphError> {
                map[n.preds[k].0].ok_or_else(|| EgraphError::UnsupportedGraph {
                    detail: format!("node {} uses a sink node as a predecessor", id.0),
                })
            };
            let added = match n.kind {
                NodeKind::Input { sample, channel } => {
                    Some(self.add(ENode::Input { sample, channel }))
                }
                NodeKind::StateIn { index } => Some(self.add(ENode::StateIn { index })),
                NodeKind::Const(c) => Some(self.add(ENode::Const(c.to_bits()))),
                NodeKind::Add => {
                    let (a, b) = (child(0)?, child(1)?);
                    Some(self.add(ENode::Add(a, b)))
                }
                NodeKind::Sub => {
                    let (a, b) = (child(0)?, child(1)?);
                    Some(self.add(ENode::Sub(a, b)))
                }
                NodeKind::MulConst(c) => {
                    let a = child(0)?;
                    Some(self.add(ENode::MulConst(c.to_bits(), a)))
                }
                NodeKind::Shift(s) => {
                    let a = child(0)?;
                    Some(self.add(ENode::Shift(s, a)))
                }
                NodeKind::Neg => {
                    let a = child(0)?;
                    Some(self.add(ENode::Neg(a)))
                }
                NodeKind::Delay => {
                    let a = child(0)?;
                    Some(self.add(ENode::Delay(a)))
                }
                NodeKind::Output { sample, channel } => {
                    roots.outputs.push(((sample, channel), child(0)?));
                    None
                }
                NodeKind::StateOut { index } => {
                    roots.states.push((index, child(0)?));
                    None
                }
            };
            map[id.0] = added;
        }
        Ok(roots)
    }

    /// Builds an e-graph from a DFG.
    ///
    /// # Errors
    ///
    /// Identical to [`EGraph::add_dfg`].
    pub fn from_dfg(g: &Dfg) -> Result<(EGraph, GraphRoots), EgraphError> {
        let mut eg = EGraph::new();
        let roots = eg.add_dfg(g)?;
        Ok((eg, roots))
    }

    /// Asserts that two root sets compute the same interface and unites
    /// them root-by-root — how whole-graph rewrites (Horner restructuring,
    /// shared MCM networks) enter the e-graph. Returns `true` if anything
    /// merged; the congruence invariant is restored before returning.
    ///
    /// # Errors
    ///
    /// [`EgraphError::InterfaceMismatch`] when the output keys or state
    /// indices differ (including duplicates).
    pub fn union_roots(&mut self, a: &GraphRoots, b: &GraphRoots) -> Result<bool, EgraphError> {
        let index = |r: &GraphRoots| -> (BTreeMap<(usize, usize), Id>, BTreeMap<usize, Id>) {
            (
                r.outputs.iter().copied().collect(),
                r.states.iter().copied().collect(),
            )
        };
        let (ao, as_) = index(a);
        let (bo, bs) = index(b);
        if ao.len() != a.outputs.len() || bo.len() != b.outputs.len() {
            return Err(EgraphError::InterfaceMismatch {
                detail: "duplicate output keys".to_string(),
            });
        }
        let a_keys: BTreeSet<_> = ao.keys().collect();
        let b_keys: BTreeSet<_> = bo.keys().collect();
        if a_keys != b_keys {
            return Err(EgraphError::InterfaceMismatch {
                detail: format!("output keys differ: {a_keys:?} vs {b_keys:?}"),
            });
        }
        let a_states: BTreeSet<_> = as_.keys().collect();
        let b_states: BTreeSet<_> = bs.keys().collect();
        if a_states != b_states {
            return Err(EgraphError::InterfaceMismatch {
                detail: format!("state indices differ: {a_states:?} vs {b_states:?}"),
            });
        }
        let mut changed = false;
        for (k, &ia) in &ao {
            if let Some(&ib) = bo.get(k) {
                changed |= self.union(ia, ib);
            }
        }
        for (k, &ia) in &as_ {
            if let Some(&ib) = bs.get(k) {
                changed |= self.union(ia, ib);
            }
        }
        self.rebuild();
        Ok(changed)
    }

    /// Applies the rule set to a bounded fixpoint. Never panics, never
    /// hangs, never errors: hitting a budget stops the sweep and leaves a
    /// congruent e-graph behind, so extraction still works on the best
    /// representations found so far.
    ///
    /// The engine is incremental where the naive loop rescans:
    ///
    /// * **Kind-indexed candidates** — pairs are enqueued with the rule
    ///   mask for their operator kind ([`ENode::kind_ordinal`]), so leaf
    ///   nodes never enter the queue and each pair dispatches only to
    ///   rules that can match it.
    /// * **Dirty-class worklist** — after the first full pass, only
    ///   classes whose contents changed, classes holding a node that
    ///   references one (every rule reads at most one level down), and
    ///   classes of freshly created e-nodes are re-matched. Skipped pairs
    ///   are provably no-ops: rule application is idempotent under
    ///   hashconsing, so the engine reaches the same fixpoint — and
    ///   performs the same sequence of e-node insertions — as
    ///   [`EGraph::saturate_reference`].
    /// * **Per-rule backoff** — a rule that fires more than an egg-style
    ///   match limit in one iteration is banned for a few iterations so
    ///   explosive rules can't starve the rest. A ban compromises
    ///   worklist coverage, so a lifted ban forces a full pass, and
    ///   `Saturated` is only ever declared after a clean pass with every
    ///   rule active.
    pub fn saturate(&mut self, rules: &RuleSet, budget: &SaturationBudget) -> SaturationStats {
        let masks = rules.node_masks();
        let mut sched = Backoff::new(rules.rules().len());
        let mut scratch = RuleScratch::default();
        let mut plans = McmPlanMemo::new();
        let mut iterations = 0usize;
        let (mut match_s, mut apply_s, mut rebuild_s) = (0.0f64, 0.0f64, 0.0f64);
        // Scratch buffers reused across iterations: the candidate list,
        // the current worklist and the one under construction.
        let mut pairs: Vec<(u32, ENode, u32)> = Vec::new();
        let mut work: Vec<u32> = Vec::new();
        let mut next_work: Vec<u32> = Vec::new();
        let mut full = true;
        let mut seen_len;
        let stop = 'outer: loop {
            if iterations >= budget.max_iterations {
                break StopReason::IterationBudget;
            }
            iterations += 1;
            let (banned, ban_lifted) = sched.begin(iterations);
            if ban_lifted {
                // The rule missed arbitrary pairs while banned; only a
                // full pass restores the worklist invariant.
                full = true;
            }
            // Match phase: assemble the kind-indexed candidate list.
            let t = Instant::now();
            pairs.clear();
            if full {
                for (c, class) in self.classes.iter().enumerate() {
                    if let Some(class) = class {
                        for n in &class.nodes {
                            let m = masks[n.kind_ordinal()];
                            if m != 0 {
                                pairs.push((c as u32, *n, m));
                            }
                        }
                    }
                }
            } else {
                for &c in &work {
                    if let Some(class) = &self.classes[c as usize] {
                        for n in &class.nodes {
                            let m = masks[n.kind_ordinal()];
                            if m != 0 {
                                pairs.push((c, *n, m));
                            }
                        }
                    }
                }
            }
            seen_len = self.uf.len();
            match_s += t.elapsed().as_secs_f64();
            // Apply phase: dispatch each pair to its unbanned rules.
            let t = Instant::now();
            let mut changed = false;
            for &(c, node, mask) in &pairs {
                if self.uf.len() >= budget.max_enodes {
                    apply_s += t.elapsed().as_secs_f64();
                    break 'outer StopReason::NodeBudget;
                }
                let fired = rules.apply_masked(self, Id(c), &node, mask & !banned, &mut scratch);
                if fired != 0 {
                    changed = true;
                    sched.record(fired);
                }
            }
            // Whole-graph rules (linear collection, shared MCM) run once
            // per sweep; they add at most one hub e-node per class, so
            // the budget check above still bounds growth to the same
            // order.
            if self.uf.len() >= budget.max_enodes {
                apply_s += t.elapsed().as_secs_f64();
                break 'outer StopReason::NodeBudget;
            }
            changed |= rules.sweep(self, &mut plans);
            apply_s += t.elapsed().as_secs_f64();
            // Rebuild phase; its touched set seeds the next worklist.
            let t = Instant::now();
            let touched = self.rebuild_collect();
            rebuild_s += t.elapsed().as_secs_f64();
            sched.end(iterations);
            if !changed {
                if banned == 0 {
                    break StopReason::Saturated;
                }
                // Clean pass, but banned rules never saw it: unban
                // everything and re-verify the fixpoint with a full pass.
                sched.unban_all();
                full = true;
                continue;
            }
            // Next worklist: touched classes, classes holding a node that
            // references one, and the classes of e-nodes created this
            // iteration.
            let t = Instant::now();
            next_work.clear();
            for &c in &touched {
                next_work.push(c);
                if let Some(cl) = &self.classes[c as usize] {
                    for &(_, pc) in &cl.parents {
                        next_work.push(self.find_u(pc));
                    }
                }
            }
            for id in seen_len..self.uf.len() {
                next_work.push(self.find_u(id as u32));
            }
            next_work.sort_unstable();
            next_work.dedup();
            next_work.retain(|&c| self.classes[c as usize].is_some());
            std::mem::swap(&mut work, &mut next_work);
            full = false;
            match_s += t.elapsed().as_secs_f64();
        };
        let t = Instant::now();
        self.rebuild();
        rebuild_s += t.elapsed().as_secs_f64();
        SaturationStats {
            iterations,
            enodes: self.uf.len(),
            classes: self.class_count(),
            stop,
            match_s,
            apply_s,
            rebuild_s,
        }
    }

    /// The pre-index reference engine: every `(class, node)` pair is
    /// re-matched against every rule on every iteration, with no
    /// scheduling and no worklist. Semantically the baseline for
    /// [`EGraph::saturate`] — the differential tests drive both engines
    /// over the same graphs and require identical results. Quadratically
    /// slower on large graphs; kept for testing, not for production use.
    pub fn saturate_reference(
        &mut self,
        rules: &RuleSet,
        budget: &SaturationBudget,
    ) -> SaturationStats {
        let mut scratch = RuleScratch::default();
        let mut plans = McmPlanMemo::new();
        let mut iterations = 0;
        let stop = 'outer: loop {
            if iterations >= budget.max_iterations {
                break StopReason::IterationBudget;
            }
            iterations += 1;
            let mut pairs: Vec<(u32, ENode)> = Vec::new();
            for (c, class) in self.classes.iter().enumerate() {
                if let Some(class) = class {
                    for n in &class.nodes {
                        pairs.push((c as u32, *n));
                    }
                }
            }
            let mut changed = false;
            for (c, node) in pairs {
                if self.uf.len() >= budget.max_enodes {
                    break 'outer StopReason::NodeBudget;
                }
                changed |= rules.apply(self, Id(c), &node, &mut scratch);
            }
            if self.uf.len() >= budget.max_enodes {
                break 'outer StopReason::NodeBudget;
            }
            changed |= rules.sweep(self, &mut plans);
            self.rebuild();
            if !changed {
                break StopReason::Saturated;
            }
        };
        self.rebuild();
        SaturationStats {
            iterations,
            enodes: self.uf.len(),
            classes: self.class_count(),
            stop,
            match_s: 0.0,
            apply_s: 0.0,
            rebuild_s: 0.0,
        }
    }

    /// Minimum-cost extraction under a [`CostModel`]: per e-class, the
    /// representative minimizing `node_cost + Σ child costs` (relaxed to a
    /// fixpoint, so cyclic classes resolve to their grounded
    /// representatives), emitted as a deduplicated DAG. The reported cost
    /// is [`CostModel::graph_cost`] of the extracted graph — shared
    /// subexpressions counted once.
    ///
    /// # Errors
    ///
    /// [`EgraphError::Unextractable`] when a root class has no grounded
    /// representative.
    pub fn extract(
        &self,
        roots: &GraphRoots,
        model: &dyn CostModel,
    ) -> Result<Extraction, EgraphError> {
        let mut weight = |_c: u32, _i: usize, n: &ENode| model.node_cost(&n.to_kind());
        let dfg = self.extract_by(roots, &mut weight)?;
        let cost = model.graph_cost(&dfg);
        Ok(Extraction { dfg, cost })
    }

    /// Deterministic sampling of *alternative* representatives: op-count
    /// extraction with a seeded per-(class, node) jitter, so different
    /// seeds surface different (still grounded) realizations. The property
    /// harness uses this to check that every representative simulates
    /// identically.
    ///
    /// # Errors
    ///
    /// Identical to [`EGraph::extract`].
    pub fn extract_seeded(&self, roots: &GraphRoots, seed: u64) -> Result<Extraction, EgraphError> {
        let base = OpCountCost;
        let mut weight = |c: u32, i: usize, n: &ENode| {
            let mut h =
                seed ^ (u64::from(c) << 32) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // splitmix64 finalizer — deterministic, seed-sensitive.
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            base.node_cost(&n.to_kind()) + (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        };
        let dfg = self.extract_by(roots, &mut weight)?;
        let cost = OpCountCost.graph_cost(&dfg);
        Ok(Extraction { dfg, cost })
    }

    fn extract_by(
        &self,
        roots: &GraphRoots,
        weight: &mut dyn FnMut(u32, usize, &ENode) -> f64,
    ) -> Result<Dfg, EgraphError> {
        let n = self.uf.len();
        // best[c] = (cost, chosen node) for canonical class c. Relaxation
        // with strictly-improving updates: converges in at most the
        // dependency depth, and the strict inequality keeps the chosen
        // assignment acyclic.
        let mut best: Vec<Option<(f64, ENode)>> = vec![None; n];
        for _pass in 0..=n {
            let mut changed = false;
            for (c, class) in self.classes.iter().enumerate() {
                let Some(class) = class else { continue };
                for (i, node) in class.nodes.iter().enumerate() {
                    let node = self.canon(*node);
                    let mut cost = weight(c as u32, i, &node);
                    let mut grounded = true;
                    for child in node.children().into_iter().flatten() {
                        match &best[self.find_u(child.0) as usize] {
                            Some((cc, _)) => cost += cc,
                            None => {
                                grounded = false;
                                break;
                            }
                        }
                    }
                    if !grounded || !cost.is_finite() {
                        continue;
                    }
                    if best[c].is_none_or(|(b, _)| cost < b) {
                        best[c] = Some((cost, node));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Emit the chosen representatives as a deduplicated DAG.
        let mut dfg = Dfg::new();
        let mut node_of: Vec<Option<NodeId>> = vec![None; n];
        let mut on_stack = vec![false; n];
        enum Task {
            Visit(u32),
            Build(u32),
        }
        let mut emit_root = |dfg: &mut Dfg, root: Id| -> Result<NodeId, EgraphError> {
            let root = self.find_u(root.0);
            let mut stack = vec![Task::Visit(root)];
            while let Some(task) = stack.pop() {
                match task {
                    Task::Visit(c) => {
                        if node_of[c as usize].is_some() {
                            continue;
                        }
                        if on_stack[c as usize] {
                            return Err(EgraphError::Unextractable { class: c });
                        }
                        on_stack[c as usize] = true;
                        let Some((_, node)) = best[c as usize] else {
                            return Err(EgraphError::Unextractable { class: c });
                        };
                        stack.push(Task::Build(c));
                        for child in node.children().into_iter().flatten() {
                            stack.push(Task::Visit(self.find_u(child.0)));
                        }
                    }
                    Task::Build(c) => {
                        let Some((_, node)) = best[c as usize] else {
                            return Err(EgraphError::Unextractable { class: c });
                        };
                        let mut preds = Vec::new();
                        for child in node.children().into_iter().flatten() {
                            match node_of[self.find_u(child.0) as usize] {
                                Some(id) => preds.push(id),
                                None => return Err(EgraphError::Unextractable { class: c }),
                            }
                        }
                        let id = dfg.push(node.to_kind(), preds)?;
                        node_of[c as usize] = Some(id);
                        on_stack[c as usize] = false;
                    }
                }
            }
            node_of[root as usize].ok_or(EgraphError::Unextractable { class: root })
        };
        let mut outs = Vec::with_capacity(roots.outputs.len());
        for &((sample, channel), root) in &roots.outputs {
            outs.push((sample, channel, emit_root(&mut dfg, root)?));
        }
        let mut states = Vec::with_capacity(roots.states.len());
        for &(index, root) in &roots.states {
            states.push((index, emit_root(&mut dfg, root)?));
        }
        for (sample, channel, pred) in outs {
            dfg.push(NodeKind::Output { sample, channel }, vec![pred])?;
        }
        for (index, pred) in states {
            dfg.push(NodeKind::StateOut { index }, vec![pred])?;
        }
        dfg.validate()?;
        Ok(dfg)
    }
}

/// Egg-style per-rule backoff. A rule that changes the e-graph more than
/// `MATCH_LIMIT << times_banned` times in one iteration is banned for
/// `BAN_LENGTH << times_banned` iterations, so an explosive rule (say,
/// associativity on a deeply unfolded graph) can't starve the others
/// inside a small iteration budget. The limits are deliberately high:
/// small graphs — everything the property harness and the differential
/// tests saturate — never trip them, which keeps the scheduled engine
/// behaviourally identical to the reference engine wherever bit-identity
/// is asserted.
struct Backoff {
    /// Productive applications per rule, this iteration.
    applied: Vec<u32>,
    /// First iteration on which the rule is active again (0 = never
    /// banned).
    banned_until: Vec<usize>,
    /// Escalation counter: each ban doubles the next limit and ban span.
    times_banned: Vec<u32>,
}

impl Backoff {
    const MATCH_LIMIT: u32 = 1000;
    const BAN_LENGTH: usize = 2;

    fn new(rules: usize) -> Backoff {
        Backoff {
            applied: vec![0; rules],
            banned_until: vec![0; rules],
            times_banned: vec![0; rules],
        }
    }

    /// Starts an iteration: resets the per-iteration counters and returns
    /// the banned-rule bitmask plus whether any ban expired right now
    /// (the caller owes a full pass to restore worklist coverage).
    fn begin(&mut self, iter: usize) -> (u32, bool) {
        let mut banned = 0u32;
        let mut lifted = false;
        for i in 0..self.applied.len() {
            self.applied[i] = 0;
            if self.banned_until[i] > iter {
                banned |= 1 << i;
            } else if self.banned_until[i] == iter {
                lifted = true;
                self.banned_until[i] = 0;
            }
        }
        (banned, lifted)
    }

    /// Tallies one pair's firing record (bit `i` = rule `i` changed the
    /// e-graph).
    fn record(&mut self, fired: u32) {
        let mut m = fired;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            self.applied[i] += 1;
        }
    }

    /// Ends an iteration: bans any rule that fired past its limit.
    fn end(&mut self, iter: usize) {
        for i in 0..self.applied.len() {
            let escalation = self.times_banned[i].min(20);
            if self.applied[i] > Self::MATCH_LIMIT << escalation {
                self.times_banned[i] += 1;
                self.banned_until[i] = iter + 1 + (Self::BAN_LENGTH << escalation);
            }
        }
    }

    /// Clears every ban (escalation counters survive), so a final clean
    /// full pass can certify the fixpoint.
    fn unban_all(&mut self) {
        self.banned_until.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RuleSet, SaturationBudget, StopReason};
    use lintra_dfg::{NodeKind, OpCountCost};

    /// y = 0.75·x + s; s' = 0.5·s — a one-pole filter fragment.
    fn small_filter() -> Dfg {
        let mut g = Dfg::new();
        let x = g
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let s = g.push(NodeKind::StateIn { index: 0 }, vec![]).unwrap();
        let m = g.push(NodeKind::MulConst(0.75), vec![x]).unwrap();
        let a = g.push(NodeKind::Add, vec![m, s]).unwrap();
        let d = g.push(NodeKind::MulConst(0.5), vec![s]).unwrap();
        g.push(
            NodeKind::Output {
                sample: 0,
                channel: 0,
            },
            vec![a],
        )
        .unwrap();
        g.push(NodeKind::StateOut { index: 0 }, vec![d]).unwrap();
        g
    }

    #[test]
    fn dfg_round_trips_through_an_unsaturated_egraph() {
        let g = small_filter();
        let (eg, roots) = EGraph::from_dfg(&g).unwrap();
        assert_eq!(roots.outputs.len(), 1);
        assert_eq!(roots.states.len(), 1);
        let ex = eg.extract(&roots, &OpCountCost).unwrap();
        assert_eq!(ex.dfg.op_counts(), g.op_counts());
        let inputs = std::collections::HashMap::from([((0usize, 0usize), 1.5)]);
        let (o1, s1) = g.simulate(&[0.25], &inputs).unwrap();
        let (o2, s2) = ex.dfg.simulate(&[0.25], &inputs).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn hashconsing_shares_identical_shapes() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Input {
            sample: 0,
            channel: 0,
        });
        let a1 = eg.add(ENode::Shift(2, x));
        let a2 = eg.add(ENode::Shift(2, x));
        assert_eq!(a1, a2);
        assert_eq!(eg.len(), 2);
    }

    #[test]
    fn congruence_merges_parents_of_merged_children() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Input {
            sample: 0,
            channel: 0,
        });
        let y = eg.add(ENode::StateIn { index: 0 });
        let fx = eg.add(ENode::Neg(x));
        let fy = eg.add(ENode::Neg(y));
        assert_ne!(eg.find(fx), eg.find(fy));
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(fx), eg.find(fy), "congruence closure");
    }

    #[test]
    fn iteration_budget_stops_gracefully() {
        let g = small_filter();
        let (mut eg, roots) = EGraph::from_dfg(&g).unwrap();
        let stats = eg.saturate(
            &RuleSet::extended(),
            &SaturationBudget {
                max_enodes: usize::MAX,
                max_iterations: 1,
            },
        );
        assert_eq!(stats.stop, StopReason::IterationBudget);
        assert!(!stats.saturated());
        // Best-so-far extraction still works.
        let ex = eg.extract(&roots, &OpCountCost).unwrap();
        ex.dfg.validate().unwrap();
    }

    #[test]
    fn node_budget_stops_mid_sweep() {
        let g = small_filter();
        let (mut eg, roots) = EGraph::from_dfg(&g).unwrap();
        let n = eg.len();
        let stats = eg.saturate(
            &RuleSet::extended(),
            &SaturationBudget {
                max_enodes: n + 2,
                max_iterations: 100,
            },
        );
        assert_eq!(stats.stop, StopReason::NodeBudget);
        let ex = eg.extract(&roots, &OpCountCost).unwrap();
        ex.dfg.validate().unwrap();
    }

    #[test]
    fn union_roots_requires_matching_interfaces() {
        let g = small_filter();
        let mut eg = EGraph::new();
        let a = eg.add_dfg(&g).unwrap();

        let mut other = Dfg::new();
        let x = other
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        other
            .push(
                NodeKind::Output {
                    sample: 0,
                    channel: 0,
                },
                vec![x],
            )
            .unwrap();
        let b = eg.add_dfg(&other).unwrap();
        let err = eg.union_roots(&a, &b).unwrap_err();
        assert!(matches!(err, EgraphError::InterfaceMismatch { .. }));
        assert!(err.to_string().contains("state indices differ"));
    }

    #[test]
    fn union_roots_merges_equivalent_realizations() {
        // Same computation written two ways: 4·x vs x ≪ 2.
        let mut mul = Dfg::new();
        let x = mul
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let m = mul.push(NodeKind::MulConst(4.0), vec![x]).unwrap();
        mul.push(
            NodeKind::Output {
                sample: 0,
                channel: 0,
            },
            vec![m],
        )
        .unwrap();

        let mut shift = Dfg::new();
        let x2 = shift
            .push(
                NodeKind::Input {
                    sample: 0,
                    channel: 0,
                },
                vec![],
            )
            .unwrap();
        let s = shift.push(NodeKind::Shift(2), vec![x2]).unwrap();
        shift
            .push(
                NodeKind::Output {
                    sample: 0,
                    channel: 0,
                },
                vec![s],
            )
            .unwrap();

        let mut eg = EGraph::new();
        let a = eg.add_dfg(&mul).unwrap();
        let b = eg.add_dfg(&shift).unwrap();
        assert!(eg.union_roots(&a, &b).unwrap());
        // After the union the cheaper form (the shift) wins extraction
        // under a model that prices multipliers above shifts.
        let model = lintra_dfg::CycleCost {
            w_mul: 3.0,
            w_add: 1.0,
        };
        let ex = eg.extract(&a, &model).unwrap();
        assert_eq!(ex.dfg.op_counts().muls, 0);
        assert_eq!(ex.dfg.op_counts().shifts, 1);
    }

    #[test]
    fn seeded_extraction_is_deterministic_and_varies_with_seed() {
        let g = small_filter();
        let (mut eg, roots) = EGraph::from_dfg(&g).unwrap();
        eg.saturate(&RuleSet::exact(), &SaturationBudget::default());
        let e1 = eg.extract_seeded(&roots, 42).unwrap();
        let e2 = eg.extract_seeded(&roots, 42).unwrap();
        assert_eq!(e1, e2, "same seed, same extraction");
        // Different seeds may pick different representatives; every one
        // must still be a valid graph.
        for seed in 0..8 {
            let e = eg.extract_seeded(&roots, seed).unwrap();
            e.dfg.validate().unwrap();
        }
    }

    #[test]
    fn unextractable_class_is_an_error_not_a_hang() {
        // A class whose only member references itself through a cycle:
        // x = Neg(y), y = Neg(x) unioned with nothing grounded.
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Input {
            sample: 0,
            channel: 0,
        });
        let a = eg.add(ENode::Neg(x));
        // Make `a`'s class self-referential only: union a with Neg(a).
        let na = eg.add(ENode::Neg(a));
        eg.union(a, na);
        eg.rebuild();
        // `a` still extracts (Neg(x) is grounded), proving cyclic class
        // membership alone is not fatal.
        let roots = GraphRoots {
            outputs: vec![((0, 0), a)],
            states: vec![],
        };
        let ex = eg.extract(&roots, &OpCountCost).unwrap();
        ex.dfg.validate().unwrap();
    }

    #[test]
    fn errors_display_and_chain() {
        let e = EgraphError::Budget {
            iterations: 3,
            enodes: 99,
        };
        assert!(e.to_string().contains("3 iterations"));
        let g = EgraphError::InterfaceMismatch { detail: "x".into() };
        assert!(g.to_string().contains("different interfaces"));
    }
}

//! Eigenvalues of real matrices: Householder–Hessenberg reduction followed
//! by the shifted QR iteration with deflation.
//!
//! The suite's stability checks (`ρ(A) < 1`) use the norm-based estimate of
//! [`crate::spectral_radius_estimate`] for speed; this module provides the
//! exact answer, used in tests and wherever eigenvalue *positions* matter
//! (e.g. verifying discretized plant poles).

use crate::Matrix;

/// An eigenvalue as `(re, im)`; complex pairs appear as two conjugate
/// entries.
pub type Eigenvalue = (f64, f64);

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transforms.
fn hessenberg(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector for column k below the subdiagonal.
        let mut x: Vec<f64> = (k + 1..n).map(|i| h[(i, k)]).collect();
        let alpha = -x[0].signum() * x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if alpha == 0.0 {
            continue;
        }
        x[0] -= alpha;
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            continue;
        }
        let v: Vec<f64> = x.iter().map(|e| e / norm).collect();
        // H := P H P with P = I - 2 v v^T (acting on rows/cols k+1..n).
        for col in 0..n {
            let dot: f64 = (0..v.len()).map(|i| v[i] * h[(k + 1 + i, col)]).sum();
            for i in 0..v.len() {
                h[(k + 1 + i, col)] -= 2.0 * v[i] * dot;
            }
        }
        for row in 0..n {
            let dot: f64 = (0..v.len()).map(|j| v[j] * h[(row, k + 1 + j)]).sum();
            for j in 0..v.len() {
                h[(row, k + 1 + j)] -= 2.0 * v[j] * dot;
            }
        }
    }
    h
}

/// Eigenvalues of the trailing 2×2 block `[[a, b], [c, d]]`.
fn eig2(a: f64, b: f64, c: f64, d: f64) -> [Eigenvalue; 2] {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc >= 0.0 {
        let s = disc.sqrt();
        [(tr / 2.0 + s, 0.0), (tr / 2.0 - s, 0.0)]
    } else {
        let s = (-disc).sqrt();
        [(tr / 2.0, s), (tr / 2.0, -s)]
    }
}

/// Computes all eigenvalues of a square matrix.
///
/// Shifted QR on the Hessenberg form with Givens rotations and standard
/// deflation; complex pairs are extracted from irreducible 2×2 blocks.
/// Accuracy is ample for the well-conditioned system matrices used in this
/// workspace.
///
/// # Panics
///
/// Panics if `a` is not square. Returns what it has (possibly from a
/// 2×2 fallback) if a block fails to converge in 500 sweeps — which does
/// not occur for real-life inputs with the Wilkinson shift.
pub fn eigenvalues(a: &Matrix) -> Vec<Eigenvalue> {
    assert!(a.is_square(), "eigenvalues require a square matrix");
    let mut n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    let mut h = hessenberg(a);
    let mut out: Vec<Eigenvalue> = Vec::with_capacity(n);
    let eps = 1e-13;
    let mut sweeps = 0;

    while n > 0 {
        if n == 1 {
            out.push((h[(0, 0)], 0.0));
            break;
        }
        // Deflate: find the largest m < n with a negligible subdiagonal.
        let mut split = None;
        for i in (1..n).rev() {
            let scale = h[(i - 1, i - 1)].abs() + h[(i, i)].abs();
            if h[(i, i - 1)].abs() <= eps * scale.max(1e-300) {
                split = Some(i);
                break;
            }
        }
        if let Some(m) = split {
            if m == n - 1 {
                out.push((h[(n - 1, n - 1)], 0.0));
                n -= 1;
                continue;
            }
            if m == n - 2 {
                let e = eig2(
                    h[(n - 2, n - 2)],
                    h[(n - 2, n - 1)],
                    h[(n - 1, n - 2)],
                    h[(n - 1, n - 1)],
                );
                out.extend_from_slice(&e);
                n -= 2;
                continue;
            }
        }
        // Trailing 2x2 with complex eigenvalues and n == 2: extract.
        if n == 2 {
            let e = eig2(h[(0, 0)], h[(0, 1)], h[(1, 0)], h[(1, 1)]);
            out.extend_from_slice(&e);
            break;
        }

        sweeps += 1;
        if sweeps > 500 * a.rows() {
            // Give up gracefully on the remaining block.
            for i in 0..n {
                out.push((h[(i, i)], 0.0));
            }
            break;
        }

        // Wilkinson shift from the trailing 2x2.
        let (aa, bb, cc, dd) = (
            h[(n - 2, n - 2)],
            h[(n - 2, n - 1)],
            h[(n - 1, n - 2)],
            h[(n - 1, n - 1)],
        );
        let tr = aa + dd;
        let det = aa * dd - bb * cc;
        let disc = tr * tr / 4.0 - det;
        let shift = if disc >= 0.0 {
            let s = disc.sqrt();
            let e1 = tr / 2.0 + s;
            let e2 = tr / 2.0 - s;
            if (e1 - dd).abs() < (e2 - dd).abs() {
                e1
            } else {
                e2
            }
        } else {
            // Complex pair: use the real part (implicit double shift would
            // be faster; a real shift still converges to the 2x2 block).
            tr / 2.0
        };

        // QR step on the active block via Givens rotations.
        for i in 0..n {
            h[(i, i)] -= shift;
        }
        let mut rots: Vec<(usize, f64, f64)> = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            let (x, y) = (h[(i, i)], h[(i + 1, i)]);
            let r = x.hypot(y);
            if r < 1e-300 {
                rots.push((i, 1.0, 0.0));
                continue;
            }
            let (c, s) = (x / r, y / r);
            rots.push((i, c, s));
            for col in i..n {
                let (u, v) = (h[(i, col)], h[(i + 1, col)]);
                h[(i, col)] = c * u + s * v;
                h[(i + 1, col)] = -s * u + c * v;
            }
        }
        for &(i, c, s) in &rots {
            for row in 0..(i + 2).min(n) {
                let (u, v) = (h[(row, i)], h[(row, i + 1)]);
                h[(row, i)] = c * u + s * v;
                h[(row, i + 1)] = -s * u + c * v;
            }
        }
        for i in 0..n {
            h[(i, i)] += shift;
        }
    }
    out
}

/// Exact spectral radius `max |λ|` via [`eigenvalues`].
pub fn spectral_radius_exact(a: &Matrix) -> f64 {
    eigenvalues(a)
        .into_iter()
        .map(|(re, im)| re.hypot(im))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_mags(e: &[Eigenvalue]) -> Vec<f64> {
        let mut m: Vec<f64> = e.iter().map(|&(r, i)| r.hypot(i)).collect();
        m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        m
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 0.5]);
        let mut e: Vec<f64> = eigenvalues(&a).iter().map(|&(r, _)| r).collect();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((e[0] + 1.0).abs() < 1e-10);
        assert!((e[1] - 0.5).abs() < 1e-10);
        assert!((e[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn rotation_has_complex_pair() {
        let t = 0.7_f64;
        let r = 0.9_f64;
        let a = Matrix::from_rows(&[&[r * t.cos(), -r * t.sin()], &[r * t.sin(), r * t.cos()]]);
        let e = eigenvalues(&a);
        assert_eq!(e.len(), 2);
        for &(re, im) in &e {
            assert!((re.hypot(im) - r).abs() < 1e-10, "modulus");
            assert!((re - r * t.cos()).abs() < 1e-10, "real part");
        }
        assert!((e[0].1 + e[1].1).abs() < 1e-12, "conjugate pair");
    }

    #[test]
    fn companion_matrix_roots() {
        // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let a = Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let mut e: Vec<f64> = eigenvalues(&a).iter().map(|&(r, _)| r).collect();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in e.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-8, "{e:?}");
        }
    }

    #[test]
    fn trace_and_determinant_consistency() {
        let a = Matrix::from_rows(&[
            &[0.3, 0.7, -0.2, 0.1],
            &[-0.4, 0.5, 0.3, 0.2],
            &[0.1, -0.3, 0.6, 0.5],
            &[0.2, 0.1, -0.5, 0.4],
        ]);
        let e = eigenvalues(&a);
        assert_eq!(e.len(), 4);
        let tr: f64 = e.iter().map(|&(r, _)| r).sum();
        assert!((tr - (0.3 + 0.5 + 0.6 + 0.4)).abs() < 1e-8, "trace {tr}");
        // Product of eigenvalues = det (complex arithmetic by hand).
        let (mut pr, mut pi) = (1.0_f64, 0.0_f64);
        for &(r, i) in &e {
            let (nr, ni) = (pr * r - pi * i, pr * i + pi * r);
            pr = nr;
            pi = ni;
        }
        let det = crate::lu::Lu::new(&a).unwrap().det();
        assert!(
            (pr - det).abs() < 1e-8 && pi.abs() < 1e-8,
            "det {pr}+{pi}i vs {det}"
        );
    }

    #[test]
    fn agrees_with_norm_estimate() {
        let a = Matrix::from_rows(&[
            &[0.40, 0.12, 0.00, 0.05],
            &[0.22, -0.30, 0.41, 0.00],
            &[0.00, 0.20, 0.15, -0.10],
            &[0.07, 0.00, 0.30, 0.25],
        ]);
        let exact = spectral_radius_exact(&a);
        let est = crate::spectral_radius_estimate(&a, 14).value;
        assert!(
            (exact - est).abs() < 0.02 * exact.max(0.1),
            "{exact} vs {est}"
        );
    }

    #[test]
    fn hessenberg_similarity_preserves_eigs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]);
        let h = hessenberg(&a);
        // Hessenberg structure: zero below the first subdiagonal.
        assert!(h[(2, 0)].abs() < 1e-12);
        let mut ea = sorted_mags(&eigenvalues(&a));
        let mut eh = sorted_mags(&eigenvalues(&h));
        for (x, y) in ea.iter_mut().zip(eh.iter_mut()) {
            assert!((*x - *y).abs() < 1e-7, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(eigenvalues(&Matrix::zeros(0, 0)).is_empty());
        let e = eigenvalues(&Matrix::from_rows(&[&[42.0]]));
        assert_eq!(e, vec![(42.0, 0.0)]);
    }
}

//! Process-wide kernel counters: observability for the dense kernels.
//!
//! Two questions the bench report wants answered about a run: how many
//! scalar multiplications the matrix kernels actually performed (the
//! paper's cost currency is multiplications), and how many matrix-buffer
//! allocations destination-passing reuse avoided. Both counters are
//! process-global relaxed atomics — cheap enough to leave on
//! unconditionally, and explicitly observability-only: no computed
//! result anywhere depends on them.

use std::sync::atomic::{AtomicU64, Ordering};

static MULTS: AtomicU64 = AtomicU64::new(0);
static ALLOCS_SAVED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the kernel counters (monotone since process start or the
/// last [`reset_kernel_counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Scalar multiply–accumulates performed by the matrix-product
    /// kernels. Exact-zero left-hand entries are skipped by the kernels
    /// and not counted, so this tracks work done, not `m·k·n`.
    pub mults: u64,
    /// Matrix-buffer allocations avoided by destination passing or
    /// in-place reuse: a [`Matrix::try_mul_into`](crate::Matrix::try_mul_into)
    /// destination or transposed-RHS scratch whose capacity sufficed, an
    /// owned `+`/`-` operand updated in place, a warm
    /// [`ExpmWorkspace`](crate::ExpmWorkspace) buffer.
    pub allocs_saved: u64,
}

impl KernelCounters {
    /// Counter increments since an `earlier` snapshot.
    #[must_use]
    pub fn since(self, earlier: KernelCounters) -> KernelCounters {
        KernelCounters {
            mults: self.mults.saturating_sub(earlier.mults),
            allocs_saved: self.allocs_saved.saturating_sub(earlier.allocs_saved),
        }
    }
}

/// Current counter values.
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        mults: MULTS.load(Ordering::Relaxed),
        allocs_saved: ALLOCS_SAVED.load(Ordering::Relaxed),
    }
}

/// Resets both counters to zero. Bench harnesses call this at the start
/// of a measured region; library code never does.
pub fn reset_kernel_counters() {
    MULTS.store(0, Ordering::Relaxed);
    ALLOCS_SAVED.store(0, Ordering::Relaxed);
}

pub(crate) fn count_mults(n: u64) {
    if n > 0 {
        MULTS.fetch_add(n, Ordering::Relaxed);
    }
}

pub(crate) fn count_allocs_saved(n: u64) {
    if n > 0 {
        ALLOCS_SAVED.fetch_add(n, Ordering::Relaxed);
    }
}
